"""Execution-plan lowering and Executor behaviour.

Covers the three contract areas of the unified engine: plan construction
(kernels lower to an ``ExecutionPlan`` instead of running private chunk
loops), strategy auto-selection/override resolution, and the unified
``ExecStats`` accounting every kernel family now shares.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core.api import spmat, spmm
from repro.graph.sparse import from_edges
from repro.runtime import (
    AggregateSink,
    ChunkCtx,
    ChunkPolicy,
    EdgeTask,
    ExecutionPlan,
    Executor,
    GatherPlan,
    ScatterSink,
    Stage,
    get_reducer,
    make_strategy,
    resolve_strategy,
    segment_info,
    select_strategy,
    strategy_from_env,
)
from repro.tensorir.runtime import ExecStats


def _copy_kernel(adj, n, f, **opts):
    XV = T.placeholder((n, f), name="XV")

    def msgfunc(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i], name="cp")

    return spmm(adj, msgfunc, aggregation=opts.pop("aggregation", "sum"),
                **opts)


@pytest.fixture
def graph():
    rng = np.random.default_rng(11)
    src = rng.integers(0, 30, 400)
    dst = rng.integers(0, 30, 400)
    return from_edges(30, 30, src, dst), src, dst


class TestPlanConstruction:
    def test_spmm_lowers_to_plan(self, graph):
        adj, src, dst = graph
        k = _copy_kernel(spmat(adj), 30, 4, chunk_edges=64)
        acc = np.zeros((30, 4), np.float32)
        plan = k.execution_plan(acc)
        assert isinstance(plan, ExecutionPlan)
        assert plan.label.startswith("spmm[")
        assert plan.strategy in ("reduceat", "bucketed", "parallel")
        assert plan.finalize is not None
        assert len(plan.tasks) >= 1
        for task in plan.tasks:
            assert task.stages and task.stages[0].sink is not None
            assert isinstance(task.stages[0].sink, AggregateSink)

    def test_bounds_are_row_aligned(self, graph):
        adj, *_ = graph
        k = _copy_kernel(spmat(adj), 30, 4, chunk_edges=64)
        plan = k.execution_plan(np.zeros((30, 4), np.float32))
        indptr = set(int(p) for p in adj.indptr)
        for task in plan.tasks:
            bounds = list(task.bounds)
            # contiguous cover of [0, nnz) with cuts on row boundaries
            assert bounds[0][0] == 0
            for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
                assert a1 == b0
            for c0, c1 in bounds:
                assert c1 - c0 > 0

    def test_chunk_policy_unaligned_covers_range(self):
        bounds = ChunkPolicy(7, row_aligned=False).bounds(nnz=30)
        assert bounds[0][0] == 0 and bounds[-1][1] == 30
        assert all(b0 == a1 for (_, a1), (b0, _) in zip(bounds, bounds[1:]))

    def test_chunk_policy_validates_inputs(self):
        with pytest.raises(ValueError):
            ChunkPolicy(8, row_aligned=True).bounds(nnz=10)
        with pytest.raises(ValueError):
            ChunkPolicy(8, row_aligned=False).bounds(indptr=np.array([0, 10]))

    def test_no_private_chunk_loops_left_in_kernels(self):
        """The refactor's point: kernel families delegate chunking to the
        runtime package instead of slicing edges themselves."""
        import inspect

        from repro.core import fusion, sddmm, softmax, spmm as spmm_mod

        for mod in (spmm_mod, sddmm, softmax, fusion):
            source = inspect.getsource(mod)
            assert "def _row_aligned_chunks" not in source
            assert "_segmented_combine" not in source


class TestChunkCtx:
    def test_lazy_batch_and_segments(self):
        gather = GatherPlan(src=np.arange(10), dst=np.sort(np.arange(10) // 3),
                            eid=np.arange(10))
        ctx = ChunkCtx(2, 8, gather)
        assert ctx.size == 6
        assert ctx._batch is None
        batch = ctx.batch
        assert np.array_equal(batch["src"], np.arange(2, 8))
        seg = ctx.segments
        assert np.array_equal(seg.seg_rows, np.unique(batch["dst"]))
        assert np.array_equal(ctx.local_eid, np.arange(6))

    def test_values_flow_between_stages(self):
        gather = GatherPlan(src=np.arange(6), dst=np.zeros(6, np.int64),
                            eid=np.arange(6))
        out = np.zeros((6, 2), np.float32)

        def first(bindings, ctx):
            return np.ones((ctx.size, 2), np.float32), 0

        def second(bindings, ctx):
            return ctx.values["a"] * 3.0, 0

        task = EdgeTask(gather=gather, bounds=[(0, 6)], stages=[
            Stage("a", first),
            Stage("b", second, ScatterSink(out)),
        ])
        Executor().run(ExecutionPlan([task]))
        assert np.all(out == 3.0)


class TestStrategySelection:
    @pytest.fixture(autouse=True)
    def _no_cost_profile(self, monkeypatch, tmp_path):
        # These tests assert the hand-tuned cold-start thresholds; a real
        # calibrated profile on this machine must not perturb them.
        from repro.core.cost import COST_PROFILE_ENV
        from repro.runtime.strategies import reset_cost_model_cache

        monkeypatch.setenv(COST_PROFILE_ENV, str(tmp_path / "absent.json"))
        reset_cost_model_cache()
        yield
        reset_cost_model_cache()

    def test_auto_prefers_bucketed_on_regular_graphs(self):
        degrees = np.full(4096, 8)  # one distinct degree, plenty of work
        assert select_strategy(degrees, 16) == "bucketed"

    def test_auto_falls_back_to_reduceat_on_irregular_small(self):
        degrees = np.arange(1, 40)  # distinct degrees ~ rows, little work
        assert select_strategy(degrees, 1) == "reduceat"

    def test_auto_picks_parallel_when_pool_is_wide(self):
        from repro.tensorir.runtime import WorkPool
        # every degree distinct (bucketing can't amortize) but enough
        # total work to shard: sum(1..724) = 262450 >= 1<<18
        degrees = np.arange(1, 725)
        with WorkPool(4) as pool:
            assert select_strategy(degrees, 1, pool) == "parallel"

    def test_empty_graph_selects_reduceat(self):
        assert select_strategy(np.zeros(10, np.int64), 8) == "reduceat"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("FEATGRAPH_AGG_STRATEGY", "bucketed")
        assert strategy_from_env() == "bucketed"
        monkeypatch.setenv("FEATGRAPH_AGG_STRATEGY", "auto")
        assert strategy_from_env() is None
        monkeypatch.setenv("FEATGRAPH_AGG_STRATEGY", "nope")
        with pytest.raises(ValueError):
            strategy_from_env()

    def test_resolution_order(self, monkeypatch):
        degrees = np.full(4096, 8)
        monkeypatch.setenv("FEATGRAPH_AGG_STRATEGY", "parallel")
        # explicit request beats env
        assert resolve_strategy("reduceat", degrees, 16).name == "reduceat"
        # env beats auto (auto would say bucketed here)
        assert resolve_strategy(None, degrees, 16).name == "parallel"
        monkeypatch.delenv("FEATGRAPH_AGG_STRATEGY")
        assert resolve_strategy(None, degrees, 16).name == "bucketed"

    def test_kernel_attribute_pins_strategy(self, graph):
        adj, *_ = graph
        k = _copy_kernel(spmat(adj), 30, 4)
        k.agg_strategy = "reduceat"
        plan = k.execution_plan(np.zeros((30, 4), np.float32))
        assert plan.strategy == "reduceat"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("quantum")


class TestExecStatsAccounting:
    def test_one_add_chunk_per_chunk(self, graph):
        adj, src, dst = graph
        k = _copy_kernel(spmat(adj), 30, 4, chunk_edges=64)
        x = np.random.default_rng(0).random((30, 4)).astype(np.float32)
        before = k.exec_stats.as_dict()
        plan = k.execution_plan(np.zeros((30, 4), np.float32))
        n_chunks = sum(len(list(t.bounds)) for t in plan.tasks)
        k.run({"XV": x})
        after = k.exec_stats.as_dict()
        assert after["chunks"] - before["chunks"] == n_chunks
        assert after["eval_seconds"] >= before["eval_seconds"]

    def test_strategy_surfaced_in_stats(self, graph):
        adj, *_ = graph
        k = _copy_kernel(spmat(adj), 30, 4)
        k.agg_strategy = "reduceat"
        x = np.zeros((30, 4), np.float32)
        k.run({"XV": x})
        d = k.exec_stats.as_dict()
        assert d["agg_strategy"] == "reduceat"

    def test_executor_default_stats(self):
        ex = Executor()
        assert isinstance(ex.stats, ExecStats)
        ex.run(ExecutionPlan([], strategy="bucketed"))
        assert ex.stats.as_dict()["agg_strategy"] == "bucketed"

    def test_scatter_sink_books_bytes_only_when_asked(self):
        out = np.zeros((4, 2), np.float32)
        gather = GatherPlan(src=np.arange(4), dst=np.zeros(4, np.int64),
                            eid=np.arange(4))
        ctx = ChunkCtx(0, 4, gather)
        vals = np.ones((4, 2), np.float32)
        assert ScatterSink(out).apply(vals, ctx) == 0
        assert ScatterSink(out, count_bytes=True).apply(vals, ctx) == \
            vals.nbytes

    def test_finalize_runs_after_tasks(self):
        order = []
        gather = GatherPlan(src=np.arange(2), dst=np.zeros(2, np.int64),
                            eid=np.arange(2))
        task = EdgeTask(gather=gather, bounds=[(0, 2)], stages=[
            Stage("s", lambda b, c: (order.append("stage") or
                                     np.zeros((2, 1), np.float32), 0)),
        ])
        Executor().run(ExecutionPlan([task], finalize=lambda: order.append(
            "finalize")))
        assert order == ["stage", "finalize"]


class TestAggregateSink:
    def test_guard_zero_substitutes_ones(self):
        dst = np.zeros(4, np.int64)
        gather = GatherPlan(src=np.arange(4), dst=dst, eid=np.arange(4))
        ctx = ChunkCtx(0, 4, gather)
        acc = np.zeros((3, 2), np.float32)
        sink = AggregateSink(acc, get_reducer("sum"),
                             make_strategy("reduceat"), guard_zero=True)
        sink.apply(np.zeros((4, 2), np.float32), ctx)
        # row 0 summed to zero -> guarded to 1; untouched rows stay 0
        assert np.all(acc[0] == 1.0)
        assert np.all(acc[1:] == 0.0)

    def test_untouched_rows_not_written(self):
        dst = np.full(5, 2, np.int64)
        gather = GatherPlan(src=np.arange(5), dst=dst, eid=np.arange(5))
        ctx = ChunkCtx(0, 5, gather)
        acc = np.full((4, 3), 7.0, np.float32)
        sink = AggregateSink(acc, get_reducer("sum"),
                             make_strategy("bucketed"))
        sink.apply(np.ones((5, 3), np.float32), ctx)
        assert np.all(acc[2] == 12.0)
        for r in (0, 1, 3):
            assert np.all(acc[r] == 7.0)


class TestEndToEndParity:
    @pytest.mark.parametrize("strategy", ["reduceat", "bucketed", "parallel"])
    def test_kernel_matches_reference_under_every_strategy(self, graph,
                                                           strategy):
        adj, src, dst = graph
        k = _copy_kernel(spmat(adj), 30, 4, chunk_edges=64)
        k.agg_strategy = strategy
        x = np.random.default_rng(1).random((30, 4)).astype(np.float32)
        ref = np.zeros((30, 4), np.float32)
        np.add.at(ref, dst, x[src])
        got = k.run({"XV": x})
        assert np.allclose(got, ref, atol=1e-5)

    def test_env_override_changes_executed_strategy(self, graph,
                                                    monkeypatch):
        adj, *_ = graph
        monkeypatch.setenv("FEATGRAPH_AGG_STRATEGY", "reduceat")
        k = _copy_kernel(spmat(adj), 30, 4)
        k.run({"XV": np.zeros((30, 4), np.float32)})
        assert k.exec_stats.as_dict()["agg_strategy"] == "reduceat"

    def test_edge_softmax_plumbs_strategy_to_phases(self, graph):
        from repro.core.softmax import EdgeSoftmax

        adj, *_ = graph
        sm = EdgeSoftmax(spmat(adj), num_heads=2, fused=False,
                         agg_strategy="bucketed")
        assert sm._max_kernel.agg_strategy == "bucketed"
        assert sm._sum_kernel.agg_strategy == "bucketed"
        scores = np.random.default_rng(2).random(
            (adj.nnz, 2)).astype(np.float32)
        alpha = sm.run(scores)
        assert alpha.shape == (adj.nnz, 2)
        # a later instance without a pin clears the cached kernels' pin
        sm2 = EdgeSoftmax(spmat(adj), num_heads=2, fused=False)
        assert sm2._max_kernel.agg_strategy is None
