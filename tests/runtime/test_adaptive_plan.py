"""Per-chunk heterogeneous plans: adaptive lowering, explicit maps, caches.

The contract (see ``repro/core/spmm.py`` lowering and
``repro/runtime/engine.py``): an ``"adaptive"`` request expands into one
concrete strategy per chunk (``EdgeTask.chunk_strategies`` aligned with
the chunk bounds), an explicit list request assigns strategies cyclically,
and the executor dispatches every chunk through its assigned strategy
while keeping the combine order -- and therefore the numerics --
identical to a homogeneous run.  The topology statistics feeding the
selector are memoized in ``repro.runtime.histogram`` keyed by the CSR
fingerprint.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import spmat, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.cost import COST_PROFILE_ENV
from repro.graph.sparse import CSRMatrix, from_edges
from repro.runtime.histogram import (
    cache_info,
    chunk_bounds,
    chunk_shapes,
    clear_caches,
    degree_stats,
)
from repro.runtime.strategies import (
    STRATEGY_NAMES,
    reset_cost_model_cache,
)


@pytest.fixture(autouse=True)
def _cold_start(monkeypatch, tmp_path):
    """Pin a nonexistent profile so adaptive expands via the heuristics
    (deterministic on every machine) and leave no cache behind."""
    monkeypatch.setenv(COST_PROFILE_ENV, str(tmp_path / "absent.json"))
    reset_cost_model_cache()
    yield
    reset_cost_model_cache()


def _mixed_graph(n_src=64):
    """Uniform-degree rows then cycling degrees: chunks of both shapes."""
    deg = np.concatenate([np.full(128, 4, dtype=np.int64),
                          np.tile(np.arange(1, 9, dtype=np.int64), 32)])
    indptr = np.concatenate([[0], np.cumsum(deg)])
    rng = np.random.default_rng(3)
    indices = rng.integers(0, n_src, int(deg.sum()))
    return CSRMatrix((len(deg), n_src), indptr, indices)


def _kernel(csr, width=4, chunk_edges=64, request=None):
    A = spmat(csr)
    XV = T.placeholder((csr.shape[1], width), name="XV")
    with use_kernel_cache(KernelCache()):
        k = spmm(A, dgl_builtins.copy_u_msg(XV), "sum",
                 chunk_edges=chunk_edges)
    k.agg_strategy = request
    return k


def _run(kernel, csr, width=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((csr.shape[1], width)).astype(np.float32)
    return x, kernel.run({"XV": x})


class TestAdaptivePlans:
    def test_adaptive_assigns_one_strategy_per_chunk(self):
        csr = _mixed_graph()
        k = _kernel(csr, request="adaptive")
        acc = np.zeros((csr.shape[0], 4), np.float32)
        plan = k.execution_plan(acc)
        task = plan.tasks[0]
        assert task.chunk_strategies is not None
        assert len(task.chunk_strategies) == len(list(task.bounds))
        names = {s.name for s in task.chunk_strategies}
        assert names <= set(STRATEGY_NAMES)
        assert plan.strategy == "adaptive"

    def test_adaptive_matches_reduceat_numerics(self):
        csr = _mixed_graph()
        x, expected = _run(_kernel(csr, request="reduceat"), csr)
        _, got = _run(_kernel(csr, request="adaptive"), csr)
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)

    def test_adaptive_equal_instances_are_shared(self):
        # chunks assigned the same strategy name share one instance, so
        # the verifier's per-strategy grouping sees a small set
        csr = _mixed_graph()
        k = _kernel(csr, request="adaptive")
        acc = np.zeros((csr.shape[0], 4), np.float32)
        task = k.execution_plan(acc).tasks[0]
        by_name = {}
        for s in task.chunk_strategies:
            by_name.setdefault(s.name, set()).add(id(s))
        for name, ids in by_name.items():
            assert len(ids) == 1, f"{name} not deduplicated"


class TestExplicitMaps:
    def test_list_request_assigns_cyclically(self):
        csr = _mixed_graph()
        k = _kernel(csr, request=["reduceat", "bucketed"])
        acc = np.zeros((csr.shape[0], 4), np.float32)
        task = k.execution_plan(acc).tasks[0]
        names = [s.name for s in task.chunk_strategies]
        want = ["reduceat", "bucketed"] * (len(names) // 2 + 1)
        assert names == want[:len(names)]
        assert k.execution_plan(acc).strategy == "mixed"

    def test_map_matches_single_strategy_numerics(self):
        csr = _mixed_graph()
        x, expected = _run(_kernel(csr, request="reduceat"), csr)
        for req in (["reduceat", "bucketed"],
                    ["bucketed", "reduceat", "parallel"]):
            _, got = _run(_kernel(csr, request=req), csr)
            np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5,
                                       err_msg=f"map {req}")

    def test_order_preserving_map_is_bit_identical(self):
        # reduceat and parallel share the same per-segment reduction
        # order, so a map mixing only those two is exact
        csr = _mixed_graph()
        x, expected = _run(_kernel(csr, request="reduceat"), csr)
        _, got = _run(_kernel(csr, request=["reduceat", "parallel"]), csr)
        assert np.array_equal(got, expected)

    def test_unknown_name_in_map_rejected(self):
        csr = _mixed_graph()
        k = _kernel(csr, request=["reduceat", "nope"])
        with pytest.raises(ValueError, match="nope"):
            k.run({"XV": np.zeros((csr.shape[1], 4), np.float32)})


class TestHistogramCaches:
    def test_degree_stats_cached_by_fingerprint(self):
        clear_caches()
        csr = _mixed_graph()
        a = degree_stats(csr)
        b = degree_stats(csr)
        assert a is b
        assert a.nnz == csr.nnz
        # same structure, different object: same cache entry
        clone = CSRMatrix(csr.shape, csr.indptr.copy(), csr.indices.copy())
        assert degree_stats(clone) is a
        assert cache_info()["degree"] == 1

    def test_chunk_shapes_align_with_bounds(self):
        clear_caches()
        csr = _mixed_graph()
        bounds = chunk_bounds(csr, 64)
        shapes = chunk_shapes(csr, 64, width=4)
        assert len(shapes) == len(bounds)
        assert sum(s.n_edges for s in shapes) == csr.nnz
        for (c0, c1), s in zip(bounds, shapes):
            assert s.n_edges == c1 - c0
            assert s.width == 4

    def test_chunk_shapes_width_independent_cache(self):
        clear_caches()
        csr = _mixed_graph()
        chunk_shapes(csr, 64, width=4)
        assert cache_info()["shapes"] == 1
        wide = chunk_shapes(csr, 64, width=32)
        assert cache_info()["shapes"] == 1  # width did not fork the entry
        assert all(s.width == 32 for s in wide)

    def test_different_edges_graph_forks_the_entry(self):
        clear_caches()
        csr = _mixed_graph()
        other = CSRMatrix(csr.shape, csr.indptr,
                          (csr.indices + 1) % csr.shape[1])
        degree_stats(csr)
        degree_stats(other)
        assert cache_info()["degree"] == 2
