"""Segment-reduction strategy parity and determinism.

The contract (see ``repro/runtime/strategies.py``): every strategy agrees
with the ``reduceat`` oracle -- bit-identically for order-insensitive
reducers (max/min) and for the parallel strategy under any worker count,
and within 1e-6 relative for reassociating float sums/products.
"""

import numpy as np
import pytest

from repro.runtime.plan import segment_info
from repro.runtime.reducers import (
    REDUCERS,
    get_reducer,
    resolve_reducer,
)
from repro.runtime.strategies import (
    DegreeBucketedStrategy,
    ParallelStrategy,
    ReduceatStrategy,
)
from repro.tensorir.runtime import SharedArray, WorkPool


def _chunk(rng, n_rows, n_edges, width, dtype):
    dst = np.sort(rng.integers(0, n_rows, n_edges))
    msgs = rng.standard_normal((n_edges, width)).astype(dtype)
    return dst, msgs, segment_info(dst)


def _oracle(n_rows, dst, msgs, op):
    reducer, _ = resolve_reducer(op)
    acc = np.full((n_rows,) + msgs.shape[1:], reducer.identity,
                  dtype=np.float64)
    reducer.ufunc.at(acc, dst, msgs.astype(np.float64))
    return acc


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestReducerRegistry:
    def test_known_reducers(self):
        assert set(REDUCERS) == {"sum", "max", "min", "prod"}
        assert get_reducer("sum").ufunc is np.add
        assert get_reducer("max").order_insensitive
        assert not get_reducer("sum").order_insensitive

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_reducer("median")

    def test_mean_resolves_to_sum(self):
        reducer, mean = resolve_reducer("mean")
        assert reducer.name == "sum" and mean
        reducer, mean = resolve_reducer("max")
        assert reducer.name == "max" and not mean


class TestParityAgainstOracle:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_bucketed_matches_oracle(self, rng, dtype, op):
        dst, msgs, seg = _chunk(rng, 50, 2000, 6, dtype)
        if op == "prod":
            msgs = (1.0 + 0.01 * msgs).astype(dtype)
        reducer = get_reducer(op)
        acc = np.full((50, 6), reducer.identity, dtype=dtype)
        DegreeBucketedStrategy().combine(acc, seg, msgs, reducer)
        ref = _oracle(50, dst, msgs, op)
        assert np.allclose(acc, ref, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("op", ["sum", "max", "min", "prod"])
    def test_parallel_matches_oracle(self, rng, dtype, op):
        dst, msgs, seg = _chunk(rng, 50, 2000, 6, dtype)
        if op == "prod":
            msgs = (1.0 + 0.01 * msgs).astype(dtype)
        reducer = get_reducer(op)
        acc = np.full((50, 6), reducer.identity, dtype=dtype)
        with WorkPool(4) as pool:
            ParallelStrategy(pool=pool, min_edges=16).combine(
                acc, seg, msgs, reducer)
        ref = _oracle(50, dst, msgs, op)
        assert np.allclose(acc, ref, rtol=1e-6, atol=1e-6)

    @pytest.mark.parametrize("op", ["max", "min"])
    def test_order_insensitive_ops_bit_identical(self, rng, op):
        dst, msgs, seg = _chunk(rng, 40, 1500, 4, np.float32)
        reducer = get_reducer(op)
        oracle = np.full((40, 4), reducer.identity, np.float32)
        ReduceatStrategy().combine(oracle, seg, msgs, reducer)
        bucketed = np.full((40, 4), reducer.identity, np.float32)
        DegreeBucketedStrategy().combine(bucketed, seg, msgs, reducer)
        assert np.array_equal(bucketed, oracle)

    def test_mean_via_kernel_level_divide(self, rng):
        """Strategies only see base reducers; mean = sum + finalize.  The
        sum parity bound therefore carries over to mean directly."""
        dst, msgs, seg = _chunk(rng, 30, 900, 3, np.float32)
        deg = np.bincount(dst, minlength=30).astype(np.float32)
        reducer = get_reducer("sum")
        means = []
        for strategy in (ReduceatStrategy(), DegreeBucketedStrategy()):
            acc = np.zeros((30, 3), np.float32)
            strategy.combine(acc, seg, msgs, reducer)
            means.append(acc / np.maximum(deg, 1)[:, None])
        assert np.allclose(means[0], means[1], rtol=1e-6, atol=1e-6)


class TestBucketedStructure:
    def test_single_huge_segment(self, rng):
        """A one-row chunk (degree 5000): the float64-accumulated dense
        reduction must land within float32 rounding of the true sum."""
        msgs = rng.random((5000, 4)).astype(np.float32)
        seg = segment_info(np.zeros(5000, np.int64))
        acc = np.zeros((3, 4), np.float32)
        DegreeBucketedStrategy().combine(acc, seg, msgs, get_reducer("sum"))
        true = msgs.astype(np.float64).sum(axis=0)
        assert np.allclose(acc[0], true, rtol=1e-6)
        assert np.all(acc[1:] == 0)

    def test_degree_one_fast_path(self):
        dst = np.arange(6, dtype=np.int64)
        msgs = np.arange(12, dtype=np.float32).reshape(6, 2)
        seg = segment_info(dst)
        acc = np.zeros((6, 2), np.float32)
        DegreeBucketedStrategy().combine(acc, seg, msgs, get_reducer("sum"))
        assert np.array_equal(acc, msgs)

    def test_mixed_degrees_group_correctly(self):
        # rows with degrees 1, 3, 1, 3 -> two buckets
        dst = np.array([0, 1, 1, 1, 2, 3, 3, 3], np.int64)
        msgs = np.ones((8, 2), np.float32)
        seg = segment_info(dst)
        acc = np.zeros((4, 2), np.float32)
        DegreeBucketedStrategy().combine(acc, seg, msgs, get_reducer("sum"))
        assert np.array_equal(acc[:, 0], [1, 3, 1, 3])


class TestParallelDeterminism:
    @pytest.mark.parametrize("op", ["sum", "max"])
    def test_bit_identical_across_worker_counts(self, rng, op):
        dst, msgs, seg = _chunk(rng, 60, 4000, 5, np.float32)
        reducer = get_reducer(op)
        oracle = np.full((60, 5), reducer.identity, np.float32)
        ReduceatStrategy().combine(oracle, seg, msgs, reducer)
        for workers in (2, 3, 5, 8):
            with WorkPool(workers) as pool:
                acc = np.full((60, 5), reducer.identity, np.float32)
                ParallelStrategy(pool=pool, min_edges=16).combine(
                    acc, seg, msgs, reducer)
            assert np.array_equal(acc, oracle), f"workers={workers}"

    def test_small_chunks_fall_back_inline(self, rng):
        dst, msgs, seg = _chunk(rng, 10, 100, 2, np.float32)
        with WorkPool(4) as pool:
            acc = np.zeros((10, 2), np.float32)
            ParallelStrategy(pool=pool).combine(acc, seg, msgs,
                                                get_reducer("sum"))
            # below min_edges: no chunks were dispatched to the pool
            assert pool.stats()["chunks_dispatched"] == 0
        oracle = np.zeros((10, 2), np.float32)
        ReduceatStrategy().combine(oracle, seg, msgs, get_reducer("sum"))
        assert np.array_equal(acc, oracle)

    def test_shard_cuts_never_split_segments(self, rng):
        dst, msgs, seg = _chunk(rng, 25, 5000, 1, np.float32)
        cuts = ParallelStrategy._shard_cuts(seg, 4, len(dst))
        assert cuts[0] == 0 and cuts[-1] == len(seg.starts)
        assert np.all(np.diff(cuts) > 0)

    def test_process_backend_bit_identical(self, rng):
        dst, msgs, seg = _chunk(rng, 40, 3000, 4, np.float32)
        reducer = get_reducer("sum")
        oracle = np.zeros((40, 4), np.float32)
        ReduceatStrategy().combine(oracle, seg, msgs, reducer)
        with WorkPool(2, backend="process") as pool:
            acc = np.zeros((40, 4), np.float32)
            ParallelStrategy(pool=pool, min_edges=16).combine(
                acc, seg, msgs, reducer)
            stats = pool.stats()
        assert np.array_equal(acc, oracle)
        assert stats["backend"] == "process"
        assert stats["chunks_dispatched"] >= 2


class TestSharedArray:
    def test_roundtrip_and_spec(self):
        data = np.arange(24, dtype=np.float32).reshape(6, 4)
        with SharedArray.copy_of(data) as shm:
            assert np.array_equal(shm.array, data)
            with SharedArray.attach(shm.spec) as view:
                view.array[0, 0] = -1.0
            assert shm.array[0, 0] == -1.0

    def test_empty_allocates_shape(self):
        with SharedArray.empty((3, 5), np.float64) as shm:
            assert shm.array.shape == (3, 5)
            assert shm.array.dtype == np.float64


class TestWorkPoolBackends:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("FEATGRAPH_WORKERS_BACKEND", "process")
        assert WorkPool(2).backend == "process"
        monkeypatch.delenv("FEATGRAPH_WORKERS_BACKEND")
        assert WorkPool(2).backend == "thread"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            WorkPool(2, backend="fiber")

    def test_process_map_tags_worker_pids(self):
        with WorkPool(2, backend="process") as pool:
            out = pool.map(abs, [-1, -2, -3])
            stats = pool.stats()
        assert out == [1, 2, 3]
        assert stats["chunks_dispatched"] == 3
        assert sum(stats["worker_chunks"].values()) == 3
