"""Cost-model calibration: fit, persistence, validation, cold start.

The contract (see ``repro/runtime/calibrate.py`` and
``repro/core/cost.py``): calibration from identical timings is
deterministic down to the profile bytes; a missing/corrupt/stale profile
is a *cold-start signal* (``load_profile`` returns None, selection falls
back to the hand-tuned heuristics) and never an error; and all fitted
coefficients are non-negative so predictions are monotone in every chunk
statistic.
"""

import json
import os

import numpy as np
import pytest

from repro.core.cost import (
    COST_PROFILE_ENV,
    COST_PROFILE_VERSION,
    ChunkShape,
    CostModel,
    StrategyCost,
    load_profile,
)
from repro.runtime.calibrate import (
    Workload,
    calibrate,
    fit_costs,
    main as calibrate_main,
    measure_combine,
    save_profile,
    workloads,
)
from repro.runtime.strategies import (
    cost_model,
    reset_cost_model_cache,
    select_strategy,
)


def _synthetic_measure(name, wl):
    """Deterministic timings with each strategy's real cost shape."""
    s = wl.shape
    if name == "bucketed":
        return 1e-4 + 1e-5 * s.n_distinct + 1e-10 * s.values
    if name == "parallel":
        return 5e-4 + 2e-10 * s.values + 1e-8 * s.n_segments
    return 2e-5 + 5e-7 * s.n_segments + 3e-10 * s.values


@pytest.fixture(autouse=True)
def _isolated_profile(monkeypatch, tmp_path):
    """Every test sees no pre-existing profile and leaves no cache."""
    monkeypatch.setenv(COST_PROFILE_ENV, str(tmp_path / "profile.json"))
    reset_cost_model_cache()
    yield
    reset_cost_model_cache()


class TestWorkloads:
    def test_grid_spans_the_separating_regimes(self):
        grid = workloads()
        shapes = [wl.shape for wl in grid]
        # uniform chunks (one distinct degree) and high-distinct chunks
        assert any(s.n_distinct == 1 for s in shapes)
        assert any(s.n_distinct >= 32 for s in shapes)
        # narrow and wide features
        widths = {s.width for s in shapes}
        assert 1 in widths and max(widths) >= 64

    def test_materialize_matches_shape(self):
        wl = Workload("t", np.array([3, 0, 2, 3]), width=4)
        acc, seg, msgs = wl.materialize()
        assert wl.shape == ChunkShape(n_edges=8, n_segments=3,
                                      n_distinct=2, width=4)
        assert msgs.shape == (8, 4)
        assert acc.shape == (3, 4)
        assert seg.starts.tolist() == [0, 3, 5]

    def test_measure_combine_runs_real_strategies(self):
        wl = Workload("t", np.tile(np.arange(1, 5), 8), width=2)
        for name in ("reduceat", "bucketed"):
            assert measure_combine(name, wl, repeats=1) > 0


class TestFit:
    def test_fit_recovers_known_coefficients(self):
        true = StrategyCost(per_call=1e-4, per_value=2e-9,
                            per_segment=3e-7, per_distinct=5e-6)
        samples = [(wl.shape, true.seconds(wl.shape)) for wl in workloads()]
        fitted = fit_costs(samples, "reduceat", workers=1)
        for field in ("per_call", "per_value", "per_segment", "per_distinct"):
            assert getattr(fitted, field) == pytest.approx(
                getattr(true, field), rel=1e-3, abs=1e-12)

    def test_fit_never_returns_negative_coefficients(self):
        # Timings that anti-correlate with n_distinct: a plain lstsq would
        # fit per_distinct < 0; the active-set NNLS must drop the column
        # and refit instead of clamping (which distorts the survivors).
        samples = [(wl.shape,
                    1e-4 + 1e-9 * wl.shape.values
                    - 1e-7 * wl.shape.n_distinct)
                   for wl in workloads()]
        fitted = fit_costs(samples, "reduceat", workers=1)
        assert fitted.per_distinct == 0.0
        assert fitted.per_call >= 0 and fitted.per_value >= 0
        assert fitted.per_segment >= 0
        # the surviving fit still tracks the dominant terms
        for wl in workloads():
            got = fitted.seconds(wl.shape)
            want = 1e-4 + 1e-9 * wl.shape.values
            assert got == pytest.approx(want, rel=0.05)


class TestCalibrateDeterminism:
    def test_same_measure_same_profile_bytes(self, tmp_path):
        a = calibrate(measure=_synthetic_measure)
        b = calibrate(measure=_synthetic_measure)
        assert a.as_dict() == b.as_dict()
        pa = save_profile(a, tmp_path / "a.json")
        pb = save_profile(b, tmp_path / "b.json")
        assert pa.read_bytes() == pb.read_bytes()

    def test_profile_round_trips_through_load(self, tmp_path):
        model = calibrate(measure=_synthetic_measure)
        path = save_profile(model, tmp_path / "p.json")
        loaded = load_profile(path)
        assert loaded is not None
        assert loaded.costs.keys() == model.costs.keys()
        shape = ChunkShape(2048, 512, 4, 64)
        for name in model.costs:
            assert loaded.predict(name, shape, workers=2) == pytest.approx(
                model.predict(name, shape, workers=2))

    def test_parallel_skipped_on_single_worker_pool(self):
        class OnePool:
            num_workers = 1
        model = calibrate(measure=_synthetic_measure, pool=OnePool())
        assert "parallel" not in model.costs
        assert {"reduceat", "bucketed"} <= set(model.costs)


class TestColdStart:
    def test_missing_profile_means_no_model(self):
        assert cost_model() is None

    def test_heuristics_apply_without_profile(self):
        # the hand-tuned thresholds, not a model, decide on cold start
        assert select_strategy(np.full(4096, 8), 16) == "bucketed"
        assert select_strategy(np.arange(1, 40), 1) == "reduceat"

    def test_corrupt_profile_rejected(self, tmp_path):
        path = tmp_path / "profile.json"
        for garbage in ("not json{", "[1, 2]", '{"version": 1}',
                        json.dumps({"version": COST_PROFILE_VERSION,
                                    "cpu_count": os.cpu_count(),
                                    "numpy": np.__version__,
                                    "coefficients": {"bucketed": {}}})):
            path.write_text(garbage)
            assert load_profile(path) is None
            reset_cost_model_cache()
            assert cost_model() is None

    def test_stale_profile_rejected(self, tmp_path):
        model = calibrate(measure=_synthetic_measure)
        path = save_profile(model, tmp_path / "profile.json")
        assert load_profile(path) is not None

        data = json.loads(path.read_text())
        for key, wrong in (("cpu_count", (os.cpu_count() or 1) + 64),
                           ("numpy", "0.0.0"),
                           ("version", COST_PROFILE_VERSION + 1)):
            stale = {**data, key: wrong}
            path.write_text(json.dumps(stale))
            assert load_profile(path) is None, f"stale {key} accepted"
        path.write_text(json.dumps(data))
        assert load_profile(path) is not None


class TestMonotonicity:
    def test_predictions_monotone_in_every_statistic(self):
        model = calibrate(measure=_synthetic_measure)
        base = ChunkShape(n_edges=4096, n_segments=512, n_distinct=8,
                          width=16)
        grown = [
            ChunkShape(8192, 512, 8, 16),   # more edges
            ChunkShape(4096, 1024, 8, 16),  # more segments
            ChunkShape(4096, 512, 32, 16),  # more distinct degrees
            ChunkShape(4096, 512, 8, 64),   # wider features
        ]
        for name in model.costs:
            lo = model.predict(name, base, workers=4)
            for shape in grown:
                assert model.predict(name, shape, workers=4) >= lo

    def test_negative_coefficients_clamped_at_load(self, tmp_path):
        path = tmp_path / "profile.json"
        payload = {
            "version": COST_PROFILE_VERSION,
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "coefficients": {
                "reduceat": {"per_call": 1e-5, "per_value": -1e-9,
                             "per_segment": 1e-7, "per_distinct": 0.0},
            },
        }
        path.write_text(json.dumps(payload))
        model = load_profile(path)
        assert model is not None
        narrow = ChunkShape(1024, 128, 4, 1)
        wide = ChunkShape(1024, 128, 4, 64)
        assert model.predict("reduceat", wide) >= \
            model.predict("reduceat", narrow)


class TestCLI:
    def test_calibrate_write_then_check(self, tmp_path, capsys):
        path = tmp_path / "cli.json"
        # tiny repeats: the CLI runs the real microbenchmarks
        assert calibrate_main(["--output", str(path), "--repeats", "1"]) == 0
        assert calibrate_main(["--output", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "calibrated" in out and "OK: profile" in out

    def test_check_fails_without_profile(self, tmp_path, capsys):
        assert calibrate_main(
            ["--output", str(tmp_path / "none.json"), "--check"]) == 1
        assert "FAIL" in capsys.readouterr().out
