"""Pathological degree distributions through every execution strategy.

Three shapes the chunking/segmentation machinery must survive without
special-casing: a zero-edge graph (no chunks at all), a graph whose
destinations are mostly isolated (identity rows, ``guard_zero`` targets),
and a single mega-hub absorbing every edge (one giant segment -- the
bucketed strategy's high-degree bucket and the parallel strategy's
cannot-shard fallback).  Where FG007 classifies a (strategy, reducer)
combine ``bit-identical``, the outputs are compared with
``array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.sparse import from_edges
from repro.runtime.plan import row_aligned_chunks, segment_info
from repro.runtime.strategies import STRATEGY_NAMES
from repro.runtime.verify import BIT_IDENTICAL, classify_reduction
from repro.tensorir.runtime import WorkPool

N, F = 32, 4


def _empty():
    return from_edges(N, N, np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64))


def _mostly_isolated(m=24, seed=3):
    """Every edge lands on destination 0 or 1; rows 2..N-1 are isolated."""
    rng = np.random.default_rng(seed)
    return from_edges(N, N, rng.integers(0, N, m), rng.integers(0, 2, m))


def _mega_hub(m=256, seed=4):
    """All edges converge on destination 0: one segment of degree m."""
    rng = np.random.default_rng(seed)
    return from_edges(N, N, rng.integers(0, N, m),
                      np.zeros(m, dtype=np.int64))


GRAPHS = {"empty": _empty, "isolated": _mostly_isolated,
          "mega-hub": _mega_hub}


def _run(adj, agg, strategy, x, pool=None):
    XV = T.placeholder((N, F), name="XV")
    with use_kernel_cache(KernelCache()):
        k = spmm(adj, dgl_builtins.copy_u_msg(XV), agg,
                 chunk_edges=32)  # force multi-chunk where edges allow
    k.agg_strategy = strategy
    assert not k.verify_report().has_errors
    return k.run({"XV": x}, pool=pool)


def _reference(adj, agg, x):
    rows, msgs = adj.row_of_edge(), x[adj.indices]
    if agg == "sum":
        ref = np.zeros((N, F), dtype=np.float32)
        np.add.at(ref, rows, msgs)
    else:  # max
        ref = np.full((N, F), -np.inf, dtype=np.float32)
        np.maximum.at(ref, rows, msgs)
        ref[np.isinf(ref)] = 0.0  # isolated rows report the zero default
    return ref


@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("shape", sorted(GRAPHS))
@pytest.mark.parametrize("agg", ["sum", "max"])
class TestDegenerateShapes:
    def test_matches_reference(self, shape, strategy, agg):
        adj = GRAPHS[shape]()
        x = np.random.default_rng(7).standard_normal((N, F)).astype(
            np.float32)
        pool = WorkPool(4) if strategy == "parallel" else None
        try:
            got = _run(adj, agg, strategy, x, pool=pool)
        finally:
            if pool is not None:
                pool.shutdown()
        np.testing.assert_allclose(got, _reference(adj, agg, x),
                                   rtol=1e-5, atol=1e-5)

    def test_bit_parity_where_classified_identical(self, shape, strategy,
                                                   agg):
        if classify_reduction(strategy, agg) != BIT_IDENTICAL:
            pytest.skip(f"{strategy}/{agg} is reassociated-fp by contract")
        adj = GRAPHS[shape]()
        x = np.random.default_rng(8).standard_normal((N, F)).astype(
            np.float32)
        pool = WorkPool(4) if strategy == "parallel" else None
        try:
            got = _run(adj, agg, strategy, x, pool=pool)
        finally:
            if pool is not None:
                pool.shutdown()
        oracle = _run(adj, agg, "reduceat", x)
        np.testing.assert_array_equal(got, oracle)


class TestChunkingPrimitives:
    def test_zero_edge_graph_has_no_chunks(self):
        adj = _empty()
        assert row_aligned_chunks(adj.indptr, 32) == []
        seg = segment_info(np.array([], dtype=np.int64))
        assert len(seg.starts) == 0 and len(seg.rows) == 0

    def test_mega_hub_is_one_segment(self):
        adj = _mega_hub()
        dst = np.sort(adj.row_of_edge())
        seg = segment_info(dst)
        assert len(seg.starts) == 1
        assert seg.lengths[0] == adj.nnz

    def test_isolated_rows_stay_at_identity(self):
        adj = _mostly_isolated()
        x = np.ones((N, F), dtype=np.float32)
        got = _run(adj, "sum", "reduceat", x)
        assert np.all(got[2:] == 0.0)
