"""The plan verifier (FG006-FG010) and the sanitizer executor.

Two halves.  Statically: every kernel family x segment-reduction strategy
must verify clean, and hand-corrupted plans must be rejected with the
matching FG rule (overlapping chunks -> FG006, stale chain reads ->
FG008, un-released shared memory -> FG009, escaped gather indices ->
FG010).  Dynamically: the sanitizer executor must pass clean runs
untouched and catch a runtime that contradicts a clean static verdict
(a lying combine, a double scatter) with :class:`SanitizerError`.
"""

import types

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import sddmm, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.softmax import EdgeSoftmax
from repro.graph.sparse import from_edges
from repro.runtime.engine import AggregateSink, Executor, ScatterSink
from repro.runtime.plan import EdgeTask, ExecutionPlan, GatherPlan, Stage
from repro.runtime.reducers import get_reducer
from repro.runtime.strategies import STRATEGY_NAMES, make_strategy
from repro.runtime.verify import (
    BIT_IDENTICAL,
    NONDETERMINISTIC,
    REASSOCIATED,
    SanitizerError,
    classify_reduction,
    iter_suite,
    sanitized_run,
    sanitizing,
    verify_kernel,
    verify_plan,
)
from repro.tensorir.analysis import AnalysisError
from repro.tensorir.analysis.diagnostics import Severity, strict

N, F = 16, 4


def _adj(n=N, m=48, seed=0):
    rng = np.random.default_rng(seed)
    return from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))


def _codes(report, severity=None):
    return {d.rule for d in report.diagnostics
            if severity is None or d.severity == severity}


# ----------------------------------------------------------------------
# FG007: the classification function itself
# ----------------------------------------------------------------------

class TestClassifyReduction:
    def test_order_insensitive_always_bit_identical(self):
        for strat in STRATEGY_NAMES:
            assert classify_reduction(strat, "max") == BIT_IDENTICAL
            assert classify_reduction(strat, "min") == BIT_IDENTICAL

    def test_order_preserving_strategies_keep_sum_bit_identical(self):
        assert classify_reduction("reduceat", "sum") == BIT_IDENTICAL
        assert classify_reduction("parallel", "sum") == BIT_IDENTICAL
        assert classify_reduction("parallel", "prod") == BIT_IDENTICAL

    def test_bucketed_reassociates_order_sensitive_reducers(self):
        assert classify_reduction("bucketed", "sum") == REASSOCIATED
        assert classify_reduction("bucketed", "prod") == REASSOCIATED

    def test_unknown_strategy_or_reducer_is_nondeterministic(self):
        assert classify_reduction("atomic", "sum") == NONDETERMINISTIC
        assert classify_reduction("reduceat", "median") == NONDETERMINISTIC

    def test_accepts_reducer_objects(self):
        assert classify_reduction("bucketed",
                                  get_reducer("sum")) == REASSOCIATED


# ----------------------------------------------------------------------
# synthetic plans: each FG rule rejected with the matching code
# ----------------------------------------------------------------------

def _agg_plan(dst, bounds, *, n_rows=8, strategy=None, reducer="sum",
              extras=None):
    """A one-stage aggregating plan over a hand-written gather."""
    dst = np.asarray(dst, dtype=np.int64)
    m = len(dst)
    gather = GatherPlan(np.zeros(m, dtype=np.int64), dst,
                        np.arange(m, dtype=np.int64))
    acc = np.zeros((n_rows, F), dtype=np.float32)
    sink = AggregateSink(acc, get_reducer(reducer),
                         strategy or make_strategy("reduceat"))

    def evaluate(bindings, ctx):
        vals = np.ones((ctx.c1 - ctx.c0, F), dtype=np.float32)
        return vals, vals.nbytes

    task = EdgeTask(gather, list(bounds), [Stage("agg", evaluate, sink)])
    return ExecutionPlan([task], label="synthetic", strategy=sink.strategy.name,
                         extras=extras if extras is not None else {})


class TestStaticRejection:
    def test_clean_plan_verifies(self):
        plan = _agg_plan([0, 0, 1, 1, 2, 2], [(0, 4), (4, 6)])
        report = verify_plan(plan)
        assert not report.has_errors
        assert "FG007" in _codes(report)  # classification always reported

    def test_overlapping_chunks_fg006(self):
        plan = _agg_plan([0, 0, 1, 1, 2, 2], [(0, 4), (2, 6)])
        report = verify_plan(plan)
        assert "FG006" in _codes(report, Severity.ERROR)

    def test_unsorted_dst_with_aggregate_fg006(self):
        plan = _agg_plan([2, 0, 1, 0, 2, 1], [(0, 6)])
        report = verify_plan(plan)
        assert "FG006" in _codes(report, Severity.ERROR)

    def test_chunk_boundary_splitting_a_segment_fg006(self):
        # dst row 1 spans edges [2, 4) but the cut lands at 3
        plan = _agg_plan([0, 0, 1, 1, 2, 2], [(0, 3), (3, 6)])
        report = verify_plan(plan)
        assert "FG006" in _codes(report, Severity.ERROR)

    def test_coverage_gap_is_a_warning_not_an_error(self):
        plan = _agg_plan([0, 0, 1, 1, 2, 2], [(0, 2), (4, 6)])
        report = verify_plan(plan)
        assert not report.has_errors
        assert "FG006" in _codes(report, Severity.WARNING)

    def test_chunk_escaping_edge_domain_fg010(self):
        plan = _agg_plan([0, 0, 1, 1], [(0, 9)])
        report = verify_plan(plan)
        assert "FG010" in _codes(report, Severity.ERROR)

    def test_out_of_bounds_gather_index_fg010(self):
        # acc has 4 rows; dst index 7 escapes the sink-derived extent
        plan = _agg_plan([0, 1, 7, 7], [(0, 4)], n_rows=4)
        report = verify_plan(plan)
        assert "FG010" in _codes(report, Severity.ERROR)

    def test_negative_gather_index_fg010(self):
        plan = _agg_plan([0, 1, 2, 3], [(0, 4)])
        plan.tasks[0].gather.src[1] = -3
        report = verify_plan(plan)
        assert "FG010" in _codes(report, Severity.ERROR)

    def test_stale_chain_read_fg008(self):
        extras = {"verify": {"chain_reads": {"agg": ["scores"]}}}
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)], extras=extras)
        report = verify_plan(plan)
        diags = [d for d in report.diagnostics if d.rule == "FG008"]
        assert diags and diags[0].severity == Severity.ERROR
        assert "scores" in diags[0].message

    def test_aliasing_sinks_within_a_task_fg008(self):
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)])
        task = plan.tasks[0]
        first = task.stages[0]
        out = first.sink.acc[:4]  # a view of the accumulator
        task.stages = [first,
                       Stage("scatter", first.evaluate, ScatterSink(out))]
        report = verify_plan(plan)
        assert "FG008" in _codes(report, Severity.ERROR)

    def test_program_out_into_input_binding_fg008(self):
        prog = types.SimpleNamespace(
            source="tmp = XV[b_src]\nnp.add(tmp, tmp, out=XV)\n",
            tensor_names=("XV",), batch_names=("b_src",))
        extras = {"verify": {"programs": {"agg": prog}}}
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)], extras=extras)
        report = verify_plan(plan)
        assert "FG008" in _codes(report, Severity.ERROR)

    def test_program_register_reuse_is_clean(self):
        prog = types.SimpleNamespace(
            source="tmp = XV[b_src]\nnp.add(tmp, tmp, out=tmp)\n",
            tensor_names=("XV",), batch_names=("b_src",))
        extras = {"verify": {"programs": {"agg": prog}}}
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)], extras=extras)
        assert not verify_plan(plan).has_errors


class _ProcessPool:
    backend = "process"
    num_workers = 4


class _LeakyParallel:
    """A 'parallel' strategy that never declared the release contract."""

    name = "parallel"
    pool = _ProcessPool()
    shm_release_guaranteed = False

    def combine(self, acc, seg, msgs, reducer):  # pragma: no cover
        raise AssertionError("static verification must not execute combines")


class TestSharedMemoryContract:
    def test_undeclared_release_fg009(self):
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)], strategy=_LeakyParallel())
        report = verify_plan(plan)
        diags = [d for d in report.diagnostics if d.rule == "FG009"]
        assert diags and diags[0].severity == Severity.ERROR

    def test_declared_release_is_an_info_note(self):
        strategy = _LeakyParallel()
        strategy.shm_release_guaranteed = True
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)], strategy=strategy)
        report = verify_plan(plan)
        diags = [d for d in report.diagnostics if d.rule == "FG009"]
        assert diags and diags[0].severity == Severity.INFO

    def test_real_parallel_strategy_declares_release(self):
        from repro.runtime.strategies import ParallelStrategy

        assert ParallelStrategy.shm_release_guaranteed


# ----------------------------------------------------------------------
# every kernel family x strategy verifies clean (and under strict mode)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("strat", STRATEGY_NAMES)
class TestFamiliesVerifyClean:
    def test_spmm(self, strat):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()), strict():
            k = spmm(_adj(), dgl_builtins.copy_u_msg(XV), "sum")
        k.agg_strategy = strat
        assert not k.verify_report().has_errors

    def test_sddmm(self, strat):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()), strict():
            k = sddmm(_adj(), dgl_builtins.u_dot_v_edge(XV, XV))
        assert not k.verify_report().has_errors

    def test_softmax_staged_and_fused(self, strat):
        with use_kernel_cache(KernelCache()), strict():
            staged = EdgeSoftmax(_adj(), num_heads=2, fused=False,
                                 agg_strategy=strat)
            fused = EdgeSoftmax(_adj(), num_heads=2, fused=True,
                                agg_strategy=strat)
        assert not staged.verify_report().has_errors
        assert not fused.verify_report().has_errors


class TestVerifyKernelPlumbing:
    def test_report_is_cached_on_the_compile_record(self):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()):
            k = spmm(_adj(), dgl_builtins.copy_u_msg(XV), "sum")
        assert k.verify_report() is k.verify_report()

    def test_compile_pipeline_records_the_verify_pass(self):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()):
            k = spmm(_adj(), dgl_builtins.copy_u_msg(XV), "sum")
        assert "verify_plan" in k.compile_timings()
        assert not k._compile_record.artifacts["plan_verify"].has_errors

    def test_unknown_kernel_type_rejected(self):
        with pytest.raises(TypeError, match="cannot verify"):
            verify_kernel(object())

    def test_lint_suite_covers_every_strategy(self):
        labels = list(iter_suite("builtins"))
        strategies = {strat for _, strat, _ in labels}
        # every concrete strategy plus the heterogeneous plan shapes
        assert strategies == set(STRATEGY_NAMES) | {"adaptive", "mixed"}
        kinds = {label.split("/")[0] for label, _, _ in labels}
        assert kinds == {"spmm", "sddmm", "softmax"}


# ----------------------------------------------------------------------
# the sanitizer executor
# ----------------------------------------------------------------------

class _LyingReduceat:
    """Claims the bit-identical 'reduceat' contract, then breaks it."""

    name = "reduceat"

    def combine(self, acc, seg, msgs, reducer):
        block = reducer.ufunc.reduceat(msgs, seg.starts, axis=0)
        acc[seg.seg_rows] = reducer.ufunc(
            acc[seg.seg_rows], block + np.float32(1e-2))


class TestSanitizer:
    def test_happy_path_is_bit_identical_to_plain_run(self):
        XV = T.placeholder((N, F), name="XV")
        x = np.random.default_rng(5).standard_normal((N, F)).astype(np.float32)
        with use_kernel_cache(KernelCache()):
            k = spmm(_adj(), dgl_builtins.copy_u_msg(XV), "sum")
        plain = k.run({"XV": x})
        with sanitizing():
            sane = k.run({"XV": x})
        np.testing.assert_array_equal(plain, sane)

    def test_static_errors_abort_before_execution(self):
        plan = _agg_plan([0, 0, 1, 1], [(0, 4), (2, 4)])  # overlap: FG006
        with pytest.raises(AnalysisError):
            sanitized_run(Executor(), plan, {})

    def test_lying_combine_raises_fg007_disagreement(self):
        plan = _agg_plan([0, 0, 1, 1, 2, 2], [(0, 6)],
                         strategy=_LyingReduceat())
        assert not verify_plan(plan).has_errors  # the static half is fooled
        with pytest.raises(SanitizerError, match="FG007"):
            sanitized_run(Executor(), plan, {})

    def test_double_scatter_raises_fg006_disagreement(self):
        eid = np.array([0, 1, 0, 2], dtype=np.int64)
        gather = GatherPlan(np.zeros(4, dtype=np.int64),
                            np.zeros(4, dtype=np.int64), eid)
        out = np.zeros((3, F), dtype=np.float32)

        def evaluate(bindings, ctx):
            vals = np.ones((ctx.c1 - ctx.c0, F), dtype=np.float32)
            return vals, vals.nbytes

        task = EdgeTask(gather, [(0, 2), (2, 4)],
                        [Stage("scatter", evaluate, ScatterSink(out))],
                        needs_segments=False)
        plan = ExecutionPlan([task], label="double-scatter")
        assert not verify_plan(plan).has_errors
        with pytest.raises(SanitizerError, match="FG006"):
            sanitized_run(Executor(), plan, {})

    def test_env_gate_reroutes_executor_run(self, monkeypatch):
        from repro.runtime import verify as V

        calls = []
        monkeypatch.setattr(
            V, "sanitized_run",
            lambda executor, plan, bindings=None: calls.append(plan))
        plan = _agg_plan([0, 0, 1, 1], [(0, 4)])
        with sanitizing():
            Executor().run(plan, {})
        assert calls == [plan]
