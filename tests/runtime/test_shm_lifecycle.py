"""Shared-memory lifecycle: the FG009 release-on-all-paths contract.

POSIX shm segments outlive the creating process; a combine that stages
messages for a process-backed pool and then dies in a worker must still
unlink every block.  :meth:`SharedArray.live_segments` (the process-wide
owned-block registry) is what makes the claim testable: after any
combine -- successful or not -- the registry must be exactly as empty as
it was before.
"""

import numpy as np
import pytest

from repro.runtime.plan import segment_info
from repro.runtime.reducers import Reducer, get_reducer
from repro.runtime.strategies import ParallelStrategy
from repro.tensorir.runtime import SharedArray, WorkPool


def _chunk(n_rows=64, n_edges=2048, width=4, seed=0):
    rng = np.random.default_rng(seed)
    dst = np.sort(rng.integers(0, n_rows, n_edges))
    msgs = rng.standard_normal((n_edges, width)).astype(np.float32)
    return dst, msgs, segment_info(dst)


@pytest.fixture
def process_pool():
    pool = WorkPool(2, backend="process")
    yield pool
    pool.shutdown()


class TestRegistry:
    def test_owner_registered_until_close(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        shm = SharedArray.copy_of(arr)
        try:
            assert shm._shm.name in SharedArray.live_segments()
        finally:
            shm.close()
        assert shm._shm.name not in SharedArray.live_segments()

    def test_attached_views_do_not_register(self):
        shm = SharedArray.empty((4,), np.float32)
        try:
            view = SharedArray.attach(shm.spec)
            before = SharedArray.live_segments()
            view.close()
            assert SharedArray.live_segments() == before
        finally:
            shm.close()


class TestProcessCombineRelease:
    def test_successful_combine_releases_everything(self, process_pool):
        dst, msgs, seg = _chunk()
        before = SharedArray.live_segments()
        strategy = ParallelStrategy(process_pool, min_edges=0)
        acc = np.zeros((64, msgs.shape[1]), dtype=np.float32)
        strategy.combine(acc, seg, msgs, get_reducer("sum"))
        assert SharedArray.live_segments() == before
        ref = np.zeros_like(acc)
        np.add.at(ref, dst, msgs)
        np.testing.assert_allclose(acc, ref, rtol=1e-5, atol=1e-5)

    def test_worker_exception_releases_everything(self, process_pool):
        """The regression this file exists for: a worker that raises
        mid-shard (here: a reducer name the worker-side registry rejects)
        must not orphan the staged msgs/partial segments."""
        dst, msgs, seg = _chunk(seed=1)
        bogus = Reducer("median", np.add, 0.0, False)  # unknown to workers
        before = SharedArray.live_segments()
        strategy = ParallelStrategy(process_pool, min_edges=0)
        acc = np.zeros((64, msgs.shape[1]), dtype=np.float32)
        with pytest.raises(Exception, match="median"):
            strategy.combine(acc, seg, msgs, bogus)
        assert SharedArray.live_segments() == before

    def test_thread_backend_stages_nothing(self):
        pool = WorkPool(2, backend="thread")
        try:
            dst, msgs, seg = _chunk(seed=2)
            before = SharedArray.live_segments()
            strategy = ParallelStrategy(pool, min_edges=0)
            acc = np.zeros((64, msgs.shape[1]), dtype=np.float32)
            strategy.combine(acc, seg, msgs, get_reducer("sum"))
            assert SharedArray.live_segments() == before
        finally:
            pool.shutdown()
