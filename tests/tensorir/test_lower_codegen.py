"""Lowering and code generation: generated kernels vs numpy references."""

import numpy as np
import pytest

from repro import tensorir as T
from repro.tensorir.ir import For, IfThenElse, SeqStmt, Store, stmt_to_str, walk
from repro.tensorir.lower import inline_computes, lower, substitute


def _build_and_run(tensor, args, bindings, target="cpu", schedule_fn=None):
    s = T.create_schedule(tensor)
    if schedule_fn:
        schedule_fn(s, tensor)
    kern = T.build(s, args, target=target)
    return kern(*[bindings[a.name] for a in args]), kern


class TestLowerStructure:
    def test_elementwise_single_loop_nest(self):
        X = T.placeholder((6,), name="X")
        t = T.compute((6,), lambda i: X[i] * 2.0, name="t")
        stmt = lower(T.create_schedule(t))
        fors = [s for s in walk(stmt) if isinstance(s, For)]
        assert len(fors) == 1 and fors[0].extent == 6

    def test_reduction_produces_init_acc(self):
        X = T.placeholder((4, 5), name="X")
        k = T.reduce_axis((0, 5), "k")
        t = T.compute((4,), lambda i: T.sum_reduce(X[i, k], axis=k), name="t")
        stmt = lower(T.create_schedule(t))
        stores = [s for s in walk(stmt) if isinstance(s, Store)]
        assert any(s.combiner == "sum" for s in stores)
        assert any(s.combiner is None for s in stores)

    def test_relu_of_sum_adds_epilogue(self):
        X = T.placeholder((4, 5), name="X")
        k = T.reduce_axis((0, 5), "k")
        t = T.compute((4,), lambda i: T.maximum(
            T.sum_reduce(X[i, k], axis=k), 0.0), name="t")
        stmt = lower(T.create_schedule(t))
        assert isinstance(stmt, SeqStmt) and len(stmt.stmts) == 3

    def test_imperfect_split_adds_guard(self):
        X = T.placeholder((10,), name="X")
        t = T.compute((10,), lambda i: X[i], name="t")
        s = T.create_schedule(t)
        s[t].split(t.op.axis[0], factor=4)
        stmt = lower(s)
        assert any(isinstance(n, IfThenElse) for n in walk(stmt))

    def test_perfect_split_has_no_guard(self):
        X = T.placeholder((8,), name="X")
        t = T.compute((8,), lambda i: X[i], name="t")
        s = T.create_schedule(t)
        s[t].split(t.op.axis[0], factor=4)
        stmt = lower(s)
        assert not any(isinstance(n, IfThenElse) for n in walk(stmt))

    def test_pretty_printer_runs(self):
        X = T.placeholder((4,), name="X")
        t = T.compute((4,), lambda i: X[i], name="t")
        text = stmt_to_str(lower(T.create_schedule(t)))
        assert "for" in text and "t[" in text

    def test_two_reductions_rejected(self):
        X = T.placeholder((4, 5), name="X")
        k1 = T.reduce_axis((0, 5), "k1")
        k2 = T.reduce_axis((0, 5), "k2")
        t = T.compute((4,), lambda i: T.sum_reduce(X[i, k1], axis=k1)
                      + T.sum_reduce(X[i, k2], axis=k2), name="t")
        with pytest.raises(NotImplementedError):
            lower(T.create_schedule(t))


class TestSubstitute:
    def test_var_replacement(self):
        x = T.Var("x")
        node = x + 1
        out = substitute(node, {"x": T.const(5)})
        assert isinstance(out.a, T.IntImm) and out.a.value == 5

    def test_reduce_axis_protected(self):
        X = T.placeholder((4,), name="X")
        k = T.reduce_axis((0, 4), "k")
        node = T.sum_reduce(X[k], axis=k)
        out = substitute(node, {"k": T.const(0)})
        # the reduce axis must not be substituted away
        assert isinstance(out.source.indices[0], T.IterVar)

    def test_inline_computes(self):
        X = T.placeholder((4,), name="X")
        mid = T.compute((4,), lambda i: X[i] * 2.0, name="mid")
        out = T.compute((4,), lambda i: mid[i] + 1.0, name="out2")
        inlined = inline_computes(out.op.body)
        # after inlining no reference to `mid` remains
        names = set()

        def visit(e):
            if isinstance(e, T.TensorElem):
                names.add(e.tensor.name)
            for c in e.children():
                visit(c)

        visit(inlined)
        assert names == {"X"}

    def test_inline_reduction_rejected(self):
        X = T.placeholder((4, 4), name="X")
        k = T.reduce_axis((0, 4), "k")
        mid = T.compute((4,), lambda i: T.sum_reduce(X[i, k], axis=k), name="mid")
        out = T.compute((4,), lambda i: mid[i] + 1.0, name="out3")
        with pytest.raises(NotImplementedError):
            inline_computes(out.op.body)


class TestCPUCodegen:
    def test_copy_kernel(self):
        X = T.placeholder((7,), name="X")
        t = T.compute((7,), lambda i: X[i])
        x = np.arange(7, dtype=np.float32)
        out, _ = _build_and_run(t, [X], {"X": x})
        assert np.array_equal(out, x)

    def test_matmul_default_schedule(self):
        A = T.placeholder((6, 5), name="A")
        B = T.placeholder((5, 4), name="B")
        k = T.reduce_axis((0, 5), "k")
        C = T.compute((6, 4), lambda i, j: T.sum_reduce(A[i, k] * B[k, j], axis=k))
        rng = np.random.default_rng(0)
        a = rng.random((6, 5)).astype(np.float32)
        b = rng.random((5, 4)).astype(np.float32)
        out, kern = _build_and_run(C, [A, B], {"A": a, "B": b})
        assert np.allclose(out, a @ b, atol=1e-4)
        assert "def kernel" in kern.source

    def test_matmul_with_split_schedule(self):
        A = T.placeholder((6, 5), name="A")
        B = T.placeholder((5, 4), name="B")
        k = T.reduce_axis((0, 5), "k")
        C = T.compute((6, 4), lambda i, j: T.sum_reduce(A[i, k] * B[k, j], axis=k))
        rng = np.random.default_rng(1)
        a = rng.random((6, 5)).astype(np.float32)
        b = rng.random((5, 4)).astype(np.float32)

        def sched(s, t):
            o, i = s[t].split(t.op.axis[0], factor=4)  # imperfect: guard path
            s[t].split(t.op.reduce_axis[0], factor=2)

        out, _ = _build_and_run(C, [A, B], {"A": a, "B": b}, schedule_fn=sched)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_fused_axes_kernel(self):
        X = T.placeholder((4, 6), name="X")
        t = T.compute((4, 6), lambda i, j: X[i, j] + 1.0)

        def sched(s, tt):
            s[tt].fuse(tt.op.axis[0], tt.op.axis[1])

        x = np.random.default_rng(2).random((4, 6)).astype(np.float32)
        out, _ = _build_and_run(t, [X], {"X": x}, schedule_fn=sched)
        assert np.allclose(out, x + 1)

    def test_relu_sum_epilogue_kernel(self):
        X = T.placeholder((3, 4), name="X")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((3,), lambda i: T.maximum(T.sum_reduce(X[i, k], axis=k), 0.0))
        x = np.random.default_rng(3).standard_normal((3, 4)).astype(np.float32)
        out, _ = _build_and_run(t, [X], {"X": x})
        assert np.allclose(out, np.maximum(x.sum(axis=1), 0), atol=1e-5)

    def test_inlined_upstream_compute(self):
        X = T.placeholder((5,), name="X")
        mid = T.compute((5,), lambda i: X[i] * 3.0, name="midk")
        t = T.compute((5,), lambda i: mid[i] + 1.0, name="outk")
        x = np.arange(5, dtype=np.float32)
        s = T.create_schedule(t)
        kern = T.build(s, [X])
        assert np.allclose(kern(x), x * 3 + 1)

    def test_wrong_arg_count_rejected(self):
        X = T.placeholder((5,), name="X")
        t = T.compute((5,), lambda i: X[i])
        s = T.create_schedule(t)
        kern = T.build(s, [X])
        with pytest.raises(TypeError):
            kern()

    def test_gpu_binds_on_cpu_target_rejected(self):
        X = T.placeholder((5,), name="X")
        t = T.compute((5,), lambda i: X[i])
        s = T.create_schedule(t)
        s[t].bind(t.op.axis[0], "thread.x")
        with pytest.raises(ValueError):
            T.build(s, [X], target="cpu")

    def test_unknown_target_rejected(self):
        X = T.placeholder((5,), name="X")
        t = T.compute((5,), lambda i: X[i])
        with pytest.raises(ValueError):
            T.build(T.create_schedule(t), [X], target="tpu")


class TestGPUCodegen:
    def test_block_thread_binding(self):
        A = T.placeholder((6, 8), name="A")
        t = T.compute((6, 8), lambda i, j: A[i, j] * 2.0)
        s = T.create_schedule(t)
        s[t].bind(t.op.axis[0], "block.x")
        s[t].bind(t.op.axis[1], "thread.x")
        kern = T.build(s, [A], target="gpu")
        assert kern.launch_dims == {"block.x": 6, "thread.x": 8}
        a = np.random.default_rng(4).random((6, 8)).astype(np.float32)
        assert np.allclose(kern(a), a * 2)

    def test_tree_reduce_functional(self):
        A = T.placeholder((4, 8), name="A")
        k = T.reduce_axis((0, 8), "k")
        t = T.compute((4,), lambda i: T.sum_reduce(A[i, k], axis=k))
        s = T.create_schedule(t)
        s[t].bind(t.op.axis[0], "block.x")
        s[t].tree_reduce(t.op.reduce_axis[0], "thread.x")
        kern = T.build(s, [A], target="gpu")
        a = np.random.default_rng(5).random((4, 8)).astype(np.float32)
        assert np.allclose(kern(a), a.sum(axis=1), atol=1e-5)

    def test_partial_binding_leaves_serial_loop(self):
        A = T.placeholder((6, 8), name="A")
        t = T.compute((6, 8), lambda i, j: A[i, j] + 1.0)
        s = T.create_schedule(t)
        s[t].bind(t.op.axis[0], "block.x")  # j stays a serial loop
        kern = T.build(s, [A], target="gpu")
        a = np.random.default_rng(6).random((6, 8)).astype(np.float32)
        assert np.allclose(kern(a), a + 1)
