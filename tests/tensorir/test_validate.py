"""Schedule legality and IR structural validation.

Illegal schedules must fail at :func:`validate_schedule` / :func:`lower`
with the offending axis named -- not as a deep codegen traceback.
"""

import pytest

from repro import tensorir as T
from repro.tensorir import ir as I
from repro.tensorir.validate import (
    DEFAULT_FREE_VARS,
    IRValidationError,
    ScheduleError,
    validate_ir,
    validate_schedule,
)


def _matmul():
    A = T.placeholder((8, 8), name="A")
    B = T.placeholder((8, 8), name="B")
    k = T.reduce_axis((0, 8), name="k")
    C = T.compute((8, 8), lambda i, j: T.sum_reduce(A[i, k] * B[k, j], axis=k),
                  name="C")
    return C


def _vec():
    A = T.placeholder((16,), name="A")
    return T.compute((16,), lambda i: A[i] * 2.0, name="V")


# ----------------------------------------------------------------------
# schedule legality
# ----------------------------------------------------------------------

class TestScheduleLegality:
    def test_split_factor_zero_names_axis(self):
        V = _vec()
        s = T.create_schedule(V)
        with pytest.raises(ScheduleError, match="V_i0"):
            s[V].split(V.op.axis[0], factor=0)

    def test_split_negative_nparts(self):
        V = _vec()
        s = T.create_schedule(V)
        with pytest.raises(ScheduleError, match="positive"):
            s[V].split(V.op.axis[0], nparts=-3)

    def test_schedule_error_is_value_error(self):
        assert issubclass(ScheduleError, ValueError)
        assert issubclass(IRValidationError, ValueError)

    def test_reorder_across_tree_reduce_names_both_axes(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        (k,) = C.op.reduce_axis
        s[C].tree_reduce(k, "thread.x")
        with pytest.raises(ScheduleError,
                           match=r"data axis C_i1 .*tree-reduced axis k"):
            s[C].reorder(k, j)

    def test_reorder_without_tree_reduce_is_fine(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        (k,) = C.op.reduce_axis
        s[C].reorder(k, j)  # plain reduce axis: reordering is legal
        assert [ax.name for ax in s[C].leaf_iter_vars] == ["C_i0", "k", "C_i1"]

    def test_bind_reduce_axis_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        (k,) = C.op.reduce_axis
        with pytest.raises(ScheduleError, match="reduce axis k"):
            s[C].bind(k, "thread.x")

    def test_double_bind_same_tag_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        s[C].bind(i, "thread.x")
        with pytest.raises(ScheduleError, match="already bound"):
            s[C].bind(j, "thread.x")

    def test_tree_reduce_on_data_axis_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        with pytest.raises(ScheduleError, match="data axis"):
            s[C].tree_reduce(C.op.axis[0], "thread.x")

    def test_parallel_reduce_axis_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        (k,) = C.op.reduce_axis
        with pytest.raises(ScheduleError, match="reduce axis k"):
            s[C].parallel(k)

    def test_parallel_inside_serial_axis_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        s[C].parallel(j)  # i stays serial outside j
        with pytest.raises(ScheduleError, match="nested inside serial axis C_i0"):
            validate_schedule(s[C])

    def test_parallel_outermost_is_legal(self):
        C = _matmul()
        s = T.create_schedule(C)
        s[C].parallel(C.op.axis[0])
        validate_schedule(s[C])

    def test_block_inside_thread_rejected(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        s[C].bind(i, "thread.x")
        s[C].bind(j, "block.x")
        with pytest.raises(ScheduleError, match="block.*outermost"):
            validate_schedule(s[C])

    def test_cpu_target_rejects_gpu_binding(self):
        V = _vec()
        s = T.create_schedule(V)
        s[V].bind(V.op.axis[0], "thread.x")
        with pytest.raises(ScheduleError, match="target is 'cpu'"):
            validate_schedule(s[V], target="cpu")
        validate_schedule(s[V], target="gpu")  # fine on gpu

    def test_cpu_target_rejects_tree_reduce(self):
        C = _matmul()
        s = T.create_schedule(C)
        (k,) = C.op.reduce_axis
        s[C].tree_reduce(k, "thread.x")
        with pytest.raises(ScheduleError, match="tree"):
            validate_schedule(s[C], target="cpu")

    def test_lower_validates_schedule(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        s[C].parallel(j)
        with pytest.raises(ScheduleError):
            T.lower(s)
        stmt = T.lower(s, validate=False)  # opt-out still lowers
        assert isinstance(stmt, I.Stmt)

    def test_legal_schedules_lower_clean(self):
        C = _matmul()
        s = T.create_schedule(C)
        i, j = C.op.axis
        io, ii = s[C].split(i, factor=4)
        s[C].parallel(io)
        s[C].vectorize(j)
        stmt = T.lower(s)
        validate_ir(stmt)


# ----------------------------------------------------------------------
# IR structural validation
# ----------------------------------------------------------------------

def _iv(name, extent, kind=T.IterVar.DATA):
    return T.IterVar((0, extent), name=name, kind=kind)


class TestIRValidation:
    def test_lowered_ir_passes(self):
        C = _matmul()
        validate_ir(T.lower(T.create_schedule(C)))

    def test_double_bound_loop_var(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        store = I.Store(buf, T.const(1.0), [i])
        nest = I.For(i, 4, I.For(i, 4, store))
        with pytest.raises(IRValidationError, match="bound twice"):
            validate_ir(nest)

    def test_unbound_loop_var_in_store(self):
        i = _iv("i", 4)
        j = _iv("j", 4)
        buf = I.BufferRef("out", (4,))
        nest = I.For(i, 4, I.Store(buf, T.const(0.0), [j]))
        with pytest.raises(IRValidationError, match="j"):
            validate_ir(nest)

    def test_store_arity_mismatch(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4, 4))  # rank 2, indexed with 1
        nest = I.For(i, 4, I.Store(buf, T.const(0.0), [i]))
        with pytest.raises(IRValidationError, match="rank"):
            validate_ir(nest)

    def test_plain_store_of_reduce_axis_rejected(self):
        i = _iv("i", 4)
        k = _iv("k", 4, kind=T.IterVar.REDUCE)
        buf = I.BufferRef("out", (4,))
        nest = I.For(i, 4, I.For(k, 4, I.Store(buf, k, [i])))
        with pytest.raises(IRValidationError, match="reduce"):
            validate_ir(nest)

    def test_combiner_store_in_reduce_loop_ok(self):
        i = _iv("i", 4)
        k = _iv("k", 4, kind=T.IterVar.REDUCE)
        buf = I.BufferRef("out", (4,))
        nest = I.For(i, 4, I.For(k, 4, I.Store(buf, k, [i], combiner="sum")))
        validate_ir(nest)

    def test_negative_extent(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        nest = I.For(i, -1, I.Store(buf, T.const(0.0), [i]))
        with pytest.raises(IRValidationError, match="negative extent"):
            validate_ir(nest)

    def test_guard_with_unbound_var(self):
        i = _iv("i", 4)
        j = _iv("j", 4)
        buf = I.BufferRef("out", (4,))
        guarded = I.IfThenElse(j < T.const(2), I.Store(buf, T.const(0.0), [i]))
        with pytest.raises(IRValidationError, match="guard"):
            validate_ir(I.For(i, 4, guarded))


class TestFreeVariables:
    """Declared free variables (``src``/``dst``/``eid``) in stores and guards.

    The FeatGraph templates trace UDFs with symbolic endpoint variables and
    substitute them with per-edge gathers at lowering; until substitution the
    IR legitimately references them with no enclosing loop.
    """

    def test_free_var_in_store_accepted(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        src = T.Var("src")
        nest = I.For(i, 4, I.Store(buf, src * T.const(2.0), [i]))
        validate_ir(nest)  # src is in DEFAULT_FREE_VARS

    def test_free_var_in_guard_accepted(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        eid = T.Var("eid")
        guarded = I.IfThenElse(eid < T.const(2),
                               I.Store(buf, T.const(0.0), [i]))
        validate_ir(I.For(i, 4, guarded))

    def test_undeclared_free_var_rejected(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        mystery = T.Var("mystery")
        nest = I.For(i, 4, I.Store(buf, mystery, [i]))
        with pytest.raises(IRValidationError,
                           match="free variable mystery"):
            validate_ir(nest)

    def test_custom_free_set_overrides_default(self):
        i = _iv("i", 4)
        buf = I.BufferRef("out", (4,))
        nest = I.For(i, 4, I.Store(buf, T.Var("theta"), [i]))
        validate_ir(nest, free_vars={"theta"})
        with pytest.raises(IRValidationError, match="src"):
            validate_ir(I.For(i, 4, I.Store(buf, T.Var("src"), [i])),
                        free_vars={"theta"})

    def test_default_set_is_exported(self):
        assert DEFAULT_FREE_VARS == frozenset({"src", "dst", "eid"})

    def test_lower_accepts_compute_free_vars(self):
        # A compute that closes over a free Var lowers without the
        # validator flagging it: lower() extends the free set.
        theta = T.Var("theta")
        A = T.placeholder((8,), name="A")
        V = T.compute((8,), lambda i: A[i] * theta, name="V")
        stmt = T.lower(T.create_schedule(V))
        assert isinstance(stmt, I.Stmt)


class TestAllocateValidation:
    def _alloc_nest(self, shape, store_rank=None):
        i = _iv("i", 4)
        buf = I.BufferRef("stage", shape)
        rank = store_rank if store_rank is not None else len(shape)
        store_buf = I.BufferRef("stage", (4,) * rank)
        body = I.For(i, 4, I.Store(store_buf, T.const(0.0), [i] * rank))
        return I.Allocate(buf, "shared", body)

    def test_negative_allocation_extent_rejected(self):
        with pytest.raises(IRValidationError, match="illegal extent"):
            validate_ir(self._alloc_nest((4, -2)))

    def test_non_integer_allocation_extent_rejected(self):
        # BufferRef coerces constructor shapes to int, so simulate a buggy
        # pass leaving a symbolic/float extent behind.
        nest = self._alloc_nest((4, 4))
        nest.buffer.shape = (4, 2.5)
        with pytest.raises(IRValidationError, match="illegal extent"):
            validate_ir(nest)

    def test_allocation_rank_mismatch_with_store_rejected(self):
        # Allocation declares rank 2 but a store into it uses rank 1.
        with pytest.raises(IRValidationError, match="rank"):
            validate_ir(self._alloc_nest((4, 4), store_rank=1))

    def test_well_formed_allocation_accepted(self):
        validate_ir(self._alloc_nest((4,)))

    def test_zero_extent_allocation_accepted(self):
        # Degenerate but legal: an empty staging buffer.
        i = _iv("i", 4)
        out = I.BufferRef("out", (4,))
        nest = I.Allocate(I.BufferRef("stage", (0, 4)), "cache",
                          I.For(i, 4, I.Store(out, T.const(0.0), [i])))
        validate_ir(nest)


class TestWalkHelpers:
    def test_walk_with_path_tracks_ancestry(self):
        C = _matmul()
        stmt = T.lower(T.create_schedule(C))
        for node, path in I.walk_with_path(stmt):
            if isinstance(node, I.Store) and node.combiner is not None:
                kinds = [p.var.kind for p in path if isinstance(p, I.For)]
                assert T.IterVar.REDUCE in kinds
                break
        else:
            pytest.fail("no combiner store found in lowered reduction")

    def test_loop_vars_lists_every_for(self):
        C = _matmul()
        stmt = T.lower(T.create_schedule(C))
        names = [v.name for v in I.loop_vars(stmt)]
        assert names.count("k") == 1  # reduce loop appears once (acc nest)
        assert names.count("C_i0") == 2  # init nest + acc nest
