"""Vectorized and unrolled code generation."""

import numpy as np
import pytest

from repro import tensorir as T


def _build(t, args, schedule_fn=None):
    s = T.create_schedule(t)
    if schedule_fn:
        schedule_fn(s, t)
    return T.build(s, args)


class TestVectorizedEmission:
    def test_elementwise_becomes_slice(self):
        X = T.placeholder((4, 8), name="X")
        t = T.compute((4, 8), lambda i, j: X[i, j] * 2.0 + 1.0)

        def sched(s, tt):
            s[tt].vectorize(tt.op.axis[1])

        kern = _build(t, [X], sched)
        assert "vectorized over" in kern.source
        assert "0:8" in kern.source
        x = np.random.default_rng(0).random((4, 8)).astype(np.float32)
        assert np.allclose(kern(x), x * 2 + 1, atol=1e-5)

    def test_intrinsics_vectorize_to_numpy(self):
        X = T.placeholder((3, 6), name="X")
        t = T.compute((3, 6), lambda i, j: T.exp(X[i, j]))

        def sched(s, tt):
            s[tt].vectorize(tt.op.axis[1])

        kern = _build(t, [X], sched)
        assert "np.exp" in kern.source
        x = np.random.default_rng(1).random((3, 6)).astype(np.float32)
        assert np.allclose(kern(x), np.exp(x), atol=1e-5)

    def test_max_vectorizes_to_np_maximum(self):
        X = T.placeholder((5,), name="X")
        t = T.compute((5,), lambda i: T.maximum(X[i], 0.0))

        def sched(s, tt):
            s[tt].vectorize(tt.op.axis[0])

        kern = _build(t, [X], sched)
        assert "np.maximum" in kern.source
        x = np.random.default_rng(2).standard_normal(5).astype(np.float32)
        assert np.allclose(kern(x), np.maximum(x, 0))

    def test_non_trailing_index_falls_back_to_scalar(self):
        """Vectorizing an axis used as a *leading* index (strided access)
        must fall back to the scalar loop, still correct."""
        X = T.placeholder((6, 4), name="X")
        t = T.compute((4, 6), lambda i, j: X[j, i])

        def sched(s, tt):
            s[tt].vectorize(tt.op.axis[1])

        kern = _build(t, [X], sched)
        assert "scalar fallback" in kern.source
        x = np.random.default_rng(3).random((6, 4)).astype(np.float32)
        assert np.allclose(kern(x), x.T)

    def test_reduction_store_not_vectorized(self):
        """Combine-stores can't collapse to a slice assignment."""
        X = T.placeholder((4, 8), name="X")
        k = T.reduce_axis((0, 8), "k")
        t = T.compute((4,), lambda i: T.sum_reduce(X[i, k], axis=k))

        def sched(s, tt):
            s[tt].vectorize(tt.op.reduce_axis[0])

        kern = _build(t, [X], sched)
        x = np.random.default_rng(4).random((4, 8)).astype(np.float32)
        assert np.allclose(kern(x), x.sum(1), atol=1e-4)

    def test_vectorized_after_split(self):
        X = T.placeholder((16,), name="X")
        t = T.compute((16,), lambda i: X[i] + 1.0)

        def sched(s, tt):
            o, i = s[tt].split(tt.op.axis[0], factor=4)
            s[tt].vectorize(i)

        kern = _build(t, [X], sched)
        x = np.arange(16, dtype=np.float32)
        assert np.allclose(kern(x), x + 1)


class TestUnrolledEmission:
    def test_unroll_repeats_body(self):
        X = T.placeholder((4,), name="X")
        t = T.compute((4,), lambda i: X[i] * 3.0)

        def sched(s, tt):
            s[tt].unroll(tt.op.axis[0])

        kern = _build(t, [X], sched)
        assert kern.source.count("# unrolled") == 4
        assert "for " not in kern.source.split("def ")[1]
        x = np.arange(4, dtype=np.float32)
        assert np.allclose(kern(x), x * 3)

    def test_unroll_inner_split(self):
        X = T.placeholder((12,), name="X")
        t = T.compute((12,), lambda i: X[i] - 1.0)

        def sched(s, tt):
            o, i = s[tt].split(tt.op.axis[0], factor=3)
            s[tt].unroll(i)

        kern = _build(t, [X], sched)
        assert kern.source.count("# unrolled") == 3
        x = np.arange(12, dtype=np.float32)
        assert np.allclose(kern(x), x - 1)

    def test_large_unroll_stays_a_loop(self):
        X = T.placeholder((64,), name="X")
        t = T.compute((64,), lambda i: X[i])

        def sched(s, tt):
            s[tt].unroll(tt.op.axis[0])

        kern = _build(t, [X], sched)
        assert "for " in kern.source  # 64 > unroll cap of 16
        x = np.random.default_rng(5).random(64).astype(np.float32)
        assert np.allclose(kern(x), x)

    def test_unroll_with_reduction(self):
        X = T.placeholder((4, 4), name="X")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((4,), lambda i: T.sum_reduce(X[i, k], axis=k))

        def sched(s, tt):
            s[tt].unroll(tt.op.reduce_axis[0])

        kern = _build(t, [X], sched)
        x = np.random.default_rng(6).random((4, 4)).astype(np.float32)
        assert np.allclose(kern(x), x.sum(1), atol=1e-5)


class TestCombinedSchedules:
    def test_split_unroll_vectorize_pipeline(self):
        """The full CPU optimization recipe on one elementwise kernel."""
        X = T.placeholder((8, 32), name="X")
        t = T.compute((8, 32), lambda i, j: T.relu(X[i, j] - 0.5))

        def sched(s, tt):
            io, ii = s[tt].split(tt.op.axis[0], factor=2)
            s[tt].unroll(ii)
            s[tt].vectorize(tt.op.axis[1])
            return s

        kern = _build(t, [X], sched)
        assert "# unrolled" in kern.source
        assert "vectorized over" in kern.source
        x = np.random.default_rng(7).random((8, 32)).astype(np.float32)
        assert np.allclose(kern(x), np.maximum(x - 0.5, 0), atol=1e-5)
