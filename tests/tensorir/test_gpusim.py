"""GPU race-checking tests."""

import numpy as np
import pytest

from repro import tensorir as T
from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.codegen import Kernel, build
from repro.tensorir.gpusim import RaceError, racecheck, run_with_block_order


def _race_free_kernel():
    """Each block owns one output row -- the FeatGraph Fig. 7a shape."""
    A = T.placeholder((6, 8), name="A")
    t = T.compute((6, 8), lambda i, j: A[i, j] * 2.0)
    s = T.create_schedule(t)
    s[t].bind(t.op.axis[0], "block.x")
    s[t].bind(t.op.axis[1], "thread.x")
    return build(s, [A], target="gpu"), A


def _racy_kernel():
    """Every block plain-stores its own id into out[0]: order-dependent."""
    bx = E.IterVar((0, 6), name="bidx")
    buf = I.BufferRef("out_racy", (1,), "float32")
    body = I.For(bx, 6, I.Store(buf, E.Cast(bx, "float32"), [E.const(0)]),
                 kind="block.x")
    out_tensor = T.compute((1,), lambda i: i * 0.0, name="out_racy")

    # hand-assemble a Kernel around the racy IR (bypassing lower())
    from repro.tensorir.codegen import _Emitter, _emit_stmt

    em = _Emitter()
    em.emit("bidx = _tidx[0]")
    _emit_stmt(body.body, em, {"bidx": "block.x"})
    src = "def kernel(out_racy, _tidx=(0, 0, 0, 0, 0, 0)):\n" + em.source() + "\n"
    ns: dict = {}
    exec(src, ns)
    return Kernel(ns["kernel"], src, body, out_tensor, [], "gpu",
                  {"block.x": 6})


class TestRunWithBlockOrder:
    def test_identity_order_matches_call(self):
        kern, A = _race_free_kernel()
        a = np.random.default_rng(0).random((6, 8)).astype(np.float32)
        direct = kern(a)
        ordered = run_with_block_order(kern, (a,), np.arange(6))
        assert np.array_equal(direct, ordered)

    def test_cpu_kernel_rejected(self):
        X = T.placeholder((4,), name="X")
        t = T.compute((4,), lambda i: X[i])
        kern = build(T.create_schedule(t), [X], target="cpu")
        with pytest.raises(ValueError):
            run_with_block_order(kern, (np.zeros(4, np.float32),),
                                 np.arange(1))


class TestRacecheck:
    def test_race_free_kernel_passes(self):
        kern, A = _race_free_kernel()
        a = np.random.default_rng(1).random((6, 8)).astype(np.float32)
        out = racecheck(kern, a, trials=4)
        assert np.allclose(out, a * 2)

    def test_racy_kernel_detected(self):
        kern = _racy_kernel()
        with pytest.raises(RaceError, match="block order"):
            racecheck(kern, trials=6, seed=3)

    def test_featgraph_gpu_schedules_are_race_free(self, small_graph):
        """The generated matmul-style kernel with block/thread binds."""
        A = T.placeholder((8, 5), name="A")
        B = T.placeholder((5, 8), name="B")
        k = T.reduce_axis((0, 5), "k")
        C = T.compute((8, 8), lambda i, j: T.sum_reduce(A[i, k] * B[k, j],
                                                        axis=k))
        s = T.create_schedule(C)
        s[C].bind(C.op.axis[0], "block.x")
        s[C].bind(C.op.axis[1], "thread.x")
        kern = build(s, [A, B], target="gpu")
        rng = np.random.default_rng(2)
        a = rng.random((8, 5)).astype(np.float32)
        b = rng.random((5, 8)).astype(np.float32)
        out = racecheck(kern, a, b, trials=3)
        assert np.allclose(out, a @ b, atol=1e-4)

    def test_trials_validation(self):
        kern, A = _race_free_kernel()
        with pytest.raises(ValueError):
            racecheck(kern, np.zeros((6, 8), np.float32), trials=1)
