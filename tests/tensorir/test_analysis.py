"""The dataflow analysis framework: races, bounds, footprints, strict mode.

The acceptance scenarios from the paper's scheduling hazards:

- an **edge-parallel** SpMM aggregation with a plain (non-atomic) store is
  flagged FG001; the **vertex-parallel** equivalent and the combiner form
  pass clean (Sec. III-B's parallelization dichotomy);
- a deliberately **over-split** feature axis is flagged FG002, while the
  guarded imperfect split the lowering actually emits stays clean;
- staging buffers are sized against the hwsim capacities (FG003/FG004/FG005);
- the ``analyze`` pass runs inside the compile pipeline with its own timing,
  attaches the report to the compile record, and in strict mode turns error
  diagnostics into :class:`AnalysisError` compile failures.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.compile import (KernelCache, compile_sddmm, compile_spmm,
                                use_kernel_cache)
from repro.core.fds import default_fds_for
from repro.graph.sparse import from_edges
from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.analysis import (AnalysisError, AnalysisReport,
                                     Diagnostic, Interval, RULES, Severity,
                                     affine_of, analyze_ir, analyze_kernel,
                                     collect_access_map, set_strict, strict,
                                     strict_enabled)

N, NNZ, F = 8, 20, 8


def _adj(seed=0):
    rng = np.random.default_rng(seed)
    return from_edges(N, N, rng.integers(0, N, NNZ), rng.integers(0, N, NNZ))


def _gather_placeholders():
    ind = T.placeholder((NNZ,), name="A_indices", dtype="int64")
    eids = T.placeholder((NNZ,), name="A_edge_ids", dtype="int64")
    return ind, eids


def _ivar(name, extent):
    return E.IterVar((0, extent), name=name)


class TestRaceDetection:
    """FG001: the edge- vs. vertex-parallel aggregation hazard."""

    def test_edge_parallel_plain_store_is_racy(self):
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N, F), "float32")
        e, f = _ivar("e", NNZ), _ivar("f", F)
        nest = I.For(e, NNZ,
                     I.For(f, F, I.Store(out, E.const(1.0), [ind[e], f])),
                     kind="parallel")
        report = analyze_ir(nest, target="cpu")
        assert [d.rule for d in report.diagnostics] == ["FG001"]
        (diag,) = report.by_rule("FG001")
        assert diag.severity == Severity.ERROR
        assert "e" in diag.message and "out" in diag.message
        assert report.has_errors

    def test_edge_parallel_combiner_store_is_safe(self):
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N, F), "float32")
        e, f = _ivar("e", NNZ), _ivar("f", F)
        nest = I.For(e, NNZ,
                     I.For(f, F, I.Store(out, E.const(1.0), [ind[e], f],
                                         combiner="sum")),
                     kind="parallel")
        assert analyze_ir(nest).diagnostics == ()

    def test_vertex_parallel_plain_store_is_safe(self):
        out = I.BufferRef("out", (N, F), "float32")
        v, f = _ivar("v", N), _ivar("f", F)
        nest = I.For(v, N, I.For(f, F, I.Store(out, E.const(1.0), [v, f])),
                     kind="parallel")
        assert analyze_ir(nest).diagnostics == ()

    def test_gpu_block_binding_counts_as_parallel(self):
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N,), "float32")
        e = _ivar("e", NNZ)
        nest = I.For(e, NNZ, I.Store(out, E.const(1.0), [ind[e]]),
                     kind="block.x")
        assert [d.rule for d in analyze_ir(nest).diagnostics] == ["FG001"]

    def test_tiled_owning_index_is_safe(self):
        # out[vo*4 + vi]: coefficient 4 on the parallel axis, remainder 3.
        out = I.BufferRef("out", (N,), "float32")
        vo, vi = _ivar("vo", 2), _ivar("vi", 4)
        nest = I.For(vo, 2, I.For(vi, 4,
                                  I.Store(out, E.const(1.0), [vo * 4 + vi])),
                     kind="parallel")
        assert analyze_ir(nest).diagnostics == ()

    def test_overlapping_tiles_are_racy(self):
        # out[vo*2 + vi] with vi in [0,3]: tiles of stride 2 but width 4.
        out = I.BufferRef("out", (N,), "float32")
        vo, vi = _ivar("vo", 2), _ivar("vi", 4)
        nest = I.For(vo, 2, I.For(vi, 4,
                                  I.Store(out, E.const(1.0), [vo * 2 + vi])),
                     kind="parallel")
        assert [d.rule for d in analyze_ir(nest).diagnostics] == ["FG001"]

    def test_scatter_through_edge_id_permutation_is_safe(self):
        # SDDMM's out[A_edge_ids[e]] under a block-parallel edge loop:
        # the gather is through a permutation, hence injective.
        _, eids = _gather_placeholders()
        out = I.BufferRef("eout", (NNZ,), "float32")
        e = _ivar("e", NNZ)
        nest = I.For(e, NNZ, I.Store(out, E.const(1.0), [eids[e]]),
                     kind="block.x")
        assert analyze_ir(nest).diagnostics == ()

    def test_serial_edge_loop_is_not_flagged(self):
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N,), "float32")
        e = _ivar("e", NNZ)
        nest = I.For(e, NNZ, I.Store(out, E.const(1.0), [ind[e]]))
        assert analyze_ir(nest).diagnostics == ()


class TestBoundsChecking:
    """FG002: provable out-of-bounds under loop extents and guards."""

    def test_over_split_feature_axis_is_flagged(self):
        # 4 * 3 = 12 iterations over an extent-8 axis, no guard.
        out = I.BufferRef("out", (N, F), "float32")
        v, fo, fi = _ivar("v", N), _ivar("fo", 4), _ivar("fi", 3)
        nest = I.For(v, N, I.For(fo, 4, I.For(
            fi, 3, I.Store(out, E.const(1.0), [v, fo * 3 + fi]))))
        report = analyze_ir(nest)
        assert [d.rule for d in report.diagnostics] == ["FG002"]
        (diag,) = report.diagnostics
        assert "dim 1" in diag.message and "8" in diag.message

    def test_guarded_imperfect_split_is_clean(self):
        # The same over-covering split, but wrapped in the guard the
        # lowering emits: the refinement clamps the interval back inside.
        out = I.BufferRef("out", (N, F), "float32")
        v, fo, fi = _ivar("v", N), _ivar("fo", 4), _ivar("fi", 3)
        store = I.Store(out, E.const(1.0), [v, fo * 3 + fi])
        guarded = I.IfThenElse(fo * 3 + fi < E.const(F, "int64"), store)
        nest = I.For(v, N, I.For(fo, 4, I.For(fi, 3, guarded)))
        assert analyze_ir(nest).diagnostics == ()

    def test_negative_index_is_flagged(self):
        out = I.BufferRef("out", (N,), "float32")
        v = _ivar("v", N)
        nest = I.For(v, N, I.Store(out, E.const(1.0), [v - 1]))
        assert [d.rule for d in analyze_ir(nest).diagnostics] == ["FG002"]

    def test_opaque_gather_is_not_flagged(self):
        # A_indices[e] could be anything; no *provable* OOB, no lint noise.
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N,), "float32")
        e = _ivar("e", NNZ)
        nest = I.For(e, NNZ, I.Store(out, E.const(1.0), [ind[e]],
                                     combiner="sum"))
        assert analyze_ir(nest).diagnostics == ()

    def test_read_out_of_bounds_is_flagged(self):
        X = T.placeholder((4,), name="X")
        out = I.BufferRef("out", (N,), "float32")
        v = _ivar("v", N)
        nest = I.For(v, N, I.Store(out, X[v], [v]))  # X has extent 4 < 8
        report = analyze_ir(nest)
        assert [d.rule for d in report.diagnostics] == ["FG002"]
        assert "read" in report.diagnostics[0].message


class TestFootprints:
    """FG003/FG004/FG005: staging working sets vs. hwsim capacities."""

    def _store_nest(self):
        out = I.BufferRef("out", (N, F), "float32")
        v, f = _ivar("v", N), _ivar("f", F)
        return I.For(v, N, I.For(f, F, I.Store(out, E.const(1.0), [v, f])))

    def test_shared_overflow_on_gpu_is_an_error(self):
        big = I.BufferRef("XV.shared", (1 << 14, 8), "float32")  # 512 KiB
        nest = I.Allocate(big, "shared", self._store_nest())
        report = analyze_ir(nest, target="gpu")
        assert [d.rule for d in report.diagnostics] == ["FG003"]
        assert report.has_errors
        assert report.footprints["XV.shared"] == ("shared", (1 << 14) * 8 * 4)

    def test_shared_within_budget_is_a_note(self):
        small = I.BufferRef("XV.shared", (64, 8), "float32")  # 2 KiB
        nest = I.Allocate(small, "shared", self._store_nest())
        report = analyze_ir(nest, target="gpu")
        assert [d.rule for d in report.diagnostics] == ["FG005"]
        assert not report.has_errors

    def test_cache_overflow_on_cpu_is_a_warning(self):
        big = I.BufferRef("XV.cache", (1 << 22, 2), "float32")  # 32 MiB
        nest = I.Allocate(big, "cache", self._store_nest())
        report = analyze_ir(nest, target="cpu")
        assert [d.rule for d in report.diagnostics] == ["FG004"]
        assert not report.has_errors  # warning, not error

    def test_tree_reduce_scratch_is_noted(self):
        out = I.BufferRef("out", (N,), "float32")
        v, t = _ivar("v", N), _ivar("t", 32)
        nest = I.For(v, N, I.For(
            t, 32, I.Store(out, E.const(1.0), [v], combiner="sum"),
            kind="tree_reduce[thread.x]"))
        report = analyze_ir(nest, target="gpu")
        assert [d.rule for d in report.diagnostics] == ["FG005"]
        assert report.footprints["t.tree_reduce"] == ("shared", 32 * 4)


class TestAccessMapMachinery:
    def test_affine_of_recovers_split_arithmetic(self):
        fo, fi = _ivar("fo", 4), _ivar("fi", 3)
        fn = affine_of(fo * 3 + fi + 2)
        assert fn.coeff("fo") == 3 and fn.coeff("fi") == 1
        assert fn.const == 2 and fn.exact

    def test_gather_is_opaque_with_deps(self):
        ind, _ = _gather_placeholders()
        e = _ivar("e", NNZ)
        fn = affine_of(ind[e])
        assert not fn.exact
        assert "e" in fn.resid_deps

    def test_interval_arithmetic(self):
        a, b = Interval(0, 7), Interval(1, 3)
        assert (a + b) == Interval(1, 10)
        assert a.scaled(-2) == Interval(-14, 0)
        assert a.intersect(Interval(5, 99)) == Interval(5, 7)
        assert Interval(0, 11).floordiv(3) == Interval(0, 3)
        assert Interval(0, 11).mod(8) == Interval(0, 7)

    def test_collect_access_map_records_loops_and_allocs(self):
        X = T.placeholder((N, F), name="X")
        out = I.BufferRef("out", (N, F), "float32")
        v, f = _ivar("v", N), _ivar("f", F)
        nest = I.Allocate(I.BufferRef("X.shared", (N, F), "float32"),
                          "shared",
                          I.For(v, N, I.For(f, F,
                                            I.Store(out, X[v, f], [v, f]),
                                            kind="thread.x")))
        amap = collect_access_map(nest)
        assert len(amap.writes()) == 1 and len(amap.reads()) == 1
        write = amap.writes()[0]
        assert [lp.name for lp in write.loops] == ["v", "f"]
        assert write.loops[1].parallel
        assert [a.buffer_name for a in amap.allocs] == ["X.shared"]


class TestPipelineIntegration:
    def _spmm(self, **kw):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()):
            return compile_spmm(_adj(), dgl_builtins.copy_u_msg(XV), "sum",
                                **kw)

    def test_analyze_pass_is_timed(self):
        k = self._spmm()
        timings = k.compile_timings()
        assert "analyze" in timings
        assert list(timings).index("analyze") == \
            list(timings).index("validate") + 1

    def test_report_attached_to_compile_record(self):
        k = self._spmm()
        report = k.analysis_report()
        assert isinstance(report, AnalysisReport)
        assert not report.has_errors
        assert analyze_kernel(k) is report  # reuses the pass artifact

    def test_sddmm_kernels_carry_reports_too(self):
        XA = T.placeholder((N, F), name="XA")
        XB = T.placeholder((N, F), name="XB")
        with use_kernel_cache(KernelCache()):
            k = compile_sddmm(_adj(), dgl_builtins.u_dot_v_edge(XA, XB),
                              target="gpu",
                              fds=default_fds_for("gpu", F, "sddmm"))
        assert not k.analysis_report().has_errors

    def test_strict_mode_fails_compiles_with_errors(self):
        ind, _ = _gather_placeholders()
        out = I.BufferRef("out", (N,), "float32")
        e = _ivar("e", NNZ)
        racy = I.For(e, NNZ, I.Store(out, E.const(1.0), [ind[e]]),
                     kind="parallel")
        from repro.core.compile import _pass_analyze

        class _Ctx:  # the slice of CompileContext the pass consumes
            artifacts = {"ir": racy}
            target = "cpu"

        with strict():
            assert strict_enabled()
            with pytest.raises(AnalysisError) as exc_info:
                _pass_analyze(_Ctx())
            assert "FG001" in str(exc_info.value)
        assert not strict_enabled()
        # Outside strict mode the same nest compiles; the report records it.
        _pass_analyze(_Ctx())
        assert _Ctx.artifacts["analysis"].has_errors

    def test_set_strict_returns_previous(self):
        old = set_strict(True)
        try:
            assert strict_enabled()
        finally:
            set_strict(old)


class TestDiagnostics:
    def test_rule_catalogue_is_complete(self):
        # FG001-FG005: loop-nest analyses; FG006-FG010: the plan verifier
        # (repro.runtime.verify)
        assert set(RULES) == {"FG001", "FG002", "FG003", "FG004", "FG005",
                              "FG006", "FG007", "FG008", "FG009", "FG010"}
        for sev, desc in RULES.values():
            assert sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            assert desc

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="FG999"):
            Diagnostic("FG999", Severity.ERROR, "x", "y")

    def test_report_sorting_most_severe_first(self):
        report = AnalysisReport(diagnostics=(
            Diagnostic("FG005", Severity.INFO, "a", "note"),
            Diagnostic("FG001", Severity.ERROR, "b", "race"),
            Diagnostic("FG004", Severity.WARNING, "c", "warn"),
        ))
        assert [d.rule for d in report.sorted()] == ["FG001", "FG004",
                                                     "FG005"]
        assert "FG001" in report.render().splitlines()[0]


class TestLintCLI:
    def test_builtin_suite_is_clean_in_strict_mode(self):
        from repro.tensorir.analysis.__main__ import main
        assert main(["--suite", "builtins", "--target", "cpu",
                     "--strict"]) == 0
