"""Unit tests for the batched-UDF vectorizer's optimizations.

Each test targets one optimization on a representative builtin-style UDF
and asserts both the observable behavior (program output equals the
interpreter) and the optimizer accounting (:class:`ProgramStats`), so a
regression that silently disables an optimization fails loudly.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.vectorize import (
    VectorizeError,
    compile_batched,
    compile_enabled,
)

RNG = np.random.default_rng(42)


def _run_both(out, bindings, batch, **kw):
    prog = compile_batched(out)
    got = prog.run(bindings, batch, **kw)
    ref = evaluate_batched(out, bindings, batch, **kw)
    return prog, got, ref


def _batch(n, m, b=13):
    return {
        "src": RNG.integers(0, n, b),
        "dst": RNG.integers(0, n, b),
        "eid": RNG.integers(0, m, b),
    }


class TestCSE:
    def test_edge_softmax_repeated_exp_computed_once(self):
        """The motivating case: sm_norm's exp(ES[eid,i] - MAXV[dst,i])
        appears once in the source even though sm_expsum + sm_norm share
        the subtree shape."""
        m, n, h = 20, 9, 4
        ES = T.placeholder((m, h), name="ES")
        MAXV = T.placeholder((n, h), name="MAXV")
        SUMV = T.placeholder((n, h), name="SUMV")
        src, dst, eid = T.Var("src"), T.Var("dst"), T.Var("eid")
        out = T.compute(
            (h,),
            lambda i: (T.exp(ES[eid, i] - MAXV[dst, i])
                       / (SUMV[dst, i] + T.exp(ES[eid, i] - MAXV[dst, i]))),
            name="norm2")
        bindings = {
            "ES": RNG.standard_normal((m, h)).astype(np.float32),
            "MAXV": RNG.standard_normal((n, h)).astype(np.float32),
            "SUMV": (1 + RNG.random((n, h))).astype(np.float32),
        }
        prog, got, ref = _run_both(out, bindings, _batch(n, m))
        np.testing.assert_array_equal(got, ref)
        assert prog.stats.cse_hits > 0
        assert prog.source.count("np.exp") == 1

    def test_repeated_gather_emitted_once(self):
        n, f = 8, 5
        XV = T.placeholder((n, f), name="XV")
        src = T.Var("src")
        out = T.compute((f,), lambda i: XV[src, i] * XV[src, i], name="sq")
        prog, got, ref = _run_both(out, {"XV": RNG.standard_normal(
            (n, f)).astype(np.float32)}, {"src": RNG.integers(0, n, 7)})
        np.testing.assert_array_equal(got, ref)
        assert prog.stats.gathers == 1  # second read served from the memo


class TestConstantFolding:
    def test_constant_subtree_folds(self):
        n, f = 6, 4
        XV = T.placeholder((n, f), name="XV")
        src = T.Var("src")
        # 2.0 * 3.0 + 1.0 folds to a single literal at compile time
        out = T.compute(
            (f,), lambda i: XV[src, i] * (T.const(2.0) * 3.0 + 1.0),
            name="scaled")
        prog, got, ref = _run_both(out, {"XV": RNG.standard_normal(
            (n, f)).astype(np.float32)}, {"src": RNG.integers(0, n, 9)})
        np.testing.assert_array_equal(got, ref)
        assert prog.stats.constants_folded >= 2
        assert prog.stats.instructions == 2  # gather + one multiply

    def test_all_constant_reduction_folds(self):
        k = T.reduce_axis((0, 16), name="k")
        out = T.compute(
            (1,), lambda i: T.sum_reduce(T.const(0.5), axis=k), name="c")
        prog = compile_batched(out)
        assert prog.stats.loops == 0 and prog.stats.vector_reduces == 0
        got = prog.run({}, {"eid": np.zeros(3, dtype=np.int64)})
        assert got.shape == (3, 1)
        np.testing.assert_allclose(got, 8.0)


class TestDeadBranchPruning:
    def test_constant_condition_prunes_untaken_branch(self):
        n, f = 6, 4
        XV = T.placeholder((n, f), name="XV")
        YV = T.placeholder((n, f), name="YV")
        src = T.Var("src")
        out = T.compute(
            (f,),
            lambda i: T.select(T.const(1.0) > 0.0, XV[src, i], YV[src, i]),
            name="sel")
        bindings = {"XV": RNG.standard_normal((n, f)).astype(np.float32),
                    "YV": RNG.standard_normal((n, f)).astype(np.float32)}
        prog, got, ref = _run_both(out, bindings, {"src": RNG.integers(
            0, n, 5)})
        np.testing.assert_array_equal(got, ref)
        assert prog.stats.branches_pruned == 1
        assert "np.where" not in prog.source
        assert "'YV'" not in prog.source  # untaken branch never loaded
        assert prog.stats.gathers == 1


class TestBufferReuse:
    def test_dead_operand_retired_with_out(self):
        n, f = 8, 6
        XV = T.placeholder((n, f), name="XV")
        src = T.Var("src")
        out = T.compute(
            (f,), lambda i: T.exp(XV[src, i] * 2.0) + 1.0, name="chain")
        prog, got, ref = _run_both(out, {"XV": RNG.standard_normal(
            (n, f)).astype(np.float32)}, {"src": RNG.integers(0, n, 11)})
        np.testing.assert_array_equal(got, ref)
        # multiply allocates; exp and add both reuse the dead buffer
        assert prog.stats.inplace_ops >= 2
        assert "out=" in prog.source


class TestVectorizedReductions:
    def test_dot_product_single_reduce_call(self):
        n, d = 9, 16
        XV = T.placeholder((n, d), name="XV")
        YV = T.placeholder((n, d), name="YV")
        src, dst = T.Var("src"), T.Var("dst")
        k = T.reduce_axis((0, d), name="k")
        out = T.compute(
            (1,), lambda i: T.sum_reduce(XV[src, k] * YV[dst, k], axis=k),
            name="dot")
        bindings = {"XV": RNG.standard_normal((n, d)).astype(np.float32),
                    "YV": RNG.standard_normal((n, d)).astype(np.float32)}
        prog = compile_batched(out)
        assert prog.stats.vector_reduces == 1
        assert prog.stats.loops == 0
        assert "np.add.reduce" in prog.source
        b = {"src": RNG.integers(0, n, 13), "dst": RNG.integers(0, n, 13)}
        got = prog.run(bindings, b)
        ref = evaluate_batched(out, bindings, b)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-6)

    def test_max_reduce_bit_identical(self):
        n, d = 7, 12
        XV = T.placeholder((n, d), name="XV")
        src = T.Var("src")
        k = T.reduce_axis((0, d), name="k")
        out = T.compute(
            (1,), lambda i: T.max_reduce(XV[src, k], axis=k), name="mx")
        bindings = {"XV": RNG.standard_normal((n, d)).astype(np.float32)}
        prog, got, ref = _run_both(out, bindings,
                                   {"src": RNG.integers(0, n, 9)})
        assert prog.stats.vector_reduces == 1
        np.testing.assert_array_equal(got, ref)

    def test_int_reduce_keeps_interpreter_dtype(self):
        """ufunc.reduce must not promote int32 to the platform int."""
        from repro.tensorir.expr import Cast

        n, d = 5, 6
        XV = T.placeholder((n, d), name="XV", dtype="int32")
        src = T.Var("src")
        k = T.reduce_axis((0, d), name="k")
        out = T.compute(
            (1,),
            lambda i: T.sum_reduce(Cast(XV[src, k], "int32"), axis=k),
            name="isum")
        bindings = {"XV": RNG.integers(0, 100, (n, d)).astype(np.int32)}
        prog, got, ref = _run_both(out, bindings,
                                   {"src": RNG.integers(0, n, 4)})
        assert got.dtype == ref.dtype
        np.testing.assert_array_equal(got, ref)

    def test_huge_domain_falls_back_to_loop(self):
        n, d = 4, 8192  # > _VEC_TRIP_LIMIT
        XV = T.placeholder((n, d), name="XV")
        src = T.Var("src")
        k = T.reduce_axis((0, d), name="k")
        out = T.compute(
            (1,), lambda i: T.sum_reduce(XV[src, k], axis=k), name="big")
        prog = compile_batched(out)
        assert prog.stats.vector_reduces == 0
        assert prog.stats.loops == 1

    def test_empty_domain_is_identity(self):
        XV = T.placeholder((4, 4), name="XV")
        src = T.Var("src")
        k = T.reduce_axis((0, 0), name="k")
        out = T.compute(
            (1,), lambda i: T.sum_reduce(XV[src, k], axis=k), name="empty")
        prog = compile_batched(out)
        got = prog.run({"XV": np.ones((4, 4), np.float32)},
                       {"src": np.zeros(3, dtype=np.int64)})
        ref = evaluate_batched(out, {"XV": np.ones((4, 4), np.float32)},
                               {"src": np.zeros(3, dtype=np.int64)})
        np.testing.assert_array_equal(got, ref)


class TestProgramContract:
    def test_rejects_non_compute_tensor(self):
        XV = T.placeholder((4, 4), name="XV")
        with pytest.raises(TypeError):
            compile_batched(XV)

    def test_rejects_empty_batch(self):
        XV = T.placeholder((4, 2), name="XV")
        out = T.compute((2,), lambda i: XV[T.Var("src"), i], name="cp")
        prog = compile_batched(out)
        with pytest.raises(ValueError):
            prog.run({"XV": np.ones((4, 2), np.float32)}, {})

    def test_missing_binding_raises_like_interpreter(self):
        XV = T.placeholder((4, 2), name="XV")
        out = T.compute((2,), lambda i: XV[T.Var("src"), i], name="cp")
        prog = compile_batched(out)
        with pytest.raises(KeyError, match="unbound"):
            prog.run({}, {"src": np.zeros(2, dtype=np.int64)})

    def test_bytes_moved_scales_with_batch_and_tile(self):
        n, f = 10, 8
        XV = T.placeholder((n, f), name="XV")
        out = T.compute((f,), lambda i: XV[T.Var("src"), i] * 2.0,
                        name="cp")
        prog = compile_batched(out)
        full = prog.bytes_moved(100)
        assert full == 100 * f * 4 * 2  # one gather + the output
        half = prog.bytes_moved(100, (f // 2,))
        assert half == full // 2
        assert prog.stats.workset_bytes_per_item == f * 4

    def test_compile_enabled_env_gate(self, monkeypatch):
        monkeypatch.delenv("FEATGRAPH_UDF_COMPILE", raising=False)
        assert compile_enabled()
        for off in ("0", "false", "OFF"):
            monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", off)
            assert not compile_enabled()
        monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", "1")
        assert compile_enabled()

    def test_stray_reduce_axis_rejected(self):
        """A reduce IterVar used outside any Reduce is not vectorizable."""
        XV = T.placeholder((4, 8), name="XV")
        stray = T.reduce_axis((0, 8), name="z")
        out = T.compute(
            (2,), lambda i: XV[T.Var("src"), stray], name="odd")
        with pytest.raises(VectorizeError):
            compile_batched(out)
