"""Tests of schedule primitives and introspection."""

import numpy as np
import pytest

from repro import tensorir as T
from repro.tensorir.schedule import Schedule, create_schedule


def _matmul(n=8, m=8, k=8):
    A = T.placeholder((n, k), name="A")
    B = T.placeholder((k, m), name="B")
    kk = T.reduce_axis((0, k), "kk")
    C = T.compute((n, m), lambda i, j: T.sum_reduce(A[i, kk] * B[kk, j], axis=kk),
                  name="C")
    return A, B, C


class TestSplit:
    def test_split_by_factor(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        o, i = s[C].split(C.op.axis[0], factor=4)
        assert o.extent == 2 and i.extent == 4
        assert s[C].leaf_iter_vars[0] is o and s[C].leaf_iter_vars[1] is i

    def test_split_by_nparts(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        o, i = s[C].split(C.op.axis[0], nparts=2)
        assert o.extent == 2 and i.extent == 4

    def test_imperfect_split(self):
        X = T.placeholder((10,), name="X")
        t = T.compute((10,), lambda i: X[i])
        s = create_schedule(t)
        o, i = s[t].split(t.op.axis[0], factor=4)
        assert o.extent == 3 and i.extent == 4  # 3*4 covers 10 with a guard

    def test_split_requires_exactly_one_arg(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        with pytest.raises(ValueError):
            s[C].split(C.op.axis[0])
        with pytest.raises(ValueError):
            s[C].split(C.op.axis[0], factor=2, nparts=2)

    def test_split_nonleaf_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        o, i = s[C].split(C.op.axis[0], factor=4)
        with pytest.raises(ValueError):
            s[C].split(C.op.axis[0], factor=2)  # no longer a leaf

    def test_split_reduce_axis(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        red = C.op.reduce_axis[0]
        o, i = s[C].split(red, factor=2)
        assert o.kind == i.kind == "reduce"

    def test_nonpositive_factor_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        with pytest.raises(ValueError):
            s[C].split(C.op.axis[0], factor=0)


class TestFuseReorder:
    def test_fuse_adjacent(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        fused = s[C].fuse(C.op.axis[0], C.op.axis[1])
        assert fused.extent == 64
        assert s[C].leaf_iter_vars[0] is fused

    def test_fuse_nonadjacent_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        red = C.op.reduce_axis[0]
        with pytest.raises(ValueError):
            s[C].fuse(C.op.axis[0], red)  # axis[1] sits between

    def test_reorder(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        i, j = C.op.axis
        s[C].reorder(j, i)
        assert s[C].leaf_iter_vars[:2] == [j, i]

    def test_reorder_repeated_axis_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        i = C.op.axis[0]
        with pytest.raises(ValueError):
            s[C].reorder(i, i)

    def test_tile(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        xo, yo, xi, yi = s[C].tile(C.op.axis[0], C.op.axis[1], 4, 2)
        leaves = s[C].leaf_iter_vars
        assert leaves[:4] == [xo, yo, xi, yi]
        assert xi.extent == 4 and yi.extent == 2


class TestAnnotations:
    def test_bind_thread_tags(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        s[C].bind(C.op.axis[0], "block.x")
        s[C].bind(C.op.axis[1], "thread.x")
        assert s[C].binding_of("block.x") is C.op.axis[0]
        assert s[C].binding_of("thread.x") is C.op.axis[1]

    def test_bind_unknown_tag_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        with pytest.raises(ValueError):
            s[C].bind(C.op.axis[0], "warp.q")

    def test_tree_reduce_on_reduce_axis(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        s[C].tree_reduce(C.op.reduce_axis[0], "thread.x")
        axes = s[C].tree_reduce_axes()
        assert len(axes) == 1 and axes[0][1] == "thread.x"

    def test_tree_reduce_on_data_axis_rejected(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        with pytest.raises(ValueError):
            s[C].tree_reduce(C.op.axis[0], "thread.x")

    def test_parallel_vectorize_unroll(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        s[C].parallel(C.op.axis[0])
        s[C].vectorize(C.op.axis[1])
        assert s[C].annotation_of(C.op.axis[0])["kind"] == "parallel"
        assert s[C].annotation_of(C.op.axis[1])["kind"] == "vectorize"

    def test_cache_read_scopes(self):
        A, _, C = _matmul()
        s = create_schedule(C)
        s.cache_read(A, "shared", C)
        assert s[C].cache_reads == [(A, "shared")]
        with pytest.raises(ValueError):
            s[C].cache_read(A, "l9")


class TestIntrospection:
    def test_tiling_of_tracks_factors(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        o, i = s[C].split(C.op.axis[0], factor=4)
        s[C].split(i, factor=2)
        assert s[C].tiling_of(C.op.axis[0]) == [4, 2]

    def test_root_of_walks_relations(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        o, i = s[C].split(C.op.axis[0], factor=4)
        oo, oi = s[C].split(o, factor=2)
        assert s[C].root_of(oo) is C.op.axis[0]
        assert s[C].root_of(i) is C.op.axis[0]

    def test_schedule_collects_upstream_stages(self):
        X = T.placeholder((4,), name="X")
        mid = T.compute((4,), lambda i: X[i] * 2.0, name="mid")
        out = T.compute((4,), lambda i: mid[i] + 1.0, name="outt")
        s = create_schedule(out)
        assert "mid" in s.stages and "outt" in s.stages

    def test_stage_lookup_missing(self):
        _, _, C = _matmul()
        s = create_schedule(C)
        other = T.compute((4,), lambda i: i + 0, name="other")
        with pytest.raises(KeyError):
            s[other]

    def test_stage_requires_compute(self):
        from repro.tensorir.schedule import Stage
        X = T.placeholder((4,), name="X")
        with pytest.raises(TypeError):
            Stage(X)
