"""CUDA source-generation tests (structural: no GPU to compile on)."""

import numpy as np
import pytest

from repro import tensorir as T
from repro.tensorir.cuda_codegen import emit_cuda, expr_to_c
from repro.tensorir import expr as E


class TestExprToC:
    def test_immediates(self):
        assert expr_to_c(E.const(3)) == "3"
        assert expr_to_c(E.const(2.5)) == "2.5f"
        assert expr_to_c(E.FloatImm(float("-inf"))) == "-INFINITY"

    def test_flat_indexing_row_major(self):
        X = T.placeholder((4, 8), name="X")
        i, j = E.Var("i", "int64"), E.Var("j", "int64")
        assert expr_to_c(X[i, j]) == "X[(i) * 8 + j]"

    def test_intrinsics_map_to_c_float_functions(self):
        x = E.Var("x", "float32")
        assert "expf(" in expr_to_c(T.exp(x))
        assert "sqrtf(" in expr_to_c(T.sqrt(x))
        assert expr_to_c(T.sigmoid(x)).count("expf") == 1

    def test_max_min_and_select(self):
        x = E.Var("x", "float32")
        assert expr_to_c(T.maximum(x, 0.0)) == "max(x, 0.0f)"
        assert "?" in expr_to_c(T.select(x > 0, x, 0.0))


class TestEmitCuda:
    def _matmul_schedule(self, bind=True):
        A = T.placeholder((16, 8), name="A")
        B = T.placeholder((8, 16), name="B")
        k = T.reduce_axis((0, 8), "k")
        C = T.compute((16, 16), lambda i, j: T.sum_reduce(A[i, k] * B[k, j],
                                                          axis=k), name="C")
        s = T.create_schedule(C)
        if bind:
            s[C].bind(C.op.axis[0], "block.x")
            s[C].bind(C.op.axis[1], "thread.x")
        return s, [A, B]

    def test_kernel_signature(self):
        s, args = self._matmul_schedule()
        src = emit_cuda(s, args, name="mm")
        assert 'extern "C" __global__ void mm(' in src
        assert "float* __restrict__ C" in src
        assert "const float* __restrict__ A" in src

    def test_thread_bindings_with_guards(self):
        s, args = self._matmul_schedule()
        src = emit_cuda(s, args)
        assert "blockIdx.x" in src and "threadIdx.x" in src
        assert "return;" in src  # grid guards

    def test_unbound_schedule_emits_plain_loops(self):
        s, args = self._matmul_schedule(bind=False)
        src = emit_cuda(s, args)
        assert "for (int" in src
        assert "blockIdx" not in src

    def test_reduction_emits_init_and_accumulate(self):
        s, args = self._matmul_schedule()
        src = emit_cuda(s, args)
        assert "= 0.0f;" in src
        assert "+=" in src

    def test_tree_reduce_emits_shared_memory_reduction(self):
        X = T.placeholder((32, 64), name="X")
        k = T.reduce_axis((0, 64), "k")
        t = T.compute((32,), lambda i: T.sum_reduce(X[i, k], axis=k),
                      name="rowsum")
        s = T.create_schedule(t)
        s[t].bind(t.op.axis[0], "block.x")
        s[t].tree_reduce(t.op.reduce_axis[0], "thread.x")
        src = emit_cuda(s, [X])
        assert "__shared__ float _reduce_buf" in src
        assert "__syncthreads();" in src
        assert "blockDim.x / 2" in src          # the halving loop
        assert "k += blockDim.x" in src         # strided per-thread partials

    def test_unroll_pragma(self):
        X = T.placeholder((8,), name="X")
        t = T.compute((8,), lambda i: X[i] * 2.0)
        s = T.create_schedule(t)
        s[t].unroll(t.op.axis[0])
        src = emit_cuda(s, [X])
        assert "#pragma unroll" in src

    def test_int_placeholder_gets_long_pointer(self):
        IDX = T.placeholder((8,), name="IDX", dtype="int64")
        X = T.placeholder((8,), name="X")
        t = T.compute((8,), lambda i: X[IDX[i]])
        s = T.create_schedule(t)
        src = emit_cuda(s, [X, IDX])
        assert "const long* __restrict__ IDX" in src


class TestFusedTemplateCuda:
    @pytest.fixture()
    def adj(self):
        r = np.random.default_rng(0)
        from repro.graph import from_edges
        return from_edges(50, 50, r.integers(0, 50, 400),
                          r.integers(0, 50, 400))

    def test_gcn_fused_source(self, adj):
        from repro.core import kernels
        k = kernels.gcn_aggregation(adj, 50, 64, target="gpu")
        src = k.cuda_source()
        assert "__global__ void fused_spmm" in src
        assert "A_indptr[v]" in src              # CSR edge loop
        assert "threadIdx.x" in src              # feature-across-threads
        assert "out[v * 64 + i0] +=" in src      # fused sum aggregation
        assert "XV[(__src) * 64 + i0]" in src    # inlined UDF gather

    def test_mlp_fused_source_has_reduction_and_relu(self, adj):
        from repro.core import kernels
        k = kernels.mlp_aggregation(adj, 50, 8, 16, target="gpu")
        src = k.cuda_source("fused_mlp")
        assert "float _m = 0.0f;" in src
        assert "W[(k) * 16 + i0]" in src
        assert "max(_m, 0.0f)" in src            # the ReLU epilogue
        assert "max(out[" in src                 # max aggregation

    def test_edge_feature_kernel_binds_eid(self, adj):
        from repro.core import kernels
        k = kernels.u_mul_e(adj, 50, adj.nnz, 8, target="gpu")
        src = k.cuda_source()
        assert "__eid = A_edge_ids[e];" in src
        assert "XE[(__eid) * 8" in src

    def test_sddmm_tree_reduction_source(self, adj):
        """The Fig. 7b kernel: block per edge, shared-memory tree reduce."""
        from repro.core import kernels
        k = kernels.dot_attention(adj, 50, 64, target="gpu")
        assert k.tree_reduce
        src = k.cuda_source()
        assert "__global__ void fused_sddmm" in src
        assert "long e = blockIdx.x;" in src
        assert "__shared__ float _reduce_buf" in src
        assert "k += blockDim.x" in src
        assert "__syncthreads();" in src
        assert "out[__eid * 1" in src

    def test_sddmm_without_tree_reduce_is_serial(self, adj):
        from repro.core import kernels
        k = kernels.dot_attention(adj, 50, 32, target="cpu")  # no tree FDS
        src = k.cuda_source()
        assert "_reduce_buf" not in src
        assert "float _m = 0.0f;" in src

    def test_multihead_sddmm_loops_heads(self, adj):
        from repro.core import kernels
        k = kernels.multihead_dot_attention(adj, 50, 4, 8, target="gpu")
        src = k.cuda_source()
        assert "for (int i0 = 0; i0 < 4" in src
        assert "XV[(__src) * 32 + (i0) * 8 + k]" in src

    def test_elementwise_edge_function_source(self, adj):
        import repro.core as featgraph
        from repro import tensorir as T

        XV = T.placeholder((50, 8), name="XV")

        def edgefunc(s, d, e):
            return T.compute((8,), lambda i: XV[s, i] + XV[d, i])

        k = featgraph.sddmm(adj, edgefunc, target="gpu")
        src = k.cuda_source()
        assert "out[__eid * 8 + i0] =" in src
        assert "XV[(__dst) * 8 + i0]" in src
