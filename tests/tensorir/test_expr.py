"""Unit tests for the tensor-expression language."""

import numpy as np
import pytest

from repro.tensorir import expr as E


class TestConst:
    def test_int_immediate(self):
        c = E.const(3)
        assert isinstance(c, E.IntImm) and c.value == 3

    def test_float_immediate(self):
        c = E.const(2.5)
        assert isinstance(c, E.FloatImm) and c.value == 2.5

    def test_passthrough_expr(self):
        v = E.Var("x")
        assert E.const(v) is v

    def test_explicit_dtype(self):
        c = E.const(3, dtype="float64")
        assert isinstance(c, E.FloatImm) and c.dtype == "float64"


class TestArithmetic:
    def test_add_builds_binop(self):
        a, b = E.Var("a", "float32"), E.Var("b", "float32")
        node = a + b
        assert isinstance(node, E.BinOp) and node.op == "+"

    def test_radd_with_scalar(self):
        a = E.Var("a", "float32")
        node = 1.0 + a
        assert isinstance(node, E.BinOp)
        assert isinstance(node.a, E.FloatImm)

    def test_sub_mul_div(self):
        a, b = E.Var("a"), E.Var("b")
        assert (a - b).op == "-"
        assert (a * b).op == "*"
        assert (a / b).op == "/"

    def test_floordiv_mod(self):
        a = E.Var("a")
        assert (a // 4).op == "//"
        assert (a % 4).op == "%"

    def test_neg(self):
        a = E.Var("a", "float32")
        node = -a
        assert isinstance(node, E.BinOp) and node.op == "-"

    def test_comparison_dtype_is_bool(self):
        a = E.Var("a")
        assert (a < 3).dtype == "bool"
        assert (a >= 3).dtype == "bool"

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            E.BinOp("^", E.const(1), E.const(2))

    def test_children(self):
        a, b = E.Var("a"), E.Var("b")
        node = a + b
        assert node.children() == (a, b)


class TestIntrinsics:
    def test_known_intrinsics(self):
        x = E.Var("x", "float32")
        for fn in (E.exp, E.log, E.sqrt, E.tanh, E.sigmoid):
            node = fn(x)
            assert isinstance(node, E.Call)

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            E.Call("fancy", (E.const(1.0),))

    def test_relu_is_max_with_zero(self):
        x = E.Var("x", "float32")
        node = E.relu(x)
        assert isinstance(node, E.BinOp) and node.op == "max"

    def test_maximum_minimum(self):
        a, b = E.Var("a", "float32"), E.Var("b", "float32")
        assert E.maximum(a, b).op == "max"
        assert E.minimum(a, b).op == "min"

    def test_select(self):
        x = E.Var("x", "float32")
        node = E.select(x > 0, x, 0.0)
        assert isinstance(node, E.Select)


class TestIterVar:
    def test_domain_and_extent(self):
        iv = E.IterVar((2, 10), "i")
        assert iv.extent == 8

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            E.IterVar((5, 2))

    def test_reduce_axis_kind(self):
        k = E.reduce_axis((0, 4), "k")
        assert k.kind == E.IterVar.REDUCE


class TestReduce:
    def test_sum_over_axis(self):
        k = E.reduce_axis((0, 4))
        node = E.sum(E.const(1.0), axis=k)
        assert node.combiner == "sum" and node.axes == (k,)

    def test_reduce_requires_reduce_axis(self):
        data_axis = E.IterVar((0, 4), kind=E.IterVar.DATA)
        with pytest.raises(ValueError):
            E.Reduce("sum", E.const(1.0), [data_axis])

    def test_reduce_requires_axis_list(self):
        with pytest.raises(ValueError):
            E.Reduce("sum", E.const(1.0), [])

    def test_unknown_combiner(self):
        k = E.reduce_axis((0, 4))
        with pytest.raises(ValueError):
            E.Reduce("xor", E.const(1.0), [k])

    def test_identity_values(self):
        k = E.reduce_axis((0, 4))
        assert E.Reduce("sum", E.const(1.0), [k]).identity == 0.0
        assert E.Reduce("max", E.const(1.0), [k]).identity == float("-inf")
        assert E.Reduce("prod", E.const(1.0), [k]).identity == 1.0

    def test_max_without_axis_is_error(self):
        with pytest.raises(TypeError):
            E.max(E.const(1.0))


class TestTensor:
    def test_placeholder(self):
        t = E.placeholder((3, 4), name="X")
        assert t.shape == (3, 4) and t.name == "X"
        assert isinstance(t.op, E.PlaceholderOp)

    def test_indexing_produces_elem(self):
        t = E.placeholder((3, 4), name="X")
        elem = t[1, 2]
        assert isinstance(elem, E.TensorElem)

    def test_wrong_rank_index_rejected(self):
        t = E.placeholder((3, 4))
        with pytest.raises(ValueError):
            t[1]

    def test_placeholder_has_no_axes(self):
        t = E.placeholder((3,))
        with pytest.raises(TypeError):
            _ = t.axis


class TestComputeOp:
    def test_shape_and_axes(self):
        t = E.compute((3, 5), lambda i, j: i + j, name="c")
        assert t.shape == (3, 5)
        assert len(t.op.axis) == 2

    def test_reduce_axis_discovery(self):
        X = E.placeholder((4, 4), name="X")
        k = E.reduce_axis((0, 4), "k")
        t = E.compute((4,), lambda i: E.sum(X[i, k], axis=k))
        assert t.op.reduce_axis == (k,)

    def test_input_tensor_discovery(self):
        X = E.placeholder((4,), name="Xi")
        Y = E.placeholder((4,), name="Yi")
        t = E.compute((4,), lambda i: X[i] * Y[i] + X[i])
        names = {p.name for p in t.op.input_tensors()}
        assert names == {"Xi", "Yi"}

    def test_free_var_discovery(self):
        X = E.placeholder((4, 4), name="X")
        src = E.Var("src")
        t = E.compute((4,), lambda i: X[src, i])
        assert [v.name for v in t.op.free_vars()] == ["src"]

    def test_axes_not_reported_as_free(self):
        t = E.compute((4,), lambda i: i + 0)
        assert t.op.free_vars() == ()
