"""Tests of the vectorized expression evaluator, including property-based
comparison with direct numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import tensorir as T
from repro.tensorir.evaluator import evaluate, evaluate_batched


class TestEvaluate:
    def test_identity_copy(self):
        X = T.placeholder((5, 3), name="X")
        t = T.compute((5, 3), lambda i, j: X[i, j])
        x = np.arange(15, dtype=np.float32).reshape(5, 3)
        assert np.array_equal(evaluate(t, {"X": x}), x)

    def test_transpose(self):
        X = T.placeholder((4, 6), name="X")
        t = T.compute((6, 4), lambda i, j: X[j, i])
        x = np.random.default_rng(0).random((4, 6)).astype(np.float32)
        assert np.allclose(evaluate(t, {"X": x}), x.T)

    def test_elementwise_chain(self):
        X = T.placeholder((8,), name="X")
        t = T.compute((8,), lambda i: T.exp(X[i]) * 2.0 + 1.0)
        x = np.linspace(-1, 1, 8).astype(np.float32)
        assert np.allclose(evaluate(t, {"X": x}), np.exp(x) * 2 + 1, atol=1e-5)

    def test_matmul_via_reduce(self):
        A = T.placeholder((5, 4), name="A")
        B = T.placeholder((4, 3), name="B")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((5, 3), lambda i, j: T.sum_reduce(A[i, k] * B[k, j], axis=k))
        rng = np.random.default_rng(1)
        a = rng.random((5, 4)).astype(np.float32)
        b = rng.random((4, 3)).astype(np.float32)
        assert np.allclose(evaluate(t, {"A": a, "B": b}), a @ b, atol=1e-5)

    def test_max_reduce(self):
        A = T.placeholder((6, 7), name="A")
        k = T.reduce_axis((0, 7), "k")
        t = T.compute((6,), lambda i: T.max_reduce(A[i, k], axis=k))
        a = np.random.default_rng(2).standard_normal((6, 7)).astype(np.float32)
        assert np.allclose(evaluate(t, {"A": a}), a.max(axis=1))

    def test_min_and_prod_reduce(self):
        A = T.placeholder((3, 4), name="A")
        k = T.reduce_axis((0, 4), "k")
        tmin = T.compute((3,), lambda i: T.min_reduce(A[i, k], axis=k))
        tprod = T.compute((3,), lambda i: T.prod_reduce(A[i, k], axis=k))
        a = (np.random.default_rng(3).random((3, 4)) + 0.5).astype(np.float32)
        assert np.allclose(evaluate(tmin, {"A": a}), a.min(axis=1))
        assert np.allclose(evaluate(tprod, {"A": a}), a.prod(axis=1), rtol=1e-5)

    def test_nested_reduce_axes(self):
        A = T.placeholder((2, 3, 4), name="A")
        j = T.reduce_axis((0, 3), "j")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((2,), lambda i: T.Reduce("sum", A[i, j, k], (j, k)))
        a = np.random.default_rng(4).random((2, 3, 4)).astype(np.float32)
        assert np.allclose(evaluate(t, {"A": a}), a.sum(axis=(1, 2)), atol=1e-5)

    def test_select(self):
        X = T.placeholder((8,), name="X")
        t = T.compute((8,), lambda i: T.select(X[i] > 0, X[i], 0.0))
        x = np.linspace(-1, 1, 8).astype(np.float32)
        assert np.allclose(evaluate(t, {"X": x}), np.maximum(x, 0))

    def test_sigmoid_and_tanh(self):
        X = T.placeholder((6,), name="X")
        t = T.compute((6,), lambda i: T.sigmoid(X[i]) + T.tanh(X[i]))
        x = np.linspace(-2, 2, 6).astype(np.float32)
        ref = 1 / (1 + np.exp(-x)) + np.tanh(x)
        assert np.allclose(evaluate(t, {"X": x}), ref, atol=1e-5)

    def test_missing_binding_raises(self):
        X = T.placeholder((4,), name="Xmissing")
        t = T.compute((4,), lambda i: X[i])
        with pytest.raises(KeyError, match="Xmissing"):
            evaluate(t, {})

    def test_integer_arithmetic_in_index(self):
        X = T.placeholder((8,), name="X")
        t = T.compute((4,), lambda i: X[i * 2])
        x = np.arange(8, dtype=np.float32)
        assert np.array_equal(evaluate(t, {"X": x}), x[::2])


class TestEvaluateBatched:
    def test_gather_rows(self):
        X = T.placeholder((10, 4), name="X")
        src = T.Var("src")
        t = T.compute((4,), lambda i: X[src, i])
        x = np.random.default_rng(5).random((10, 4)).astype(np.float32)
        idx = np.array([2, 7, 7, 0])
        out = evaluate_batched(t, {"X": x}, {"src": idx})
        assert np.array_equal(out, x[idx])

    def test_two_batch_vars(self):
        X = T.placeholder((10, 4), name="X")
        src, dst = T.Var("src"), T.Var("dst")
        t = T.compute((4,), lambda i: X[src, i] + X[dst, i])
        x = np.random.default_rng(6).random((10, 4)).astype(np.float32)
        s = np.array([1, 2]); d = np.array([3, 4])
        assert np.allclose(evaluate_batched(t, {"X": x}, {"src": s, "dst": d}),
                           x[s] + x[d])

    def test_eid_indexed_edge_feature(self):
        XE = T.placeholder((20, 3), name="XE")
        eid = T.Var("eid")
        t = T.compute((3,), lambda i: XE[eid, i] * 2.0)
        xe = np.random.default_rng(7).random((20, 3)).astype(np.float32)
        ids = np.array([5, 0, 19])
        assert np.allclose(evaluate_batched(t, {"XE": xe}, {"eid": ids}),
                           xe[ids] * 2)

    def test_batched_reduce(self):
        X = T.placeholder((10, 4), name="X")
        W = T.placeholder((4, 6), name="W")
        src = T.Var("src")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((6,), lambda i: T.sum_reduce(X[src, k] * W[k, i], axis=k))
        rng = np.random.default_rng(8)
        x = rng.random((10, 4)).astype(np.float32)
        w = rng.random((4, 6)).astype(np.float32)
        s = np.array([0, 9, 4])
        assert np.allclose(evaluate_batched(t, {"X": x, "W": w}, {"src": s}),
                           x[s] @ w, atol=1e-5)

    def test_axis_range_tiling(self):
        X = T.placeholder((10, 8), name="X")
        src = T.Var("src")
        t = T.compute((8,), lambda i: X[src, i])
        x = np.random.default_rng(9).random((10, 8)).astype(np.float32)
        s = np.array([3, 1])
        ax = t.op.axis[0].name
        out = evaluate_batched(t, {"X": x}, {"src": s}, axis_ranges={ax: (2, 5)})
        assert out.shape == (2, 3)
        assert np.array_equal(out, x[s][:, 2:5])

    def test_axis_range_out_of_domain_rejected(self):
        X = T.placeholder((10, 8), name="X")
        src = T.Var("src")
        t = T.compute((8,), lambda i: X[src, i])
        ax = t.op.axis[0].name
        with pytest.raises(ValueError):
            evaluate_batched(t, {"X": np.zeros((10, 8), np.float32)},
                             {"src": np.array([0])}, axis_ranges={ax: (2, 12)})

    def test_multidim_output(self):
        X = T.placeholder((10, 3, 4), name="X")
        src = T.Var("src")
        t = T.compute((3, 4), lambda h, i: X[src, h, i])
        x = np.random.default_rng(10).random((10, 3, 4)).astype(np.float32)
        s = np.array([8, 2, 2])
        assert np.array_equal(evaluate_batched(t, {"X": x}, {"src": s}), x[s])

    def test_mismatched_batch_lengths_rejected(self):
        X = T.placeholder((10, 4), name="X")
        src, dst = T.Var("src"), T.Var("dst")
        t = T.compute((4,), lambda i: X[src, i] + X[dst, i])
        with pytest.raises(ValueError):
            evaluate_batched(t, {"X": np.zeros((10, 4), np.float32)},
                             {"src": np.array([1, 2]), "dst": np.array([1])})

    def test_empty_batch(self):
        X = T.placeholder((10, 4), name="X")
        src = T.Var("src")
        t = T.compute((4,), lambda i: X[src, i])
        out = evaluate_batched(t, {"X": np.zeros((10, 4), np.float32)},
                               {"src": np.empty(0, dtype=np.int64)})
        assert out.shape == (0, 4)

    def test_placeholder_tensor_rejected(self):
        X = T.placeholder((10, 4), name="X")
        with pytest.raises(TypeError):
            evaluate_batched(X, {"X": np.zeros((10, 4))}, {"src": np.array([0])})


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 12),
    d=st.integers(1, 6),
    batch=st.integers(1, 8),
    scale=st.floats(-2, 2),
    seed=st.integers(0, 1000),
)
def test_affine_udf_matches_numpy(n, d, batch, scale, seed):
    """Property: a scaled copy UDF equals the numpy gather for any shape."""
    rng = np.random.default_rng(seed)
    X = T.placeholder((n, d), name="X")
    src = T.Var("src")
    t = T.compute((d,), lambda i: X[src, i] * scale + 1.0)
    x = rng.random((n, d)).astype(np.float32)
    idx = rng.integers(0, n, batch)
    out = evaluate_batched(t, {"X": x}, {"src": idx})
    assert np.allclose(out, x[idx] * np.float32(scale) + 1.0, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 10),
    d1=st.integers(1, 5),
    d2=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_mlp_udf_matches_numpy(n, d1, d2, seed):
    """Property: the paper's Fig. 3b message function equals its numpy form."""
    rng = np.random.default_rng(seed)
    X = T.placeholder((n, d1), name="X")
    W = T.placeholder((d1, d2), name="W")
    src, dst = T.Var("src"), T.Var("dst")
    k = T.reduce_axis((0, d1), "k")
    t = T.compute((d2,), lambda i: T.maximum(
        T.sum_reduce((X[src, k] + X[dst, k]) * W[k, i], axis=k), 0.0))
    x = rng.standard_normal((n, d1)).astype(np.float32)
    w = rng.standard_normal((d1, d2)).astype(np.float32)
    s = rng.integers(0, n, 4)
    d = rng.integers(0, n, 4)
    out = evaluate_batched(t, {"X": x, "W": w}, {"src": s, "dst": d})
    assert np.allclose(out, np.maximum((x[s] + x[d]) @ w, 0), atol=1e-4)
