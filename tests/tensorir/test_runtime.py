"""Worker-pool and runtime-counter tests."""

import threading

import numpy as np
import pytest

from repro.tensorir.runtime import ExecStats, WorkPool, default_pool


class TestParallelFor:
    def test_covers_range_exactly_once(self):
        pool = WorkPool(4)
        hits = np.zeros(1000, dtype=np.int64)
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                hits[lo:hi] += 1

        pool.parallel_for(1000, fn)
        pool.shutdown()
        assert np.all(hits == 1)

    def test_empty_range_is_noop(self):
        pool = WorkPool(2)
        called = []
        pool.parallel_for(0, lambda lo, hi: called.append((lo, hi)))
        assert called == []
        pool.shutdown()

    def test_single_worker_runs_inline(self):
        pool = WorkPool(1)
        calls = []
        pool.parallel_for(10, lambda lo, hi: calls.append((lo, hi)))
        assert calls == [(0, 10)]

    def test_custom_chunk_count(self):
        pool = WorkPool(4)
        calls = []
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                calls.append((lo, hi))

        pool.parallel_for(100, fn, num_chunks=10)
        pool.shutdown()
        assert len(calls) == 10
        assert sorted(calls)[0][0] == 0 and sorted(calls)[-1][1] == 100

    def test_sum_reduction_correct(self):
        pool = WorkPool(8)
        data = np.arange(10000, dtype=np.float64)
        partial = []
        lock = threading.Lock()

        def fn(lo, hi):
            s = data[lo:hi].sum()
            with lock:
                partial.append(s)

        pool.parallel_for(len(data), fn)
        pool.shutdown()
        assert sum(partial) == data.sum()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkPool(0)


class TestCooperativeFor:
    def test_tasks_processed_in_order(self):
        """All workers share one task at a time (LLC-contention avoidance)."""
        pool = WorkPool(4)
        events = []
        lock = threading.Lock()

        def fn(task, lo, hi):
            with lock:
                events.append(task)

        pool.cooperative_for([0, 1, 2], n_of=lambda t: 50, fn=fn)
        pool.shutdown()
        # task t's chunks must all appear before any of task t+1's
        last_seen = {}
        for i, t in enumerate(events):
            last_seen[t] = i
        first_seen = {}
        for i, t in reversed(list(enumerate(events))):
            first_seen[t] = i
        assert last_seen[0] < first_seen[1] < last_seen[1] < first_seen[2]


class TestMap:
    def test_map_preserves_order(self):
        pool = WorkPool(4)
        out = pool.map(lambda x: x * x, list(range(20)))
        pool.shutdown()
        assert out == [x * x for x in range(20)]

    def test_context_manager(self):
        with WorkPool(2) as pool:
            assert pool.map(lambda x: -x, [1, 2]) == [-1, -2]

    def test_default_pool_singleton(self):
        assert default_pool() is default_pool()


class TestEnvAndStats:
    def test_num_workers_env_var(self, monkeypatch):
        monkeypatch.setenv("FEATGRAPH_NUM_WORKERS", "3")
        assert WorkPool().num_workers == 3
        monkeypatch.delenv("FEATGRAPH_NUM_WORKERS")
        assert WorkPool().num_workers >= 1

    def test_explicit_count_beats_env(self, monkeypatch):
        monkeypatch.setenv("FEATGRAPH_NUM_WORKERS", "3")
        assert WorkPool(num_workers=2).num_workers == 2

    def test_stats_counts_dispatched_chunks(self):
        with WorkPool(4) as pool:
            s = pool.stats()
            assert s == {"workers": 4, "backend": "thread",
                         "chunks_dispatched": 0, "worker_chunks": {},
                         "active": False}
            pool.parallel_for(100, lambda lo, hi: None, num_chunks=10)
            pool.map(lambda x: x, [1, 2, 3])
            s = pool.stats()
            assert s["chunks_dispatched"] == 13
            assert s["active"]
            assert sum(s["worker_chunks"].values()) == 13

    def test_inline_paths_counted(self):
        with WorkPool(1) as pool:
            pool.parallel_for(5, lambda lo, hi: None)
            pool.map(lambda x: x, [7])
            assert pool.stats()["chunks_dispatched"] == 2
            assert not pool.stats()["active"]  # never spun up threads


class TestExecStats:
    def test_accumulates_and_reports(self):
        st = ExecStats()
        st.add_chunk(0.5, 0.25, 100, compiled=True)
        st.add_chunk(0.5, bytes_moved=50)
        d = st.as_dict()
        assert d["eval_seconds"] == 1.0
        assert d["aggregate_seconds"] == 0.25
        assert d["bytes_moved"] == 150
        assert d["chunks"] == 2 and d["compiled_chunks"] == 1
        assert "chunks=2" in repr(st)

    def test_thread_safe_under_contention(self):
        st = ExecStats()
        threads = [threading.Thread(
            target=lambda: [st.add_chunk(0.001, compiled=True)
                            for _ in range(500)]) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        d = st.as_dict()
        assert d["chunks"] == d["compiled_chunks"] == 4000
