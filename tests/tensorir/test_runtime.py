"""Worker-pool tests."""

import threading

import numpy as np
import pytest

from repro.tensorir.runtime import WorkPool, default_pool


class TestParallelFor:
    def test_covers_range_exactly_once(self):
        pool = WorkPool(4)
        hits = np.zeros(1000, dtype=np.int64)
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                hits[lo:hi] += 1

        pool.parallel_for(1000, fn)
        pool.shutdown()
        assert np.all(hits == 1)

    def test_empty_range_is_noop(self):
        pool = WorkPool(2)
        called = []
        pool.parallel_for(0, lambda lo, hi: called.append((lo, hi)))
        assert called == []
        pool.shutdown()

    def test_single_worker_runs_inline(self):
        pool = WorkPool(1)
        calls = []
        pool.parallel_for(10, lambda lo, hi: calls.append((lo, hi)))
        assert calls == [(0, 10)]

    def test_custom_chunk_count(self):
        pool = WorkPool(4)
        calls = []
        lock = threading.Lock()

        def fn(lo, hi):
            with lock:
                calls.append((lo, hi))

        pool.parallel_for(100, fn, num_chunks=10)
        pool.shutdown()
        assert len(calls) == 10
        assert sorted(calls)[0][0] == 0 and sorted(calls)[-1][1] == 100

    def test_sum_reduction_correct(self):
        pool = WorkPool(8)
        data = np.arange(10000, dtype=np.float64)
        partial = []
        lock = threading.Lock()

        def fn(lo, hi):
            s = data[lo:hi].sum()
            with lock:
                partial.append(s)

        pool.parallel_for(len(data), fn)
        pool.shutdown()
        assert sum(partial) == data.sum()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkPool(0)


class TestCooperativeFor:
    def test_tasks_processed_in_order(self):
        """All workers share one task at a time (LLC-contention avoidance)."""
        pool = WorkPool(4)
        events = []
        lock = threading.Lock()

        def fn(task, lo, hi):
            with lock:
                events.append(task)

        pool.cooperative_for([0, 1, 2], n_of=lambda t: 50, fn=fn)
        pool.shutdown()
        # task t's chunks must all appear before any of task t+1's
        last_seen = {}
        for i, t in enumerate(events):
            last_seen[t] = i
        first_seen = {}
        for i, t in reversed(list(enumerate(events))):
            first_seen[t] = i
        assert last_seen[0] < first_seen[1] < last_seen[1] < first_seen[2]


class TestMap:
    def test_map_preserves_order(self):
        pool = WorkPool(4)
        out = pool.map(lambda x: x * x, list(range(20)))
        pool.shutdown()
        assert out == [x * x for x in range(20)]

    def test_context_manager(self):
        with WorkPool(2) as pool:
            assert pool.map(lambda x: -x, [1, 2]) == [-1, -2]

    def test_default_pool_singleton(self):
        assert default_pool() is default_pool()
