"""Graph-level fusion IR: legality decisions, CSE modes, elision
accounting, and the analyzer-cleanliness of the generated loop nest.

These tests exercise :mod:`repro.core.fusion` below the executor: what the
planner accepts and refuses (and *why*), what the cross-kernel CSE detects,
which intermediate buffers the plan elides, and that the fused single-sweep
loop nest carries no FG001--FG005 diagnostics.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core.compile import KernelCache
from repro.core.fusion import (FusedEdgeSoftmax, FusionError, KernelGraph,
                               compile_fused, fused_loop_nest, plan_fusion)
from repro.graph.sparse import from_edges
from repro.tensorir.ir import stmt_to_str


def _graph(n=6, m=18, seed=0):
    rng = np.random.default_rng(seed)
    return from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))


def _score_chain(adj, w=2, *, agg="sum", vertex_read_var="dst",
                 extra_edge_read=False, score_A=None):
    """A 3-stage chain (sddmm scores -> spmm reduce -> sddmm consume) with
    knobs for each legality rule."""
    m = max(adj.nnz, 1)
    n = adj.shape[0]
    EW = T.placeholder((m, w), name="EW")
    S = T.placeholder((m, w), name="S")
    R = T.placeholder((n, w), name="R")
    EXTRA = T.placeholder((m, w), name="EXTRA")

    def score(src, dst, eid):
        return T.compute((w,), lambda i: EW[eid, i] * 2.0, name="score")

    def reduce_msg(src, dst, eid):
        return T.compute((w,), lambda i: S[eid, i], name="reduce")

    def consume(src, dst, eid):
        if vertex_read_var == "src":
            body = lambda i: S[eid, i] + R[src, i]       # noqa: E731
        elif extra_edge_read:
            body = lambda i: S[eid, i] * EXTRA[eid, i]   # noqa: E731
        else:
            body = lambda i: S[eid, i] + R[dst, i]       # noqa: E731
        return T.compute((w,), body, name="consume")

    kg = KernelGraph(adj, target="cpu", outputs=("OUT",))
    kg.add_stage("S", "sddmm", score, A=score_A)
    kg.add_stage("R", "spmm", reduce_msg, aggregation=agg)
    kg.add_stage("OUT", "sddmm", consume)
    return kg


class TestLegality:
    def test_single_stage_rejected(self):
        kg = KernelGraph(_graph(), target="cpu")
        kg.add_stage("S", "sddmm",
                     lambda src, dst, eid: T.compute(
                         (1,), lambda i: T.const(1.0), name="one"))
        with pytest.raises(FusionError, match="at least two stages"):
            plan_fusion(kg, cache=KernelCache())

    def test_gpu_target_rejected(self):
        kg = _score_chain(_graph())
        kg.target = "gpu"
        with pytest.raises(FusionError, match="cpu-only"):
            plan_fusion(kg, cache=KernelCache())

    def test_mismatched_iteration_space_rejected(self):
        """All stages must share one graph: a stage iterating a different
        topology cannot join the single edge sweep."""
        kg = _score_chain(_graph(seed=0), score_A=_graph(seed=1))
        with pytest.raises(FusionError, match="different graph"):
            plan_fusion(kg, cache=KernelCache())

    def test_unfusable_aggregation_rejected(self):
        kg = _score_chain(_graph(), agg="prod")
        with pytest.raises(FusionError, match="single sweep"):
            plan_fusion(kg, cache=KernelCache())

    def test_mean_chain_read_rejected(self):
        # mean itself fuses (sum + finalize divide), but an in-sweep
        # consumer of the mean buffer would read raw, undivided sums
        kg = _score_chain(_graph(), agg="mean")
        with pytest.raises(FusionError, match="mean-aggregated"):
            plan_fusion(kg, cache=KernelCache())

    def test_disconnected_stage_rejected(self):
        """A stage reading no earlier stage's output is an independent
        kernel, not a chain link."""
        adj = _graph()
        m = adj.nnz
        EW = T.placeholder((m, 2), name="EW")
        kg = KernelGraph(adj, target="cpu")
        kg.add_stage("A", "sddmm",
                     lambda src, dst, eid: T.compute(
                         (2,), lambda i: EW[eid, i], name="a"))
        kg.add_stage("B", "sddmm",
                     lambda src, dst, eid: T.compute(
                         (2,), lambda i: EW[eid, i] * 3.0, name="b"))
        with pytest.raises(FusionError, match="no earlier stage"):
            plan_fusion(kg, cache=KernelCache())

    def test_vertex_reduction_boundary_rejected(self):
        """Reading a chain vertex buffer through ``src`` needs the whole
        reduction finished before any consumer edge runs -- a second sweep,
        which fusion must refuse."""
        kg = _score_chain(_graph(), vertex_read_var="src")
        with pytest.raises(FusionError, match="reduction boundary"):
            plan_fusion(kg, cache=KernelCache())

    def test_chain_edge_plus_real_edge_input_rejected(self):
        """A chunk-local chain edge buffer (position-indexed) cannot share
        a stage with a real per-edge input (globally eid-indexed)."""
        kg = _score_chain(_graph(), extra_edge_read=True)
        with pytest.raises(FusionError, match="index spaces"):
            plan_fusion(kg, cache=KernelCache())

    def test_legal_chain_plans(self):
        plan = plan_fusion(_score_chain(_graph()), cache=KernelCache())
        assert [s.name for s in plan.stages] == ["S", "R", "OUT"]
        assert plan.outputs == ("OUT",)


class TestCseAndElision:
    def test_edge_softmax_chain_uses_binop_reuse(self):
        """The normalize stage divides the exp-sum stage's per-edge values
        by a vertex gather: ``exp`` runs once, not twice."""
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache())
        plan = fes.kernel.plan
        assert ("ALPHA", "binop", "SUMV") in plan.cse
        alpha = plan.stage("ALPHA")
        assert alpha.mode == "binop"
        assert alpha.binop_op == "/"
        tensor, lead, src_is_rhs = alpha.binop_operand
        assert (tensor, lead) == ("SUMV", "dst")
        assert not src_is_rhs  # exp(...) / SUMV[dst]: source is the lhs

    def test_identical_bodies_alias(self):
        """A stage whose whole body equals an earlier stage's reuses its
        values outright (mode ``alias``)."""
        adj = _graph()
        m, n, w = adj.nnz, adj.shape[0], 2
        ES = T.placeholder((m, w), name="ES")
        MAXV = T.placeholder((n, w), name="MAXV")

        def expsum(src, dst, eid):
            return T.compute((w,), lambda i: T.exp(ES[eid, i] - MAXV[dst, i]),
                             name="expsum")

        def exp_edge(src, dst, eid):
            return T.compute((w,), lambda i: T.exp(ES[eid, i] - MAXV[dst, i]),
                             name="expedge")

        def max_msg(src, dst, eid):
            return T.compute((w,), lambda i: ES[eid, i], name="maxmsg")

        kg = KernelGraph(adj, target="cpu", outputs=("E",))
        kg.add_stage("MAXV", "spmm", max_msg, aggregation="max")
        kg.add_stage("SUMV", "spmm", expsum, aggregation="sum")
        kg.add_stage("E", "sddmm", exp_edge)
        plan = plan_fusion(kg, cache=KernelCache())
        assert plan.stage("E").mode == "alias"
        assert plan.stage("E").alias_of == "SUMV"

    def test_elision_accounting(self):
        """Every non-output sddmm stage is elided, with its per-edge byte
        cost recorded; vertex buffers are never elided."""
        fes = FusedEdgeSoftmax(_graph(), 3, cache=KernelCache(),
                               feat_shape=(3, 4))
        plan = fes.kernel.plan
        assert plan.elided == {"ALPHA": 12}      # 3 heads * 4 B float32
        assert plan.stage("ALPHA").elided
        assert not plan.stage("MAXV").elided
        assert not plan.stage("OUT").elided
        assert plan.bytes_elided(100) == 1200

    def test_kept_output_is_not_elided(self):
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache())
        # ALPHA is the chain output here: it must survive
        assert fes.kernel.plan.elided == {}
        assert not fes.kernel.plan.stage("ALPHA").elided

    def test_call_source_records_decisions(self):
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache(),
                               feat_shape=(2, 3))
        src = fes.kernel.call_source
        assert "elided: ALPHA" in src
        assert "CSE: binop reuse of SUMV" in src
        assert "row_aligned_chunks" in src


class TestFusedLoopNest:
    def test_analyzer_report_clean(self):
        """The fused nest allocates nothing and keeps the destination loop
        serial: no FG001--FG005 diagnostics at any severity."""
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache(),
                               feat_shape=(2, 3))
        report = fes.kernel.analysis_report()
        assert report.diagnostics == ()
        for rule in ("FG001", "FG002", "FG003", "FG004", "FG005"):
            assert report.by_rule(rule) == ()

    def test_elided_buffer_absent_from_ir(self):
        """An elided producer emits no loop and no store; its body is
        spliced into the consumers."""
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache(),
                               feat_shape=(2, 3))
        txt = stmt_to_str(fes.kernel.lowered_ir())
        assert "ALPHA" not in txt
        assert "OUT" in txt and "MAXV" in txt and "SUMV" in txt
        # the splice carries the normalize arithmetic into the OUT store
        assert "exp" in txt and "/" in txt

    def test_surviving_edge_stage_stores_by_edge_id(self):
        plan = plan_fusion(_score_chain(_graph()), cache=KernelCache())
        txt = stmt_to_str(fused_loop_nest(plan, _graph()))
        assert "OUT[A_edge_ids[" in txt
        assert "S" not in [line.split("[")[0].strip()
                           for line in txt.splitlines()
                           if "=" in line and "S[" in line.split("=")[0]]


class TestFusedCacheBehavior:
    def test_udf_without_key_compiles_each_time(self):
        """Chains whose UDFs carry no ``udf_key`` are uncacheable: each
        compile_fused is a full fused-pipeline run."""
        adj = _graph()
        cache = KernelCache()
        kg1 = _score_chain(adj)
        kg2 = _score_chain(adj)
        compile_fused(kg1, cache=cache)
        compile_fused(kg2, cache=cache)
        s = cache.stats()
        assert s["fused_compiles"] == 2
        assert s["fused_binds"] == 0
        assert s["fused_templates"] == 0

    def test_keyed_chain_rebinds(self):
        adj = _graph()
        cache = KernelCache()
        FusedEdgeSoftmax(adj, 2, cache=cache)
        FusedEdgeSoftmax(_graph(seed=7), 2, cache=cache)
        s = cache.stats()
        assert s["fused_compiles"] == 1
        assert s["fused_binds"] == 1
        assert s["fused_templates"] == 1

    def test_strict_analysis_gate(self, monkeypatch):
        """Fused compiles run the analyzer; strict mode would raise on any
        error diagnostics (there are none for a legal chain)."""
        monkeypatch.setenv("FEATGRAPH_ANALYSIS_STRICT", "1")
        fes = FusedEdgeSoftmax(_graph(), 2, cache=KernelCache())
        assert fes.kernel.analysis_report().has_errors is False