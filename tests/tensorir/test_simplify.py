"""Expression-simplifier tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import tensorir as T
from repro.tensorir import expr as E
from repro.tensorir.evaluator import evaluate
from repro.tensorir.simplify import simplify


class TestConstantFolding:
    def test_arith_folds(self):
        out = simplify(E.const(2.0) * E.const(3.0) + E.const(1.0))
        assert isinstance(out, E.FloatImm) and out.value == 7.0

    def test_int_folds_stay_int(self):
        out = simplify(E.const(7) // E.const(2))
        assert isinstance(out, E.IntImm) and out.value == 3

    def test_max_min_fold(self):
        assert simplify(E.maximum(E.const(2.0), E.const(5.0))).value == 5.0
        assert simplify(E.minimum(E.const(2.0), E.const(5.0))).value == 2.0

    def test_select_on_const_condition(self):
        x = E.Var("x", "float32")
        out = simplify(E.select(E.const(1.0) > 0.0, x, E.const(9.0)))
        assert out is x


class TestIdentities:
    def test_add_zero(self):
        x = E.Var("x", "float32")
        assert simplify(x + 0.0) is x
        assert simplify(0.0 + x) is x

    def test_mul_one_and_zero(self):
        x = E.Var("x", "float32")
        assert simplify(x * 1.0) is x
        out = simplify(x * 0.0)
        assert isinstance(out, E.FloatImm) and out.value == 0.0

    def test_div_floordiv_one(self):
        x = E.Var("x", "int64")
        assert simplify(x / 1) is x
        assert simplify(x // 1) is x

    def test_sub_zero(self):
        x = E.Var("x", "float32")
        assert simplify(x - 0.0) is x

    def test_max_with_neg_inf(self):
        x = E.Var("x", "float32")
        assert simplify(E.maximum(x, float("-inf"))) is x

    def test_split_index_arithmetic(self):
        """The lowering pattern: outer*factor + inner with factor 1."""
        o, i = E.Var("o", "int64"), E.Var("i", "int64")
        out = simplify(o * 1 + i)
        assert isinstance(out, E.BinOp) and out.a is o and out.b is i

    def test_nested_cast_removed(self):
        x = E.Var("x", "float32")
        out = simplify(E.Cast(E.Cast(x, "float64"), "float32"))
        assert out is x

    def test_comparisons_fold_to_bool(self):
        out = simplify(E.const(1.0) < E.const(2.0))
        assert isinstance(out, E.IntImm) and out.dtype == "bool"
        assert out.value == 1
        assert simplify(E.const(3.0) < E.const(2.0)).value == 0


class TestRecursion:
    def test_simplifies_inside_tensor_index(self):
        X = T.placeholder((8,), name="X")
        elem = X[E.Var("i", "int64") + 0]
        out = simplify(elem)
        assert isinstance(out.indices[0], E.Var)

    def test_simplifies_inside_reduce(self):
        X = T.placeholder((4,), name="X")
        k = T.reduce_axis((0, 4), "k")
        node = E.Reduce("sum", X[k] * 1.0, (k,))
        out = simplify(node)
        assert isinstance(out.source, E.TensorElem)

    def test_simplifies_call_args(self):
        x = E.Var("x", "float32")
        out = simplify(T.exp(x + 0.0))
        assert out.args[0] is x


@settings(max_examples=40, deadline=None)
@given(
    a=st.floats(-10, 10, allow_nan=False),
    b=st.floats(-10, 10, allow_nan=False),
    c=st.floats(-10, 10, allow_nan=False),
    seed=st.integers(0, 100),
)
def test_simplify_preserves_value(a, b, c, seed):
    """Property: simplification never changes the computed value."""
    X = T.placeholder((4,), name="X")
    t_raw = T.compute((4,), lambda i: (X[i] * a + b) * 1.0 + 0.0 + c)
    body = t_raw.op.body
    x = np.random.default_rng(seed).random(4).astype(np.float32)
    from repro.tensorir.evaluator import eval_expr, _Env, _axis_grid
    env = _Env({"X": x}).child(_axis_grid(t_raw.op.axis, 0))
    raw = np.asarray(eval_expr(body, env), dtype=np.float64)
    simp = np.asarray(eval_expr(simplify(body), env), dtype=np.float64)
    assert np.allclose(raw, simp, rtol=1e-5, atol=1e-5, equal_nan=True)
