"""Dataset serialization tests."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition, uniform_random
from repro.graph.io import FORMAT_VERSION, load_dataset, save_dataset


class TestRoundTrip:
    def test_graph_only(self, tmp_path):
        ds = uniform_random(50, 0.05, seed=0)
        path = save_dataset(ds, tmp_path / "g")
        assert path.suffix == ".npz"
        back = load_dataset(path)
        assert back.name == ds.name
        assert np.array_equal(back.adj.indptr, ds.adj.indptr)
        assert np.array_equal(back.adj.indices, ds.adj.indices)
        assert back.features is None and back.labels is None

    def test_labeled_dataset(self, tmp_path):
        ds = planted_partition(n=80, num_classes=3, feature_dim=8, seed=1)
        path = save_dataset(ds, tmp_path / "planted.npz")
        back = load_dataset(path)
        assert np.allclose(back.features, ds.features)
        assert np.array_equal(back.labels, ds.labels)
        assert np.array_equal(back.train_mask, ds.train_mask)
        assert back.meta["num_classes"] == 3

    def test_edge_ids_preserved(self, tmp_path):
        ds = uniform_random(30, 0.1, seed=2)
        back = load_dataset(save_dataset(ds, tmp_path / "e"))
        assert np.array_equal(back.adj.edge_ids, ds.adj.edge_ids)

    def test_kernels_run_on_loaded_graph(self, tmp_path):
        from repro.core import kernels
        ds = uniform_random(40, 0.1, seed=3)
        back = load_dataset(save_dataset(ds, tmp_path / "k"))
        x = np.random.default_rng(4).random((40, 8)).astype(np.float32)
        a = kernels.gcn_aggregation(ds.adj, 40, 8).run({"XV": x})
        b = kernels.gcn_aggregation(back.adj, 40, 8).run({"XV": x})
        assert np.allclose(a, b)

    def test_version_check(self, tmp_path):
        ds = uniform_random(10, 0.1, seed=5)
        path = save_dataset(ds, tmp_path / "v")
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.array([FORMAT_VERSION + 1])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
