"""Graph-reordering tests: semantics preserved, locality improved."""

import numpy as np
import pytest

from repro.graph.reorder import apply_vertex_order, degree_order, rcm_order
from repro.graph.sparse import from_edges
from repro.hwsim.cache import CacheSim


def _graph(n=60, m=800, seed=0):
    r = np.random.default_rng(seed)
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m)), r


class TestDegreeOrder:
    def test_is_permutation(self):
        adj, _ = _graph()
        order = degree_order(adj)
        assert np.array_equal(np.sort(order), np.arange(60))

    def test_hot_vertices_first(self):
        adj, _ = _graph(seed=1)
        deg = adj.col_degrees()
        order = degree_order(adj, by="src")
        assert np.all(np.diff(deg[order]) <= 0)

    def test_dst_variant(self):
        adj, _ = _graph(seed=2)
        order = degree_order(adj, by="dst")
        assert np.all(np.diff(adj.row_degrees()[order]) <= 0)

    def test_invalid_by(self):
        adj, _ = _graph()
        with pytest.raises(ValueError):
            degree_order(adj, by="edge")


class TestRCM:
    def test_is_permutation(self):
        adj, _ = _graph(seed=3)
        order = rcm_order(adj)
        assert np.array_equal(np.sort(order), np.arange(60))

    def test_reduces_bandwidth_on_banded_graph(self):
        """A shuffled path graph: RCM must recover a low-bandwidth order."""
        n = 200
        rng = np.random.default_rng(4)
        shuffle = rng.permutation(n)
        src = shuffle[np.arange(n - 1)]
        dst = shuffle[np.arange(1, n)]
        adj = from_edges(n, n, src, dst)
        order = rcm_order(adj)
        new_adj, _ = apply_vertex_order(adj, order)
        band = np.abs(new_adj.row_of_edge() - new_adj.indices).max()
        orig_band = np.abs(adj.row_of_edge() - adj.indices).max()
        assert band <= 2
        assert band < orig_band

    def test_handles_disconnected_graphs(self):
        adj = from_edges(8, 8, np.array([0, 1, 4, 5]),
                         np.array([1, 2, 5, 6]))
        order = rcm_order(adj)
        assert np.array_equal(np.sort(order), np.arange(8))

    def test_nonsquare_rejected(self):
        adj = from_edges(4, 5, np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            rcm_order(adj)


class TestApplyVertexOrder:
    def test_aggregation_equivariant(self):
        """Aggregating on the reordered graph with reordered features equals
        reordering the original aggregation."""
        adj, r = _graph(seed=5)
        x = r.random((60, 8)).astype(np.float32)
        order = degree_order(adj)
        new_adj, new_x = apply_vertex_order(adj, order, x)
        ref = np.zeros((60, 8), np.float32)
        np.add.at(ref, adj.row_of_edge(), x[adj.indices])
        got = np.zeros((60, 8), np.float32)
        np.add.at(got, new_adj.row_of_edge(), new_x[new_adj.indices])
        assert np.allclose(got, ref[order], atol=1e-4)

    def test_edge_count_preserved(self):
        adj, r = _graph(seed=6)
        new_adj, _ = apply_vertex_order(adj, r.permutation(60))
        assert new_adj.nnz == adj.nnz

    def test_invalid_order_rejected(self):
        adj, _ = _graph()
        with pytest.raises(ValueError):
            apply_vertex_order(adj, np.zeros(60, dtype=np.int64))

    def test_degree_order_improves_cache_hits_on_skewed_graph(self):
        """On a hub-heavy graph, packing hot rows first lifts the trace-sim
        hit rate for a cache that holds only a few rows."""
        from repro.graph.datasets import reddit_like

        ds = reddit_like(scale=1 / 512, seed=7)
        adj = ds.adj
        order = degree_order(adj)
        new_adj, _ = apply_vertex_order(adj, order)
        row_bytes = 512  # one cache line per 8 rows at 64B lines

        def hit_rate(a):
            sim = CacheSim(16 * 1024)
            sim.access_array(a.indices * row_bytes)
            return sim.hit_rate

        assert hit_rate(new_adj) > hit_rate(adj)
