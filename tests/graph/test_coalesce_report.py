"""CSR coalescing and CostReport.explain tests."""

import numpy as np
import pytest

from repro.graph.sparse import from_edges
from repro.hwsim.report import CostReport


class TestCoalesce:
    def test_merges_parallel_edges(self):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 1, 2, 1])
        adj = from_edges(3, 3, src, dst)
        simple, mult = adj.coalesce()
        assert simple.nnz == 2
        assert mult.sum() == 4
        # the (1 <- 0) entry carries multiplicity 3
        rows = simple.row_of_edge()
        idx = np.nonzero((rows == 1) & (simple.indices == 0))[0][0]
        assert mult[idx] == 3

    def test_simple_graph_unchanged(self):
        adj = from_edges(4, 4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        simple, mult = adj.coalesce()
        assert simple.nnz == 3
        assert np.all(mult == 1)

    def test_weighted_aggregation_preserves_sum_semantics(self):
        """sum over the multigraph == weighted sum over the simple graph."""
        r = np.random.default_rng(0)
        n, m = 30, 400
        src, dst = r.integers(0, n, m), r.integers(0, n, m)
        adj = from_edges(n, n, src, dst)
        x = r.random((n, 5)).astype(np.float32)
        multi = np.zeros((n, 5), np.float32)
        np.add.at(multi, dst, x[src])
        simple, mult = adj.coalesce()
        weighted = np.zeros((n, 5), np.float32)
        np.add.at(weighted, simple.row_of_edge(),
                  x[simple.indices] * mult[:, None])
        assert np.allclose(multi, weighted, atol=1e-4)

    def test_empty_graph(self):
        adj = from_edges(3, 3, np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64))
        simple, mult = adj.coalesce()
        assert simple.nnz == 0 and len(mult) == 0

    def test_result_validates(self):
        r = np.random.default_rng(1)
        adj = from_edges(20, 20, r.integers(0, 20, 300), r.integers(0, 20, 300))
        simple, _ = adj.coalesce()
        simple.validate()


class TestExplain:
    def test_contains_breakdown(self):
        rep = CostReport(seconds=0.01, compute_seconds=0.006,
                         memory_seconds=0.004, dram_bytes=1e9, flops=2e9,
                         detail={"p_hit": 0.8})
        text = rep.explain()
        assert "compute" in text and "memory" in text
        assert "1.000 GB" in text
        assert "p_hit = 0.8" in text
        assert "60.0%" in text

    def test_handles_zero_time(self):
        rep = CostReport(seconds=0.0)
        assert "modeled time" in rep.explain()

    def test_real_model_output(self):
        from repro.graph.datasets import paper_stats
        from repro.hwsim import cpu
        from repro.hwsim.spec import XEON_8124M

        rep = cpu.spmm_time(XEON_8124M, paper_stats("reddit"), 128,
                            frame=cpu.FEATGRAPH_CPU)
        text = rep.explain()
        assert "Gflop" in text and "traffic" in text
