"""Segment reduction tests (the numerical core of aggregation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.segment import (
    segment_reduce,
    segment_reduce_unsorted,
    segment_softmax,
)


def _indptr_from_sizes(sizes):
    indptr = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    return indptr


class TestSegmentReduce:
    def test_sum_matches_loop(self):
        sizes = [3, 0, 2, 5]
        indptr = _indptr_from_sizes(sizes)
        vals = np.random.default_rng(0).random((10, 4)).astype(np.float32)
        out = segment_reduce(vals, indptr, "sum")
        for i in range(4):
            assert np.allclose(out[i], vals[indptr[i]:indptr[i + 1]].sum(axis=0),
                               atol=1e-5)

    def test_empty_segment_is_zero(self):
        indptr = _indptr_from_sizes([2, 0, 1])
        vals = np.ones((3, 2), dtype=np.float32)
        out = segment_reduce(vals, indptr, "max")
        assert np.all(out[1] == 0)

    def test_trailing_empty_segment(self):
        indptr = _indptr_from_sizes([3, 0])
        vals = np.ones((3, 2), dtype=np.float32)
        out = segment_reduce(vals, indptr, "sum")
        assert np.all(out[1] == 0)

    def test_max_with_negative_values(self):
        indptr = _indptr_from_sizes([2, 3])
        vals = -np.arange(1, 6, dtype=np.float32).reshape(5, 1)
        out = segment_reduce(vals, indptr, "max")
        assert out[0, 0] == -1 and out[1, 0] == -3

    def test_min_and_prod(self):
        indptr = _indptr_from_sizes([2, 2])
        vals = np.array([[2.0], [3.0], [4.0], [5.0]], dtype=np.float32)
        assert segment_reduce(vals, indptr, "min")[1, 0] == 4
        assert segment_reduce(vals, indptr, "prod")[0, 0] == 6

    def test_mean(self):
        indptr = _indptr_from_sizes([4, 0, 1])
        vals = np.arange(5, dtype=np.float32).reshape(5, 1)
        out = segment_reduce(vals, indptr, "mean")
        assert out[0, 0] == pytest.approx(1.5)
        assert out[1, 0] == 0
        assert out[2, 0] == 4

    def test_scalar_values(self):
        indptr = _indptr_from_sizes([2, 1])
        vals = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = segment_reduce(vals, indptr, "sum")
        assert np.allclose(out, [3.0, 3.0])

    def test_wrong_value_count_rejected(self):
        indptr = _indptr_from_sizes([2, 1])
        with pytest.raises(ValueError):
            segment_reduce(np.ones((5, 1), np.float32), indptr, "sum")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            segment_reduce(np.ones((1, 1), np.float32),
                           _indptr_from_sizes([1]), "median")

    def test_all_empty(self):
        indptr = _indptr_from_sizes([0, 0, 0])
        out = segment_reduce(np.empty((0, 3), np.float32), indptr, "sum")
        assert out.shape == (3, 3) and np.all(out == 0)


class TestSegmentReduceUnsorted:
    def test_matches_sorted_version(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 6, 50)
        vals = rng.random((50, 3)).astype(np.float32)
        got = segment_reduce_unsorted(vals, ids, 6, "sum")
        order = np.argsort(ids, kind="stable")
        sizes = np.bincount(ids, minlength=6)
        ref = segment_reduce(vals[order], _indptr_from_sizes(sizes), "sum")
        assert np.allclose(got, ref, atol=1e-5)

    def test_accumulate_merges_partitions(self):
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 4, 40)
        vals = rng.random((40, 2)).astype(np.float32)
        full = segment_reduce_unsorted(vals, ids, 4, "sum")
        out = np.zeros((4, 2), dtype=np.float32)
        segment_reduce_unsorted(vals[:20], ids[:20], 4, "sum", out=out,
                                accumulate=True)
        segment_reduce_unsorted(vals[20:], ids[20:], 4, "sum", out=out,
                                accumulate=True)
        assert np.allclose(out, full, atol=1e-5)

    def test_accumulate_requires_out(self):
        with pytest.raises(ValueError):
            segment_reduce_unsorted(np.ones((1, 1), np.float32),
                                    np.array([0]), 1, "sum", accumulate=True)

    def test_untouched_rows_zero(self):
        vals = np.ones((2, 1), dtype=np.float32)
        out = segment_reduce_unsorted(vals, np.array([0, 0]), 3, "max")
        assert out[1, 0] == 0 and out[2, 0] == 0

    def test_mean_unsorted(self):
        vals = np.array([[2.0], [4.0], [6.0]], dtype=np.float32)
        out = segment_reduce_unsorted(vals, np.array([1, 1, 0]), 2, "mean")
        assert out[1, 0] == 3 and out[0, 0] == 6


class TestSegmentSoftmax:
    def test_rows_sum_to_one(self):
        indptr = _indptr_from_sizes([3, 2, 4])
        vals = np.random.default_rng(3).standard_normal(9).astype(np.float32)
        sm = segment_softmax(vals, indptr)
        assert sm[0:3].sum() == pytest.approx(1, abs=1e-5)
        assert sm[3:5].sum() == pytest.approx(1, abs=1e-5)
        assert sm[5:9].sum() == pytest.approx(1, abs=1e-5)

    def test_stability_with_large_scores(self):
        indptr = _indptr_from_sizes([2])
        sm = segment_softmax(np.array([1000.0, 1000.0], np.float32), indptr)
        assert np.allclose(sm, [0.5, 0.5])

    def test_multidim_scores(self):
        indptr = _indptr_from_sizes([2, 1])
        vals = np.random.default_rng(4).standard_normal((3, 4)).astype(np.float32)
        sm = segment_softmax(vals, indptr)
        assert np.allclose(sm[:2].sum(axis=0), 1, atol=1e-5)
        assert np.allclose(sm[2], 1, atol=1e-5)

    def test_empty_segments_tolerated(self):
        indptr = _indptr_from_sizes([0, 2, 0])
        vals = np.array([0.0, 0.0], np.float32)
        sm = segment_softmax(vals, indptr)
        assert np.allclose(sm, [0.5, 0.5])


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 10), min_size=1, max_size=15),
    op=st.sampled_from(["sum", "max", "min", "mean"]),
    seed=st.integers(0, 10_000),
)
def test_segment_reduce_matches_python_loop(sizes, op, seed):
    """Property: vectorized segment reduction equals the obvious loop."""
    indptr = _indptr_from_sizes(sizes)
    total = int(indptr[-1])
    vals = np.random.default_rng(seed).standard_normal((total, 2)).astype(np.float32)
    got = segment_reduce(vals, indptr, op)
    fn = {"sum": np.sum, "max": np.max, "min": np.min, "mean": np.mean}[op]
    for i, size in enumerate(sizes):
        seg = vals[indptr[i]:indptr[i + 1]]
        expected = np.zeros(2, np.float32) if size == 0 else fn(seg, axis=0)
        assert np.allclose(got[i], expected, atol=1e-4), (i, op)
