"""Hilbert-curve traversal tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.hilbert import hilbert_d2xy, hilbert_order, hilbert_xy2d


class TestCurveMaps:
    def test_order1_square(self):
        d = np.arange(4)
        x, y = hilbert_d2xy(1, d)
        assert np.array_equal(hilbert_xy2d(1, x, y), d)

    def test_visits_every_cell_once(self):
        d = np.arange(64)
        x, y = hilbert_d2xy(3, d)
        cells = set(zip(x.tolist(), y.tolist()))
        assert len(cells) == 64

    def test_adjacent_steps_are_unit_moves(self):
        """Consecutive curve positions are grid neighbors -- the locality
        property everything else relies on."""
        d = np.arange(256)
        x, y = hilbert_d2xy(4, d)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(steps == 1)

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, np.array([4]), np.array([0]))

    def test_out_of_range_distance_rejected(self):
        with pytest.raises(ValueError):
            hilbert_d2xy(2, np.array([16]))


@settings(max_examples=30, deadline=None)
@given(order=st.integers(1, 6), seed=st.integers(0, 10_000))
def test_xy2d_d2xy_roundtrip(order, seed):
    """Property: the two maps are mutual inverses."""
    n = 1 << order
    rng = np.random.default_rng(seed)
    x = rng.integers(0, n, 50)
    y = rng.integers(0, n, 50)
    d = hilbert_xy2d(order, x, y)
    x2, y2 = hilbert_d2xy(order, d)
    assert np.array_equal(x, x2) and np.array_equal(y, y2)


class TestHilbertOrder:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        dst = rng.integers(0, 100, 500)
        src = rng.integers(0, 100, 500)
        perm = hilbert_order(dst, src, 100, 100)
        assert np.array_equal(np.sort(perm), np.arange(500))

    def test_improves_endpoint_locality(self):
        """The mean jump distance in (dst, src) space must shrink versus
        random edge order -- the mechanism of paper Sec. III-C1."""
        rng = np.random.default_rng(1)
        n, m = 256, 4000
        dst = rng.integers(0, n, m)
        src = rng.integers(0, n, m)

        def mean_jump(order):
            d, s = dst[order], src[order]
            return np.abs(np.diff(d)).mean() + np.abs(np.diff(s)).mean()

        random_order = rng.permutation(m)
        hilbert = hilbert_order(dst, src, n, n)
        assert mean_jump(hilbert) < 0.25 * mean_jump(random_order)

    def test_handles_non_power_of_two_sizes(self):
        rng = np.random.default_rng(2)
        dst = rng.integers(0, 100, 50)
        src = rng.integers(0, 77, 50)
        perm = hilbert_order(dst, src, 100, 77)
        assert len(perm) == 50

    def test_empty_edges(self):
        perm = hilbert_order(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64), 4, 4)
        assert len(perm) == 0
