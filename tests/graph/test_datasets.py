"""Dataset generator tests."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASETS,
    load,
    paper_stats,
    planted_partition,
    proteins_like,
    rand_100k_like,
    reddit_like,
    uniform_random,
)


class TestScaledGenerators:
    def test_proteins_scaled_size(self):
        ds = proteins_like(scale=1 / 256)
        n = ds.num_vertices
        assert abs(n - 132_500 / 256) / (132_500 / 256) < 0.1
        avg = ds.num_edges / n
        assert 0.7 * 597 < avg < 1.3 * 597

    def test_reddit_heavier_tail_than_proteins(self):
        r = reddit_like(scale=1 / 128)
        p = proteins_like(scale=1 / 128)
        assert r.stats().degree_skew() > p.stats().degree_skew()

    def test_rand_100k_bimodal(self):
        ds = rand_100k_like(scale=1 / 64)
        deg = ds.adj.col_degrees()
        # ~20% of vertices should carry ~80%+ of out-edges
        k = int(0.25 * len(deg))
        top = np.sort(deg)[::-1][:k].sum()
        assert top / deg.sum() > 0.6

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            proteins_like(scale=0)
        with pytest.raises(ValueError):
            rand_100k_like(scale=1.5)

    def test_determinism(self):
        a = reddit_like(scale=1 / 256, seed=5)
        b = reddit_like(scale=1 / 256, seed=5)
        assert np.array_equal(a.adj.indices, b.adj.indices)

    def test_load_by_name(self):
        for name in DATASETS:
            ds = load(name, scale=1 / 512)
            assert ds.num_edges > 0
        with pytest.raises(KeyError):
            load("cora")


class TestUniformRandom:
    def test_density(self):
        ds = uniform_random(200, 0.05, seed=1)
        assert ds.num_edges == int(200 * 200 * 0.05)

    def test_sparsity_stat(self):
        ds = uniform_random(100, 0.02, seed=2)
        assert ds.stats().sparsity() == pytest.approx(0.98, abs=0.005)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            uniform_random(100, 0.0)


class TestPlantedPartition:
    def test_masks_partition_vertices(self):
        ds = planted_partition(n=300, seed=0)
        total = ds.train_mask | ds.val_mask | ds.test_mask
        assert total.all()
        assert not (ds.train_mask & ds.val_mask).any()
        assert not (ds.train_mask & ds.test_mask).any()

    def test_split_proportions_match_paper(self):
        ds = planted_partition(n=2330, seed=1)
        assert ds.train_mask.sum() == pytest.approx(1530, abs=5)
        assert ds.val_mask.sum() == pytest.approx(240, abs=5)

    def test_homophily_present(self):
        ds = planted_partition(n=500, homophily=0.9, seed=2)
        src = ds.adj.indices
        dst = ds.adj.row_of_edge()
        same = (ds.labels[src] == ds.labels[dst]).mean()
        assert same > 0.5  # far above the 1/num_classes random rate

    def test_features_carry_class_signal(self):
        ds = planted_partition(n=600, num_classes=4, feature_dim=32, seed=3)
        centroids = np.stack([ds.features[ds.labels == c].mean(0) for c in range(4)])
        spread = np.linalg.norm(centroids[:, None] - centroids[None], axis=-1)
        assert spread[np.triu_indices(4, 1)].min() > 1.0


class TestPaperStats:
    @pytest.mark.parametrize("name,n,m_target", [
        ("ogbn-proteins", 132_500, 79.1e6),
        ("reddit", 233_000, 114.8e6),
        ("rand-100K", 100_000, 48.0e6),
    ])
    def test_sizes_match_table2(self, name, n, m_target):
        st = paper_stats(name)
        assert st.n_src == n
        assert abs(st.n_edges - m_target) / m_target < 0.02

    def test_uniform_names(self):
        st = paper_stats("uniform-0.05")
        assert st.n_edges == int(100_000 * 100_000 * 0.05)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            paper_stats("citeseer")

    def test_coverage_curve_monotone(self):
        st = paper_stats("reddit")
        cov = [st.coverage_src(k) for k in (0, 10, 1000, 100_000, 10**7)]
        assert cov[0] == 0.0
        assert all(a <= b + 1e-12 for a, b in zip(cov, cov[1:]))
        assert cov[-1] == pytest.approx(1.0, abs=1e-9)
