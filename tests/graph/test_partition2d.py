"""2D (GridGraph-style) partitioning tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.partition import partition_2d
from repro.graph.sparse import from_edges


def _graph(n=40, m=600, seed=0):
    r = np.random.default_rng(seed)
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))


class TestPartition2D:
    def test_block_count(self):
        blocks = partition_2d(_graph(), 3, 5)
        assert len(blocks) == 15

    def test_exact_edge_partition(self):
        g = _graph(seed=1)
        blocks = partition_2d(g, 4, 4)
        assert sum(b.nnz for b in blocks) == g.nnz

    def test_blocks_respect_ranges(self):
        g = _graph(seed=2)
        for b in partition_2d(g, 5, 3):
            if b.nnz == 0:
                continue
            rows = b.csr.row_of_edge()
            assert rows.min() >= b.row_lo and rows.max() < b.row_hi
            cols = b.csr.indices
            assert cols.min() >= b.col_lo and cols.max() < b.col_hi

    def test_identity_partition(self):
        g = _graph(seed=3)
        (only,) = partition_2d(g, 1, 1)
        assert only.nnz == g.nnz
        assert np.array_equal(only.csr.indices, g.indices)

    def test_aggregation_over_blocks_matches_full(self):
        g = _graph(seed=4)
        x = np.random.default_rng(5).random((40, 6)).astype(np.float32)
        full = np.zeros((40, 6), np.float32)
        np.add.at(full, g.row_of_edge(), x[g.indices])
        acc = np.zeros_like(full)
        for b in partition_2d(g, 4, 5):
            if b.nnz:
                np.add.at(acc, b.csr.row_of_edge(), x[b.csr.indices])
        assert np.allclose(acc, full, atol=1e-4)

    def test_edge_ids_preserved(self):
        g = _graph(seed=6)
        ids = np.concatenate([b.csr.edge_ids for b in partition_2d(g, 3, 3)])
        assert np.array_equal(np.sort(ids), np.sort(g.edge_ids))

    def test_invalid_args(self):
        g = _graph()
        with pytest.raises(ValueError):
            partition_2d(g, 0, 1)
        with pytest.raises(ValueError):
            partition_2d(g, 1, 100)

    def test_bounded_endpoint_working_sets(self):
        """The GridGraph point: each block touches a bounded slice of both
        endpoint ranges -- the same property Hilbert traversal buys."""
        g = _graph(n=64, m=2000, seed=7)
        for b in partition_2d(g, 8, 8):
            assert b.row_hi - b.row_lo <= 8
            assert b.col_hi - b.col_lo <= 8


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 30),
    m=st.integers(0, 200),
    nr=st.integers(1, 6),
    nc=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_partition2d_multiset_property(n, m, nr, nc, seed):
    """Property: the grid blocks partition the edge multiset exactly."""
    r = np.random.default_rng(seed)
    g = from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))
    nr, nc = min(nr, n), min(nc, n)
    blocks = partition_2d(g, nr, nc)
    got = sorted((int(rr), int(c)) for b in blocks
                 for rr, c in zip(b.csr.row_of_edge(), b.csr.indices))
    want = sorted(zip(g.row_of_edge().tolist(), g.indices.tolist()))
    assert got == want
