"""CSR/COO structure tests, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.sparse import COOMatrix, CSRMatrix, from_edges


def _random_graph(n_src, n_dst, m, seed=0):
    r = np.random.default_rng(seed)
    return from_edges(n_src, n_dst, r.integers(0, n_src, m), r.integers(0, n_dst, m))


class TestCOO:
    def test_basic_construction(self):
        coo = COOMatrix((3, 4), np.array([0, 2]), np.array([1, 3]))
        assert coo.nnz == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 4), np.array([0, 1]), np.array([1]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((3, 4), np.array([3]), np.array([0]))
        with pytest.raises(ValueError):
            COOMatrix((3, 4), np.array([0]), np.array([4]))

    def test_transpose_swaps_shape(self):
        coo = COOMatrix((3, 4), np.array([0]), np.array([1]))
        t = coo.transpose()
        assert t.shape == (4, 3) and t.row[0] == 1 and t.col[0] == 0

    def test_to_csr_sorts_rows(self):
        coo = COOMatrix((3, 3), np.array([2, 0, 1]), np.array([0, 1, 2]))
        csr = coo.to_csr()
        assert np.array_equal(csr.indptr, [0, 1, 2, 3])
        assert np.array_equal(csr.indices, [1, 2, 0])

    def test_to_csr_preserves_edge_ids(self):
        coo = COOMatrix((3, 3), np.array([2, 0, 1]), np.array([0, 1, 2]))
        csr = coo.to_csr()
        # edge at row 0 was original index 1
        assert csr.edge_ids[0] == 1


class TestCSR:
    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2]), np.array([0, 1]))  # wrong len
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1]))  # decreasing

    def test_validation_rejects_bad_columns(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 5]))

    def test_degrees(self):
        g = _random_graph(10, 10, 100)
        assert g.row_degrees().sum() == 100
        assert g.col_degrees().sum() == 100

    def test_row_of_edge_matches_indptr(self):
        g = _random_graph(10, 10, 100)
        rows = g.row_of_edge()
        for r in range(10):
            assert np.all(rows[g.indptr[r]:g.indptr[r + 1]] == r)

    def test_transpose_is_involution_on_dense(self):
        g = _random_graph(8, 6, 30, seed=1)
        assert np.array_equal(g.transpose().transpose().to_dense(), g.to_dense())

    def test_select_columns_partition_of_nnz(self):
        g = _random_graph(20, 20, 300, seed=2)
        left = g.select_columns(0, 10)
        right = g.select_columns(10, 20)
        assert left.nnz + right.nnz == g.nnz
        assert left.indices.max(initial=-1) < 10
        assert right.indices.min(initial=99) >= 10

    def test_select_columns_keeps_row_structure(self):
        g = _random_graph(20, 20, 300, seed=3)
        sub = g.select_columns(5, 15)
        dense = g.to_dense()
        dense_masked = dense.copy()
        dense_masked[:, :5] = 0
        dense_masked[:, 15:] = 0
        # multigraph: compare multiplicity-aware counts
        rows_full = np.zeros((20, 20))
        np.add.at(rows_full, (g.row_of_edge(), g.indices), 1)
        rows_sub = np.zeros((20, 20))
        np.add.at(rows_sub, (sub.row_of_edge(), sub.indices), 1)
        rows_full[:, :5] = 0
        rows_full[:, 15:] = 0
        assert np.array_equal(rows_sub, rows_full)

    def test_select_columns_edge_ids_subset(self):
        g = _random_graph(20, 20, 300, seed=4)
        sub = g.select_columns(0, 7)
        assert set(sub.edge_ids) <= set(g.edge_ids)

    def test_permute_rows(self):
        g = _random_graph(6, 6, 40, seed=5)
        perm = np.array([5, 4, 3, 2, 1, 0])
        p = g.permute_rows(perm)
        assert np.array_equal(p.to_dense(), g.to_dense()[perm])

    def test_permute_rows_invalid(self):
        g = _random_graph(6, 6, 40, seed=6)
        with pytest.raises(ValueError):
            g.permute_rows(np.array([0, 0, 1, 2, 3, 4]))

    def test_edge_ids_length_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix((2, 2), np.array([0, 1, 2]), np.array([0, 1]),
                      edge_ids=np.array([0]))


class TestFromEdges:
    def test_edge_ids_recover_original_order(self):
        src = np.array([3, 1, 2])
        dst = np.array([0, 2, 1])
        g = from_edges(4, 3, src, dst)
        # edge i's (src, dst) must match the original arrays when read back
        rows = g.row_of_edge()
        for pos in range(g.nnz):
            orig = g.edge_ids[pos]
            assert g.indices[pos] == src[orig]
            assert rows[pos] == dst[orig]

    def test_empty_graph(self):
        g = from_edges(5, 5, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert g.nnz == 0
        g.validate()


@settings(max_examples=40, deadline=None)
@given(
    n_src=st.integers(1, 20),
    n_dst=st.integers(1, 20),
    m=st.integers(0, 200),
    seed=st.integers(0, 10_000),
)
def test_csr_coo_roundtrip_property(n_src, n_dst, m, seed):
    """Property: CSR -> COO -> CSR preserves the multigraph exactly."""
    r = np.random.default_rng(seed)
    g = from_edges(n_src, n_dst, r.integers(0, n_src, m), r.integers(0, n_dst, m))
    g2 = g.to_coo().to_csr()
    assert np.array_equal(g.indptr, g2.indptr)
    assert np.array_equal(g.indices, g2.indices)
    g2.validate()


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 15),
    m=st.integers(0, 120),
    parts=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_transpose_preserves_edge_multiset(n, m, parts, seed):
    """Property: transposition preserves the (src, dst) multiset."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    g = from_edges(n, n, src, dst)
    t = g.transpose()
    fwd = sorted(zip(g.row_of_edge().tolist(), g.indices.tolist()))
    rev = sorted(zip(t.indices.tolist(), t.row_of_edge().tolist()))
    assert fwd == rev
