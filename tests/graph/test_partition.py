"""Partitioning and feature tiling tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.partition import (
    feature_tiles,
    hybrid_degree_split,
    partition_1d,
)
from repro.graph.sparse import from_edges


def _graph(n=30, m=400, seed=0):
    r = np.random.default_rng(seed)
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))


class TestPartition1D:
    def test_single_partition_is_identity(self):
        g = _graph()
        parts = partition_1d(g, 1)
        assert len(parts) == 1 and parts[0].csr is g

    def test_edges_partitioned_exactly(self):
        g = _graph()
        parts = partition_1d(g, 4)
        assert sum(p.nnz for p in parts) == g.nnz

    def test_column_ranges_cover_sources(self):
        g = _graph()
        parts = partition_1d(g, 4)
        assert parts[0].col_lo == 0 and parts[-1].col_hi == g.shape[1]
        for a, b in zip(parts, parts[1:]):
            assert a.col_hi == b.col_lo

    def test_partition_respects_ranges(self):
        g = _graph()
        for p in partition_1d(g, 5):
            if p.nnz:
                assert p.csr.indices.min() >= p.col_lo
                assert p.csr.indices.max() < p.col_hi

    def test_aggregation_across_partitions_matches_full(self):
        g = _graph(seed=1)
        x = np.random.default_rng(2).random((30, 8)).astype(np.float32)
        full = np.zeros((30, 8), dtype=np.float32)
        np.add.at(full, g.row_of_edge(), x[g.indices])
        acc = np.zeros_like(full)
        for p in partition_1d(g, 6):
            np.add.at(acc, p.csr.row_of_edge(), x[p.csr.indices])
        assert np.allclose(acc, full, atol=1e-4)

    def test_too_many_partitions_rejected(self):
        g = _graph()
        with pytest.raises(ValueError):
            partition_1d(g, 31)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            partition_1d(_graph(), 0)


class TestFeatureTiles:
    def test_exact_division(self):
        assert feature_tiles(8, 2) == [(0, 4), (4, 8)]

    def test_uneven_division(self):
        tiles = feature_tiles(10, 4)
        assert tiles[0] == (0, 3)
        assert tiles[-1][1] == 10
        covered = sum(hi - lo for lo, hi in tiles)
        assert covered == 10

    def test_more_tiles_than_features_clamped(self):
        tiles = feature_tiles(3, 10)
        assert len(tiles) == 3

    def test_single_tile(self):
        assert feature_tiles(64, 1) == [(0, 64)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            feature_tiles(8, 0)


class TestHybridSplit:
    def test_low_high_partition(self):
        g = _graph(n=50, m=2000, seed=3)
        deg = g.col_degrees()
        split = hybrid_degree_split(g, degree_threshold=50, shared_capacity_rows=8)
        low = split.order[:split.num_low]
        high = split.order[split.num_low:]
        assert np.all(deg[low] < 50)
        assert np.all(deg[high] >= 50)

    def test_order_is_permutation(self):
        g = _graph(seed=4)
        split = hybrid_degree_split(g, 5, 4)
        assert np.array_equal(np.sort(split.order), np.arange(g.shape[1]))

    def test_high_sorted_descending(self):
        g = _graph(n=50, m=3000, seed=5)
        deg = g.col_degrees()
        split = hybrid_degree_split(g, 40, 100)
        high = split.high_ids
        assert np.all(np.diff(deg[high]) <= 0)

    def test_partitions_respect_capacity(self):
        g = _graph(n=50, m=3000, seed=6)
        split = hybrid_degree_split(g, 10, 7)
        for part in split.high_partitions:
            assert len(part) <= 7
        total = sum(len(p) for p in split.high_partitions)
        assert total == g.shape[1] - split.num_low

    def test_lower_threshold_more_partitions(self):
        """The paper's trade-off: smaller threshold => more partitions."""
        g = _graph(n=80, m=5000, seed=7)
        hi_t = hybrid_degree_split(g, 120, 8)
        lo_t = hybrid_degree_split(g, 20, 8)
        assert len(lo_t.high_partitions) >= len(hi_t.high_partitions)

    def test_invalid_args(self):
        g = _graph()
        with pytest.raises(ValueError):
            hybrid_degree_split(g, -1, 4)
        with pytest.raises(ValueError):
            hybrid_degree_split(g, 4, 0)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 40),
    m=st.integers(0, 300),
    k=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_partition_preserves_edge_multiset(n, m, k, seed):
    """Property: 1D partitioning is an exact edge partition for any graph."""
    r = np.random.default_rng(seed)
    g = from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))
    k = min(k, n)
    parts = partition_1d(g, k)
    merged = sorted(
        (int(r_), int(c)) for p in parts
        for r_, c in zip(p.csr.row_of_edge(), p.csr.indices)
    )
    original = sorted(zip(g.row_of_edge().tolist(), g.indices.tolist()))
    assert merged == original
