"""CPU machine-model tests: every paper mechanism must move the modeled
time in the documented direction."""

import numpy as np
import pytest

from repro.graph.datasets import paper_stats
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

SPEC = XEON_8124M


@pytest.fixture(scope="module")
def reddit():
    return paper_stats("reddit")


@pytest.fixture(scope="module")
def proteins():
    return paper_stats("ogbn-proteins")


class TestFrameOrdering:
    """The Table III ordering: FeatGraph < MKL and FeatGraph < Ligra."""

    @pytest.mark.parametrize("f", [32, 128, 512])
    def test_featgraph_beats_ligra_gcn(self, reddit, f):
        fg = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                           num_graph_partitions=16,
                           num_feature_partitions=max(1, f // 32))
        lig = cpu.spmm_time(SPEC, reddit, f, frame=cpu.LIGRA_CPU)
        assert 1.3 < lig.seconds / fg.seconds < 8.0

    @pytest.mark.parametrize("f", [128, 256, 512])
    def test_featgraph_beats_mkl_at_large_f(self, reddit, f):
        fg = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                           num_graph_partitions=16,
                           num_feature_partitions=max(1, f // 32))
        mkl = cpu.spmm_time(SPEC, reddit, f, frame=cpu.MKL_CPU)
        assert mkl.seconds > fg.seconds

    def test_mkl_gap_grows_with_feature_length(self, reddit):
        """Paper: 'higher speedup with a larger feature length' vs MKL."""
        def ratio(f):
            fg = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                               num_graph_partitions=16,
                               num_feature_partitions=max(1, f // 32))
            mkl = cpu.spmm_time(SPEC, reddit, f, frame=cpu.MKL_CPU)
            return mkl.seconds / fg.seconds

        assert ratio(512) > ratio(32)

    def test_ligra_mlp_gap_is_large(self, proteins):
        """Paper: 4.4x-5.5x on MLP aggregation (scalar vs SIMD UDF)."""
        f = 128
        lig = cpu.spmm_time(SPEC, proteins, f, frame=cpu.LIGRA_CPU,
                            udf_flops_per_edge=2 * 8 * f, reads_dst=True)
        fg = cpu.spmm_time(SPEC, proteins, f, frame=cpu.FEATGRAPH_CPU,
                           udf_flops_per_edge=2 * 8 * f, reads_dst=True,
                           num_graph_partitions=8,
                           num_feature_partitions=4)
        assert 3.0 < lig.seconds / fg.seconds < 8.0


class TestPartitioningMechanism:
    def test_partitioning_reduces_stall(self, reddit):
        f = 512
        base = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=1, num_feature_partitions=1)
        part = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=16, num_feature_partitions=16)
        assert part.stall_seconds < base.stall_seconds
        assert part.seconds < base.seconds

    def test_merge_cost_grows_with_partitions(self, reddit):
        a = cpu.spmm_time(SPEC, reddit, 128, frame=cpu.FEATGRAPH_CPU,
                          num_graph_partitions=4, num_feature_partitions=4)
        b = cpu.spmm_time(SPEC, reddit, 128, frame=cpu.FEATGRAPH_CPU,
                          num_graph_partitions=64, num_feature_partitions=4)
        assert b.detail["bytes_out_merge"] > a.detail["bytes_out_merge"]

    def test_tiling_rereads_adjacency(self, reddit):
        a = cpu.spmm_time(SPEC, reddit, 128, frame=cpu.FEATGRAPH_CPU,
                          num_graph_partitions=16, num_feature_partitions=1)
        b = cpu.spmm_time(SPEC, reddit, 128, frame=cpu.FEATGRAPH_CPU,
                          num_graph_partitions=16, num_feature_partitions=8)
        assert b.detail["bytes_adj"] == pytest.approx(
            8 * a.detail["bytes_adj"], rel=0.01)

    def test_over_partitioning_eventually_hurts(self, reddit):
        """The Fig. 14 bowl: some middle configuration beats both extremes."""
        f = 128
        times = {}
        for np_parts in (1, 16, 4096):
            times[np_parts] = cpu.spmm_time(
                SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU,
                num_graph_partitions=np_parts, num_feature_partitions=4,
            ).seconds
        assert times[16] < times[1]
        assert times[16] < times[4096]

    def test_hit_probability_bounds(self, reddit):
        for rows in (1, 1000, 10**7):
            p = cpu.row_hit_probability(SPEC, reddit, rows, 128)
            assert 0.0 <= p <= 1.0

    def test_hit_probability_monotone_in_working_set(self, reddit):
        ps = [cpu.row_hit_probability(SPEC, reddit, rows, 512)
              for rows in (100, 10_000, 1_000_000)]
        assert ps[0] >= ps[1] >= ps[2]


class TestThreading:
    def test_cooperative_scales_better(self, reddit):
        """Fig. 10: FeatGraph's cooperative threading scales past the
        cache-divided baselines."""
        f = 512

        def speedup(frame, **kw):
            t1 = cpu.spmm_time(SPEC, reddit, f, frame=frame, threads=1, **kw).seconds
            t16 = cpu.spmm_time(SPEC, reddit, f, frame=frame, threads=16, **kw).seconds
            return t1 / t16

        fg = speedup(cpu.FEATGRAPH_CPU, num_graph_partitions=16,
                     num_feature_partitions=16)
        lig = speedup(cpu.LIGRA_CPU)
        mkl = speedup(cpu.MKL_CPU)
        assert fg > lig and fg > mkl
        assert 8 < fg <= 16

    def test_speedup_monotone_in_threads(self, reddit):
        ts = [cpu.spmm_time(SPEC, reddit, 512, frame=cpu.FEATGRAPH_CPU,
                            num_graph_partitions=16, num_feature_partitions=16,
                            threads=t).seconds for t in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(ts, ts[1:]))


class TestSDDMM:
    def test_hilbert_reduces_time_when_thrashing(self, reddit):
        base = cpu.sddmm_time(SPEC, reddit, 512, frame=cpu.FEATGRAPH_CPU,
                              hilbert=False)
        hil = cpu.sddmm_time(SPEC, reddit, 512, frame=cpu.FEATGRAPH_CPU,
                             hilbert=True)
        assert hil.seconds <= base.seconds

    def test_attention_gap_vs_ligra(self, proteins):
        """Paper: 4.3x-6.0x on dot-product attention."""
        f = 128
        lig = cpu.sddmm_time(SPEC, proteins, f, frame=cpu.LIGRA_CPU)
        fg = cpu.sddmm_time(SPEC, proteins, f, frame=cpu.FEATGRAPH_CPU,
                            hilbert=True, num_feature_partitions=2)
        assert 2.0 < lig.seconds / fg.seconds < 9.0

    def test_out_width_adds_traffic(self, reddit):
        a = cpu.sddmm_time(SPEC, reddit, 64, frame=cpu.FEATGRAPH_CPU, out_width=1)
        b = cpu.sddmm_time(SPEC, reddit, 64, frame=cpu.FEATGRAPH_CPU, out_width=8)
        assert b.dram_bytes > a.dram_bytes


class TestReportInvariants:
    @pytest.mark.parametrize("f", [32, 512])
    def test_nonnegative_components(self, reddit, f):
        rep = cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU)
        assert rep.seconds > 0
        assert rep.compute_seconds >= 0 and rep.memory_seconds >= 0
        assert rep.dram_bytes > 0 and rep.flops > 0

    def test_report_add_and_scale(self, reddit):
        rep = cpu.spmm_time(SPEC, reddit, 32, frame=cpu.FEATGRAPH_CPU)
        double = rep + rep
        assert double.seconds == pytest.approx(2 * rep.seconds)
        assert rep.scaled(3).dram_bytes == pytest.approx(3 * rep.dram_bytes)

    def test_time_monotone_in_feature_length(self, reddit):
        ts = [cpu.spmm_time(SPEC, reddit, f, frame=cpu.FEATGRAPH_CPU).seconds
              for f in (32, 64, 128, 256, 512)]
        assert all(a < b for a, b in zip(ts, ts[1:]))
