"""GPU model regime tests: the roofline boundary behaves physically."""

import pytest

from repro.graph.datasets import paper_stats
from repro.hwsim import gpu
from repro.hwsim.spec import TESLA_V100


@pytest.fixture(scope="module")
def reddit():
    return paper_stats("reddit")


class TestRegimes:
    def test_vanilla_spmm_is_memory_bound(self, reddit):
        rep = gpu.spmm_row_block_time(TESLA_V100, reddit, 256)
        assert rep.memory_seconds > rep.compute_seconds

    def test_heavy_udf_flips_to_compute_bound(self, reddit):
        rep = gpu.spmm_row_block_time(TESLA_V100, reddit, 256,
                                      udf_flops_per_edge=2 * 64 * 256)
        assert rep.compute_seconds > rep.memory_seconds

    def test_bandwidth_scaling_until_compute_roofline(self, reddit):
        fast = TESLA_V100.with_(dram_bw=TESLA_V100.dram_bw * 4)
        base = gpu.spmm_row_block_time(TESLA_V100, reddit, 256)
        boosted = gpu.spmm_row_block_time(fast, reddit, 256)
        # faster memory helps...
        assert boosted.seconds < base.seconds
        # ...until the kernel hits the compute roofline
        assert boosted.seconds == pytest.approx(
            boosted.compute_seconds + TESLA_V100.launch_overhead_s, rel=1e-6)
        compute_base = gpu.spmm_row_block_time(
            TESLA_V100, reddit, 256, udf_flops_per_edge=2 * 64 * 256)
        compute_fast = gpu.spmm_row_block_time(
            fast, reddit, 256, udf_flops_per_edge=2 * 64 * 256)
        # compute-bound time barely moves with bandwidth
        assert compute_fast.seconds > compute_base.seconds * 0.9

    def test_bigger_l2_improves_hit_rate(self, reddit):
        big = TESLA_V100.with_(l2_bytes=TESLA_V100.l2_bytes * 8)
        small_hit = gpu.l2_hit_rate(TESLA_V100, reddit, 512)
        big_hit = gpu.l2_hit_rate(big, reddit, 512)
        assert big_hit > small_hit

    def test_spec_with_returns_new_frozen_instance(self):
        fast = TESLA_V100.with_(dram_bw=1e12)
        assert fast is not TESLA_V100
        assert TESLA_V100.dram_bw == 900e9
        with pytest.raises(Exception):
            fast.dram_bw = 1.0  # frozen dataclass

    def test_launch_overhead_floors_tiny_kernels(self):
        import numpy as np

        from repro.hwsim.stats import GraphStats

        tiny = GraphStats(8, 8, 8, np.ones(8, dtype=np.int64),
                          np.ones(8, dtype=np.int64))
        rep = gpu.spmm_row_block_time(TESLA_V100, tiny, 4)
        assert rep.seconds >= TESLA_V100.launch_overhead_s

    def test_atomic_throughput_scales_edge_parallel_time(self, reddit):
        fast = TESLA_V100.with_(atomic_throughput=TESLA_V100.atomic_throughput * 4)
        base = gpu.spmm_edge_parallel_time(TESLA_V100, reddit, 128)
        improved = gpu.spmm_edge_parallel_time(fast, reddit, 128)
        assert improved.seconds < base.seconds
