"""Cross-validation: the analytic cache-hit estimates against the
trace-driven simulator on real (scaled) graphs.

The machine models stand in for hardware, so the tests keep them honest: for
the knobs the paper turns (graph partitions, feature tiles), the analytic
hit probability and the simulated LRU hit rate must move *together*."""

import numpy as np
import pytest

from repro.graph.datasets import reddit_like
from repro.graph.partition import partition_1d
from repro.hwsim.cache import CacheSim
from repro.hwsim.cpu import row_hit_probability
from repro.hwsim.spec import CPUSpec
from repro.hwsim.stats import GraphStats


@pytest.fixture(scope="module")
def setup():
    ds = reddit_like(scale=1 / 512, seed=42)
    stats = ds.stats()
    # scale the spec's caches like the graph so regimes match
    spec = CPUSpec().with_(llc_bytes=25 * 1024 * 1024 // 512,
                           l2_bytes=1024 * 1024 // 512)
    return ds, stats, spec


def _trace_hit_rate(adj, num_parts: int, row_bytes: int, cache_bytes: int) -> float:
    """Simulate row accesses: one line per row, capacity scaled so the cache
    holds ``cache_bytes / row_bytes`` rows (a full row occupies row_bytes)."""
    eff_capacity = max(int(cache_bytes * 64 / row_bytes), 1024)
    sim = CacheSim(eff_capacity)
    for p in partition_1d(adj, num_parts):
        sim.access_array(p.csr.indices * 64)
    return sim.hit_rate


class TestPartitionSweepAgreement:
    def test_hit_rates_increase_with_partitions_in_both(self, setup):
        ds, stats, spec = setup
        row_bytes = 512 * 4
        analytic, simulated = [], []
        for parts in (1, 4, 16):
            analytic.append(row_hit_probability(
                spec, stats, stats.n_src / parts, row_bytes))
            simulated.append(_trace_hit_rate(ds.adj, parts, row_bytes,
                                             spec.llc_bytes))
        assert analytic == sorted(analytic)
        assert simulated == sorted(simulated)

    def test_tiling_sweep_agreement(self, setup):
        ds, stats, spec = setup
        analytic, simulated = [], []
        for row_bytes in (2048, 512, 128):
            analytic.append(row_hit_probability(spec, stats, stats.n_src,
                                                row_bytes))
            simulated.append(_trace_hit_rate(ds.adj, 1, row_bytes,
                                             spec.llc_bytes))
        assert analytic == sorted(analytic)
        assert simulated == sorted(simulated)

    def test_rank_correlation_over_grid(self, setup):
        """Spearman rank correlation > 0.7 over the (parts x tile) grid."""
        from scipy.stats import spearmanr

        ds, stats, spec = setup
        analytic, simulated = [], []
        for parts in (1, 4, 16):
            for row_bytes in (2048, 512, 128):
                analytic.append(row_hit_probability(
                    spec, stats, stats.n_src / parts, row_bytes))
                simulated.append(_trace_hit_rate(ds.adj, parts, row_bytes,
                                                 spec.llc_bytes))
        rho, _ = spearmanr(analytic, simulated)
        assert rho > 0.7, (analytic, simulated)

    def test_fitting_working_set_agrees_at_extremes(self, setup):
        ds, stats, spec = setup
        # everything fits: both near 1
        tiny_rows = 16
        a = row_hit_probability(spec, stats, tiny_rows, 64)
        assert a > 0.95
        # capacity-starved: both well below the fitting regime; the analytic
        # estimate is conservative about LRU's hot-row retention, so it lower
        # bounds the simulated rate
        starved = spec.with_(llc_bytes=64 * 1024, l2_bytes=4 * 1024)
        a2 = row_hit_probability(starved, stats, stats.n_src, 4096)
        s2 = _trace_hit_rate(ds.adj, 1, 4096, 64 * 1024)
        assert a2 < 0.5 and s2 < 0.8
        assert a2 <= s2 + 0.05
