"""GraphStats tests."""

import numpy as np
import pytest

from repro.graph.sparse import from_edges
from repro.hwsim.stats import GraphStats


def _stats(n=20, m=200, seed=0):
    r = np.random.default_rng(seed)
    g = from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))
    return GraphStats.from_csr(g.indptr, g.indices, n), g


class TestConstruction:
    def test_from_csr_consistency(self):
        st, g = _stats()
        assert st.n_edges == g.nnz
        assert st.avg_src_degree == pytest.approx(g.nnz / 20)

    def test_degree_sum_validation(self):
        with pytest.raises(ValueError):
            GraphStats(2, 2, 5, np.array([1, 1]), np.array([2, 3]))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GraphStats(0, 2, 0, np.array([]), np.array([0, 0]))


class TestCoverage:
    def test_zero_and_full(self):
        st, _ = _stats()
        assert st.coverage_src(0) == 0.0
        assert st.coverage_src(10**9) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        st, _ = _stats(seed=3)
        vals = [st.coverage_src(k) for k in range(0, 25)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))

    def test_top1_equals_max_degree_fraction(self):
        st, g = _stats(seed=4)
        expected = g.col_degrees().max() / g.nnz
        assert st.coverage_src(1) == pytest.approx(expected)

    def test_dst_coverage_uses_in_degrees(self):
        st, g = _stats(seed=5)
        expected = g.row_degrees().max() / g.nnz
        assert st.coverage_dst(1) == pytest.approx(expected)

    def test_skewed_graph_has_concentrated_coverage(self):
        # star graph into one hub: one source feeds one destination
        n = 50
        src = np.zeros(100, dtype=np.int64)
        dst = np.zeros(100, dtype=np.int64)
        g = from_edges(n, n, src, dst)
        st = GraphStats.from_csr(g.indptr, g.indices, n)
        assert st.coverage_src(1) == pytest.approx(1.0)
        # all edges land on one destination: maximal atomic-contention skew
        assert st.degree_skew() == pytest.approx(n)


class TestDerived:
    def test_sparsity(self):
        st, g = _stats()
        assert st.sparsity() == pytest.approx(1 - g.nnz / (20 * 20))

    def test_degree_skew_uniform_close_to_small(self):
        st, _ = _stats(n=100, m=10_000, seed=6)
        assert st.degree_skew() < 3
