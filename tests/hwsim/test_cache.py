"""Trace-driven cache simulator tests."""

import numpy as np
import pytest

from repro.hwsim.cache import CacheHierarchy, CacheSim


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        c = CacheSim(4096)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True   # same 64B line
        assert c.access(64) is False  # next line

    def test_capacity_geometry(self):
        c = CacheSim(8192, line_bytes=64, ways=8)
        assert c.capacity_bytes == 8192
        assert c.num_sets == 8192 // (64 * 8)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheSim(64, line_bytes=64, ways=8)

    def test_lru_eviction_within_set(self):
        # direct-mapped-ish: 1 set, 2 ways
        c = CacheSim(128, line_bytes=64, ways=2)
        c.access(0)       # line A
        c.access(64)      # line B
        c.access(0)       # touch A (B is now LRU)
        c.access(128)     # line C evicts B
        assert c.access(0) is True     # A survived
        assert c.access(64) is False   # B was evicted

    def test_working_set_fits_no_capacity_misses(self):
        c = CacheSim(64 * 1024)
        addrs = np.tile(np.arange(0, 32 * 1024, 64), 4)
        c.access_array(addrs)
        # after the cold pass every access hits
        assert c.misses == 512
        assert c.hits == 3 * 512

    def test_working_set_exceeds_capacity_thrashes(self):
        c = CacheSim(8 * 1024, ways=8)
        # cyclic sweep over 4x the capacity: LRU gets zero reuse
        addrs = np.tile(np.arange(0, 32 * 1024, 64), 3)
        c.access_array(addrs)
        assert c.hit_rate < 0.05

    def test_access_array_matches_scalar_access(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 14, 500) * 4
        c1 = CacheSim(4096)
        c1.access_array(addrs)
        c2 = CacheSim(4096)
        for a in addrs:
            c2.access(int(a))
        assert c1.hits == c2.hits and c1.misses == c2.misses

    def test_flush_resets(self):
        c = CacheSim(4096)
        c.access(0)
        c.flush()
        assert c.hits == 0 and c.misses == 0
        assert c.access(0) is False


class TestCacheHierarchy:
    def test_levels_in_order(self):
        h = CacheHierarchy(l1_bytes=4096, llc_bytes=64 * 1024)
        assert h.access(0) == "dram"
        assert h.access(0) == "l1"

    def test_llc_catches_l1_evictions(self):
        h = CacheHierarchy(l1_bytes=1024, llc_bytes=1024 * 1024)
        sweep = np.arange(0, 16 * 1024, 64)
        for a in sweep:
            h.access(int(a))
        # second sweep: L1 (1KB) thrashes, LLC (1MB) holds everything
        results = [h.access(int(a)) for a in sweep]
        assert results.count("llc") > len(sweep) * 0.9

    def test_dram_counter(self):
        h = CacheHierarchy(l1_bytes=4096, llc_bytes=64 * 1024)
        h.access(0)
        h.access(64)
        assert h.dram_accesses() == 2


class TestModelValidation:
    """The analytic CPU hit-rate estimate must order configurations the same
    way the trace simulator does (the Fig. 11 mechanism)."""

    def test_partitioning_improves_simulated_hit_rate(self):
        from repro.graph.datasets import reddit_like
        from repro.graph.partition import partition_1d

        ds = reddit_like(scale=1 / 512, seed=0)
        adj = ds.adj
        f_bytes = 64 * 4  # feature row of 64 floats
        cache_bytes = 32 * 1024

        def simulate(num_parts):
            sim = CacheSim(cache_bytes)
            for p in partition_1d(adj, num_parts):
                sim.access_array(p.csr.indices * f_bytes)
            return sim.hit_rate

        unpartitioned = simulate(1)
        partitioned = simulate(16)
        assert partitioned > unpartitioned + 0.05

    def test_feature_tiling_shrinks_working_set_hit_rate(self):
        from repro.graph.datasets import reddit_like

        ds = reddit_like(scale=1 / 512, seed=1)
        idx = ds.adj.indices
        cache = 32 * 1024

        def simulate(row_bytes):
            sim = CacheSim(cache)
            sim.access_array(idx * row_bytes)
            return sim.hit_rate

        # halving the row (tile) size must not hurt, and normally helps
        assert simulate(128) >= simulate(256) - 1e-9
