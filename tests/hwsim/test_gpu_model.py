"""GPU machine-model tests."""

import pytest

from repro.graph.datasets import paper_stats
from repro.hwsim import gpu
from repro.hwsim.spec import TESLA_V100

SPEC = TESLA_V100


@pytest.fixture(scope="module")
def reddit():
    return paper_stats("reddit")


@pytest.fixture(scope="module")
def rand100k():
    return paper_stats("rand-100K")


@pytest.fixture(scope="module")
def proteins():
    return paper_stats("ogbn-proteins")


class TestSpMMOrdering:
    @pytest.mark.parametrize("f", [32, 128, 512])
    def test_gunrock_much_slower_on_gcn(self, reddit, f):
        """Paper Table IV: 24x-206x on GCN aggregation."""
        gr = gpu.spmm_edge_parallel_time(SPEC, reddit, f)
        fg = gpu.spmm_row_block_time(SPEC, reddit, f, kernel_efficiency=0.92)
        assert gr.seconds / fg.seconds > 15

    def test_gunrock_gap_grows_with_f(self, reddit):
        r32 = (gpu.spmm_edge_parallel_time(SPEC, reddit, 32).seconds
               / gpu.spmm_row_block_time(SPEC, reddit, 32).seconds)
        r512 = (gpu.spmm_edge_parallel_time(SPEC, reddit, 512).seconds
                / gpu.spmm_row_block_time(SPEC, reddit, 512).seconds)
        assert r512 > r32

    def test_featgraph_on_par_with_cusparse(self, reddit):
        """Paper: within ~20% of cuSPARSE either way."""
        for f in (32, 128, 512):
            fg = gpu.spmm_row_block_time(SPEC, reddit, f, kernel_efficiency=0.92,
                                         hybrid_partitioning=True)
            cs = gpu.spmm_row_block_time(SPEC, reddit, f)
            assert 0.6 < fg.seconds / cs.seconds < 1.4

    def test_contention_hits_skewed_graphs(self, reddit, rand100k):
        gr_r = gpu.spmm_edge_parallel_time(SPEC, reddit, 32)
        gr_k = gpu.spmm_edge_parallel_time(SPEC, rand100k, 32)
        # reddit (skewed) suffers more atomic contention per edge
        per_edge_r = gr_r.seconds / reddit.n_edges
        per_edge_k = gr_k.seconds / rand100k.n_edges
        assert per_edge_r > per_edge_k
        assert gr_r.detail["contention"] > 1.0


class TestHybridPartitioning:
    def test_hybrid_improves_l2_story_on_rand100k(self, rand100k):
        """Fig. 13: 10%-20% boost on the bimodal-degree graph."""
        for f in (128, 256, 512):
            base = gpu.spmm_row_block_time(SPEC, rand100k, f)
            hyb = gpu.spmm_row_block_time(SPEC, rand100k, f,
                                          hybrid_partitioning=True)
            assert hyb.detail["l2_hit"] >= base.detail["l2_hit"]
            assert hyb.seconds <= base.seconds

    def test_hit_rate_bounds(self, rand100k):
        for f in (32, 512):
            h = gpu.l2_hit_rate(SPEC, rand100k, f * 4)
            assert 0.0 <= h <= 0.95

    def test_bigger_rows_lower_hit(self, reddit):
        assert (gpu.l2_hit_rate(SPEC, reddit, 128)
                >= gpu.l2_hit_rate(SPEC, reddit, 2048))


class TestTreeReduction:
    @pytest.mark.parametrize("f", [128, 256, 512])
    def test_tree_reduce_wins_at_large_f(self, rand100k, f):
        """Fig. 12: tree reduction boosts dot attention up to ~2x."""
        with_tree = gpu.sddmm_coop_time(SPEC, rand100k, f, tree_reduce=True)
        without = gpu.sddmm_coop_time(SPEC, rand100k, f, tree_reduce=False)
        assert 1.2 < without.seconds / with_tree.seconds < 3.5

    def test_featgraph_beats_gunrock_attention_modestly(self, rand100k):
        """Paper: 1.2x-3.1x on dot-product attention."""
        for f in (32, 128, 512):
            gr = gpu.sddmm_thread_per_edge_time(SPEC, rand100k, f)
            fg = gpu.sddmm_coop_time(SPEC, rand100k, f, tree_reduce=True)
            assert 1.0 < gr.seconds / fg.seconds < 4.0

    def test_no_tree_close_to_gunrock(self, rand100k):
        gr = gpu.sddmm_thread_per_edge_time(SPEC, rand100k, 64)
        fgn = gpu.sddmm_coop_time(SPEC, rand100k, 64, tree_reduce=False)
        assert 0.5 < gr.seconds / fgn.seconds < 2.0


class TestLaunchGeometry:
    def test_launch_efficiency_monotone_in_blocks(self):
        effs = [gpu.launch_efficiency(SPEC, b, 128)
                for b in (256, 1024, 4096, 16384, 65536)]
        assert all(a < b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.9

    def test_fig15_shape(self, reddit):
        """More CUDA blocks => faster, flattening out (Fig. 15)."""
        times = [gpu.spmm_row_block_time(SPEC, reddit, 128, num_blocks=b).seconds
                 for b in (256, 4096, 262144)]
        assert times[0] > times[1] > times[2]
        assert times[0] / times[2] < 3.0  # flattens, not unbounded

    def test_zero_blocks_guarded(self, reddit):
        t = gpu.spmm_row_block_time(SPEC, reddit, 128, num_blocks=0)
        assert t.seconds > 0


class TestMLPAggregation:
    def test_gunrock_gap_on_mlp(self, proteins):
        """Paper: 18x-96x faster than Gunrock on MLP aggregation."""
        for f in (32, 512):
            gr = gpu.spmm_edge_parallel_time(SPEC, proteins, f,
                                             udf_flops_per_edge=2 * 8 * f)
            fg = gpu.spmm_row_block_time(SPEC, proteins, f,
                                         udf_flops_per_edge=2 * 8 * f,
                                         kernel_efficiency=0.92)
            assert gr.seconds / fg.seconds > 10

    def test_udf_flops_increase_time(self, proteins):
        a = gpu.spmm_row_block_time(SPEC, proteins, 128)
        b = gpu.spmm_row_block_time(SPEC, proteins, 128,
                                    udf_flops_per_edge=2 * 8 * 128)
        assert b.seconds > a.seconds
