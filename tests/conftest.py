"""Shared fixtures for the test suite.

Every test runs with deterministically seeded global PRNGs: an autouse
fixture derives a per-test seed from the test's node id (stable across runs
and across ``-k`` selections) and seeds both :mod:`random` and the legacy
``numpy.random`` state.  Tests that need their own generator should take the
function-scoped ``rng`` fixture instead of calling
``np.random.default_rng(...)`` inline -- same determinism, no ad-hoc seeds.
"""

from __future__ import annotations

import random
import zlib

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.sparse import CSRMatrix


def _seed_for(nodeid: str) -> int:
    """Stable per-test seed: crc32 of the pytest node id."""
    return zlib.crc32(nodeid.encode()) & 0x7FFFFFFF


@pytest.fixture(autouse=True)
def _deterministic_seeds(request):
    """Seed the global PRNGs per test so order/selection never changes
    results, and one test's draws can't leak into another's."""
    seed = _seed_for(request.node.nodeid)
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))
    yield


@pytest.fixture()
def rng(request) -> np.random.Generator:
    """A per-test numpy Generator, seeded from the test's node id."""
    return np.random.default_rng(_seed_for(request.node.nodeid))


def make_graph(n_src: int, n_dst: int, m: int, seed: int = 0) -> CSRMatrix:
    """Random multigraph in pull layout (rows = destinations)."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n_src, m)
    dst = r.integers(0, n_dst, m)
    return from_edges(n_src, n_dst, src, dst)


@pytest.fixture()
def small_graph() -> CSRMatrix:
    """A 60-vertex, 800-edge random graph (fast unit-test scale)."""
    return make_graph(60, 60, 800, seed=7)


@pytest.fixture()
def medium_graph() -> CSRMatrix:
    """A 400-vertex, 8000-edge graph (integration scale)."""
    return make_graph(400, 400, 8000, seed=11)


@pytest.fixture()
def edge_list_graph():
    """(adj, src, dst) with the original edge-list arrays for references."""
    r = np.random.default_rng(3)
    n, m = 80, 1200
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    return from_edges(n, n, src, dst), src, dst


def gcn_reference(src: np.ndarray, dst: np.ndarray, x: np.ndarray,
                  n: int) -> np.ndarray:
    """Multigraph-correct sum aggregation reference."""
    out = np.zeros((n, x.shape[1]), dtype=np.float32)
    np.add.at(out, dst, x[src])
    return out
