"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.sparse import CSRMatrix


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_graph(n_src: int, n_dst: int, m: int, seed: int = 0) -> CSRMatrix:
    """Random multigraph in pull layout (rows = destinations)."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n_src, m)
    dst = r.integers(0, n_dst, m)
    return from_edges(n_src, n_dst, src, dst)


@pytest.fixture()
def small_graph() -> CSRMatrix:
    """A 60-vertex, 800-edge random graph (fast unit-test scale)."""
    return make_graph(60, 60, 800, seed=7)


@pytest.fixture()
def medium_graph() -> CSRMatrix:
    """A 400-vertex, 8000-edge graph (integration scale)."""
    return make_graph(400, 400, 8000, seed=11)


@pytest.fixture()
def edge_list_graph():
    """(adj, src, dst) with the original edge-list arrays for references."""
    r = np.random.default_rng(3)
    n, m = 80, 1200
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    return from_edges(n, n, src, dst), src, dst


def gcn_reference(src: np.ndarray, dst: np.ndarray, x: np.ndarray,
                  n: int) -> np.ndarray:
    """Multigraph-correct sum aggregation reference."""
    out = np.zeros((n, x.shape[1]), dtype=np.float32)
    np.add.at(out, dst, x[src])
    return out
