"""Unit tests for the pinned-budget LRU feature-row cache."""

import numpy as np
import pytest

from repro.serve import FeatureCache


@pytest.fixture()
def features():
    return np.arange(80, dtype=np.float32).reshape(20, 4)  # 16 B per row


class TestGatherCorrectness:
    def test_rows_match_direct_indexing(self, features):
        cache = FeatureCache(features, budget_bytes=8 * 16)
        ids = np.array([3, 0, 7, 3, 19])
        assert np.array_equal(cache.gather(ids), features[ids])
        # second pass: same rows, now (partly) from the pinned buffer
        assert np.array_equal(cache.gather(ids), features[ids])
        assert cache.hits > 0

    def test_empty_gather(self, features):
        cache = FeatureCache(features, budget_bytes=16)
        assert cache.gather(np.array([], dtype=np.int64)).shape == (0, 4)

    def test_duplicate_ids_within_one_gather(self, features):
        cache = FeatureCache(features, budget_bytes=4 * 16)
        ids = np.array([5, 5, 5])
        assert np.array_equal(cache.gather(ids), features[ids])
        assert len(cache) == 1

    def test_rows_correct_across_eviction_churn(self, features):
        """Every gather returns exact rows even when the working set is far
        larger than the budget."""
        cache = FeatureCache(features, budget_bytes=3 * 16)
        rng = np.random.default_rng(0)
        for _ in range(30):
            ids = rng.integers(0, 20, size=6)
            assert np.array_equal(cache.gather(ids), features[ids])


class TestBudgetAndEviction:
    def test_capacity_from_byte_budget(self, features):
        cache = FeatureCache(features, budget_bytes=5 * 16 + 7)
        assert cache.capacity_rows == 5  # partial row does not count

    def test_budget_below_one_row_rejected(self, features):
        with pytest.raises(ValueError):
            FeatureCache(features, budget_bytes=15)

    def test_rows_never_exceed_capacity(self, features):
        cache = FeatureCache(features, budget_bytes=4 * 16)
        cache.gather(np.arange(20))
        assert len(cache) == 4
        assert cache.stats()["bytes_pinned"] == 4 * 16
        assert cache.evictions == 16

    def test_lru_eviction_order(self, features):
        cache = FeatureCache(features, budget_bytes=2 * 16)
        cache.gather(np.array([0]))
        cache.gather(np.array([1]))
        cache.gather(np.array([0]))  # touch 0: now 1 is least recent
        cache.gather(np.array([2]))  # evicts 1, keeps 0
        assert cache._slot_of[0] >= 0
        assert cache._slot_of[1] == -1
        assert cache._slot_of[2] >= 0


class TestAccounting:
    def test_hit_miss_counters(self, features):
        cache = FeatureCache(features, budget_bytes=8 * 16)
        cache.gather(np.array([1, 2, 3]))
        assert (cache.hits, cache.misses) == (0, 3)
        cache.gather(np.array([2, 3, 4]))
        assert (cache.hits, cache.misses) == (2, 4)
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(2 / 6)
        assert stats["rows"] == 4
