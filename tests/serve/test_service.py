"""Serving-layer coverage (ISSUE 10): correctness of scattered logits,
micro-batch coalescing of duplicate seeds, deadlines, admission control,
graceful shutdown, and the zero-recompile steady state."""

import threading
import time

import numpy as np
import pytest

from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN
from repro.minidgl.train import infer_minibatch
from repro.serve import (
    DeadlineExceeded,
    InferenceService,
    Overloaded,
    ServiceClosed,
)

#: topology-independent pipeline passes that must never re-run once the
#: serving templates are warm (same ledger as tests/core/test_block_kernel_reuse)
EXPENSIVE_PASSES = ("build_expr", "fuse_fds", "lower", "validate",
                    "analyze", "simplify", "vectorize", "codegen")


@pytest.fixture(scope="module")
def dataset():
    return planted_partition(n=300, num_classes=4, feature_dim=16,
                             avg_degree=10, seed=0)


@pytest.fixture()
def model():
    return GCN(16, 4, hidden=8, dropout=0.0, seed=0)


@pytest.fixture()
def backend():
    return get_backend("featgraph")


def _service(model, dataset, backend, **kw):
    kw.setdefault("batch_window_ms", 0.0)
    return InferenceService(model, dataset, backend, **kw)


class TestCorrectness:
    def test_matches_infer_minibatch(self, model, dataset, backend):
        """Full-neighborhood serving returns exactly what the offline
        harness computes, rows in request order."""
        ids = np.array([5, 3, 9, 120])
        want, _ = infer_minibatch(model, dataset, backend, ids)
        with _service(model, dataset, backend) as svc:
            got, stats = svc.infer(ids)
        assert np.allclose(got, want, atol=1e-5)
        assert stats.batch_seeds == 4

    def test_single_seed_scalar_request(self, model, dataset, backend):
        want, _ = infer_minibatch(model, dataset, backend, np.array([42]))
        with _service(model, dataset, backend) as svc:
            got, _ = svc.infer(42)
        assert got.shape == (1, 4)
        assert np.allclose(got, want, atol=1e-5)

    def test_duplicate_seeds_within_request(self, model, dataset, backend):
        with _service(model, dataset, backend) as svc:
            got, stats = svc.infer(np.array([7, 7, 11]))
        assert got.shape == (3, 4)
        assert np.array_equal(got[0], got[1])
        assert stats.batch_seeds == 2  # deduplicated block

    def test_empty_seed_request(self, model, dataset, backend):
        with _service(model, dataset, backend) as svc:
            got, stats = svc.infer(np.array([], dtype=np.int64))
        assert got.shape == (0, 4)
        assert stats.batch_seeds == 0


class TestMicroBatching:
    def test_duplicate_seeds_across_concurrent_requests(self, model, dataset,
                                                        backend):
        """Concurrent requests sharing seeds coalesce into one deduplicated
        batch, and each still receives its own correctly-ordered logits."""
        want, _ = infer_minibatch(model, dataset, backend,
                                  np.array([1, 2, 3]))
        svc = _service(model, dataset, backend, batch_window_ms=100.0,
                       start=False)
        f1 = svc.submit(np.array([1, 2, 3]))
        f2 = svc.submit(np.array([3, 1]))
        f3 = svc.submit(2)
        svc.start()
        try:
            r1 = f1.result(10.0)
            r2 = f2.result(10.0)
            r3 = f3.result(10.0)
        finally:
            svc.close()
        assert np.allclose(r1, want, atol=1e-5)
        assert np.allclose(r2, want[[2, 0]], atol=1e-5)
        assert np.allclose(r3, want[[1]], atol=1e-5)
        # all three rode one batch over the 3 unique seeds
        for fut in (f1, f2, f3):
            assert fut.stats().batch_requests == 3
            assert fut.stats().batch_seeds == 3
        assert svc.stats()["batches"] == 1

    def test_max_batch_seeds_splits_batches(self, model, dataset, backend):
        svc = _service(model, dataset, backend, batch_window_ms=100.0,
                       max_batch_seeds=4, start=False)
        futs = [svc.submit(np.array([i, i + 50, i + 100])) for i in range(3)]
        svc.start()
        try:
            for f in futs:
                f.result(10.0)
        finally:
            svc.close()
        # 3 seeds per request, cap 4 -> one request per batch
        assert svc.stats()["batches"] == 3
        assert all(f.stats().batch_requests == 1 for f in futs)

    def test_occupancy_and_stats_fields(self, model, dataset, backend):
        with _service(model, dataset, backend, max_batch_seeds=8) as svc:
            _, stats = svc.infer(np.array([4, 9]))
        assert stats.occupancy == pytest.approx(2 / 8)
        assert stats.queue_seconds >= 0
        assert stats.sample_seconds > 0
        assert stats.compute_seconds > 0
        assert stats.total_seconds >= stats.compute_seconds
        assert np.isnan(stats.cache_hit_rate)  # no cache configured


class TestDeadlines:
    def test_expired_request_gets_timely_error(self, model, dataset, backend):
        """A request whose deadline passes while it waits is failed with
        DeadlineExceeded when its batch forms -- promptly, not at the end
        of the queue's natural drain."""
        with _service(model, dataset, backend, batch_window_ms=50.0) as svc:
            t0 = time.perf_counter()
            fut = svc.submit(np.array([3]), deadline_s=1e-4)
            with pytest.raises(DeadlineExceeded):
                fut.result(10.0)
            assert time.perf_counter() - t0 < 2.0
            assert svc.stats()["expired"] == 1
            # the failure still carries queue accounting
            assert fut.stats().compute_seconds == 0.0

    def test_expired_request_does_not_poison_batchmates(self, model, dataset,
                                                        backend):
        svc = _service(model, dataset, backend, batch_window_ms=100.0,
                       start=False)
        ok = svc.submit(np.array([1, 2]))
        doomed = svc.submit(np.array([5]), deadline_s=1e-4)
        svc.start()
        try:
            got = ok.result(10.0)
            with pytest.raises(DeadlineExceeded):
                doomed.result(10.0)
        finally:
            svc.close()
        want, _ = infer_minibatch(model, dataset, backend, np.array([1, 2]))
        assert np.allclose(got, want, atol=1e-5)
        assert ok.stats().batch_requests == 1  # the expired one dropped out

    def test_generous_deadline_is_met(self, model, dataset, backend):
        with _service(model, dataset, backend) as svc:
            got, _ = svc.infer(np.array([8]), deadline_s=30.0)
        assert got.shape == (1, 4)


class TestAdmissionControl:
    def test_rejects_beyond_queue_depth(self, model, dataset, backend):
        svc = _service(model, dataset, backend, max_queue_depth=3,
                       start=False)
        futs = [svc.submit(np.array([i])) for i in range(3)]
        with pytest.raises(Overloaded):
            svc.submit(np.array([99]))
        assert svc.stats()["rejected"] == 1
        # accepted requests still complete once the batcher runs
        svc.start()
        try:
            for f in futs:
                assert f.result(10.0).shape == (1, 4)
        finally:
            svc.close()
        assert svc.stats()["served"] == 3

    def test_saturation_then_recovery(self, model, dataset, backend):
        """After the queue drains, admission opens again."""
        svc = _service(model, dataset, backend, max_queue_depth=2,
                       start=False)
        svc.submit(np.array([0]))
        svc.submit(np.array([1]))
        with pytest.raises(Overloaded):
            svc.submit(np.array([2]))
        svc.start()
        try:
            got, _ = svc.infer(np.array([2]), timeout=10.0)
        finally:
            svc.close()
        assert got.shape == (1, 4)


class TestShutdown:
    def test_close_drains_queued_requests(self, model, dataset, backend):
        svc = _service(model, dataset, backend, start=False)
        futs = [svc.submit(np.array([i, i + 10])) for i in range(5)]
        svc.start()
        svc.close(drain=True)
        for f in futs:
            assert f.result(0.0).shape == (2, 4)  # already resolved
        assert svc.stats()["served"] == 5

    def test_close_without_drain_cancels(self, model, dataset, backend):
        svc = _service(model, dataset, backend, start=False)
        futs = [svc.submit(np.array([i])) for i in range(3)]
        svc.close(drain=False)
        for f in futs:
            with pytest.raises(ServiceClosed):
                f.result(0.0)
        assert svc.stats()["cancelled"] == 3

    def test_submit_after_close_rejected(self, model, dataset, backend):
        svc = _service(model, dataset, backend)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit(np.array([1]))


class TestFeatureCacheIntegration:
    def test_repeat_requests_hit_the_cache(self, model, dataset, backend):
        with _service(model, dataset, backend,
                      feature_cache_bytes=1 << 20) as svc:
            ids = np.array([5, 3, 9])
            first, s1 = svc.infer(ids)
            second, s2 = svc.infer(ids)
        assert np.allclose(first, second)
        assert s1.cache_hit_rate == 0.0
        assert s2.cache_hit_rate == 1.0  # identical frontier, fully pinned
        cache = svc.stats()["cache"]
        assert cache["hits"] > 0 and cache["misses"] > 0

    def test_cached_logits_match_uncached(self, model, dataset, backend):
        ids = np.arange(0, 40, 3)
        with _service(model, dataset, backend) as plain:
            want, _ = plain.infer(ids)
        # a tiny budget forces eviction churn; results must be identical
        with _service(model, dataset, backend,
                      feature_cache_bytes=8 * 16 * 4) as svc:
            for _ in range(3):
                got, _ = svc.infer(ids)
                assert np.allclose(got, want, atol=1e-6)


class TestZeroRecompileSteadyState:
    def test_100_served_batches_are_pure_binds(self, dataset, backend):
        """THE serving acceptance check: after a one-batch warmup, 100
        served batches (fresh sampled topologies every time) re-run no
        expensive compile pass and add no pipeline runs -- every kernel is
        a frozen-template bind."""
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=0)
        rng = np.random.default_rng(7)
        with use_kernel_cache(KernelCache()) as cache:
            with _service(model, dataset, backend, fanouts=[3, 3],
                          rng=np.random.default_rng(1)) as svc:
                svc.infer(np.array([0, 1, 2, 3]))  # warmup compiles
                frozen = dict(cache.stats()["pass_counts"])
                runs = cache.stats()["pipeline_runs"]
                binds_before = cache.stats()["binds"]
                for _ in range(100):
                    seeds = rng.choice(300, size=4, replace=False)
                    logits, _ = svc.infer(seeds)
                    assert logits.shape == (4, 4)
                stats = cache.stats()
                assert svc.stats()["batches"] == 101
            for p in EXPENSIVE_PASSES:
                assert stats["pass_counts"].get(p, 0) == frozen.get(p, 0), (
                    f"pass {p!r} re-ran during steady-state serving")
            assert stats["pipeline_runs"] == runs
            assert stats["binds"] > binds_before  # served by rebinding


class TestConcurrentClients:
    def test_closed_loop_clients_all_served_correctly(self, model, dataset,
                                                      backend):
        """8 closed-loop clients hammering the service: every response
        matches the offline reference for its seed."""
        want, _ = infer_minibatch(model, dataset, backend, np.arange(300))
        errors: list[BaseException] = []

        def client(cid):
            rng = np.random.default_rng(cid)
            try:
                for _ in range(10):
                    seed = int(rng.integers(0, 300))
                    got, _ = svc.infer(seed, timeout=30.0)
                    if not np.allclose(got[0], want[seed], atol=1e-4):
                        raise AssertionError(f"wrong logits for seed {seed}")
            except BaseException as exc:
                errors.append(exc)

        with _service(model, dataset, backend, batch_window_ms=2.0,
                      max_queue_depth=256,
                      feature_cache_bytes=1 << 20) as svc:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
        assert not errors, errors[0]
        assert svc.stats()["served"] == 80
