"""Fuzzer/analyzer cross-validation: lint verdicts vs. actual numerics.

``run_trial(..., analyzer_cross_check=True)`` treats an analyzer error on a
kernel that nevertheless matches both references as a trial failure at stage
``"analysis"`` -- the differential harness keeps the lint honest the same way
it keeps the kernels honest.
"""

import random

from repro.testing import differential as D
from repro.tensorir.analysis import AnalysisReport, Diagnostic, Severity


def _fake_errors(kernel):
    return AnalysisReport(diagnostics=(
        Diagnostic("FG001", Severity.ERROR, "for e[parallel] > store out",
                   "injected verdict for cross-check testing"),)).errors


class TestAnalyzerCrossCheck:
    def _clean_config(self):
        # Any sampled config works: the tier-1 sweep (seed 0) is known clean.
        return D.sample_config(random.Random(0))

    def test_false_positive_fails_at_analysis_stage(self, monkeypatch):
        monkeypatch.setattr(D, "_analysis_errors", _fake_errors)
        cfg = self._clean_config()
        result = D.run_trial(cfg, analyzer_cross_check=True)
        assert not result.ok
        assert result.stage == "analysis"
        assert "false positive" in result.message
        assert "FG001" in result.message

    def test_cross_check_off_ignores_analyzer(self, monkeypatch):
        monkeypatch.setattr(D, "_analysis_errors", _fake_errors)
        result = D.run_trial(self._clean_config())
        assert result.ok

    def test_clean_analyzer_passes_cross_check(self):
        result = D.run_trial(self._clean_config(),
                             analyzer_cross_check=True)
        assert result.ok, result.message

    def test_run_trials_threads_the_flag(self, monkeypatch):
        monkeypatch.setattr(D, "_analysis_errors", _fake_errors)
        report = D.run_trials(3, seed=0, analyzer_cross_check=True)
        assert not report.ok
        assert all(r.stage == "analysis" for _, r in report.failures)

    def test_fuzz_smoke_with_analyze_flag(self, capsys):
        from repro.testing.fuzz import main as fuzz_main
        rc = fuzz_main(["--trials", "5", "--seed", "0", "--analyze"])
        assert rc == 0
