"""Generators: graph families, UDF families vs the expression evaluator,
FDS specs."""

import random

import numpy as np
import pytest

from repro.testing import generators as G
from repro.tensorir.evaluator import evaluate_batched


class TestGraphFamilies:
    @pytest.mark.parametrize("family", G.GRAPH_FAMILIES)
    def test_valid_csr(self, family):
        spec = {"family": family, "n_src": 7, "n_dst": 5, "m": 14, "seed": 3}
        csr = G.make_graph(spec)
        assert csr.shape == (5, 7)
        assert csr.indptr[-1] == csr.nnz
        if csr.nnz:
            assert csr.indices.max() < 7
        assert sorted(csr.edge_ids) == list(range(csr.nnz))

    def test_deterministic_by_seed(self):
        spec = {"family": "random", "n_src": 7, "n_dst": 5, "m": 14, "seed": 3}
        assert G.make_graph(spec).fingerprint() == G.make_graph(spec).fingerprint()
        other = G.make_graph({**spec, "seed": 4})
        assert other.fingerprint() != G.make_graph(spec).fingerprint()

    def test_empty_family_has_no_edges(self):
        csr = G.make_graph({"family": "empty", "n_src": 4, "n_dst": 4,
                            "m": 9, "seed": 0})
        assert csr.nnz == 0

    def test_coalesced_has_no_duplicates(self):
        csr = G.make_graph({"family": "coalesced", "n_src": 5, "n_dst": 5,
                            "m": 20, "seed": 2})
        pairs = set(zip(csr.row_of_edge().tolist(), csr.indices.tolist()))
        assert len(pairs) == csr.nnz

    def test_self_loops_contains_diagonal(self):
        csr = G.make_graph({"family": "self_loops", "n_src": 6, "n_dst": 6,
                            "m": 4, "seed": 1})
        pairs = set(zip(csr.row_of_edge().tolist(), csr.indices.tolist()))
        assert all((v, v) in pairs for v in range(6))

    def test_lonely_rows_leaves_rows_empty(self):
        csr = G.make_graph({"family": "lonely_rows", "n_src": 8, "n_dst": 8,
                            "m": 10, "seed": 1})
        assert (csr.row_degrees() == 0).sum() >= 4

    def test_sampled_specs_materialize(self):
        rnd = random.Random(0)
        for _ in range(25):
            G.make_graph(G.sample_graph_spec(rnd))


class TestUDFFamilies:
    """Every family's numpy reference must agree with the tensorir
    evaluator on random per-edge data -- otherwise the differential
    cross-check would chase phantom bugs."""

    @pytest.mark.parametrize("name", sorted(G.UDF_FAMILIES))
    def test_reference_matches_evaluator(self, name):
        from repro.tensorir.expr import Var

        fam = G.UDF_FAMILIES[name]
        dims = {"n": 6, "m": 9, "f": 4, "d": 3, "h": 2}
        inst = fam.make(dims)
        rng = np.random.default_rng(42)
        bindings = {k: rng.standard_normal(shape).astype(np.float32)
                    for k, shape in inst.placeholders.items()}
        src = rng.integers(0, 6, 9)
        dst = rng.integers(0, 6, 9)
        eid = np.arange(9)
        out = inst.udf(Var("src"), Var("dst"), Var("eid"))
        got = evaluate_batched(out, bindings,
                               {"src": src, "dst": dst, "eid": eid})
        want = inst.reference(bindings, src, dst, eid)
        np.testing.assert_allclose(got, np.asarray(want).reshape(got.shape),
                                   rtol=1e-5, atol=1e-5)

    def test_at_least_five_families_cover_both_kinds(self):
        assert len(G.UDF_FAMILIES) >= 5
        kinds = {k for f in G.UDF_FAMILIES.values() for k in f.kinds}
        assert kinds == {"spmm", "sddmm"}


class TestFDSSpecs:
    @pytest.mark.parametrize("spec", [
        None,
        {"name": "cpu_tile", "factor": 4},
        {"name": "cpu_multilevel", "out_factor": 2, "reduce_factor": 2},
        {"name": "gpu_feature_thread"},
        {"name": "gpu_tree_reduce"},
        {"name": "gpu_multilevel"},
    ])
    def test_make_fds(self, spec):
        fds = G.make_fds(spec)
        assert (fds is None) == (spec is None)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            G.make_fds({"name": "nope"})

    def test_tree_reduce_only_sampled_with_reduction(self):
        rnd = random.Random(0)
        for _ in range(200):
            spec = G.sample_fds_spec(rnd, "gpu", has_reduction=False)
            assert spec is None or spec["name"] != "gpu_tree_reduce"

    def test_cpu_specs_never_bind_threads(self):
        rnd = random.Random(0)
        for _ in range(200):
            spec = G.sample_fds_spec(rnd, "cpu", has_reduction=True)
            assert spec is None or spec["name"].startswith("cpu_")
