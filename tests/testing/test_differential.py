"""Differential fuzzing harness: fixed-seed budget, shrinking, replay."""

import random
import shlex

import numpy as np
import pytest

from repro import tensorir as T
from repro.testing import differential as D
from repro.testing import generators as G
from repro.testing.fuzz import main as fuzz_main


class TestFixedSeedBudget:
    """The tier-1 fuzz budget: a deterministic sweep must pass clean."""

    def test_sixty_trials_seed_zero(self):
        report = D.run_trials(60, seed=0)
        assert report.ok, [r.message for _, r in report.failures]
        assert report.trials == 60
        # breadth: several UDF families and both targets get exercised
        assert len(report.coverage["udf"]) >= 5
        assert set(report.coverage["target"]) == {"cpu", "gpu"}
        assert set(report.coverage["kind"]) == {"spmm", "sddmm"}

    def test_same_seed_same_configs(self):
        a = [D.sample_config(random.Random(7)).to_json() for _ in range(1)]
        b = [D.sample_config(random.Random(7)).to_json() for _ in range(1)]
        assert a == b

    def test_different_seeds_differ(self):
        cfgs = {D.sample_config(random.Random(s)).to_json() for s in range(20)}
        assert len(cfgs) > 10


class TestConfigRoundTrip:
    def test_json_round_trip(self):
        cfg = D.sample_config(random.Random(3))
        again = D.TrialConfig.from_json(cfg.to_json())
        assert again == cfg
        assert again.to_json() == cfg.to_json()

    def test_replay_command_embeds_config(self):
        cfg = D.sample_config(random.Random(3))
        cmd = D.replay_command(cfg)
        # the JSON payload round-trips out of the printed command line
        payload = shlex.split(cmd.replace("PYTHONPATH=src ", ""))[-1]
        assert D.TrialConfig.from_json(payload) == cfg


def _bad_registry():
    """A registry whose 'copy_u' reference disagrees with its UDF -- stands
    in for a kernel bug the differential check must catch."""

    def make_bad(dims):
        inst = G.UDF_FAMILIES["copy_u"].make(dims)
        return G.UDFInstance(
            inst.udf, inst.placeholders,
            lambda b, s, d, e: b["XV"][s] + 1.0,  # intentionally wrong
            inst.out_shape)

    bad = dict(G.UDF_FAMILIES)
    bad["copy_u"] = G.UDFFamily("copy_u", ("spmm", "sddmm"), make_bad,
                                dims=("f",))
    return bad


class TestKnownBadUDF:
    def _failing_config(self):
        return D.TrialConfig(
            kind="spmm", target="gpu",
            graph={"family": "power_law", "n_src": 9, "n_dst": 7, "m": 21,
                   "seed": 11},
            udf="copy_u", dims={"f": 4}, aggregation="mean",
            fds={"name": "gpu_feature_thread"},
            options={"num_graph_partitions": 2}, data_seed=5)

    def test_detected_at_reference_stage(self):
        res = D.run_trial(self._failing_config(), registry=_bad_registry())
        assert not res.ok
        assert res.stage == "reference"
        assert res.max_abs_diff > 0

    def test_shrinks_to_minimal_repro_that_round_trips(self):
        registry = _bad_registry()
        cfg = self._failing_config()

        def fails(c):
            return not D.run_trial(c, registry=registry).ok

        assert fails(cfg)
        small = D.shrink(cfg, fails)
        # the minimal repro is radically simpler ...
        assert small.fds is None
        assert small.options == {}
        assert small.target == "cpu"
        assert small.aggregation == "sum"
        assert small.dims == {"f": 1}
        assert small.graph["m"] >= 1  # zero edges would mask the bug
        # ... still fails ...
        assert fails(small)
        # ... and its replay command round-trips through JSON
        payload = shlex.split(D.replay_command(small))[-1]
        assert D.TrialConfig.from_json(payload) == small

    def test_good_registry_passes_same_config(self):
        res = D.run_trial(self._failing_config())
        assert res.ok, res.message


class TestAggregateEdges:
    def test_empty_rows_zeroed_for_max(self):
        msgs = np.array([[1.0], [2.0]], dtype=np.float32)
        rows = np.array([2, 2])
        out = D.aggregate_edges(msgs, rows, 4, "max")
        assert out[2, 0] == 2.0
        assert np.all(out[[0, 1, 3]] == 0.0)  # not -inf

    def test_mean_divides_by_degree(self):
        msgs = np.array([[2.0], [4.0], [9.0]], dtype=np.float32)
        rows = np.array([0, 0, 1])
        out = D.aggregate_edges(msgs, rows, 2, "mean")
        assert out[0, 0] == pytest.approx(3.0)
        assert out[1, 0] == pytest.approx(9.0)

    def test_prod_identity(self):
        msgs = np.array([[3.0]], dtype=np.float32)
        rows = np.array([1])
        out = D.aggregate_edges(msgs, rows, 2, "prod")
        assert out[1, 0] == 3.0
        assert out[0, 0] == 0.0  # empty row zeroed, not identity 1


class TestFuzzCLI:
    def test_replay_pass_exit_zero(self, capsys):
        cfg = D.sample_config(random.Random(1))
        assert fuzz_main(["--replay", cfg.to_json()]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_small_budget_exit_zero(self, capsys):
        assert fuzz_main(["--trials", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "10 trials, 0 failures" in out

    def test_bad_config_exit_one(self, capsys):
        # an unknown UDF family fails at the build stage
        cfg = D.sample_config(random.Random(1))
        cfg.udf = "no_such_family"
        assert fuzz_main(["--replay", cfg.to_json()]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestValidationIntegration:
    """Illegal FDS + target combinations fail at kernel construction."""

    def test_gpu_fds_on_cpu_kernel_raises_schedule_error(self):
        from repro.core.api import spmm
        from repro.tensorir.validate import ScheduleError

        csr = G.make_graph({"family": "random", "n_src": 6, "n_dst": 6,
                            "m": 12, "seed": 0})
        XV = T.placeholder((6, 4), name="XV")

        def msgfunc(src, dst, eid):
            return T.compute((4,), lambda i: XV[src, i], name="msg")

        with pytest.raises(ScheduleError, match="cpu"):
            spmm(csr, msgfunc, target="cpu",
                 fds=G.make_fds({"name": "gpu_feature_thread"}))
