"""Robustness and failure-injection tests for the template layer."""

import numpy as np
import pytest

import repro.core as featgraph
from repro import tensorir as T
from repro.core import kernels
from repro.graph.sparse import CSRMatrix, from_edges


def _copy(adj, n, f, **opts):
    XV = T.placeholder((n, f), name="XV")

    def msgfunc(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i])

    return featgraph.spmm(adj, msgfunc, "sum", **opts)


class TestConstructorGuards:
    def test_chunk_edges_must_be_positive(self, small_graph):
        n = small_graph.shape[1]
        with pytest.raises(ValueError, match="chunk_edges"):
            _copy(small_graph, n, 8, chunk_edges=0)
        with pytest.raises(ValueError, match="chunk_edges"):
            _copy(small_graph, n, 8, chunk_edges=-5)

    def test_sddmm_chunk_edges_guard(self, small_graph):
        n = small_graph.shape[1]
        XV = T.placeholder((n, 4), name="XV")

        def edgefunc(s, d, e):
            return T.compute((4,), lambda i: XV[s, i])

        with pytest.raises(ValueError, match="chunk_edges"):
            featgraph.sddmm(small_graph, edgefunc, chunk_edges=0)

    def test_scalar_message_rejected(self, small_graph):
        """UDFs must return feature *tensors*, not 0-d computes."""
        def msgfunc(src, dst, eid):
            return T.compute((), lambda: T.const(1.0))

        with pytest.raises(ValueError, match="feature dimension"):
            featgraph.spmm(small_graph, msgfunc, "sum")

    def test_negative_partition_counts_clamped(self, small_graph):
        n = small_graph.shape[1]
        k = _copy(small_graph, n, 8, num_graph_partitions=-3,
                  num_feature_partitions=-1)
        assert k.num_graph_partitions == 1
        assert k.num_feature_partitions == 1

    def test_feature_partitions_clamped_to_width(self, small_graph):
        n = small_graph.shape[1]
        k = _copy(small_graph, n, 4, num_feature_partitions=100)
        assert k.num_feature_partitions == 4


class TestCorruptedInputs:
    def test_corrupted_indptr_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CSRMatrix((3, 3), np.array([0, 2, 1, 2]), np.array([0, 1]))

    def test_nan_features_propagate_not_crash(self, small_graph):
        n = small_graph.shape[1]
        k = _copy(small_graph, n, 4)
        x = np.full((n, 4), np.nan, dtype=np.float32)
        out = k.run({"XV": x})
        deg = np.diff(small_graph.indptr)
        assert np.isnan(out[deg > 0]).all()
        assert np.all(out[deg == 0] == 0)

    def test_non_contiguous_feature_matrix_accepted(self, small_graph):
        n = small_graph.shape[1]
        k = _copy(small_graph, n, 4)
        base = np.random.default_rng(0).random((n, 8)).astype(np.float32)
        strided = base[:, ::2]  # non-contiguous view, shape (n, 4)
        ref = np.ascontiguousarray(strided)
        assert np.allclose(k.run({"XV": strided}), k.run({"XV": ref}),
                           atol=1e-6)

    def test_float64_features_accepted(self, small_graph):
        n = small_graph.shape[1]
        k = _copy(small_graph, n, 4)
        x64 = np.random.default_rng(1).random((n, 4))  # float64
        x32 = x64.astype(np.float32)
        assert np.allclose(k.run({"XV": x64}), k.run({"XV": x32}), atol=1e-5)


class TestDeterminism:
    def test_repeated_runs_bitwise_identical(self, medium_graph):
        n = medium_graph.shape[1]
        k = _copy(medium_graph, n, 16, num_graph_partitions=4,
                  num_feature_partitions=2)
        x = np.random.default_rng(2).random((n, 16)).astype(np.float32)
        a = k.run({"XV": x})
        b = k.run({"XV": x})
        assert np.array_equal(a, b)

    def test_hilbert_order_cached_and_stable(self, medium_graph):
        n = medium_graph.shape[1]
        kern = kernels.dot_attention(medium_graph, n, 8)
        x = np.random.default_rng(3).random((n, 8)).astype(np.float32)
        a = kern.run({"XV": x})
        order_ref = kern._order
        b = kern.run({"XV": x})
        assert kern._order is order_ref
        assert np.array_equal(a, b)
