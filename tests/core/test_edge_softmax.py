"""Fused edge-softmax pipeline tests."""

import numpy as np
import pytest

from repro.core.softmax import EdgeSoftmax
from repro.graph.segment import segment_softmax
from repro.graph.sparse import from_edges


def _reference(adj, scores):
    """Segment softmax in CSR order, mapped back to original edge ids."""
    csr_scores = scores[adj.edge_ids]
    ref_csr = segment_softmax(csr_scores, adj.indptr)
    ref = np.empty_like(ref_csr)
    ref[adj.edge_ids] = ref_csr
    return ref


class TestEdgeSoftmax:
    def test_matches_segment_softmax(self, edge_list_graph, rng):
        adj, src, dst = edge_list_graph
        scores = rng.standard_normal(adj.nnz).astype(np.float32)
        sm = EdgeSoftmax(adj)
        assert np.allclose(sm.run(scores), _reference(adj, scores), atol=1e-4)

    def test_multihead(self, edge_list_graph, rng):
        adj, src, dst = edge_list_graph
        h = 4
        scores = rng.standard_normal((adj.nnz, h)).astype(np.float32)
        sm = EdgeSoftmax(adj, num_heads=h)
        alpha = sm.run(scores)
        assert alpha.shape == (adj.nnz, h)
        sums = np.zeros((adj.shape[0], h))
        np.add.at(sums, adj.row_of_edge(), alpha[adj.edge_ids])
        deg = np.diff(adj.indptr)
        assert np.allclose(sums[deg > 0], 1, atol=1e-4)

    def test_numerical_stability_large_scores(self, edge_list_graph):
        adj, *_ = edge_list_graph
        scores = np.full(adj.nnz, 1e4, dtype=np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.isfinite(alpha).all()
        assert np.allclose(alpha, _reference(adj, scores), atol=1e-4)

    def test_isolated_destinations_safe(self):
        adj = from_edges(10, 10, np.array([0, 1]), np.array([3, 3]))
        scores = np.array([1.0, 2.0], np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.isfinite(alpha).all()
        assert alpha.sum() == pytest.approx(1.0, abs=1e-5)

    def test_single_edge_per_destination_gives_one(self):
        adj = from_edges(5, 5, np.array([0, 1, 2]), np.array([1, 2, 3]))
        alpha = EdgeSoftmax(adj).run(np.array([-5.0, 0.0, 9.0], np.float32))
        assert np.allclose(alpha, 1.0, atol=1e-5)

    def test_cost_is_three_phases(self, edge_list_graph):
        adj, *_ = edge_list_graph
        sm = EdgeSoftmax(adj)
        total = sm.cost()
        assert total.seconds > sm._max_kernel.cost().seconds
        assert total.seconds > 0

    def test_invalid_heads(self, edge_list_graph):
        adj, *_ = edge_list_graph
        with pytest.raises(ValueError):
            EdgeSoftmax(adj, num_heads=0)

    def test_gpu_target(self, edge_list_graph, rng):
        adj, *_ = edge_list_graph
        scores = rng.standard_normal(adj.nnz).astype(np.float32)
        sm = EdgeSoftmax(adj, target="gpu")
        assert np.allclose(sm.run(scores), _reference(adj, scores), atol=1e-4)


class TestDegenerateRowStability:
    """Rows with 0 and 1 edges, mixed in one graph, under extreme scores."""

    def _mixed_graph(self):
        # dst 0: two edges; dst 1: one edge; dst 2..5: empty
        return from_edges(6, 6, np.array([0, 1, 2]), np.array([0, 0, 1]))

    def test_mixed_zero_and_one_edge_rows(self):
        adj = self._mixed_graph()
        scores = np.array([1e4, -1e4, 3.0], np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.isfinite(alpha).all()
        # the 1-edge row normalizes to exactly 1 regardless of its score
        assert alpha[2] == pytest.approx(1.0, abs=1e-6)
        # the 2-edge row sums to 1 and is dominated by the large score
        assert alpha[0] + alpha[1] == pytest.approx(1.0, abs=1e-5)
        assert alpha[0] == pytest.approx(1.0, abs=1e-5)

    def test_multihead_mixed_rows(self, rng):
        adj = self._mixed_graph()
        h = 3
        scores = (rng.standard_normal((adj.nnz, h)) * 50).astype(np.float32)
        alpha = EdgeSoftmax(adj, num_heads=h).run(scores)
        assert np.isfinite(alpha).all()
        assert np.allclose(alpha[2], 1.0, atol=1e-5)
        assert np.allclose(alpha[0] + alpha[1], 1.0, atol=1e-4)

    def test_empty_graph_runs(self):
        adj = from_edges(4, 4, np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64))
        alpha = EdgeSoftmax(adj).run(np.empty(0, np.float32))
        assert alpha.shape == (0,)

    def test_all_single_edge_rows_extreme_scores(self):
        adj = from_edges(4, 4, np.arange(4), np.arange(4))
        scores = np.array([-1e4, -1.0, 1.0, 1e4], np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.allclose(alpha, 1.0, atol=1e-6)

    def test_gpu_target_mixed_rows(self):
        adj = self._mixed_graph()
        scores = np.array([100.0, -100.0, 0.0], np.float32)
        alpha = EdgeSoftmax(adj, target="gpu").run(scores)
        assert np.isfinite(alpha).all()
        assert alpha[2] == pytest.approx(1.0, abs=1e-6)
