"""Fused edge-softmax pipeline tests."""

import numpy as np
import pytest

from repro.core.softmax import EdgeSoftmax
from repro.graph.segment import segment_softmax
from repro.graph.sparse import from_edges


def _reference(adj, scores):
    """Segment softmax in CSR order, mapped back to original edge ids."""
    csr_scores = scores[adj.edge_ids]
    ref_csr = segment_softmax(csr_scores, adj.indptr)
    ref = np.empty_like(ref_csr)
    ref[adj.edge_ids] = ref_csr
    return ref


class TestEdgeSoftmax:
    def test_matches_segment_softmax(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        scores = np.random.default_rng(0).standard_normal(adj.nnz).astype(np.float32)
        sm = EdgeSoftmax(adj)
        assert np.allclose(sm.run(scores), _reference(adj, scores), atol=1e-4)

    def test_multihead(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        h = 4
        scores = np.random.default_rng(1).standard_normal(
            (adj.nnz, h)).astype(np.float32)
        sm = EdgeSoftmax(adj, num_heads=h)
        alpha = sm.run(scores)
        assert alpha.shape == (adj.nnz, h)
        sums = np.zeros((adj.shape[0], h))
        np.add.at(sums, adj.row_of_edge(), alpha[adj.edge_ids])
        deg = np.diff(adj.indptr)
        assert np.allclose(sums[deg > 0], 1, atol=1e-4)

    def test_numerical_stability_large_scores(self, edge_list_graph):
        adj, *_ = edge_list_graph
        scores = np.full(adj.nnz, 1e4, dtype=np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.isfinite(alpha).all()
        assert np.allclose(alpha, _reference(adj, scores), atol=1e-4)

    def test_isolated_destinations_safe(self):
        adj = from_edges(10, 10, np.array([0, 1]), np.array([3, 3]))
        scores = np.array([1.0, 2.0], np.float32)
        alpha = EdgeSoftmax(adj).run(scores)
        assert np.isfinite(alpha).all()
        assert alpha.sum() == pytest.approx(1.0, abs=1e-5)

    def test_single_edge_per_destination_gives_one(self):
        adj = from_edges(5, 5, np.array([0, 1, 2]), np.array([1, 2, 3]))
        alpha = EdgeSoftmax(adj).run(np.array([-5.0, 0.0, 9.0], np.float32))
        assert np.allclose(alpha, 1.0, atol=1e-5)

    def test_cost_is_three_phases(self, edge_list_graph):
        adj, *_ = edge_list_graph
        sm = EdgeSoftmax(adj)
        total = sm.cost()
        assert total.seconds > sm._max_kernel.cost().seconds
        assert total.seconds > 0

    def test_invalid_heads(self, edge_list_graph):
        adj, *_ = edge_list_graph
        with pytest.raises(ValueError):
            EdgeSoftmax(adj, num_heads=0)

    def test_gpu_target(self, edge_list_graph):
        adj, *_ = edge_list_graph
        scores = np.random.default_rng(2).standard_normal(adj.nnz).astype(np.float32)
        sm = EdgeSoftmax(adj, target="gpu")
        assert np.allclose(sm.run(scores), _reference(adj, scores), atol=1e-4)
