"""Topology-independent kernel reuse across sampled blocks (PR-5 tentpole).

The acceptance property: once a kernel has been compiled for one graph,
requesting the same (UDF, FDS, aggregation, target, feature shape) over a
*different* topology -- e.g. a freshly sampled mini-batch block -- performs
zero expression-building, FDS-fusion, lowering, or vectorization work.  The
pipeline pass-timing counters in the kernel cache are the ledger: only
cheap per-topology ``bind`` steps may appear.
"""

import numpy as np
import pytest

from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.datasets import planted_partition
from repro.minidgl.backends import FeatGraphDGLBackend, MinigunBackend
from repro.minidgl.sampling import sample_neighbors

#: topology-independent pipeline passes that must not re-run for a fresh
#: topology once the template exists
EXPENSIVE_PASSES = ("build_expr", "fuse_fds", "lower", "validate",
                    "analyze", "simplify", "vectorize", "codegen")


@pytest.fixture(scope="module")
def dataset():
    return planted_partition(n=300, num_classes=4, feature_dim=16,
                             avg_degree=12, seed=0)


def _two_blocks(dataset):
    rng = np.random.default_rng(1)
    b1 = sample_neighbors(dataset.adj, np.arange(0, 64), 6, rng)
    b2 = sample_neighbors(dataset.adj, np.arange(100, 180), 6, rng)
    assert b1.adj.fingerprint() != b2.adj.fingerprint()
    return b1, b2


class TestBlockKernelReuse:
    def test_second_block_is_pure_bind(self, dataset):
        """THE acceptance check: the second sampled block's SpMM re-runs no
        expensive pass -- its kernel is a template bind."""
        b1, b2 = _two_blocks(dataset)
        x1 = dataset.features[b1.src_ids]
        x2 = dataset.features[b2.src_ids]
        with use_kernel_cache(KernelCache()) as cache:
            backend = FeatGraphDGLBackend("cpu")
            backend.spmm_copy_sum(b1.adj, x1)
            frozen = dict(cache.stats()["pass_counts"])
            assert frozen.get("build_expr", 0) == 1

            backend.spmm_copy_sum(b2.adj, x2)
            s = cache.stats()
            for p in EXPENSIVE_PASSES:
                assert s["pass_counts"].get(p, 0) == frozen.get(p, 0), (
                    f"pass {p!r} re-ran for the second block's topology")
            assert s["binds"] == 1
            assert s["pipeline_runs"] == 1
            assert len(cache) == 2  # one bound spec per topology

    def test_bound_kernel_numerics_match_reference(self, dataset):
        """Kernels served by template binding compute the same results as
        the materialize-then-reduce reference backend on every block."""
        b1, b2 = _two_blocks(dataset)
        ref = MinigunBackend()
        with use_kernel_cache(KernelCache()):
            fg = FeatGraphDGLBackend("cpu")
            for block in (b1, b2):
                x = dataset.features[block.src_ids]
                got = fg.spmm_copy_sum(block.adj, x)
                want = ref.spmm_copy_sum(block.adj, x)
                assert got.shape == (block.num_dst, x.shape[1])
                assert np.allclose(got, want, atol=1e-5)

    def test_sddmm_rebinds_across_blocks(self, dataset):
        """The SDDMM template (distinct src/dst placeholder sizes on
        rectangular blocks) also rebinds instead of recompiling."""
        b1, b2 = _two_blocks(dataset)
        with use_kernel_cache(KernelCache()) as cache:
            fg = FeatGraphDGLBackend("cpu")
            ref = MinigunBackend()
            for block in (b1, b2):
                a = dataset.features[block.src_ids].astype(np.float32)
                b = dataset.features[block.dst_ids].astype(np.float32)
                got = fg.sddmm_dot(block.adj, a, b)
                want = ref.sddmm_dot(block.adj, a, b)
                assert np.allclose(got, want, atol=1e-4)
            s = cache.stats()
            assert s["pipeline_runs"] == 1
            assert s["binds"] == 1

    def test_bind_timing_recorded(self, dataset):
        """Binds show up in the pass ledger as 'bind' entries, giving the
        amortization benchmarks something to report."""
        b1, b2 = _two_blocks(dataset)
        with use_kernel_cache(KernelCache()) as cache:
            fg = FeatGraphDGLBackend("cpu")
            fg.spmm_copy_sum(b1.adj, dataset.features[b1.src_ids])
            fg.spmm_copy_sum(b2.adj, dataset.features[b2.src_ids])
            s = cache.stats()
            assert s["pass_counts"].get("bind", 0) == 1
            assert s["pass_seconds"].get("bind", 0.0) >= 0.0
