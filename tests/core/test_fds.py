"""Feature-dimension-schedule handling tests."""

import pytest

from repro import tensorir as T
from repro.core.fds import (
    FDS,
    cpu_multilevel_fds,
    cpu_tile_fds,
    default_fds,
    gpu_feature_thread_fds,
    gpu_multilevel_fds,
    gpu_tree_reduce_fds,
)


def _copy_udf(f=32):
    X = T.placeholder((10, f), name="X")
    src = T.Var("src")
    return T.compute((f,), lambda i: X[src, i], name="msg")


def _reduce_udf(f=32, d1=8):
    X = T.placeholder((10, d1), name="X")
    W = T.placeholder((d1, f), name="W")
    src = T.Var("src")
    k = T.reduce_axis((0, d1), name="k")
    return T.compute((f,), lambda i: T.sum_reduce(X[src, k] * W[k, i], axis=k),
                     name="msg")


class TestFactories:
    def test_default_fds_is_identity(self):
        info = default_fds().inspect(_copy_udf())
        assert info.feature_tile is None
        assert not info.bindings and not info.tree_reduce

    def test_cpu_tile_fds(self):
        info = cpu_tile_fds(8).inspect(_copy_udf(32))
        assert info.feature_tile == 8
        assert info.tile_factors == {0: [8]}

    def test_cpu_multilevel_fds(self):
        info = cpu_multilevel_fds(8, 4).inspect(_reduce_udf(32))
        assert info.feature_tile == 8

    def test_cpu_multilevel_without_reduce_ok(self):
        info = cpu_multilevel_fds(8, 4).inspect(_copy_udf(32))
        assert info.feature_tile == 8

    def test_gpu_feature_thread_fds(self):
        info = gpu_feature_thread_fds().inspect(_copy_udf(32))
        assert info.bindings == {"thread.x": 0}

    def test_gpu_tree_reduce_fds(self):
        info = gpu_tree_reduce_fds().inspect(_reduce_udf(32))
        assert info.tree_reduce

    def test_gpu_tree_reduce_requires_reduction(self):
        with pytest.raises(ValueError):
            gpu_tree_reduce_fds().inspect(_copy_udf(32))

    def test_gpu_multilevel_fds(self):
        info = gpu_multilevel_fds().inspect(_reduce_udf(32))
        assert info.bindings == {"block.x": 0}
        assert info.tree_reduce


class TestCustomFDS:
    def test_user_function_paper_style(self):
        """An FDS written exactly like the paper's Fig. 3a listing."""

        def cpu_schedule(out):
            s = T.create_schedule(out)
            s[out].split(out.op.axis[0], factor=8)
            return s

        info = FDS(cpu_schedule).inspect(_copy_udf(64))
        assert info.feature_tile == 8

    def test_user_function_must_return_schedule(self):
        with pytest.raises(TypeError):
            FDS(lambda out: 42).inspect(_copy_udf())

    def test_vectorize_detected(self):
        def sched(out):
            s = T.create_schedule(out)
            s[out].vectorize(out.op.axis[0])
            return s

        info = FDS(sched).inspect(_copy_udf())
        assert info.vectorized == (0,)

    def test_nested_splits_recorded(self):
        def sched(out):
            s = T.create_schedule(out)
            o, i = s[out].split(out.op.axis[0], factor=16)
            s[out].split(i, factor=4)
            return s

        info = FDS(sched).inspect(_copy_udf(64))
        assert info.tile_factors[0] == [16, 4]
        assert info.feature_tile == 4

    def test_inspect_requires_compute(self):
        X = T.placeholder((4,), name="X")
        with pytest.raises(TypeError):
            default_fds().inspect(X)

    def test_bind_after_split_maps_to_root_axis(self):
        def sched(out):
            s = T.create_schedule(out)
            o, i = s[out].split(out.op.axis[0], factor=8)
            s[out].bind(i, "thread.x")
            return s

        info = FDS(sched).inspect(_copy_udf(64))
        assert info.bindings == {"thread.x": 0}
