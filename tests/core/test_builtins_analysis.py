"""Every builtin message/edge function compiles with zero error diagnostics.

The analyzer's job is to catch *scheduling* hazards, not to second-guess the
templates: under :func:`~repro.core.fds.default_fds_for` every builtin from
:mod:`repro.core.builtins` must come out of the ``analyze`` pass clean on
both targets.  A false positive here would make strict mode (and the CI
``lint-kernels`` gate) unusable.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.compile import (KernelCache, compile_sddmm, compile_spmm,
                                use_kernel_cache)
from repro.core.fds import default_fds_for
from repro.graph.sparse import from_edges

N, M, F = 32, 96, 16


@pytest.fixture
def adj():
    rng = np.random.default_rng(7)
    return from_edges(N, N, rng.integers(0, N, M), rng.integers(0, N, M))


def _msg_inputs(name):
    XV = T.placeholder((N, F), name="XV")
    if name == "copy_e":
        return (T.placeholder((M, F), name="XE"),)
    if name == "u_mul_e":
        return (XV, T.placeholder((M,), name="EW"))
    return (XV,)


@pytest.mark.parametrize("target", ["cpu", "gpu"])
@pytest.mark.parametrize("name",
                         sorted(dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS))
def test_builtin_message_functions_lint_clean(adj, name, target):
    factory = dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS[name]
    with use_kernel_cache(KernelCache()):
        kernel = compile_spmm(adj, factory(*_msg_inputs(name)), "sum",
                              target=target,
                              fds=default_fds_for(target, F, "spmm"))
    report = kernel.analysis_report()
    assert not report.has_errors, report.render()


@pytest.mark.parametrize("target", ["cpu", "gpu"])
@pytest.mark.parametrize("name", sorted(dgl_builtins.BUILTIN_EDGE_FUNCTIONS))
def test_builtin_edge_functions_lint_clean(adj, name, target):
    factory = dgl_builtins.BUILTIN_EDGE_FUNCTIONS[name]
    XA = T.placeholder((N, F), name="XA")
    XB = T.placeholder((N, F), name="XB")
    with use_kernel_cache(KernelCache()):
        kernel = compile_sddmm(adj, factory(XA, XB), target=target,
                               fds=default_fds_for(target, F, "sddmm"))
    report = kernel.analysis_report()
    assert not report.has_errors, report.render()


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_aggregations_lint_clean(adj, target):
    """Max/min aggregation stores are combiner stores too: race-exempt."""
    XV = T.placeholder((N, F), name="XV")
    for agg in ("sum", "max", "min"):
        with use_kernel_cache(KernelCache()):
            kernel = compile_spmm(adj, dgl_builtins.copy_u_msg(XV), agg,
                                  target=target,
                                  fds=default_fds_for(target, F, "spmm"))
        report = kernel.analysis_report()
        assert not report.has_errors, f"{agg}: {report.render()}"
