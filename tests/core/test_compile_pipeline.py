"""The unified compile pipeline: pass order, KernelSpec identity, timings.

Covers the :mod:`repro.core.compile` contract: every kernel goes through
the named pass sequence (build_expr -> fuse_fds -> lower -> validate ->
analyze -> simplify -> vectorize -> verify_plan -> codegen), structurally
identical requests produce equal
:class:`KernelSpec` keys (and therefore one compiled kernel), and per-pass
wall-clock timings are retrievable from the compiled object.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.compile import (
    PASS_NAMES,
    CompilePipeline,
    KernelCache,
    KernelSpec,
    compile_sddmm,
    compile_spmm,
    default_pipeline,
    ensure_compiled,
    expr_signature,
    schedule_signature,
    use_kernel_cache,
)
from repro.core.fds import cpu_tile_fds
from repro.core.sddmm import GeneralizedSDDMM
from repro.core.spmm import GeneralizedSpMM
from repro.graph.sparse import CSRMatrix, from_edges

N, F = 8, 8


def _adj(n=N, seed=0, m=20):
    rng = np.random.default_rng(seed)
    return from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))


def _copy_msgfunc(n=N, f=F):
    XV = T.placeholder((n, f), name="XV")
    return dgl_builtins.copy_u_msg(XV)


class TestPassPipeline:
    def test_default_pass_order(self):
        assert default_pipeline().pass_names == PASS_NAMES
        assert CompilePipeline().pass_names == (
            "build_expr", "fuse_fds", "lower", "validate", "analyze",
            "simplify", "vectorize", "verify_plan", "codegen")

    def test_compiled_kernel_records_every_pass(self):
        with use_kernel_cache(KernelCache()):
            k = compile_spmm(_adj(), _copy_msgfunc(), "sum")
        timings = k.compile_timings()
        assert tuple(timings) == PASS_NAMES  # ordered, complete
        assert all(secs >= 0.0 for secs in timings.values())
        assert k._compile_record.total_seconds == pytest.approx(
            sum(timings.values()))

    def test_artifacts_ir_and_source(self):
        with use_kernel_cache(KernelCache()):
            k = compile_spmm(_adj(), _copy_msgfunc(), "sum",
                             fds=cpu_tile_fds(4))
        record = k._compile_record
        text = k.lowered_ir() and __import__(
            "repro.tensorir.ir", fromlist=["stmt_to_str"]
        ).stmt_to_str(record.artifacts["ir"])
        assert "edge_range" in text
        assert record.artifacts["source"] == text  # cpu codegen = printed IR

    def test_sddmm_artifacts(self):
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache()):
            k = compile_sddmm(_adj(), dgl_builtins.u_dot_v_edge(XV, XV))
        from repro.tensorir.ir import stmt_to_str

        text = stmt_to_str(k._compile_record.artifacts["ir"])
        assert "edge_traversal" in text
        assert tuple(k.compile_timings()) == PASS_NAMES

    def test_gpu_codegen_emits_cuda(self):
        with use_kernel_cache(KernelCache()):
            k = compile_spmm(_adj(), _copy_msgfunc(), "sum", target="gpu")
        assert "__global__" in k._compile_record.artifacts["source"]
        assert "__global__" in k.cuda_source()

    def test_bad_udf_fails_in_build_expr(self):
        with use_kernel_cache(KernelCache()):
            with pytest.raises(TypeError, match="msgfunc must return"):
                compile_spmm(_adj(), lambda s, d, e: 42)
            with pytest.raises(TypeError, match="edgefunc must return"):
                compile_sddmm(_adj(), lambda s, d, e: None)

    def test_ensure_compiled_for_direct_construction(self):
        """Kernels built without the cache still get a compile record."""
        from repro.core.api import spmat

        k = GeneralizedSpMM(spmat(_adj()), _copy_msgfunc(), aggregation="sum")
        assert k._compile_record is None
        record = ensure_compiled(k)
        assert record is k._compile_record
        assert ensure_compiled(k) is record  # idempotent
        # only the back passes run (front ran at construction time)
        assert tuple(record.timings_dict()) == (
            "lower", "validate", "analyze", "simplify", "vectorize",
            "verify_plan", "codegen")
        assert record.spec.template == "spmm"

        ks = GeneralizedSDDMM(
            spmat(_adj()), dgl_builtins.u_dot_v_edge(
                T.placeholder((N, F), name="XV"),
                T.placeholder((N, F), name="XV")))
        assert ensure_compiled(ks).spec.template == "sddmm"


class TestSpecIdentity:
    def test_same_request_twice_is_one_kernel(self):
        with use_kernel_cache(KernelCache()) as cache:
            k1 = compile_spmm(_adj(), _copy_msgfunc(), "sum")
            k2 = compile_spmm(_adj(), _copy_msgfunc(), "sum")
        assert k1 is k2
        s = cache.stats()
        assert (s["hits"], s["misses"], s["pipeline_runs"]) == (1, 1, 1)

    def test_spec_stable_across_fresh_traces(self):
        """Tracer-generated axis names differ per trace; the canonical
        signatures must not."""
        with use_kernel_cache(KernelCache()):
            k1 = compile_spmm(_adj(), _copy_msgfunc(), "sum")
        with use_kernel_cache(KernelCache()):
            k2 = compile_spmm(_adj(), _copy_msgfunc(), "sum")
        assert k1 is not k2
        assert k1._compile_record.spec == k2._compile_record.spec
        assert isinstance(k1._compile_record.spec, KernelSpec)
        assert k1._compile_record.spec.digest == k2._compile_record.spec.digest

    @pytest.mark.parametrize("mutate,expect_differ", [
        ("aggregation", True), ("fds", True), ("graph", True),
        ("shape", True), ("options", True), ("none", False),
    ])
    def test_spec_sensitivity(self, mutate, expect_differ):
        def build(aggregation="sum", fds=None, adj=None, f=F, **options):
            with use_kernel_cache(KernelCache()):
                k = compile_spmm(adj if adj is not None else _adj(),
                                 _copy_msgfunc(f=f), aggregation, fds=fds,
                                 **options)
            return k._compile_record.spec

        base = build()
        variants = {
            "aggregation": lambda: build(aggregation="max"),
            "fds": lambda: build(fds=cpu_tile_fds(2)),
            "graph": lambda: build(adj=_adj(seed=1)),
            "shape": lambda: build(f=F * 2),
            "options": lambda: build(num_graph_partitions=2),
            "none": lambda: build(),
        }
        other = variants[mutate]()
        assert (base != other) is expect_differ

    def test_expr_signature_normalizes_axis_names(self):
        XV = T.placeholder((N, F), name="XV")

        def trace():
            # anonymous compute -> tracer invents a fresh axis name per trace
            return T.compute((F,), lambda i: XV[T.Var("src"), i])

        out1, out2 = trace(), trace()
        assert out1.op.axis[0].name != out2.op.axis[0].name  # fresh names
        assert expr_signature(out1) == expr_signature(out2)
        # a differently *named* placeholder is a different kernel interface
        XB = T.placeholder((N, F), name="XB")
        out3 = dgl_builtins.copy_u_msg(XB)(T.Var("src"), T.Var("dst"),
                                           T.Var("eid"))
        assert expr_signature(out1) != expr_signature(out3)

    def test_schedule_signature_normalizes_axis_names(self):
        def stage_for(out, factor):
            sched = cpu_tile_fds(factor).apply(out)
            return sched[out]

        mk = lambda: dgl_builtins.copy_u_msg(  # noqa: E731
            T.placeholder((N, F), name="XV"))(
            T.Var("src"), T.Var("dst"), T.Var("eid"))
        assert (schedule_signature(stage_for(mk(), 4))
                == schedule_signature(stage_for(mk(), 4)))
        assert (schedule_signature(stage_for(mk(), 4))
                != schedule_signature(stage_for(mk(), 2)))


class TestTemplatesHaveNoInlineCompilation:
    """The refactor's point: templates no longer own lowering/codegen."""

    @pytest.mark.parametrize("module", ["spmm", "sddmm", "softmax"])
    def test_no_top_level_lowering_imports(self, module):
        import importlib
        import inspect

        src = inspect.getsource(importlib.import_module(f"repro.core.{module}"))
        assert "from repro.tensorir.lower import" not in src
        assert "from repro.tensorir.cuda_codegen import" not in src
        assert "validate_ir" not in src

    def test_lowered_ir_comes_from_the_pipeline(self):
        with use_kernel_cache(KernelCache()):
            k = compile_spmm(_adj(), _copy_msgfunc(), "sum")
        assert k.lowered_ir() is k._compile_record.artifacts["ir"]


class TestNumericsUnchanged:
    """The refactor must not change what kernels compute."""

    def test_spmm_matches_scatter_add(self):
        adj = _adj()
        x = np.random.default_rng(1).standard_normal((N, F)).astype(np.float32)
        with use_kernel_cache(KernelCache()):
            k = compile_spmm(adj, _copy_msgfunc(), "sum")
        ref = np.zeros((N, F), dtype=np.float32)
        np.add.at(ref, adj.row_of_edge(), x[adj.indices])
        np.testing.assert_allclose(k.run({"XV": x}), ref, rtol=1e-5, atol=1e-5)

    def test_sddmm_matches_dense_dot(self):
        indptr = np.array([0, 2, 3, 4, 4])
        indices = np.array([1, 2, 0, 3])
        adj = CSRMatrix((4, 4), indptr, indices)
        x = np.random.default_rng(2).standard_normal((4, F)).astype(np.float32)
        XV = T.placeholder((4, F), name="XV")
        with use_kernel_cache(KernelCache()):
            k = compile_sddmm(adj, dgl_builtins.u_dot_v_edge(XV, XV))
        out = k.run({"XV": x})[:, 0]
        ref = (x[adj.indices] * x[adj.row_of_edge()]).sum(axis=-1)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)
