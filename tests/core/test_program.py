"""KernelProgram composition tests, including a full GAT-attention layer
expressed purely as FeatGraph kernels."""

import numpy as np
import pytest

import repro.core as featgraph
from repro import tensorir as T
from repro.core.program import KernelProgram, Step
from repro.core.softmax import EdgeSoftmax
from repro.graph.sparse import from_edges


@pytest.fixture()
def setup(edge_list_graph):
    adj, src, dst = edge_list_graph
    n = adj.shape[0]
    x = np.random.default_rng(0).standard_normal((n, 8)).astype(np.float32)
    return adj, src, dst, n, x


class TestProgramMechanics:
    def test_step_validation(self):
        with pytest.raises(ValueError):
            Step(name="bad")  # neither kernel nor transform
        with pytest.raises(ValueError):
            Step(name="bad", kernel=object(), transform=lambda env: None)

    def test_duplicate_step_name_rejected(self):
        p = KernelProgram()
        p.add_transform("a", lambda env: np.zeros(1))
        with pytest.raises(ValueError):
            p.add_transform("a", lambda env: np.zeros(1))

    def test_missing_source_raises(self, setup):
        adj, src, dst, n, x = setup
        XV = T.placeholder((n, 8), name="XV")

        def msgfunc(s, d, e):
            return T.compute((8,), lambda i: XV[s, i])

        p = KernelProgram()
        p.add_kernel("agg", featgraph.spmm(adj, msgfunc, "sum"),
                     inputs={"XV": "features_typo"})
        with pytest.raises(KeyError, match="features_typo"):
            p.run({"features": x})

    def test_step_name_colliding_with_input_rejected(self, setup):
        adj, src, dst, n, x = setup
        p = KernelProgram()
        p.add_transform("features", lambda env: env["features"] * 2)
        with pytest.raises(ValueError, match="collides"):
            p.run({"features": x})

    def test_transform_step(self, setup):
        adj, src, dst, n, x = setup
        p = KernelProgram()
        p.add_transform("doubled", lambda env: env["features"] * 2)
        env = p.run({"features": x})
        assert np.allclose(env["doubled"], x * 2)


class TestGATAttentionProgram:
    """scores (SDDMM) -> softmax (fused) -> weighted aggregation (SpMM),
    all through FeatGraph kernels chained by a program."""

    def _build(self, adj, n, f):
        m = adj.nnz
        XV = T.placeholder((n, f), name="XV")
        EW = T.placeholder((m,), name="EW")

        def score_fn(s, d, e):
            k = T.reduce_axis((0, f), name="k")
            return T.compute((1,), lambda i: T.sum_reduce(
                XV[s, k] * XV[d, k], axis=k))

        def weighted_msg(s, d, e):
            return T.compute((f,), lambda i: XV[s, i] * EW[e])

        softmax = EdgeSoftmax(adj)
        program = KernelProgram("gat-attention")
        program.add_kernel("scores", featgraph.sddmm(adj, score_fn),
                           inputs={"XV": "features"})
        program.add_transform(
            "alpha", lambda env: softmax.run(env["scores"][:, 0]))
        program.add_kernel("out",
                           featgraph.spmm(adj, weighted_msg, "sum"),
                           inputs={"XV": "features", "EW": "alpha"})
        return program

    def test_matches_manual_pipeline(self, setup):
        adj, src, dst, n, x = setup
        program = self._build(adj, n, 8)
        env = program.run({"features": x})

        # manual reference
        scores = (x[src] * x[dst]).sum(1)
        from repro.graph.segment import segment_softmax
        csr_scores = scores[adj.edge_ids]
        alpha_csr = segment_softmax(csr_scores, adj.indptr)
        alpha = np.empty_like(alpha_csr)
        alpha[adj.edge_ids] = alpha_csr
        ref = np.zeros((n, 8), np.float32)
        np.add.at(ref, dst, x[src] * alpha[:, None])
        assert np.allclose(env["out"], ref, atol=1e-3)

    def test_environment_exposes_intermediates(self, setup):
        adj, src, dst, n, x = setup
        env = self._build(adj, n, 8).run({"features": x})
        assert set(env) == {"features", "scores", "alpha", "out"}
        assert env["scores"].shape == (adj.nnz, 1)

    def test_cost_sums_kernel_steps(self, setup):
        adj, src, dst, n, x = setup
        program = self._build(adj, n, 8)
        total = program.cost()
        parts = [s.kernel.cost().seconds for s in program.steps
                 if s.kernel is not None]
        assert total.seconds == pytest.approx(sum(parts), rel=1e-6)

    def test_empty_program_cost_zero(self):
        assert KernelProgram().cost().seconds == 0.0
