"""Generalized SpMM template: correctness against edge-list references under
every scheduling configuration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core as featgraph
from repro import tensorir as T
from repro.core.spmm import GeneralizedSpMM, resolve_aggregation
from repro.graph.sparse import from_edges


def _copy_kernel(adj, n, f, **opts):
    XV = T.placeholder((n, f), name="XV")

    def msgfunc(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i])

    return featgraph.spmm(adj, msgfunc, opts.pop("agg", "sum"), **opts)


def _sum_ref(src, dst, x, n):
    out = np.zeros((n, x.shape[1]), dtype=np.float32)
    np.add.at(out, dst, x[src])
    return out


@pytest.fixture()
def setup(edge_list_graph):
    adj, src, dst = edge_list_graph
    n = adj.shape[0]
    x = np.random.default_rng(0).standard_normal((n, 12)).astype(np.float32)
    return adj, src, dst, n, x


class TestAggregations:
    def test_sum(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12)
        assert np.allclose(k.run({"XV": x}), _sum_ref(src, dst, x, n), atol=1e-4)

    def test_max(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12, agg="max")
        ref = np.full((n, 12), -np.inf, np.float32)
        np.maximum.at(ref, dst, x[src])
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-5)

    def test_min(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12, agg="min")
        ref = np.full((n, 12), np.inf, np.float32)
        np.minimum.at(ref, dst, x[src])
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-5)

    def test_mean(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12, agg="mean")
        deg = np.bincount(dst, minlength=n).reshape(-1, 1)
        ref = _sum_ref(src, dst, x, n) / np.maximum(deg, 1)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_prod(self, setup):
        adj, src, dst, n, x = setup
        xx = np.abs(x) + 0.5
        k = _copy_kernel(adj, n, 12, agg="prod")
        ref = np.ones((n, 12), np.float32)
        np.multiply.at(ref, dst, xx[src])
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(k.run({"XV": xx}), ref, rtol=1e-3)

    def test_resolve_aggregation_forms(self):
        assert resolve_aggregation("SUM") == "sum"
        assert resolve_aggregation(T.sum_reduce) == "sum"
        assert resolve_aggregation(T.max_reduce) == "max"
        with pytest.raises(ValueError):
            resolve_aggregation(print)


class TestSchedulingConfigs:
    """All scheduling configurations must produce identical numerics."""

    @pytest.mark.parametrize("parts", [1, 2, 7, 16])
    def test_graph_partitions_equivalent(self, setup, parts):
        adj, src, dst, n, x = setup
        ref = _sum_ref(src, dst, x, n)
        k = _copy_kernel(adj, n, 12, num_graph_partitions=parts)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    @pytest.mark.parametrize("nf", [1, 2, 3, 12])
    def test_feature_partitions_equivalent(self, setup, nf):
        adj, src, dst, n, x = setup
        ref = _sum_ref(src, dst, x, n)
        k = _copy_kernel(adj, n, 12, num_feature_partitions=nf)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_combined_partitioning(self, setup):
        adj, src, dst, n, x = setup
        ref = _sum_ref(src, dst, x, n)
        k = _copy_kernel(adj, n, 12, num_graph_partitions=4,
                         num_feature_partitions=3)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_tiny_chunks_equivalent(self, setup):
        adj, src, dst, n, x = setup
        ref = _sum_ref(src, dst, x, n)
        k = _copy_kernel(adj, n, 12, chunk_edges=17)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_max_with_partitions_and_negative_values(self, setup):
        """Partition merge must respect the -inf identity, not clobber with 0."""
        adj, src, dst, n, x = setup
        x = -np.abs(x) - 1.0  # all negative
        k = _copy_kernel(adj, n, 12, agg="max", num_graph_partitions=5)
        ref = np.full((n, 12), -np.inf, np.float32)
        np.maximum.at(ref, dst, x[src])
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-5)

    def test_fds_split_controls_feature_partitions(self, setup):
        adj, src, dst, n, x = setup
        from repro.core.fds import cpu_tile_fds
        k = _copy_kernel(adj, n, 12, fds=cpu_tile_fds(4))
        assert k.num_feature_partitions == 3

    def test_auto_partitions_small_graph_is_one(self, setup):
        adj, *_ = setup
        k = _copy_kernel(adj, adj.shape[1], 12)
        assert k.num_graph_partitions == 1  # tiny working set

    def test_gpu_target_no_graph_partitions(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12, target="gpu", num_graph_partitions="auto")
        assert k.num_graph_partitions == 1
        assert np.allclose(k.run({"XV": x}), _sum_ref(src, dst, x, n), atol=1e-4)


class TestUDFVariants:
    def test_edge_feature_udf(self, setup):
        adj, src, dst, n, x = setup
        m = adj.nnz
        XE = T.placeholder((m, 6), name="XE")

        def msgfunc(s, d, e):
            return T.compute((6,), lambda i: XE[e, i])

        xe = np.random.default_rng(1).random((m, 6)).astype(np.float32)
        k = featgraph.spmm(adj, msgfunc, "sum")
        ref = np.zeros((n, 6), np.float32)
        np.add.at(ref, dst, xe)  # edge i targets dst[i]
        assert np.allclose(k.run({"XE": xe}), ref, atol=1e-4)

    def test_src_dst_combined_udf(self, setup):
        adj, src, dst, n, x = setup
        XV = T.placeholder((n, 12), name="XV")

        def msgfunc(s, d, e):
            return T.compute((12,), lambda i: XV[s, i] * XV[d, i])

        k = featgraph.spmm(adj, msgfunc, "sum", num_graph_partitions=3)
        ref = np.zeros((n, 12), np.float32)
        np.add.at(ref, dst, x[src] * x[dst])
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)
        assert k.reads_src and k.reads_dst

    def test_multidim_message(self, setup):
        adj, src, dst, n, _ = setup
        XV = T.placeholder((n, 3, 4), name="XV")

        def msgfunc(s, d, e):
            return T.compute((3, 4), lambda h, i: XV[s, h, i])

        x = np.random.default_rng(2).random((n, 3, 4)).astype(np.float32)
        k = featgraph.spmm(adj, msgfunc, "sum", num_feature_partitions=3)
        ref = np.zeros((n, 3, 4), np.float32)
        np.add.at(ref, dst, x[src])
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)
        assert k.feature_len == 12

    def test_transcendental_udf(self, setup):
        adj, src, dst, n, x = setup
        XV = T.placeholder((n, 12), name="XV")

        def msgfunc(s, d, e):
            return T.compute((12,), lambda i: T.exp(XV[s, i] * 0.1))

        k = featgraph.spmm(adj, msgfunc, "sum")
        ref = np.zeros((n, 12), np.float32)
        np.add.at(ref, dst, np.exp(x[src] * np.float32(0.1)))
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-3)


class TestEdgeCases:
    def test_graph_with_isolated_vertices(self):
        adj = from_edges(10, 10, np.array([0, 1]), np.array([0, 0]))
        k = _copy_kernel(adj, 10, 4, agg="max")
        x = np.random.default_rng(3).standard_normal((10, 4)).astype(np.float32)
        out = k.run({"XV": x})
        assert np.allclose(out[0], np.maximum(x[0], x[1]))
        assert np.all(out[1:] == 0)

    def test_empty_graph(self):
        adj = from_edges(5, 5, np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64))
        k = _copy_kernel(adj, 5, 4)
        out = k.run({"XV": np.ones((5, 4), np.float32)})
        assert np.all(out == 0)

    def test_out_buffer_reuse(self, setup):
        adj, src, dst, n, x = setup
        k = _copy_kernel(adj, n, 12)
        buf = np.empty((n, 12), np.float32)
        out = k.run({"XV": x}, out=buf)
        assert out is buf
        assert np.allclose(buf, _sum_ref(src, dst, x, n), atol=1e-4)

    def test_one_huge_row(self):
        """Row bigger than the chunk size exercises chunk-boundary logic."""
        m = 5000
        src = np.random.default_rng(4).integers(0, 50, m)
        dst = np.zeros(m, dtype=np.int64)
        adj = from_edges(50, 50, src, dst)
        x = np.random.default_rng(5).random((50, 4)).astype(np.float32)
        k = _copy_kernel(adj, 50, 4, chunk_edges=100)
        ref = np.zeros((50, 4), np.float32)
        np.add.at(ref, dst, x[src])
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-2)


class TestCost:
    def test_cpu_and_gpu_costs_positive(self, setup):
        adj, src, dst, n, x = setup
        kc = _copy_kernel(adj, n, 12)
        kg = _copy_kernel(adj, n, 12, target="gpu")
        assert kc.cost().seconds > 0
        assert kg.cost().seconds > 0

    def test_cost_accepts_paper_scale_stats(self, setup):
        from repro.graph.datasets import paper_stats
        adj, *_ = setup
        k = _copy_kernel(adj, adj.shape[1], 12, num_graph_partitions=16)
        big = k.cost(stats=paper_stats("reddit"))
        small = k.cost()
        assert big.seconds > small.seconds

    def test_udf_flop_detection_for_copy_is_free(self, setup):
        adj, *_ = setup
        k = _copy_kernel(adj, adj.shape[1], 12)
        assert k.udf_flops == 0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 30),
    m=st.integers(1, 200),
    f=st.integers(1, 16),
    parts=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_spmm_matches_reference_property(n, m, f, parts, seed):
    """Property: for any random graph/UDF size and partitioning, the template
    equals the scatter-add reference."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    adj = from_edges(n, n, src, dst)
    x = r.standard_normal((n, f)).astype(np.float32)
    XV = T.placeholder((n, f), name="XV")

    def msgfunc(s, d, e):
        return T.compute((f,), lambda i: XV[s, i])

    k = featgraph.spmm(adj, msgfunc, "sum",
                       num_graph_partitions=min(parts, n),
                       num_feature_partitions=min(parts, f))
    ref = np.zeros((n, f), np.float32)
    np.add.at(ref, dst, x[src])
    assert np.allclose(k.run({"XV": x}), ref, atol=1e-3)
