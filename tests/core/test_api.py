"""Public API surface tests."""

import numpy as np
import pytest

import repro.core as featgraph
from repro.core.api import SparseMat
from repro.graph.sparse import from_edges


class TestSpmat:
    def test_from_csr(self, small_graph):
        A = featgraph.spmat(small_graph)
        assert isinstance(A, SparseMat)
        assert A.shape == small_graph.shape
        assert A.nnz == small_graph.nnz

    def test_idempotent(self, small_graph):
        A = featgraph.spmat(small_graph)
        assert featgraph.spmat(A) is A

    def test_from_edge_list(self):
        A = featgraph.spmat(None, n_src=5, n_dst=4,
                            src=np.array([0, 1]), dst=np.array([2, 3]))
        assert A.shape == (4, 5) and A.nnz == 2

    def test_edge_list_needs_dims(self):
        with pytest.raises(ValueError):
            featgraph.spmat(None, src=np.array([0]), dst=np.array([0]))

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            featgraph.spmat([[0, 1], [1, 0]])

    def test_stats_cached(self, small_graph):
        A = featgraph.spmat(small_graph)
        assert A.stats() is A.stats()
        assert A.stats().n_edges == small_graph.nnz

    def test_num_src_dst(self):
        g = from_edges(7, 5, np.array([0]), np.array([1]))
        A = featgraph.spmat(g)
        assert A.num_src == 7 and A.num_dst == 5


class TestKernelBuilders:
    def test_spmm_signature_matches_paper(self, small_graph):
        """featgraph.spmm(A, msgfunc, aggregation, target, fds) -- Fig. 3a."""
        from repro import tensorir as tvm

        n = small_graph.shape[1]
        XV = tvm.placeholder((n, 8), name="XV")

        def msgfunc(src, dst, eid):
            return tvm.compute((8,), lambda i: XV[src, i])

        def cpu_schedule(out):
            s = tvm.create_schedule(out)
            s[out].split(out.op.axis[0], factor=4)
            return s

        k = featgraph.spmm(small_graph, msgfunc, "sum", target="cpu",
                           fds=cpu_schedule)
        assert k.num_feature_partitions == 2  # 8 / split factor 4

    def test_spmm_accepts_tensorir_reducer(self, small_graph):
        from repro import tensorir as tvm

        n = small_graph.shape[1]
        XV = tvm.placeholder((n, 4), name="XV")

        def msgfunc(src, dst, eid):
            return tvm.compute((4,), lambda i: XV[src, i])

        k = featgraph.spmm(small_graph, msgfunc, tvm.sum_reduce, target="cpu")
        assert k.aggregation == "sum"

    def test_sddmm_signature_matches_paper(self, small_graph):
        """featgraph.sddmm(A, edgefunc, target, fds) -- Fig. 4a."""
        from repro import tensorir as tvm

        n = small_graph.shape[1]
        XV = tvm.placeholder((n, 8), name="XV")

        def edgefunc(src, dst, eid):
            k = tvm.reduce_axis((0, 8), name="k")
            return tvm.compute((1,), lambda i: tvm.sum_reduce(
                XV[src, k] * XV[dst, k], axis=k))

        def gpu_schedule(out):
            s = tvm.create_schedule(out)
            s[out].tree_reduce(out.op.reduce_axis[0], "thread.x")
            return s

        k = featgraph.sddmm(small_graph, edgefunc, target="gpu",
                            fds=gpu_schedule)
        assert k.tree_reduce

    def test_invalid_target(self, small_graph):
        from repro.core import kernels
        with pytest.raises(ValueError):
            kernels.gcn_aggregation(small_graph, small_graph.shape[1], 8,
                                    target="fpga")

    def test_invalid_aggregation(self, small_graph):
        from repro import tensorir as tvm
        n = small_graph.shape[1]
        XV = tvm.placeholder((n, 4), name="XV")

        def msgfunc(src, dst, eid):
            return tvm.compute((4,), lambda i: XV[src, i])

        with pytest.raises(ValueError):
            featgraph.spmm(small_graph, msgfunc, "median")

    def test_msgfunc_must_return_tensor(self, small_graph):
        with pytest.raises(TypeError):
            featgraph.spmm(small_graph, lambda s, d, e: 42)
