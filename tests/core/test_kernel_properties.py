"""Algebraic property tests on the generalized templates.

These check mathematical invariants that must hold for *any* graph and
schedule -- stronger guarantees than point comparisons against references.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core as featgraph
from repro import tensorir as T
from repro.core import kernels
from repro.graph.reorder import apply_vertex_order
from repro.graph.sparse import from_edges


def _graph(n, m, seed):
    r = np.random.default_rng(seed)
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 25), m=st.integers(1, 150),
       a=st.floats(-3, 3), b=st.floats(-3, 3), seed=st.integers(0, 10_000))
def test_sum_aggregation_is_linear(n, m, a, b, seed):
    """spmm_sum(aX + bY) == a spmm_sum(X) + b spmm_sum(Y)."""
    adj = _graph(n, m, seed)
    r = np.random.default_rng(seed + 1)
    k = kernels.gcn_aggregation(adj, n, 6)
    x = r.standard_normal((n, 6)).astype(np.float32)
    y = r.standard_normal((n, 6)).astype(np.float32)
    lhs = k.run({"XV": (a * x + b * y).astype(np.float32)})
    rhs = a * k.run({"XV": x}) + b * k.run({"XV": y})
    assert np.allclose(lhs, rhs, atol=1e-2)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(3, 20), m=st.integers(1, 120), seed=st.integers(0, 10_000))
def test_spmm_is_permutation_equivariant(n, m, seed):
    """Relabeling vertices permutes the aggregation output accordingly."""
    adj = _graph(n, m, seed)
    r = np.random.default_rng(seed + 2)
    x = r.random((n, 4)).astype(np.float32)
    order = r.permutation(n)
    new_adj, new_x = apply_vertex_order(adj, order, x)
    out = kernels.gcn_aggregation(adj, n, 4).run({"XV": x})
    out_perm = kernels.gcn_aggregation(new_adj, n, 4).run({"XV": new_x})
    assert np.allclose(out_perm, out[order], atol=1e-3)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(3, 20), m=st.integers(1, 100), seed=st.integers(0, 10_000))
def test_max_aggregation_ignores_duplicate_edges(n, m, seed):
    """max over a multiset is unchanged by duplicating edges."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    adj = from_edges(n, n, src, dst)
    doubled = from_edges(n, n, np.concatenate([src, src]),
                         np.concatenate([dst, dst]))
    x = r.standard_normal((n, 4)).astype(np.float32)
    k1 = kernels.graphsage_aggregation(adj, n, 4, agg="max")
    k2 = kernels.graphsage_aggregation(doubled, n, 4, agg="max")
    assert np.allclose(k1.run({"XV": x}), k2.run({"XV": x}), atol=1e-6)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(3, 20), m=st.integers(1, 100), seed=st.integers(0, 10_000))
def test_sum_splits_over_edge_disjoint_union(n, m, seed):
    """Aggregation over a union of edge sets is the sum of the parts."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    cut = m // 2
    a = from_edges(n, n, src[:cut], dst[:cut])
    b = from_edges(n, n, src[cut:], dst[cut:])
    both = from_edges(n, n, src, dst)
    x = r.random((n, 4)).astype(np.float32)
    out = kernels.gcn_aggregation(both, n, 4).run({"XV": x})
    parts = (kernels.gcn_aggregation(a, n, 4).run({"XV": x})
             + kernels.gcn_aggregation(b, n, 4).run({"XV": x}))
    assert np.allclose(out, parts, atol=1e-3)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(3, 20), m=st.integers(1, 120), seed=st.integers(0, 10_000))
def test_sddmm_symmetric_under_feature_symmetry(n, m, seed):
    """Dot attention on (X, X) is invariant to swapping src/dst roles when
    the graph is symmetrized."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    sym = from_edges(n, n, np.concatenate([src, dst]),
                     np.concatenate([dst, src]))
    x = r.standard_normal((n, 5)).astype(np.float32)
    scores = kernels.dot_attention(sym, n, 5).run({"XV": x})[:, 0]
    # edge i and its mirror i+m carry the same dot product
    assert np.allclose(scores[:m], scores[m:], atol=1e-4)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(4, 16), m=st.integers(2, 80), seed=st.integers(0, 10_000))
def test_mean_bounded_by_min_max(n, m, seed):
    """mean aggregation lies within [min, max] aggregation elementwise."""
    adj = _graph(n, m, seed)
    r = np.random.default_rng(seed + 3)
    x = r.standard_normal((n, 3)).astype(np.float32)
    mean = kernels.graphsage_aggregation(adj, n, 3, agg="mean").run({"XV": x})
    mx = kernels.graphsage_aggregation(adj, n, 3, agg="max").run({"XV": x})
    mn = kernels.graphsage_aggregation(adj, n, 3, agg="min").run({"XV": x})
    deg = np.diff(adj.indptr)
    active = deg > 0
    assert np.all(mean[active] <= mx[active] + 1e-4)
    assert np.all(mean[active] >= mn[active] - 1e-4)
