"""FeatGraphBackend kernel caching through the shared KernelCache.

Regression: per-backend kernel dicts used to key on ``id(adj)``.  CPython
recycles ids after garbage collection, so a new graph allocated at a freed
graph's address silently reused the stale kernel -- wrong topology, wrong
numbers.  Kernels are now keyed by :class:`repro.core.compile.KernelSpec`,
whose graph component is the adjacency's *content* fingerprint, in the
process-wide :class:`repro.core.compile.KernelCache`.
"""

import numpy as np
import pytest

from repro.core.backend import FeatGraphBackend
from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.sparse import from_edges


def _graph(seed, n=8, m=20):
    rng = np.random.default_rng(seed)
    return from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))


@pytest.fixture()
def cache():
    """An isolated kernel cache installed as the process cache."""
    with use_kernel_cache(KernelCache()) as c:
        yield c


class TestKernelCacheKeying:
    def test_cache_key_is_content_not_identity(self, cache):
        backend = FeatGraphBackend("cpu")
        adj = _graph(0)
        backend._kernel("gcn", adj, 4)
        (spec,) = cache.entries()
        assert spec.graph == adj.fingerprint()
        assert str(id(adj)) not in spec.graph

    def test_equal_graphs_share_a_kernel(self, cache):
        backend = FeatGraphBackend("cpu")
        a, b = _graph(0), _graph(0)  # same content, distinct objects
        assert a is not b
        k1 = backend._kernel("gcn", a, 4)
        k2 = backend._kernel("gcn", b, 4)
        assert k1 is k2
        assert len(cache) == 1

    def test_distinct_backend_instances_share_kernels(self, cache):
        """The cache is process-wide, not per backend object."""
        k1 = FeatGraphBackend("cpu")._kernel("gcn", _graph(0), 4)
        k2 = FeatGraphBackend("cpu")._kernel("gcn", _graph(0), 4)
        assert k1 is k2
        assert cache.stats()["pipeline_runs"] == 1

    def test_different_graphs_get_distinct_kernels(self, cache):
        backend = FeatGraphBackend("cpu")
        k1 = backend._kernel("gcn", _graph(0), 4)
        k2 = backend._kernel("gcn", _graph(1), 4)
        assert k1 is not k2
        assert len(cache) == 2

    def test_recycled_object_address_cannot_alias(self, cache):
        """The id()-reuse scenario: a dead graph's address is reused by a
        different graph.  With content keys the second graph must compute
        its own (correct) result."""
        backend = FeatGraphBackend("cpu")
        feats = np.random.default_rng(3).standard_normal((8, 4)).astype(np.float32)

        out_a = backend.gcn_aggregation(_graph(0), feats)
        # a fresh, different graph -- regardless of what address it landed on
        out_b = backend.gcn_aggregation(_graph(1), feats)

        # reference: plain scatter-add per graph
        def ref(adj):
            out = np.zeros((8, 4), dtype=np.float32)
            np.add.at(out, adj.row_of_edge(), feats[adj.indices])
            return out

        np.testing.assert_allclose(out_a, ref(_graph(0)), rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(out_b, ref(_graph(1)), rtol=1e-5, atol=1e-5)

    def test_fingerprint_stability_and_sensitivity(self):
        a = _graph(0)
        assert a.fingerprint() == _graph(0).fingerprint()
        assert a.fingerprint() == a.fingerprint()  # cached, stable
        assert a.fingerprint() != _graph(1).fingerprint()
        # shape participates even with identical nnz layout
        e = from_edges(4, 4, [0, 1], [1, 2])
        wider = from_edges(5, 4, [0, 1], [1, 2])
        assert e.fingerprint() != wider.fingerprint()
