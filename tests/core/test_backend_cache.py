"""FeatGraphBackend kernel-cache keying.

Regression: the cache used to key on ``id(adj)``.  CPython recycles ids
after garbage collection, so a new graph allocated at a freed graph's
address silently reused the stale kernel -- wrong topology, wrong numbers.
Keys are now content fingerprints.
"""

import numpy as np
import pytest

from repro.core.backend import FeatGraphBackend
from repro.graph.sparse import from_edges


def _graph(seed, n=8, m=20):
    rng = np.random.default_rng(seed)
    return from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))


class TestKernelCacheKeying:
    def test_cache_key_is_content_not_identity(self):
        backend = FeatGraphBackend("cpu")
        adj = _graph(0)
        backend._kernel("gcn", adj, 4)
        (key,) = backend._cache.keys()
        assert id(adj) not in key
        assert adj.fingerprint() in key

    def test_equal_graphs_share_a_kernel(self):
        backend = FeatGraphBackend("cpu")
        a, b = _graph(0), _graph(0)  # same content, distinct objects
        assert a is not b
        k1 = backend._kernel("gcn", a, 4)
        k2 = backend._kernel("gcn", b, 4)
        assert k1 is k2
        assert len(backend._cache) == 1

    def test_different_graphs_get_distinct_kernels(self):
        backend = FeatGraphBackend("cpu")
        k1 = backend._kernel("gcn", _graph(0), 4)
        k2 = backend._kernel("gcn", _graph(1), 4)
        assert k1 is not k2
        assert len(backend._cache) == 2

    def test_recycled_object_address_cannot_alias(self):
        """The id()-reuse scenario: a dead graph's address is reused by a
        different graph.  With content keys the second graph must compute
        its own (correct) result."""
        backend = FeatGraphBackend("cpu")
        feats = np.random.default_rng(3).standard_normal((8, 4)).astype(np.float32)

        out_a = backend.gcn_aggregation(_graph(0), feats)
        # a fresh, different graph -- regardless of what address it landed on
        out_b = backend.gcn_aggregation(_graph(1), feats)

        # reference: plain scatter-add per graph
        def ref(adj):
            out = np.zeros((8, 4), dtype=np.float32)
            np.add.at(out, adj.row_of_edge(), feats[adj.indices])
            return out

        np.testing.assert_allclose(out_a, ref(_graph(0)), rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(out_b, ref(_graph(1)), rtol=1e-5, atol=1e-5)

    def test_fingerprint_stability_and_sensitivity(self):
        a = _graph(0)
        assert a.fingerprint() == _graph(0).fingerprint()
        assert a.fingerprint() == a.fingerprint()  # cached, stable
        assert a.fingerprint() != _graph(1).fingerprint()
        # shape participates even with identical nnz layout
        e = from_edges(4, 4, [0, 1], [1, 2])
        wider = from_edges(5, 4, [0, 1], [1, 2])
        assert e.fingerprint() != wider.fingerprint()
