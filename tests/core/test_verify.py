"""Kernel self-verification tests."""

import numpy as np
import pytest

import repro.core as featgraph
from repro import tensorir as T
from repro.core.verify import VerificationError, verify_sddmm, verify_spmm


class TestVerifySpMM:
    @pytest.mark.parametrize("agg", ["sum", "max", "mean"])
    def test_correct_kernel_passes(self, edge_list_graph, agg):
        adj, src, dst = edge_list_graph
        n = adj.shape[1]
        XV = T.placeholder((n, 8), name="XV")

        def msgfunc(s, d, e):
            return T.compute((8,), lambda i: XV[s, i])

        k = featgraph.spmm(adj, msgfunc, agg, num_graph_partitions=4,
                           num_feature_partitions=2)
        x = np.random.default_rng(0).standard_normal((n, 8)).astype(np.float32)
        out = verify_spmm(k, {"XV": x})
        assert out.shape == (adj.shape[0], 8)

    def test_corrupted_partitioning_detected(self, edge_list_graph):
        """Sabotage the compiled partitions; verification must catch it."""
        adj, *_ = edge_list_graph
        n = adj.shape[1]
        XV = T.placeholder((n, 8), name="XV")

        def msgfunc(s, d, e):
            return T.compute((8,), lambda i: XV[s, i])

        k = featgraph.spmm(adj, msgfunc, "sum", num_graph_partitions=4)
        parts = k.partitions
        k._partitions = parts[:-1]  # drop a partition: silently wrong sums
        x = np.random.default_rng(1).random((n, 8)).astype(np.float32)
        with pytest.raises(VerificationError, match="SpMM disagrees"):
            verify_spmm(k, {"XV": x})

    def test_complex_udf_passes(self, edge_list_graph):
        adj, *_ = edge_list_graph
        n, m = adj.shape[1], adj.nnz
        XV = T.placeholder((n, 6), name="XV")
        EW = T.placeholder((m,), name="EW")

        def msgfunc(s, d, e):
            return T.compute((6,), lambda i: T.exp(XV[s, i] * 0.1) * EW[e])

        k = featgraph.spmm(adj, msgfunc, "sum")
        rng = np.random.default_rng(2)
        verify_spmm(k, {"XV": rng.random((n, 6)).astype(np.float32),
                        "EW": rng.random(m).astype(np.float32)}, atol=1e-3)


class TestVerifySDDMM:
    def test_correct_kernel_passes(self, edge_list_graph):
        adj, *_ = edge_list_graph
        n = adj.shape[1]
        XV = T.placeholder((n, 8), name="XV")

        def edgefunc(s, d, e):
            k = T.reduce_axis((0, 8), "k")
            return T.compute((1,), lambda i: T.sum_reduce(XV[s, k] * XV[d, k],
                                                          axis=k))

        kern = featgraph.sddmm(adj, edgefunc, hilbert=True)
        x = np.random.default_rng(3).random((n, 8)).astype(np.float32)
        out = verify_sddmm(kern, {"XV": x})
        assert out.shape == (adj.nnz, 1)

    def test_corrupted_traversal_detected(self, edge_list_graph):
        adj, *_ = edge_list_graph
        n = adj.shape[1]
        XV = T.placeholder((n, 8), name="XV")

        def edgefunc(s, d, e):
            k = T.reduce_axis((0, 8), "k")
            return T.compute((1,), lambda i: T.sum_reduce(XV[s, k] * XV[d, k],
                                                          axis=k))

        kern = featgraph.sddmm(adj, edgefunc, hilbert=True)
        # poison the cached Hilbert order with a non-permutation
        kern._order = np.zeros(adj.nnz, dtype=np.int64)
        x = np.random.default_rng(4).standard_normal((n, 8)).astype(np.float32)
        with pytest.raises(VerificationError, match="SDDMM disagrees"):
            verify_sddmm(kern, {"XV": x})
