"""Differential tests: compiled vectorized programs vs the tree-walk oracle.

The vectorizer's contract (see :mod:`repro.tensorir.vectorize`) is that a
compiled program computes what :func:`evaluate_batched` computes, to 1e-5:
elementwise programs and ``max``/``min`` reductions bit-identically, and
``sum``/``prod`` reductions up to numpy's pairwise-vs-sequential combine
rounding.  These tests pit the two against each other across the fuzzing
harness's seeded UDF and graph generators, and end-to-end through the
templates with the compiled path toggled via ``FEATGRAPH_UDF_COMPILE``.
"""

import random

import numpy as np
import pytest

from repro import tensorir as T
from repro.core.api import sddmm, spmat, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.testing import generators as G
from repro.testing.differential import build_bindings
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.vectorize import VectorizeError, compile_batched

ATOL = 1e-5


def _agree(got, ref):
    """Scaled 1e-5 agreement (the acceptance-criteria tolerance)."""
    got, ref = np.asarray(got), np.asarray(ref)
    assert got.shape == ref.shape
    assert got.dtype == ref.dtype
    if got.size == 0:
        return
    assert np.all(np.abs(got.astype(np.float64) - ref.astype(np.float64))
                  <= ATOL * np.maximum(np.abs(ref.astype(np.float64)), 1.0))


def _instance(family_name, rnd):
    fam = G.UDF_FAMILIES[family_name]
    dims = {"n": rnd.randint(2, 12), "m": rnd.randint(1, 24)}
    if "f" in fam.dims:
        dims["f"] = rnd.randint(1, 7)
    if "d" in fam.dims:
        dims["d"] = rnd.randint(1, 6)
    if "h" in fam.dims:
        dims["h"] = rnd.randint(1, 3)
    return fam.make(dims), dims


def _batch(instance, dims, rnd):
    b = rnd.randint(1, 17)
    rng = np.random.default_rng(rnd.randrange(2**31))
    n, m = dims["n"], dims["m"]
    return {
        "src": rng.integers(0, n, b),
        "dst": rng.integers(0, n, b),
        "eid": rng.integers(0, m, b),
    }


class TestCompiledAgainstInterpreter:
    """compile_batched(x).run(...) == evaluate_batched(x, ...) to 1e-5."""

    @pytest.mark.parametrize("family", sorted(G.UDF_FAMILIES))
    def test_seeded_family_sweep(self, family):
        rnd = random.Random(hash(family) & 0xFFFF)
        for trial in range(8):
            instance, dims = _instance(family, rnd)
            out = instance.udf(T.Var("src"), T.Var("dst"), T.Var("eid"))
            prog = compile_batched(out)
            bindings = build_bindings(instance, None, rnd.randrange(2**31))
            batch = _batch(instance, dims, rnd)
            got = prog.run(bindings, batch)
            ref = evaluate_batched(out, bindings, batch)
            _agree(got, ref)

    @pytest.mark.parametrize("family", sorted(G.UDF_FAMILIES))
    def test_seeded_family_sweep_tiled(self, family):
        """Feature tiling (axis_ranges) matches the interpreter's tiling."""
        rnd = random.Random(hash(family) & 0xFFF7)
        for trial in range(4):
            instance, dims = _instance(family, rnd)
            out = instance.udf(T.Var("src"), T.Var("dst"), T.Var("eid"))
            ax = out.op.axis[0]
            if ax.extent < 2:
                continue
            prog = compile_batched(out)
            bindings = build_bindings(instance, None, rnd.randrange(2**31))
            batch = _batch(instance, dims, rnd)
            mid = ax.extent // 2
            for lohi in ((0, mid), (mid, ax.extent)):
                ranges = {ax.name: lohi}
                got = prog.run(bindings, batch, axis_ranges=ranges)
                ref = evaluate_batched(out, bindings, batch,
                                       axis_ranges=ranges)
                _agree(got, ref)

    def test_elementwise_bit_identical(self):
        """No-reduction programs reproduce the interpreter exactly."""
        rnd = random.Random(7)
        for family in ("copy_u", "copy_e", "u_mul_v", "u_add_v_scaled",
                       "exp_gate"):
            instance, dims = _instance(family, rnd)
            out = instance.udf(T.Var("src"), T.Var("dst"), T.Var("eid"))
            prog = compile_batched(out)
            bindings = build_bindings(instance, None, rnd.randrange(2**31))
            batch = _batch(instance, dims, rnd)
            got = prog.run(bindings, batch)
            ref = evaluate_batched(out, bindings, batch)
            np.testing.assert_array_equal(got, ref)

    def test_program_does_not_corrupt_inputs(self):
        """out=-reuse must never write into the caller's bindings."""
        XV = T.placeholder((6, 4), name="XV")
        out = T.compute((4,), lambda i: T.exp(XV[T.Var("src"), i]) * 2.0,
                        name="gate")
        prog = compile_batched(out)
        bindings = {"XV": np.random.default_rng(0).standard_normal(
            (6, 4)).astype(np.float32)}
        keep = bindings["XV"].copy()
        batch = {"src": np.array([0, 1, 0, 5], dtype=np.int64)}
        first = prog.run(bindings, batch).copy()
        np.testing.assert_array_equal(bindings["XV"], keep)
        np.testing.assert_array_equal(prog.run(bindings, batch), first)


class TestTemplatesCompiledVsInterpreted:
    """End-to-end: kernels agree with FEATGRAPH_UDF_COMPILE=0 runs."""

    def _graph(self, seed):
        rnd = random.Random(seed)
        return G.make_graph(G.sample_graph_spec(rnd))

    @pytest.mark.parametrize("agg", ["sum", "max", "mean"])
    def test_spmm_paths_agree(self, agg, monkeypatch):
        rnd = random.Random(11)
        for seed in range(6):
            csr = self._graph(100 + seed)
            n = max(csr.shape)
            instance, _ = _instance("u_mul_v", random.Random(seed))
            XV = rnd  # noqa: F841 - keep rnd referenced
            fam = G.UDF_FAMILIES["u_mul_v"]
            instance = fam.make({"n": n, "m": max(csr.nnz, 1), "f": 5})
            bindings = build_bindings(instance, agg, 40 + seed)
            with use_kernel_cache(KernelCache()):
                monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", "1")
                k = spmm(spmat(csr), instance.udf, aggregation=agg,
                         chunk_edges=8)
                got = k.run(bindings)
                assert (csr.nnz == 0
                        or k.exec_stats.as_dict()["compiled_chunks"] > 0)
            with use_kernel_cache(KernelCache()):
                monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", "0")
                k2 = spmm(spmat(csr), instance.udf, aggregation=agg,
                          chunk_edges=8)
                ref = k2.run(bindings)
                assert k2.exec_stats.as_dict()["compiled_chunks"] == 0
            _agree(got, ref)

    def test_sddmm_paths_agree(self, monkeypatch):
        for seed in range(6):
            csr = self._graph(200 + seed)
            n = max(csr.shape)
            fam = G.UDF_FAMILIES["multihead_dot"]
            instance = fam.make({"n": n, "m": max(csr.nnz, 1),
                                 "h": 2, "d": 3})
            bindings = build_bindings(instance, None, 60 + seed)
            with use_kernel_cache(KernelCache()):
                monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", "1")
                got = sddmm(spmat(csr), instance.udf,
                            chunk_edges=8).run(bindings)
            with use_kernel_cache(KernelCache()):
                monkeypatch.setenv("FEATGRAPH_UDF_COMPILE", "0")
                ref = sddmm(spmat(csr), instance.udf,
                            chunk_edges=8).run(bindings)
            _agree(got, ref)

    def test_sddmm_pool_matches_serial(self):
        from repro.tensorir.runtime import WorkPool

        csr = self._graph(303)
        n = max(csr.shape)
        fam = G.UDF_FAMILIES["u_mul_v"]
        instance = fam.make({"n": n, "m": max(csr.nnz, 1), "f": 4})
        bindings = build_bindings(instance, None, 77)
        with use_kernel_cache(KernelCache()):
            k = sddmm(spmat(csr), instance.udf, chunk_edges=4)
        serial = k.run(bindings)
        with WorkPool(num_workers=4) as pool:
            threaded = k.run(bindings, pool=pool)
            assert pool.stats()["chunks_dispatched"] >= 1 or csr.nnz == 0
        np.testing.assert_array_equal(serial, threaded)


class TestVectorProgramReuse:
    """Compiled programs land in the shared KernelCache and are reused."""

    def test_cache_hit_reuses_program(self):
        XV = T.placeholder((8, 4), name="XV")

        def msg(src, dst, eid):
            return T.compute((4,), lambda i: XV[src, i] * 2.0, name="m")

        csr = G.make_graph({"family": "random", "n_src": 8, "n_dst": 8,
                            "m": 12, "seed": 3})
        with use_kernel_cache(KernelCache()) as cache:
            k1 = spmm(spmat(csr), msg, aggregation="sum")
            k2 = spmm(spmat(csr), msg, aggregation="sum")
            assert k2 is k1
            stats = cache.stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            prog = k1._compile_record.artifacts["vector_program"]
            assert prog is not None
            assert k1.vector_program() is prog
            # both bindings of the kernel execute the same program object
            assert k2.vector_program() is prog

    def test_unvectorizable_udf_falls_back(self):
        """Bodies the vectorizer rejects raise VectorizeError, and a kernel
        without a program still runs every chunk interpreted."""
        XV = T.placeholder((8, 3), name="XV")
        weird = T.Var("not an identifier")
        bad = T.compute((3,), lambda i: XV[weird, i], name="plain")
        with pytest.raises(VectorizeError):
            compile_batched(bad)

        def msg(src, dst, eid):
            return T.compute((3,), lambda i: XV[src, i], name="cp")

        csr = G.make_graph({"family": "random", "n_src": 8, "n_dst": 8,
                            "m": 12, "seed": 4})
        bindings = {"XV": np.arange(24, dtype=np.float32).reshape(8, 3)}
        with use_kernel_cache(KernelCache()):
            k = spmm(spmat(csr), msg, aggregation="sum", chunk_edges=4)
        compiled_out = k.run(bindings)
        k._vector_program = None  # simulate a vectorizer reject
        interp_out = k.run(bindings)
        np.testing.assert_array_equal(compiled_out, interp_out)
        stats = k.exec_stats.as_dict()
        assert 0 < stats["compiled_chunks"] < stats["chunks"]
