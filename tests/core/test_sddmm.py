"""Generalized SDDMM template tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core as featgraph
from repro import tensorir as T
from repro.graph.sparse import from_edges


def _dot_kernel(adj, n, f, **opts):
    XV = T.placeholder((n, f), name="XV")

    def edgefunc(src, dst, eid):
        k = T.reduce_axis((0, f), name="k")
        return T.compute((1,), lambda i: T.sum_reduce(XV[src, k] * XV[dst, k],
                                                      axis=k))

    return featgraph.sddmm(adj, edgefunc, **opts)


@pytest.fixture()
def setup(edge_list_graph):
    adj, src, dst = edge_list_graph
    n = adj.shape[0]
    x = np.random.default_rng(0).standard_normal((n, 10)).astype(np.float32)
    ref = (x[src] * x[dst]).sum(axis=1)
    return adj, src, dst, n, x, ref


class TestDotAttention:
    def test_matches_reference(self, setup):
        adj, src, dst, n, x, ref = setup
        k = _dot_kernel(adj, n, 10)
        assert np.allclose(k.run({"XV": x})[:, 0], ref, atol=1e-4)

    def test_hilbert_on_off_identical(self, setup):
        adj, src, dst, n, x, ref = setup
        k_on = _dot_kernel(adj, n, 10, hilbert=True)
        k_off = _dot_kernel(adj, n, 10, hilbert=False)
        assert np.allclose(k_on.run({"XV": x}), k_off.run({"XV": x}), atol=1e-5)

    def test_hilbert_defaults(self, setup):
        adj, src, dst, n, x, ref = setup
        assert _dot_kernel(adj, n, 10, target="cpu").hilbert is True
        assert _dot_kernel(adj, n, 10, target="gpu").hilbert is False

    def test_tiny_chunks(self, setup):
        adj, src, dst, n, x, ref = setup
        k = _dot_kernel(adj, n, 10, chunk_edges=13)
        assert np.allclose(k.run({"XV": x})[:, 0], ref, atol=1e-4)

    def test_output_in_original_edge_order(self):
        """Edge i of the input list must own row i of the output."""
        src = np.array([4, 0, 2, 4])
        dst = np.array([1, 3, 0, 1])
        adj = from_edges(5, 5, src, dst)
        x = np.random.default_rng(1).random((5, 6)).astype(np.float32)
        k = _dot_kernel(adj, 5, 6)
        out = k.run({"XV": x})[:, 0]
        assert np.allclose(out, (x[src] * x[dst]).sum(1), atol=1e-5)

    def test_feature_len_derived_from_reduce(self, setup):
        adj, src, dst, n, x, ref = setup
        k = _dot_kernel(adj, n, 10)
        assert k.feature_len == 10 and k.out_width == 1


class TestMultiHead:
    def test_matches_reference(self, setup):
        adj, src, dst, n, _, _ = setup
        h, d = 3, 5
        XV = T.placeholder((n, h, d), name="XV")

        def edgefunc(s, dd, e):
            k = T.reduce_axis((0, d), name="k")
            return T.compute((h,), lambda i: T.sum_reduce(
                XV[s, i, k] * XV[dd, i, k], axis=k))

        x = np.random.default_rng(2).random((n, h, d)).astype(np.float32)
        kern = featgraph.sddmm(adj, edgefunc)
        ref = np.einsum("ehk,ehk->eh", x[src], x[dst])
        assert np.allclose(kern.run({"XV": x}), ref, atol=1e-4)
        assert kern.feature_len == h * d

    def test_head_tiling_equivalent(self, setup):
        adj, src, dst, n, _, _ = setup
        h, d = 4, 5
        XV = T.placeholder((n, h, d), name="XV")

        def edgefunc(s, dd, e):
            k = T.reduce_axis((0, d), name="k")
            return T.compute((h,), lambda i: T.sum_reduce(
                XV[s, i, k] * XV[dd, i, k], axis=k))

        x = np.random.default_rng(3).random((n, h, d)).astype(np.float32)
        k1 = featgraph.sddmm(adj, edgefunc, num_feature_partitions=1)
        k2 = featgraph.sddmm(adj, edgefunc, num_feature_partitions=4)
        assert np.allclose(k1.run({"XV": x}), k2.run({"XV": x}), atol=1e-5)


class TestEdgeFunctionVariants:
    def test_elementwise_edge_function(self, setup):
        """No reduction: u_add_v style per-edge vector output."""
        adj, src, dst, n, x, _ = setup
        XV = T.placeholder((n, 10), name="XV")

        def edgefunc(s, d, e):
            return T.compute((10,), lambda i: XV[s, i] + XV[d, i])

        k = featgraph.sddmm(adj, edgefunc)
        assert k.feature_len == 10  # no reduce: output width itself
        assert np.allclose(k.run({"XV": x}), x[src] + x[dst], atol=1e-5)

    def test_edge_feature_in_edgefunc(self, setup):
        adj, src, dst, n, x, _ = setup
        m = adj.nnz
        XE = T.placeholder((m,), name="XE")
        XV = T.placeholder((n, 10), name="XV")

        def edgefunc(s, d, e):
            k = T.reduce_axis((0, 10), name="k")
            return T.compute((1,), lambda i: T.sum_reduce(
                XV[s, k] * XV[d, k], axis=k) * XE[e])

        xe = np.random.default_rng(4).random(m).astype(np.float32)
        kern = featgraph.sddmm(adj, edgefunc)
        ref = (x[src] * x[dst]).sum(1) * xe
        assert np.allclose(kern.run({"XV": x, "XE": xe})[:, 0], ref, atol=1e-4)

    def test_edgefunc_must_return_tensor(self, setup):
        adj, *_ = setup
        with pytest.raises(TypeError):
            featgraph.sddmm(adj, lambda s, d, e: None)

    def test_invalid_target(self, setup):
        adj, *_ = setup
        with pytest.raises(ValueError):
            _dot_kernel(adj, adj.shape[0], 10, target="dsp")


class TestGPUVariant:
    def test_tree_reduce_from_fds(self, setup):
        adj, src, dst, n, x, ref = setup
        from repro.core.fds import gpu_tree_reduce_fds
        k = _dot_kernel(adj, n, 10, target="gpu", fds=gpu_tree_reduce_fds())
        assert k.tree_reduce
        assert np.allclose(k.run({"XV": x})[:, 0], ref, atol=1e-4)

    def test_gpu_cost_reflects_tree_reduce(self, setup):
        adj, *_ = setup
        from repro.core.fds import gpu_tree_reduce_fds
        from repro.graph.datasets import paper_stats
        st_big = paper_stats("rand-100K")
        k_tree = _dot_kernel(adj, adj.shape[0], 256, target="gpu",
                             fds=gpu_tree_reduce_fds())
        k_flat = _dot_kernel(adj, adj.shape[0], 256, target="gpu")
        assert (k_tree.cost(stats=st_big).seconds
                < k_flat.cost(stats=st_big).seconds)

    def test_out_buffer(self, setup):
        adj, src, dst, n, x, ref = setup
        k = _dot_kernel(adj, n, 10)
        buf = np.empty((adj.nnz, 1), np.float32)
        out = k.run({"XV": x}, out=buf)
        assert out is buf
        with pytest.raises(ValueError):
            k.run({"XV": x}, out=np.empty((3, 1), np.float32))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 25),
    m=st.integers(1, 150),
    f=st.integers(1, 12),
    hilbert=st.booleans(),
    seed=st.integers(0, 10_000),
)
def test_sddmm_matches_reference_property(n, m, f, hilbert, seed):
    """Property: dot attention equals the numpy reference for any graph,
    feature width, and traversal order."""
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    adj = from_edges(n, n, src, dst)
    x = r.standard_normal((n, f)).astype(np.float32)
    XV = T.placeholder((n, f), name="XV")

    def edgefunc(s, d, e):
        k = T.reduce_axis((0, f), name="k")
        return T.compute((1,), lambda i: T.sum_reduce(XV[s, k] * XV[d, k], axis=k))

    kern = featgraph.sddmm(adj, edgefunc, hilbert=hilbert)
    ref = (x[src] * x[dst]).sum(axis=1)
    assert np.allclose(kern.run({"XV": x})[:, 0], ref, atol=1e-3)
