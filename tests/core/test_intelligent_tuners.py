"""Random-search and simulated-annealing tuners (the paper's future-work
direction), validated against the exhaustive grid optimum."""

import pytest

from repro.core.tuner import AnnealingTuner, GridTuner, RandomTuner
from repro.hwsim.report import CostReport


def _bowl(cfg):
    x, y = cfg["a"], cfg["b"]
    return CostReport(seconds=(x - 8) ** 2 + 2 * (y - 4) ** 2 + 1.0)


SPACE = {"a": [1, 2, 4, 8, 16, 32], "b": [1, 2, 4, 8, 16]}


class TestRandomTuner:
    def test_respects_budget(self):
        res = RandomTuner(SPACE, _bowl, num_trials=5, seed=0).tune()
        assert len(res.trials) <= 5

    def test_dedupes_repeats(self):
        res = RandomTuner({"a": [1], "b": [2]}, _bowl, num_trials=10).tune()
        assert len(res.trials) == 1

    def test_finds_optimum_with_enough_trials(self):
        res = RandomTuner(SPACE, _bowl, num_trials=200, seed=1).tune()
        assert res.best_config == {"a": 8, "b": 4}

    def test_deterministic_given_seed(self):
        a = RandomTuner(SPACE, _bowl, num_trials=8, seed=3).tune()
        b = RandomTuner(SPACE, _bowl, num_trials=8, seed=3).tune()
        assert a.trials == b.trials

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RandomTuner({}, _bowl)
        with pytest.raises(ValueError):
            RandomTuner(SPACE, _bowl, num_trials=0)


class TestAnnealingTuner:
    def test_converges_on_bowl(self):
        res = AnnealingTuner(SPACE, _bowl, num_trials=40, seed=0).tune()
        assert res.best_cost.seconds <= 3.0  # at or next to the optimum

    def test_neighbors_differ_in_one_key(self):
        tuner = AnnealingTuner(SPACE, _bowl, seed=5)
        cfg = {"a": 4, "b": 4}
        for _ in range(20):
            nb = tuner._neighbor(cfg)
            diffs = [k for k in cfg if nb[k] != cfg[k]]
            assert len(diffs) <= 1
            for k in diffs:
                values = SPACE[k]
                assert abs(values.index(nb[k]) - values.index(cfg[k])) == 1

    def test_trial_budget(self):
        res = AnnealingTuner(SPACE, _bowl, num_trials=12, seed=1).tune()
        assert len(res.trials) == 12

    def test_invalid_cooling(self):
        with pytest.raises(ValueError):
            AnnealingTuner(SPACE, _bowl, cooling=1.5)


class TestTunersOnRealLandscape:
    """All three tuners on the Fig. 14 kernel-cost landscape."""

    @pytest.fixture(scope="class")
    def evaluate(self):
        from repro.graph.datasets import paper_stats
        from repro.hwsim import cpu
        from repro.hwsim.spec import XEON_8124M

        stats = paper_stats("reddit")

        def fn(cfg):
            return cpu.spmm_time(XEON_8124M, stats, 128,
                                 frame=cpu.FEATGRAPH_CPU,
                                 num_graph_partitions=cfg["graph"],
                                 num_feature_partitions=cfg["feature"])

        return fn

    SPACE = {"graph": [1, 4, 16, 64, 256], "feature": [1, 2, 4, 8, 16]}

    def test_annealing_matches_grid_within_10_percent(self, evaluate):
        grid = GridTuner(self.SPACE, evaluate).tune()
        anneal = AnnealingTuner(self.SPACE, evaluate, num_trials=15,
                                seed=2).tune()
        assert anneal.best_cost.seconds <= grid.best_cost.seconds * 1.10
        assert len(anneal.trials) < len(grid.trials)

    def test_random_close_with_half_budget(self, evaluate):
        grid = GridTuner(self.SPACE, evaluate).tune()
        rand = RandomTuner(self.SPACE, evaluate,
                           num_trials=len(grid.trials) // 2, seed=4).tune()
        assert rand.best_cost.seconds <= grid.best_cost.seconds * 1.25
