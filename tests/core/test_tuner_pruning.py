"""Analyzer-gated tuning: error configs are pruned before evaluation.

The tuners accept an ``analyzer`` callable (config -> AnalysisReport or
None); configs whose report carries error diagnostics never reach
``evaluate``, show up in the trial log with infinite cost (so exploration
paths and RNG sequences are unchanged), and surface on
:attr:`TuneResult.pruned`.
"""

import math

import pytest

from repro.core.tuner import AnnealingTuner, GridTuner, RandomTuner
from repro.hwsim.report import CostReport
from repro.tensorir.analysis import AnalysisReport, Diagnostic, Severity

SPACE = {"a": [1, 2, 4, 8], "b": [1, 2, 4]}


def _error_report():
    return AnalysisReport(diagnostics=(
        Diagnostic("FG001", Severity.ERROR, "for e[parallel] > store out",
                   "seeded race"),))


def _warning_report():
    return AnalysisReport(diagnostics=(
        Diagnostic("FG004", Severity.WARNING, "alloc stage", "big tile"),))


def _analyzer_rejecting(pred):
    return lambda cfg: _error_report() if pred(cfg) else None


class _CountingEvaluate:
    def __init__(self):
        self.calls = []

    def __call__(self, cfg):
        self.calls.append(dict(cfg))
        x, y = cfg["a"], cfg["b"]
        return CostReport(seconds=(x - 4) ** 2 + (y - 2) ** 2 + 1.0)


class TestGridPruning:
    def test_pruned_configs_skip_evaluate(self):
        ev = _CountingEvaluate()
        tuner = GridTuner(SPACE, ev,
                          analyzer=_analyzer_rejecting(
                              lambda c: c["a"] == 8))
        res = tuner.tune()
        assert all(c["a"] != 8 for c in ev.calls)
        assert len(res.pruned) == 3  # a=8 x b in {1,2,4}
        assert all(cfg["a"] == 8 for cfg, _ in res.pruned)
        assert all(report.has_errors for _, report in res.pruned)

    def test_pruned_trials_logged_with_infinite_cost(self):
        res = GridTuner(SPACE, _CountingEvaluate(),
                        analyzer=_analyzer_rejecting(
                            lambda c: c["a"] == 8)).tune()
        assert len(res.trials) == 12  # full grid still logged
        pruned_secs = [s for c, s in res.trials if c["a"] == 8]
        assert pruned_secs and all(math.isinf(s) for s in pruned_secs)

    def test_pruned_config_never_wins(self):
        # The true optimum (4, 2) is pruned; the tuner must settle elsewhere.
        res = GridTuner(SPACE, _CountingEvaluate(),
                        analyzer=_analyzer_rejecting(
                            lambda c: c == {"a": 4, "b": 2})).tune()
        assert res.best_config != {"a": 4, "b": 2}
        assert math.isfinite(res.best_cost.seconds)

    def test_all_pruned_raises(self):
        with pytest.raises(ValueError, match="pruned by the static"):
            GridTuner(SPACE, _CountingEvaluate(),
                      analyzer=_analyzer_rejecting(lambda c: True)).tune()

    def test_warning_reports_do_not_prune(self):
        ev = _CountingEvaluate()
        res = GridTuner(SPACE, ev, analyzer=lambda cfg: _warning_report()
                        ).tune()
        assert len(ev.calls) == 12 and not res.pruned

    def test_no_analyzer_means_no_pruning(self):
        res = GridTuner(SPACE, _CountingEvaluate()).tune()
        assert res.pruned == []

    def test_analyzer_memoized_per_config(self):
        seen = []

        def analyzer(cfg):
            seen.append(tuple(sorted(cfg.items())))
            return None

        GridTuner(SPACE, _CountingEvaluate(), analyzer=analyzer).tune()
        assert len(seen) == len(set(seen)) == 12


class TestRandomAndAnnealingPruning:
    def test_random_tuner_prunes_and_still_finds_a_config(self):
        ev = _CountingEvaluate()
        res = RandomTuner(SPACE, ev, num_trials=32, seed=3,
                          analyzer=_analyzer_rejecting(
                              lambda c: c["a"] == 8)).tune()
        assert all(c["a"] != 8 for c in ev.calls)
        assert res.best_config["a"] != 8
        assert math.isfinite(res.best_cost.seconds)

    def test_random_tuner_rng_sequence_unchanged_by_pruning(self):
        # Pruning must not consume RNG draws: the visited configs are the
        # same with and without an (all-pass) analyzer.
        plain = RandomTuner(SPACE, _CountingEvaluate(), num_trials=16,
                            seed=11).tune()
        gated = RandomTuner(SPACE, _CountingEvaluate(), num_trials=16,
                            seed=11, analyzer=lambda cfg: None).tune()
        assert [c for c, _ in plain.trials] == [c for c, _ in gated.trials]
        assert plain.best_config == gated.best_config

    def test_annealing_walks_off_pruned_start(self):
        # Force the annealer's (seeded) starting point to be pruned: it must
        # step onto a finite-cost neighbor instead of getting stuck on NaN
        # acceptance deltas, and return a finite best.
        probe = AnnealingTuner(SPACE, _CountingEvaluate(), num_trials=1,
                               seed=5)
        start = probe.tune().best_config
        res = AnnealingTuner(SPACE, _CountingEvaluate(), num_trials=24,
                             seed=5,
                             analyzer=_analyzer_rejecting(
                                 lambda c: c == start)).tune()
        assert res.best_config != start
        assert math.isfinite(res.best_cost.seconds)
        assert any(cfg == start for cfg, _ in res.pruned)

    def test_annealing_rng_sequence_unchanged_by_pruning(self):
        plain = AnnealingTuner(SPACE, _CountingEvaluate(), num_trials=24,
                               seed=0).tune()
        gated = AnnealingTuner(SPACE, _CountingEvaluate(), num_trials=24,
                               seed=0, analyzer=lambda cfg: None).tune()
        assert [c for c, _ in plain.trials] == [c for c, _ in gated.trials]
