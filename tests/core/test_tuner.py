"""Grid-search tuner tests."""

import pytest

from repro.core.tuner import GridTuner
from repro.hwsim.report import CostReport


def _quadratic(cfg):
    # minimum at (4, 2)
    x, y = cfg["a"], cfg["b"]
    return CostReport(seconds=(x - 4) ** 2 + (y - 2) ** 2 + 1.0)


class TestGridTuner:
    def test_finds_minimum(self):
        tuner = GridTuner({"a": [1, 2, 4, 8], "b": [1, 2, 4]}, _quadratic)
        res = tuner.tune()
        assert res.best_config == {"a": 4, "b": 2}
        assert res.best_cost.seconds == pytest.approx(1.0)

    def test_visits_full_grid(self):
        tuner = GridTuner({"a": [1, 2, 3], "b": [1, 2]}, _quadratic)
        res = tuner.tune()
        assert len(res.trials) == 6

    def test_landscape_projection(self):
        tuner = GridTuner({"a": [1, 4], "b": [2]}, _quadratic)
        res = tuner.tune()
        land = res.landscape("a", "b")
        assert land[(4, 2)] == pytest.approx(1.0)
        assert land[(1, 2)] == pytest.approx(10.0)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            GridTuner({}, _quadratic)
        with pytest.raises(ValueError):
            GridTuner({"a": []}, _quadratic)

    def test_single_point_grid(self):
        res = GridTuner({"a": [4], "b": [2]}, _quadratic).tune()
        assert res.best_cost.seconds == pytest.approx(1.0)

    def test_with_real_kernel_cost(self, small_graph):
        """Tune a FeatGraph SpMM's partitioning against the machine model,
        the paper's Sec. IV-A workflow."""
        from repro.core import kernels
        from repro.graph.datasets import paper_stats

        stats = paper_stats("reddit")
        k = kernels.gcn_aggregation(small_graph, small_graph.shape[1], 128)

        def evaluate(cfg):
            from repro.hwsim import cpu
            return cpu.spmm_time(
                __import__("repro.hwsim.spec", fromlist=["XEON_8124M"]).XEON_8124M,
                stats, 128, frame=cpu.FEATGRAPH_CPU,
                num_graph_partitions=cfg["graph"],
                num_feature_partitions=cfg["feature"])

        res = GridTuner({"graph": [1, 4, 16, 64], "feature": [1, 2, 4, 8]},
                        evaluate).tune()
        # the optimum must be an interior-ish point, not the unpartitioned corner
        assert res.best_config != {"graph": 1, "feature": 1}


class TestTunerDeterminism:
    """Fixed seed => identical trial sequence and result, for every tuner."""

    def _space(self):
        return {"a": [1, 2, 3, 4, 5, 6, 8], "b": [1, 2, 3, 4]}

    def test_grid_trial_order_is_stable(self):
        r1 = GridTuner(self._space(), _quadratic).tune()
        r2 = GridTuner(self._space(), _quadratic).tune()
        assert r1.trials == r2.trials
        assert r1.best_config == r2.best_config

    def test_random_tuner_same_seed_same_trials(self):
        from repro.core.tuner import RandomTuner

        r1 = RandomTuner(self._space(), _quadratic, num_trials=12, seed=9).tune()
        r2 = RandomTuner(self._space(), _quadratic, num_trials=12, seed=9).tune()
        assert r1.trials == r2.trials
        assert r1.best_config == r2.best_config
        assert r1.best_cost.seconds == r2.best_cost.seconds

    def test_random_tuner_seed_changes_trials(self):
        from repro.core.tuner import RandomTuner

        r1 = RandomTuner(self._space(), _quadratic, num_trials=12, seed=0).tune()
        r2 = RandomTuner(self._space(), _quadratic, num_trials=12, seed=1).tune()
        assert r1.trials != r2.trials

    def test_annealing_tuner_same_seed_same_walk(self):
        from repro.core.tuner import AnnealingTuner

        r1 = AnnealingTuner(self._space(), _quadratic, num_trials=20, seed=5).tune()
        r2 = AnnealingTuner(self._space(), _quadratic, num_trials=20, seed=5).tune()
        assert r1.trials == r2.trials
        assert r1.best_config == r2.best_config

    def test_annealing_tuner_seed_changes_walk(self):
        from repro.core.tuner import AnnealingTuner

        r1 = AnnealingTuner(self._space(), _quadratic, num_trials=20, seed=5).tune()
        r2 = AnnealingTuner(self._space(), _quadratic, num_trials=20, seed=6).tune()
        assert r1.trials != r2.trials

    def test_landscape_from_stochastic_trials(self):
        from repro.core.tuner import AnnealingTuner, RandomTuner

        for tuner in (RandomTuner(self._space(), _quadratic, num_trials=16, seed=2),
                      AnnealingTuner(self._space(), _quadratic, num_trials=16, seed=2)):
            res = tuner.tune()
            land = res.landscape("a", "b")
            assert land  # projection is non-empty
            # every projected point matches the quadratic it came from
            for (a, b), secs in land.items():
                assert secs == pytest.approx((a - 4) ** 2 + (b - 2) ** 2 + 1.0)
            assert min(land.values()) == pytest.approx(res.best_cost.seconds)
