"""Grid-search tuner tests."""

import pytest

from repro.core.tuner import GridTuner
from repro.hwsim.report import CostReport


def _quadratic(cfg):
    # minimum at (4, 2)
    x, y = cfg["a"], cfg["b"]
    return CostReport(seconds=(x - 4) ** 2 + (y - 2) ** 2 + 1.0)


class TestGridTuner:
    def test_finds_minimum(self):
        tuner = GridTuner({"a": [1, 2, 4, 8], "b": [1, 2, 4]}, _quadratic)
        res = tuner.tune()
        assert res.best_config == {"a": 4, "b": 2}
        assert res.best_cost.seconds == pytest.approx(1.0)

    def test_visits_full_grid(self):
        tuner = GridTuner({"a": [1, 2, 3], "b": [1, 2]}, _quadratic)
        res = tuner.tune()
        assert len(res.trials) == 6

    def test_landscape_projection(self):
        tuner = GridTuner({"a": [1, 4], "b": [2]}, _quadratic)
        res = tuner.tune()
        land = res.landscape("a", "b")
        assert land[(4, 2)] == pytest.approx(1.0)
        assert land[(1, 2)] == pytest.approx(10.0)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            GridTuner({}, _quadratic)
        with pytest.raises(ValueError):
            GridTuner({"a": []}, _quadratic)

    def test_single_point_grid(self):
        res = GridTuner({"a": [4], "b": [2]}, _quadratic).tune()
        assert res.best_cost.seconds == pytest.approx(1.0)

    def test_with_real_kernel_cost(self, small_graph):
        """Tune a FeatGraph SpMM's partitioning against the machine model,
        the paper's Sec. IV-A workflow."""
        from repro.core import kernels
        from repro.graph.datasets import paper_stats

        stats = paper_stats("reddit")
        k = kernels.gcn_aggregation(small_graph, small_graph.shape[1], 128)

        def evaluate(cfg):
            from repro.hwsim import cpu
            return cpu.spmm_time(
                __import__("repro.hwsim.spec", fromlist=["XEON_8124M"]).XEON_8124M,
                stats, 128, frame=cpu.FEATGRAPH_CPU,
                num_graph_partitions=cfg["graph"],
                num_feature_partitions=cfg["feature"])

        res = GridTuner({"graph": [1, 4, 16, 64], "feature": [1, 2, 4, 8]},
                        evaluate).tune()
        # the optimum must be an interior-ish point, not the unpartitioned corner
        assert res.best_config != {"graph": 1, "feature": 1}
