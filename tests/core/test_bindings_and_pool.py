"""Binding validation and pooled (multithreaded) kernel execution."""

import numpy as np
import pytest

import repro.core as featgraph
from repro import tensorir as T
from repro.core.bindings import BindingError
from repro.tensorir.runtime import WorkPool


def _gcn(adj, n, f):
    XV = T.placeholder((n, f), name="XV")

    def msgfunc(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i])

    return featgraph.spmm(adj, msgfunc, "sum")


class TestBindingValidation:
    def test_missing_binding_message(self, small_graph):
        k = _gcn(small_graph, small_graph.shape[1], 8)
        with pytest.raises(BindingError, match="missing binding.*XV"):
            k.run({})

    def test_wrong_shape_message(self, small_graph):
        n = small_graph.shape[1]
        k = _gcn(small_graph, n, 8)
        with pytest.raises(BindingError, match="shape"):
            k.run({"XV": np.zeros((n, 9), np.float32)})

    def test_wrong_vertex_count(self, small_graph):
        n = small_graph.shape[1]
        k = _gcn(small_graph, n, 8)
        with pytest.raises(BindingError):
            k.run({"XV": np.zeros((n + 1, 8), np.float32)})

    def test_integer_features_rejected(self, small_graph):
        n = small_graph.shape[1]
        k = _gcn(small_graph, n, 8)
        with pytest.raises(BindingError, match="dtype"):
            k.run({"XV": np.zeros((n, 8), np.int64)})

    def test_extra_bindings_tolerated(self, small_graph):
        n = small_graph.shape[1]
        k = _gcn(small_graph, n, 8)
        out = k.run({"XV": np.ones((n, 8), np.float32),
                     "UNUSED": np.zeros(3)})
        assert out.shape == (small_graph.shape[0], 8)

    def test_sddmm_validates_too(self, small_graph):
        n = small_graph.shape[1]
        XV = T.placeholder((n, 8), name="XV")

        def edgefunc(src, dst, eid):
            k = T.reduce_axis((0, 8), "k")
            return T.compute((1,), lambda i: T.sum_reduce(
                XV[src, k] * XV[dst, k], axis=k))

        kern = featgraph.sddmm(small_graph, edgefunc)
        with pytest.raises(BindingError):
            kern.run({"XV": np.zeros((n, 7), np.float32)})


class TestPooledExecution:
    def test_pool_matches_serial(self, medium_graph):
        n = medium_graph.shape[1]
        k = _gcn(medium_graph, n, 16)
        # tiny chunks force several parallel work items
        k.chunk_edges = 97
        x = np.random.default_rng(0).random((n, 16)).astype(np.float32)
        serial = k.run({"XV": x})
        with WorkPool(4) as pool:
            parallel = k.run({"XV": x}, pool=pool)
        assert np.allclose(serial, parallel, atol=1e-4)

    def test_pool_with_partitions_and_tiles(self, medium_graph):
        n = medium_graph.shape[1]
        XV = T.placeholder((n, 12), name="XV")

        def msgfunc(src, dst, eid):
            return T.compute((12,), lambda i: XV[src, i] * 2.0)

        k = featgraph.spmm(medium_graph, msgfunc, "max",
                           num_graph_partitions=4, num_feature_partitions=3,
                           chunk_edges=53)
        x = np.random.default_rng(1).standard_normal((n, 12)).astype(np.float32)
        serial = k.run({"XV": x})
        with WorkPool(3) as pool:
            parallel = k.run({"XV": x}, pool=pool)
        assert np.allclose(serial, parallel, atol=1e-4)
