"""Transferable-tuning tests (paper Sec. V-D's open question)."""

import pytest

from repro.core.transfer import TunedConfig, TuningCache, transfer_config, transfer_regret
from repro.core.tuner import GridTuner
from repro.graph.datasets import paper_stats
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

SPACE = {"graph": [1, 2, 4, 8, 16, 32, 64, 128, 256],
         "feature": [1, 2, 4, 8, 16, 32]}


def _evaluate(stats, f):
    def fn(cfg):
        return cpu.spmm_time(XEON_8124M, stats, f, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=cfg["graph"],
                             num_feature_partitions=cfg["feature"])
    return fn


def _tune(stats, f) -> TunedConfig:
    res = GridTuner(SPACE, _evaluate(stats, f)).tune()
    return TunedConfig(res.best_config["graph"], res.best_config["feature"],
                       stats.n_src, f)


@pytest.fixture(scope="module")
def reddit():
    return paper_stats("reddit")


@pytest.fixture(scope="module")
def proteins():
    return paper_stats("ogbn-proteins")


class TestTunedConfig:
    def test_derived_quantities(self):
        cfg = TunedConfig(16, 4, 233_000, 128)
        assert cfg.tile_width == 32
        assert cfg.partition_rows == pytest.approx(233_000 / 16)
        assert cfg.working_set_bytes == pytest.approx(233_000 / 16 * 32 * 4)


class TestTransferConfig:
    def test_feature_partitions_scale_with_f(self, reddit):
        tuned = _tune(reddit, 128)
        bigger = transfer_config(tuned, reddit, 512,
                                 graph_candidates=SPACE["graph"],
                                 feature_candidates=SPACE["feature"])
        assert bigger["feature"] >= tuned.feature_partitions
        # tile width is preserved (the paper's "increases proportionately")
        assert 512 // bigger["feature"] == pytest.approx(tuned.tile_width,
                                                         rel=0.5)

    def test_graph_partitions_rescale_with_vertices(self, reddit, proteins):
        tuned = _tune(reddit, 128)
        moved = transfer_config(tuned, proteins, 128,
                                graph_candidates=SPACE["graph"],
                                feature_candidates=SPACE["feature"])
        # proteins has fewer sources -> no more partitions than reddit needed
        assert moved["graph"] <= tuned.graph_partitions

    def test_same_context_roundtrips(self, reddit):
        tuned = _tune(reddit, 128)
        same = transfer_config(tuned, reddit, 128,
                               graph_candidates=SPACE["graph"],
                               feature_candidates=SPACE["feature"])
        assert same == {"graph": tuned.graph_partitions,
                        "feature": tuned.feature_partitions}


class TestTransferRegret:
    def test_cross_graph_regret_small(self, reddit, proteins):
        """Tune on reddit, deploy on proteins: within 20% of its optimum."""
        tuned = _tune(reddit, 128)
        regret, predicted, optimum = transfer_regret(
            _evaluate(proteins, 128), tuned, proteins, 128, SPACE)
        assert regret < 0.20, (regret, predicted, optimum.best_config)

    def test_cross_feature_regret_small(self, reddit):
        """Tune at f=128, deploy at f=512 on the same graph."""
        tuned = _tune(reddit, 128)
        regret, *_ = transfer_regret(_evaluate(reddit, 512), tuned, reddit,
                                     512, SPACE)
        assert regret < 0.15

    def test_regret_nonnegative(self, reddit, proteins):
        tuned = _tune(proteins, 64)
        regret, *_ = transfer_regret(_evaluate(reddit, 64), tuned, reddit,
                                     64, SPACE)
        assert regret >= -1e-9


class TestTuningCache:
    def test_roundtrip(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        cfg = TunedConfig(16, 4, 233_000, 128)
        cache.put("spmm-gcn", cfg)
        back = TuningCache(tmp_path / "tune.json")  # reload from disk
        got = back.get("spmm-gcn", 233_000, 128)
        assert got == cfg

    def test_bucketed_lookup(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        cache.put("spmm-gcn", TunedConfig(16, 4, 233_000, 128))
        # a graph of similar size hits the same bucket
        assert cache.get("spmm-gcn", 250_000, 128) is not None
        # a much smaller graph does not
        assert cache.get("spmm-gcn", 10_000, 128) is None

    def test_miss_returns_none(self, tmp_path):
        cache = TuningCache(tmp_path / "tune.json")
        assert cache.get("spmm-gcn", 1000, 64) is None
        assert len(cache) == 0


class TestSnapAndDerived:
    def test_snap_is_log_scale(self):
        from repro.core.transfer import _snap

        # 3 is log-closer to 4 than to 1 on (1, 4, 16)
        assert _snap(3, (1, 4, 16)) == 4
        # 60 is log-closer to 64 than to 256
        assert _snap(60, (1, 64, 256)) == 64
        # values below every candidate clamp to the smallest
        assert _snap(0.01, (2, 8)) == 2

    def test_working_set_bytes(self):
        cfg = TunedConfig(graph_partitions=4, feature_partitions=2,
                          n_src=1000, feature_len=64)
        assert cfg.tile_width == 32
        assert cfg.partition_rows == pytest.approx(250.0)
        assert cfg.working_set_bytes == pytest.approx(250 * 32 * 4)

    def test_transfer_config_respects_candidate_sets(self, reddit):
        cfg = TunedConfig(graph_partitions=8, feature_partitions=4,
                          n_src=reddit.n_src, feature_len=128)
        out = transfer_config(cfg, reddit, 512,
                              graph_candidates=(2, 16),
                              feature_candidates=(1, 8))
        assert out["graph"] in (2, 16)
        assert out["feature"] in (1, 8)


class TestTuningCachePersistence:
    def test_survives_reload_and_len(self, tmp_path):
        from repro.core.transfer import TuningCache

        path = tmp_path / "cache" / "tuned.json"
        c1 = TuningCache(path)
        assert len(c1) == 0
        c1.put("spmm", TunedConfig(4, 2, 1000, 64))
        c1.put("sddmm", TunedConfig(2, 8, 1000, 64))
        assert len(c1) == 2

        c2 = TuningCache(path)  # fresh instance reads the JSON back
        got = c2.get("spmm", 1000, 64)
        assert got == TunedConfig(4, 2, 1000, 64)
        assert len(c2) == 2

    def test_put_overwrites_same_key(self, tmp_path):
        from repro.core.transfer import TuningCache

        c = TuningCache(tmp_path / "t.json")
        c.put("spmm", TunedConfig(4, 2, 1000, 64))
        c.put("spmm", TunedConfig(16, 8, 1000, 64))  # same bucket/key
        assert len(c) == 1
        assert c.get("spmm", 1000, 64).graph_partitions == 16
