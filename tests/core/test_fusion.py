"""Whole-chain kernel fusion: fused execution must be indistinguishable
from the staged pipeline (PR-6 tentpole).

Two acceptance properties:

1. **Differential**: the fused edge-softmax(+aggregate) chain matches the
   staged three/four-kernel pipeline at tolerance on every graph shape that
   has historically broken segment kernels (dense, empty rows, single
   edge, rectangular sampled blocks), and matches an independent numpy
   reference that shares no code with either path.
2. **Zero recompiles**: a fused chain over a freshly sampled block is a
   pure ``fused_bind`` -- no single-kernel pass and no fused pass re-runs
   (mirroring tests/core/test_block_kernel_reuse.py for the fused layer).
"""

import numpy as np
import pytest

from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.fusion import (FusedEdgeSoftmax, fuse_enabled, use_fusion)
from repro.core.softmax import EdgeSoftmax
from repro.graph.datasets import planted_partition
from repro.graph.sparse import from_edges
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import FeatGraphDGLBackend
from repro.minidgl.graph import Graph
from repro.minidgl.nn import GATConv
from repro.minidgl.sampling import sample_neighbors
from tests.core.test_block_kernel_reuse import EXPENSIVE_PASSES

#: fused-pipeline passes that must not re-run once the fused template exists
FUSED_PASSES = ("fuse_stages", "fuse_plan", "fuse_lower", "fuse_validate",
                "fuse_analyze", "fuse_codegen")


def _dense_graph(n=6):
    """Every ordered pair (including self-loops): maximal-degree rows."""
    src, dst = np.meshgrid(np.arange(n), np.arange(n))
    return from_edges(n, n, src.ravel(), dst.ravel())


def _empty_row_graph():
    """Half the destinations have no incoming edges (deg-0 finalization)."""
    src = np.array([0, 1, 2, 3, 0, 1])
    dst = np.array([0, 0, 2, 2, 4, 4])
    return from_edges(8, 8, src, dst)


def _single_edge_graph():
    return from_edges(3, 3, np.array([1]), np.array([2]))


GRAPH_CASES = [
    pytest.param(_dense_graph, id="dense"),
    pytest.param(_empty_row_graph, id="empty-rows"),
    pytest.param(_single_edge_graph, id="single-edge"),
]


class TestFusedEqualsStaged:
    @pytest.mark.parametrize("make_graph", GRAPH_CASES)
    @pytest.mark.parametrize("heads", [1, 3])
    def test_softmax_chain(self, make_graph, heads):
        adj = make_graph()
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((adj.nnz, heads)).astype(np.float32)
        cache = KernelCache()
        staged = EdgeSoftmax(adj, heads, cache=cache, fused=False)
        fused = FusedEdgeSoftmax(adj, heads, cache=cache)
        assert np.allclose(fused.run(scores), staged.run(scores), atol=1e-5)

    @pytest.mark.parametrize("make_graph", GRAPH_CASES)
    def test_aggregate_chain_vs_numpy_reference(self, make_graph):
        """The 4-stage chain against a from-scratch numpy softmax+scatter
        (no FeatGraph code on the reference side)."""
        adj = make_graph()
        h, d = 2, 3
        rng = np.random.default_rng(1)
        scores = rng.standard_normal((adj.nnz, h)).astype(np.float32)
        z = rng.standard_normal((adj.shape[1], h, d)).astype(np.float32)

        fused = FusedEdgeSoftmax(adj, h, cache=KernelCache(),
                                 feat_shape=(h, d))
        out, alpha = fused.run_aggregate(scores, z, need_alpha=True)

        src, dst = adj.indices, adj.row_of_edge()
        alpha_ref = np.zeros_like(scores)
        for v in range(adj.shape[0]):
            e = slice(adj.indptr[v], adj.indptr[v + 1])
            s = scores[e]
            if s.size:
                p = np.exp(s - s.max(axis=0))
                alpha_ref[e] = p / p.sum(axis=0)
        out_ref = np.zeros((adj.shape[0], h, d), dtype=np.float64)
        np.add.at(out_ref, dst, alpha_ref[:, :, None] * z[src])
        assert np.allclose(alpha, alpha_ref, atol=1e-5)
        assert np.allclose(out, out_ref, atol=1e-5)

    def test_rectangular_sampled_block(self):
        """Bipartite block adjacency (num_dst != num_src): the fused chain
        must respect both vertex spaces."""
        ds = planted_partition(n=200, num_classes=4, feature_dim=8,
                               avg_degree=10, seed=0)
        block = sample_neighbors(ds.adj, np.arange(0, 48), 5,
                                 np.random.default_rng(2))
        adj = block.adj
        assert adj.shape[0] != adj.shape[1]
        h, d = 2, 4
        rng = np.random.default_rng(3)
        scores = rng.standard_normal((adj.nnz, h)).astype(np.float32)
        z = rng.standard_normal((adj.shape[1], h, d)).astype(np.float32)

        cache = KernelCache()
        staged = EdgeSoftmax(adj, h, cache=cache, fused=False)
        alpha_ref = staged.run(scores)
        fused = FusedEdgeSoftmax(adj, h, cache=cache, feat_shape=(h, d))
        out, alpha = fused.run_aggregate(scores, z, need_alpha=True)
        assert np.allclose(alpha, alpha_ref, atol=1e-5)
        # per-edge tensors are edge-id indexed; the block's edge_ids permute
        # within rows, so map CSR positions through them for the reference
        src, dst = adj.indices, adj.row_of_edge()
        w_pos = alpha_ref[adj.edge_ids]
        out_ref = np.zeros((adj.shape[0], h, d), dtype=np.float64)
        np.add.at(out_ref, dst, w_pos[:, :, None] * z[src])
        assert np.allclose(out, out_ref, atol=1e-5)

    def test_multi_chunk_sweep_matches(self):
        """A tiny chunk budget forces many row-aligned chunks; results are
        identical to the single-chunk sweep."""
        adj = _dense_graph(9)
        h = 2
        rng = np.random.default_rng(4)
        scores = rng.standard_normal((adj.nnz, h)).astype(np.float32)
        one = FusedEdgeSoftmax(adj, h, cache=KernelCache()).run(scores)
        many = FusedEdgeSoftmax(adj, h, cache=KernelCache(),
                                chunk_edges=9).run(scores)
        assert np.array_equal(one, many)

    def test_alpha_elided_unless_kept(self):
        """Inference never materializes the attention buffer; training asks
        for it via ``keep`` and gets the same values."""
        adj = _dense_graph(5)
        fused = FusedEdgeSoftmax(adj, 2, cache=KernelCache(),
                                 feat_shape=(2, 3))
        assert fused.kernel.plan.elided == {"ALPHA": 8}  # 2 heads * 4 B
        assert fused.kernel.plan.bytes_elided(adj.nnz) == adj.nnz * 8
        rng = np.random.default_rng(5)
        scores = rng.standard_normal((adj.nnz, 2)).astype(np.float32)
        z = rng.standard_normal((5, 2, 3)).astype(np.float32)
        out1, alpha = fused.run_aggregate(scores, z, need_alpha=False)
        assert alpha is None
        out2, alpha2 = fused.run_aggregate(scores, z, need_alpha=True)
        assert np.array_equal(out1, out2)
        assert alpha2 is not None and alpha2.shape == (adj.nnz, 2)


class TestGATConvFusedRoute:
    def _run(self, fused_flag):
        rng = np.random.default_rng(0)
        n = 60
        g = Graph.from_edges(n, rng.integers(0, n, 360),
                             rng.integers(0, n, 360))
        x_np = rng.standard_normal((n, 10)).astype(np.float32)
        backend = FeatGraphDGLBackend("cpu", cache=KernelCache())
        conv = GATConv(10, 8, num_heads=4, rng=np.random.default_rng(9))
        x = Tensor(x_np, requires_grad=True)
        with use_fusion(fused_flag):
            out = conv(g, x, backend)
            out.sum().backward()
        return (out.data, x.grad.copy(),
                [p.grad.copy() for p in conv.parameters()])

    def test_forward_and_grads_match_staged(self):
        out_s, xg_s, pg_s = self._run(False)
        out_f, xg_f, pg_f = self._run(True)
        assert np.allclose(out_f, out_s, atol=1e-5)
        assert np.allclose(xg_f, xg_s, atol=1e-4)
        for a, b in zip(pg_f, pg_s):
            assert np.allclose(a, b, atol=1e-4)

    def test_gate_defaults_off(self, monkeypatch):
        monkeypatch.delenv("FEATGRAPH_FUSE", raising=False)
        assert not fuse_enabled()
        with use_fusion(True):
            assert fuse_enabled()
        monkeypatch.setenv("FEATGRAPH_FUSE", "1")
        assert fuse_enabled()

    def test_forward_blocks_takes_fused_route(self):
        """Mini-batch GAT over sampled blocks runs the fused chain (the
        backend's fused counters move) and matches the staged result."""
        from repro.minidgl.models import GAT

        ds = planted_partition(n=150, num_classes=3, feature_dim=6,
                               avg_degree=8, seed=1)
        rng = np.random.default_rng(7)
        b2 = sample_neighbors(ds.adj, np.arange(0, 32), 4, rng)
        b1 = sample_neighbors(ds.adj, b2.src_ids, 4, rng)
        x0 = Tensor(ds.features[b1.src_ids].astype(np.float32))

        def run(flag):
            cache = KernelCache()
            backend = FeatGraphDGLBackend("cpu", cache=cache)
            model = GAT(6, 3, hidden=8, num_heads=2, dropout=0.0, seed=2)
            model.eval()
            with use_fusion(flag):
                out = model.forward_blocks([b1, b2], x0, backend)
            return out.data, cache.stats()

        out_s, _ = run(False)
        out_f, stats = run(True)
        assert np.allclose(out_f, out_s, atol=1e-5)
        assert stats["fused_compiles"] >= 1


class TestFusedZeroRecompile:
    def test_second_block_is_pure_fused_bind(self):
        """THE fused acceptance check: rebuilding the same chain over a new
        topology re-runs neither single-kernel nor fused passes -- only a
        ``fused_bind`` appears in the ledger."""
        ds = planted_partition(n=250, num_classes=4, feature_dim=8,
                               avg_degree=10, seed=0)
        rng = np.random.default_rng(1)
        b1 = sample_neighbors(ds.adj, np.arange(0, 64), 6, rng)
        b2 = sample_neighbors(ds.adj, np.arange(100, 180), 6, rng)
        assert b1.adj.fingerprint() != b2.adj.fingerprint()

        h, d = 2, 4
        with use_kernel_cache(KernelCache()) as cache:
            FusedEdgeSoftmax(b1.adj, h, feat_shape=(h, d))
            frozen = dict(cache.stats()["pass_counts"])
            for p in FUSED_PASSES:
                assert frozen.get(p, 0) == 1, f"pass {p!r} missing"

            FusedEdgeSoftmax(b2.adj, h, feat_shape=(h, d))
            s = cache.stats()
            for p in EXPENSIVE_PASSES + FUSED_PASSES:
                assert s["pass_counts"].get(p, 0) == frozen.get(p, 0), (
                    f"pass {p!r} re-ran for the second block's topology")
            assert s["pass_counts"].get("fused_bind", 0) == 1
            assert s["fused_binds"] == 1
            assert s["fused_compiles"] == 1
            assert s["fused_templates"] == 1
            assert s["fused_template_hits"] == 1

    def test_fused_counters_distinguish_hit_kinds(self):
        """``fused_*`` counters move independently of the single-kernel
        hit/miss counters (the Fix satellite)."""
        adj = _dense_graph(5)
        with use_kernel_cache(KernelCache()) as cache:
            EdgeSoftmax(adj, 2, fused=False)           # single-kernel only
            s0 = cache.stats()
            assert s0["fused_compiles"] == 0
            assert s0["fused_binds"] == 0

            FusedEdgeSoftmax(adj, 2)                   # first fused compile
            s1 = cache.stats()
            assert s1["fused_compiles"] == 1
            assert s1["fused_template_misses"] == 1

            FusedEdgeSoftmax(adj, 2)                   # same chain: bind
            s2 = cache.stats()
            assert s2["fused_binds"] == 1
            assert s2["fused_compiles"] == 1
            assert s2["fused_template_hits"] == 1
            # single-kernel counters unaffected by the fused bind
            assert s2["pipeline_runs"] == s1["pipeline_runs"]

    def test_reset_and_clear_cover_fused_state(self):
        adj = _single_edge_graph()
        with use_kernel_cache(KernelCache()) as cache:
            FusedEdgeSoftmax(adj, 1)
            cache.reset_stats()
            s = cache.stats()
            assert s["fused_compiles"] == 0
            assert s["fused_template_hits"] == 0
            assert s["fused_templates"] == 1   # artifacts survive reset
            cache.clear()
            assert cache.stats()["fused_templates"] == 0