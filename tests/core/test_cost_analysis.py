"""UDF static-analysis tests."""

import pytest

from repro import tensorir as T
from repro.core.cost import bytes_read_per_item, reads_endpoint, udf_flops_per_item


def _vars():
    return T.Var("src"), T.Var("dst"), T.Var("eid")


class TestFlops:
    def test_copy_is_free(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i])
        assert udf_flops_per_item(t) == 0

    def test_elementwise_counts_per_output(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i] * 2.0 + 1.0)
        assert udf_flops_per_item(t) == 16  # 2 ops x 8 outputs

    def test_reduce_multiplies_by_extent(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 4), name="X")
        W = T.placeholder((4, 8), name="W")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((8,), lambda i: T.sum_reduce(X[src, k] * W[k, i], axis=k))
        # per output: 4 * (mul + accumulate) = 8; x 8 outputs = 64
        assert udf_flops_per_item(t) == 64

    def test_mlp_scales_with_d1_d2(self):
        src, dst, eid = _vars()

        def make(d1, d2):
            X = T.placeholder((10, d1), name="X")
            W = T.placeholder((d1, d2), name="W")
            k = T.reduce_axis((0, d1), "k")
            return T.compute((d2,), lambda i: T.maximum(
                T.sum_reduce((X[src, k] + X[dst, k]) * W[k, i], axis=k), 0.0))

        assert udf_flops_per_item(make(8, 32)) == pytest.approx(
            udf_flops_per_item(make(8, 16)) * 2)
        assert udf_flops_per_item(make(16, 16)) > udf_flops_per_item(make(8, 16))

    def test_intrinsics_cost_more_than_arith(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t_add = T.compute((8,), lambda i: X[src, i] + 1.0)
        t_exp = T.compute((8,), lambda i: T.exp(X[src, i]))
        assert udf_flops_per_item(t_exp) > udf_flops_per_item(t_add)

    def test_placeholder_has_zero_cost(self):
        X = T.placeholder((4,), name="X")
        assert udf_flops_per_item(X) == 0


class TestEndpointReads:
    def test_src_only(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i])
        assert reads_endpoint(t, "src")
        assert not reads_endpoint(t, "dst")

    def test_both_endpoints(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i] - X[dst, i])
        assert reads_endpoint(t, "src") and reads_endpoint(t, "dst")

    def test_eid_not_an_endpoint_read(self):
        src, dst, eid = _vars()
        XE = T.placeholder((100, 8), name="XE")
        t = T.compute((8,), lambda i: XE[eid, i])
        assert not reads_endpoint(t, "src")
        assert reads_endpoint(t, "eid")

    def test_endpoint_inside_reduce(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 4), name="X")
        k = T.reduce_axis((0, 4), "k")
        t = T.compute((1,), lambda i: T.sum_reduce(X[src, k] * X[dst, k], axis=k))
        assert reads_endpoint(t, "src") and reads_endpoint(t, "dst")


class TestBytesRead:
    def test_copy_reads_f_elements(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i])
        assert bytes_read_per_item(t, "src") == 8 * 4

    def test_dot_reads_reduce_extent(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 16), name="X")
        k = T.reduce_axis((0, 16), "k")
        t = T.compute((1,), lambda i: T.sum_reduce(X[src, k] * X[dst, k], axis=k))
        assert bytes_read_per_item(t, "src") == 16 * 4

    def test_unread_endpoint_is_zero(self):
        src, dst, eid = _vars()
        X = T.placeholder((10, 8), name="X")
        t = T.compute((8,), lambda i: X[src, i])
        assert bytes_read_per_item(t, "dst") == 0
