"""A GAT layer chained through KernelProgram on the prebuilt kernels.

Unlike ``test_program.py`` (which writes the UDFs by hand), this chains the
DGL-builtin-based builders -- ``dot_attention`` (SDDMM scores), the fused
``EdgeSoftmax``, and ``attention_weighted_aggregation`` (u_mul_e SpMM) --
so the whole layer runs through the unified compile pipeline: buffer
binding between steps, per-step compile reports, cost aggregation, and
kernel sharing via the process cache.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.compile import PASS_NAMES, KernelCache, use_kernel_cache
from repro.core.program import KernelProgram
from repro.core.softmax import EdgeSoftmax
from repro.graph.sparse import CSRMatrix

N, F = 12, 8


def _graph(n=N):
    """Two outgoing edges per vertex, built directly in CSR form."""
    indptr = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
    indices = np.stack([(np.arange(n) + 1) % n,
                        (np.arange(n) + 3) % n], axis=1).reshape(-1)
    return CSRMatrix((n, n), indptr, indices.astype(np.int64))


def _build_gat(adj, cache=None):
    n, m = adj.shape[0], adj.nnz
    softmax = EdgeSoftmax(adj, cache=cache)
    prog = KernelProgram("gat-layer")
    prog.add_kernel("scores", kernels.dot_attention(adj, n, F),
                    inputs={"XV": "X"})
    # EdgeSoftmax.run takes the raw score array, not a bindings dict
    prog.add_transform("alpha", lambda env: softmax.run(env["scores"][:, 0]))
    prog.add_kernel("out", kernels.attention_weighted_aggregation(adj, n, F, m),
                    inputs={"XV": "X", "EW": "alpha"})
    return prog


def _reference(adj, x):
    rows = adj.row_of_edge()
    scores = (x[adj.indices] * x[rows]).sum(axis=-1)
    alpha = np.empty_like(scores)
    for v in range(adj.shape[0]):
        mask = rows == v
        if not mask.any():
            continue
        e = np.exp(scores[mask] - scores[mask].max())
        alpha[mask] = e / e.sum()
    out = np.zeros_like(x)
    np.add.at(out, rows, alpha[:, None] * x[adj.indices])
    return scores, alpha, out


class TestGATLayerProgram:
    def test_numerics_match_reference(self):
        adj = _graph()
        x = np.random.default_rng(0).standard_normal((N, F)).astype(np.float32)
        with use_kernel_cache(KernelCache()):
            env = _build_gat(adj).run({"X": x})
        scores, alpha, out = _reference(adj, x)
        np.testing.assert_allclose(env["scores"][:, 0], scores,
                                   rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(env["alpha"], alpha, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(env["out"], out, rtol=1e-4, atol=1e-4)

    def test_buffers_bind_between_steps(self):
        adj = _graph()
        x = np.ones((N, F), dtype=np.float32)
        with use_kernel_cache(KernelCache()):
            env = _build_gat(adj).run({"X": x})
        assert set(env) == {"X", "scores", "alpha", "out"}
        assert env["scores"].shape == (adj.nnz, 1)
        assert env["alpha"].shape == (adj.nnz,)
        assert env["out"].shape == (N, F)
        # uniform features: softmax over each vertex's 2 in-edges is 1/2,
        # so the weighted sum reproduces the mean of the two sources
        np.testing.assert_allclose(env["alpha"], 0.5, atol=1e-6)

    def test_missing_input_raises(self):
        adj = _graph()
        with use_kernel_cache(KernelCache()):
            prog = _build_gat(adj)
            with pytest.raises(KeyError, match="'X'"):
                prog.run({"features": np.ones((N, F), dtype=np.float32)})

    def test_cost_aggregates_kernel_steps(self):
        adj = _graph()
        with use_kernel_cache(KernelCache()):
            prog = _build_gat(adj)
            total = prog.cost()
            parts = [s.kernel.cost().seconds for s in prog.steps
                     if s.kernel is not None]
        assert len(parts) == 2  # transforms are free
        assert all(p > 0 for p in parts)
        assert total.seconds == pytest.approx(sum(parts), rel=1e-6)

    def test_compile_report_has_per_pass_timings(self):
        adj = _graph()
        with use_kernel_cache(KernelCache()):
            report = _build_gat(adj).compile_report()
        assert set(report) == {"scores", "out"}  # kernel steps only
        for timings in report.values():
            assert tuple(timings) == PASS_NAMES
            assert all(secs >= 0.0 for secs in timings.values())

    def test_two_layers_share_compiled_kernels(self):
        """Stacking a second GAT layer over the same graph compiles
        nothing new -- the amortization the program layer inherits from
        the shared cache."""
        adj = _graph()
        x = np.random.default_rng(1).standard_normal((N, F)).astype(np.float32)
        with use_kernel_cache(KernelCache()) as cache:
            _build_gat(adj).run({"X": x})
            first_runs = cache.stats()["pipeline_runs"]
            cache.reset_stats()
            _build_gat(adj).run({"X": x})
            s = cache.stats()
        assert first_runs == 5  # scores + 3 softmax phases + aggregation
        assert s["pipeline_runs"] == 0
        assert s["misses"] == 0
        assert s["hits"] == first_runs
