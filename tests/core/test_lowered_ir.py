"""Fused-kernel IR introspection tests."""

import numpy as np
import pytest

from repro.core import kernels
from repro.graph.sparse import from_edges
from repro.tensorir.ir import AttrStmt, For, Store, stmt_to_str, walk


@pytest.fixture()
def adj():
    r = np.random.default_rng(0)
    return from_edges(50, 50, r.integers(0, 50, 400), r.integers(0, 50, 400))


class TestLoweredIR:
    def test_template_loop_structure(self, adj):
        k = kernels.gcn_aggregation(adj, 50, 64, num_graph_partitions=4,
                                    num_feature_partitions=2)
        ir = k.lowered_ir()
        loops = [s.var.name for s in walk(ir) if isinstance(s, For)]
        # tile -> partition -> row -> edge -> feature axes, in that order
        assert loops[0] == "f_tile"
        assert loops[1] == "partition"
        assert loops[2] == "v" and loops[3] == "e"

    def test_partition_counts_reflected(self, adj):
        k = kernels.gcn_aggregation(adj, 50, 64, num_graph_partitions=4,
                                    num_feature_partitions=2)
        fors = {s.var.name: s.extent for s in walk(k.lowered_ir())
                if isinstance(s, For)}
        assert fors["f_tile"] == 2
        assert fors["partition"] == 4

    def test_udf_inlined_into_store(self, adj):
        """The fused kernel stores the *message expression*, not a read of a
        materialized message buffer."""
        k = kernels.gcn_aggregation(adj, 50, 16)
        stores = [s for s in walk(k.lowered_ir()) if isinstance(s, Store)]
        assert len(stores) == 1
        text = stmt_to_str(k.lowered_ir())
        assert "XV[A_indices[" in text          # gather through the CSR
        assert "<sum>=" in text                  # aggregation combine-store

    def test_fds_split_appears_in_feature_loops(self, adj):
        from repro.core.fds import cpu_tile_fds
        k = kernels.gcn_aggregation(adj, 50, 64, fds=cpu_tile_fds(8))
        names = [s.var.name for s in walk(k.lowered_ir()) if isinstance(s, For)]
        assert any(n.endswith(".outer") for n in names)
        assert any(n.endswith(".inner") for n in names)

    def test_mlp_reduction_and_relu_visible(self, adj):
        k = kernels.mlp_aggregation(adj, 50, 8, 16)
        text = stmt_to_str(k.lowered_ir())
        assert "sum(" in text and "max" in text
        assert "<max>=" in text  # the max aggregation

    def test_gpu_target_binds_rows_to_blocks(self, adj):
        k = kernels.gcn_aggregation(adj, 50, 32, target="gpu")
        row_loops = [s for s in walk(k.lowered_ir())
                     if isinstance(s, For) and s.var.name == "v"]
        assert row_loops[0].kind == "block.x"

    def test_traversal_markers_present(self, adj):
        k = kernels.gcn_aggregation(adj, 50, 16)
        attrs = {s.key for s in walk(k.lowered_ir()) if isinstance(s, AttrStmt)}
        assert {"edge_range", "column_range"} <= attrs


class TestSparseFraction:
    """The paper's Sec. II-A measurement, from the epoch model."""

    def test_suboptimized_backends_are_sparse_dominated(self):
        from repro.graph.datasets import paper_stats
        from repro.minidgl.perfmodel import sparse_fraction

        st = paper_stats("reddit")
        for model in ("GCN", "GraphSage", "GAT"):
            f = sparse_fraction(model, st, 602, 41, backend="minigun",
                                platform="cpu")
            assert f > 0.9, model  # paper: ~95%

    def test_optimized_backend_still_sparse_heavy(self):
        from repro.graph.datasets import paper_stats
        from repro.minidgl.perfmodel import sparse_fraction

        st = paper_stats("reddit")
        fractions = [sparse_fraction(m, st, 602, 41, backend="featgraph",
                                     platform="cpu")
                     for m in ("GCN", "GraphSage", "GAT")]
        # paper abstract: "more than 60% ... when fully optimized" --
        # our models straddle that figure; all remain substantial
        assert all(0.25 < f < 0.85 for f in fractions)
        assert max(fractions) > 0.6
