"""The shared KernelCache: cross-layer hit accounting, eviction, invalidation.

The acceptance property of the unified pipeline (paper Sec. IV-B): the same
(graph, UDF, FDS, target, shapes) kernel requested through the benchmark
backend, the DGL integration layer, and a tuner sweep is lowered through
the pass pipeline exactly once -- every other request is a cache hit
returning the same compiled object.
"""

import numpy as np
import pytest

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core import kernels
from repro.core.backend import FeatGraphBackend
from repro.core.compile import (
    KernelCache,
    KernelSpec,
    compile_spmm,
    use_kernel_cache,
)
from repro.core.fds import cpu_tile_fds
from repro.core.tuner import GridTuner
from repro.graph.sparse import CSRMatrix, from_edges
from repro.minidgl.backends import FeatGraphDGLBackend

N, F = 16, 32


def _ring(n=N):
    """A ring graph built directly as CSR: edge_ids are already arange, so
    the minidgl canonicalization is the identity and both integration
    layers fingerprint the same graph."""
    indptr = np.arange(n + 1, dtype=np.int64)
    indices = (np.arange(n, dtype=np.int64) + 1) % n
    return CSRMatrix((n, n), indptr, indices)


class TestCrossBackendAmortization:
    def test_one_pipeline_run_across_backends_and_tuner(self):
        """THE acceptance check: FeatGraphBackend, FeatGraphDGLBackend, and
        a GridTuner sweep all request the GCN-aggregation kernel for the
        same graph/shape/FDS -- one pipeline run total for that spec."""
        adj = _ring()
        x = np.random.default_rng(0).standard_normal((N, F)).astype(np.float32)

        with use_kernel_cache(KernelCache()) as cache:
            # 1) benchmark backend: compiles (miss)
            FeatGraphBackend("cpu").gcn_aggregation(adj, x)
            s = cache.stats()
            assert (s["pipeline_runs"], s["misses"], s["hits"]) == (1, 1, 0)

            # 2) DGL integration layer: same spec -> pure hit
            FeatGraphDGLBackend("cpu").spmm_copy_sum(adj, x)
            s = cache.stats()
            assert (s["pipeline_runs"], s["hits"]) == (1, 1)

            # 3) tuner sweep; the tile=32 config *is* the default FDS
            #    (cpu_tile_fds(min(32, F))) the backends used above
            tuner = GridTuner(
                {"tile": [8, 16, 32]},
                lambda cfg: kernels.gcn_aggregation(
                    adj, N, F, fds=cpu_tile_fds(cfg["tile"])).cost(),
            )
            tuner.tune()
            s = cache.stats()
            assert s["pipeline_runs"] == 3  # only tile=8 and tile=16 are new
            assert s["hits"] == 2           # dgl layer + the tile=32 trial
            assert s["entries"] == 3

    def test_cross_backend_hit_returns_same_object(self):
        adj = _ring()
        with use_kernel_cache(KernelCache()):
            k1 = FeatGraphBackend("cpu")._kernel("gcn", adj, F)
            k2 = FeatGraphDGLBackend("cpu")._copy_sum(adj, (F,))
        assert k1 is k2

    def test_tuner_retune_is_free(self):
        """Re-running a sweep recompiles nothing: the trial memo short-
        circuits evaluate, and even with the memo off the kernel cache
        serves every lowering."""
        adj = _ring()
        calls = 0

        def evaluate(cfg):
            nonlocal calls
            calls += 1
            return kernels.gcn_aggregation(
                adj, N, F, fds=cpu_tile_fds(cfg["tile"])).cost()

        with use_kernel_cache(KernelCache()) as cache:
            tuner = GridTuner({"tile": [8, 16]}, evaluate)
            r1 = tuner.tune()
            r2 = tuner.tune()
            assert calls == 2  # memoized across tune() calls
            assert r1.best_config == r2.best_config

            unmemo = GridTuner({"tile": [8, 16]}, evaluate,
                               cache_trials=False)
            unmemo.tune()
            assert calls == 4  # evaluate re-ran ...
            assert cache.stats()["pipeline_runs"] == 2  # ... lowering didn't


class TestEvictionBound:
    def _spec(self, i):
        return KernelSpec(template="spmm", udf=f"u{i}", aggregation="sum",
                          target="cpu", fds="f", graph="g", shapes=(),
                          options=())

    def test_bound_is_enforced(self):
        cache = KernelCache(max_entries=2)
        for i in range(3):
            cache.put(self._spec(i), object())
        s = cache.stats()
        assert len(cache) == 2
        assert s["evictions"] == 1
        assert self._spec(0) not in cache  # oldest went first
        assert self._spec(2) in cache

    def test_lru_order_respects_hits(self):
        cache = KernelCache(max_entries=2)
        cache.put(self._spec(0), "a")
        cache.put(self._spec(1), "b")
        assert cache.get(self._spec(0)) == "a"  # refresh 0
        cache.put(self._spec(2), "c")           # evicts 1, not 0
        assert self._spec(0) in cache
        assert self._spec(1) not in cache

    def test_peek_does_not_touch_accounting(self):
        cache = KernelCache(max_entries=2)
        cache.put(self._spec(0), "a")
        assert cache.peek(self._spec(0)) == "a"
        assert cache.peek(self._spec(9)) is None
        s = cache.stats()
        assert (s["hits"], s["misses"]) == (0, 0)

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)

    def test_evicted_spec_recompiles(self):
        adj = _ring()
        XV = T.placeholder((N, F), name="XV")
        with use_kernel_cache(KernelCache(max_entries=2)) as cache:
            for factor in (2, 4, 8):
                compile_spmm(adj, dgl_builtins.copy_u_msg(XV), "sum",
                             fds=cpu_tile_fds(factor))
            assert cache.stats()["evictions"] == 1
            # the factor=2 kernel was evicted: requesting it again misses
            compile_spmm(adj, dgl_builtins.copy_u_msg(XV), "sum",
                         fds=cpu_tile_fds(2))
            s = cache.stats()
            assert s["pipeline_runs"] == 4
            assert s["hits"] == 0


class TestGraphInvalidation:
    def test_invalidation_is_fingerprint_keyed(self):
        a, b = _ring(8), _ring(12)
        x8 = np.ones((8, F), dtype=np.float32)
        x12 = np.ones((12, F), dtype=np.float32)
        with use_kernel_cache(KernelCache()) as cache:
            backend = FeatGraphBackend("cpu")
            backend.gcn_aggregation(a, x8)
            # same UDF/FDS over a different topology: binds the cached
            # template instead of re-running the pipeline
            backend.gcn_aggregation(b, x12)
            assert len(cache) == 2
            assert cache.stats()["pipeline_runs"] == 1
            assert cache.stats()["binds"] == 1

            removed = cache.invalidate_graph(a.fingerprint())
            assert removed == 1
            assert len(cache) == 1
            (spec,) = cache.entries()
            assert spec.graph == b.fingerprint()

            # the dropped graph's next request is served again without a
            # pipeline re-run: the topology-independent template survives
            # invalidation, so the kernel is merely re-bound
            backend.gcn_aggregation(a, x8)
            assert cache.stats()["pipeline_runs"] == 1
            assert cache.stats()["binds"] == 2
            assert len(cache) == 2

    def test_invalidation_covers_the_canonical_copy(self):
        """Kernels compiled against the canonicalized CSR copy of a graph
        fall with the original graph's fingerprint."""
        rng = np.random.default_rng(0)
        adj = from_edges(8, 8, rng.integers(0, 8, 20), rng.integers(0, 8, 20))
        x = rng.standard_normal((8, 4)).astype(np.float32)
        with use_kernel_cache(KernelCache()) as cache:
            FeatGraphDGLBackend("cpu").spmm_copy_sum(adj, x)
            canon = cache.canonical_graph(adj)
            assert canon.fingerprint() != adj.fingerprint()  # permuted ids
            assert len(cache) == 1

            removed = cache.invalidate_graph(adj.fingerprint())
            assert removed == 1
            assert len(cache) == 0
            assert cache.stats()["graph_artifacts"] == 0


class TestCanonicalGraphNamespace:
    def test_arange_graph_is_its_own_canonical_form(self):
        cache = KernelCache()
        adj = _ring()
        assert cache.canonical_graph(adj) is adj

    def test_canonical_copies_are_deduplicated(self):
        cache = KernelCache()
        rng = np.random.default_rng(0)
        edges = (rng.integers(0, 8, 20), rng.integers(0, 8, 20))
        a = from_edges(8, 8, *edges)
        b = from_edges(8, 8, *edges)  # equal content, distinct object
        c1, c2 = cache.canonical_graph(a), cache.canonical_graph(b)
        assert c1 is c2
        assert np.array_equal(c1.edge_ids, np.arange(c1.nnz))
        assert cache.stats()["graph_artifacts"] == 1

    def test_graph_artifacts_do_not_pollute_kernel_entries(self):
        """Satellite regression: canonical CSR copies used to live in the
        minidgl backend's kernel dict, mixing two key spaces."""
        rng = np.random.default_rng(0)
        adj = from_edges(8, 8, rng.integers(0, 8, 20), rng.integers(0, 8, 20))
        cache = KernelCache()
        cache.canonical_graph(adj)
        assert len(cache) == 0  # no kernel entries
        assert cache.stats()["graph_artifacts"] == 1
        assert all(isinstance(s, KernelSpec) for s in cache.entries())


class TestAccounting:
    def test_reset_stats_keeps_entries(self):
        adj = _ring()
        with use_kernel_cache(KernelCache()) as cache:
            FeatGraphBackend("cpu")._kernel("gcn", adj, F)
            assert cache.stats()["compile_seconds"] > 0
            cache.reset_stats()
            s = cache.stats()
            assert (s["hits"], s["misses"], s["pipeline_runs"]) == (0, 0, 0)
            assert s["compile_seconds"] == 0.0
            assert s["entries"] == 1  # entries survive

            FeatGraphBackend("cpu")._kernel("gcn", adj, F)
            assert cache.stats() == {**cache.stats(), "hits": 1, "misses": 0}

    def test_clear_drops_everything(self):
        adj = _ring()
        with use_kernel_cache(KernelCache()) as cache:
            FeatGraphBackend("cpu")._kernel("gcn", adj, F)
            cache.clear()
            assert len(cache) == 0
            assert cache.stats()["entries"] == 0
            # next request recompiles
            FeatGraphBackend("cpu")._kernel("gcn", adj, F)
            assert cache.stats()["pipeline_runs"] == 1

    def test_hit_rate(self):
        cache = KernelCache()
        spec = KernelSpec(template="spmm", udf="u", aggregation="sum",
                          target="cpu", fds="f", graph="g", shapes=(),
                          options=())
        assert cache.stats()["hit_rate"] == 0.0
        cache.get(spec)          # miss
        cache.put(spec, "k")
        cache.get(spec)          # hit
        assert cache.stats()["hit_rate"] == pytest.approx(0.5)
        assert "entries=1" in repr(cache)
