"""Prebuilt kernel tests: every kernel the paper evaluates plus the DGL
builtin message functions."""

import numpy as np
import pytest

from repro.core import kernels
from repro.graph.sparse import from_edges


@pytest.fixture()
def g(edge_list_graph):
    adj, src, dst = edge_list_graph
    n = adj.shape[0]
    rng = np.random.default_rng(42)
    return dict(adj=adj, src=src, dst=dst, n=n, m=adj.nnz, rng=rng)


def _sum_ref(g, msgs):
    out = np.zeros((g["n"],) + msgs.shape[1:], dtype=np.float32)
    np.add.at(out, g["dst"], msgs)
    return out


class TestPaperKernels:
    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_gcn_aggregation(self, g, target):
        x = g["rng"].random((g["n"], 16)).astype(np.float32)
        k = kernels.gcn_aggregation(g["adj"], g["n"], 16, target=target)
        assert np.allclose(k.run({"XV": x}), _sum_ref(g, x[g["src"]]), atol=1e-4)

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_mlp_aggregation(self, g, target):
        d1, d2 = 8, 12
        x = g["rng"].standard_normal((g["n"], d1)).astype(np.float32)
        w = g["rng"].standard_normal((d1, d2)).astype(np.float32)
        k = kernels.mlp_aggregation(g["adj"], g["n"], d1, d2, target=target)
        msgs = np.maximum((x[g["src"]] + x[g["dst"]]) @ w, 0).astype(np.float32)
        ref = np.full((g["n"], d2), -np.inf, np.float32)
        np.maximum.at(ref, g["dst"], msgs)
        ref[np.bincount(g["dst"], minlength=g["n"]) == 0] = 0
        assert np.allclose(k.run({"XV": x, "W": w}), ref, atol=1e-3)

    @pytest.mark.parametrize("target", ["cpu", "gpu"])
    def test_dot_attention(self, g, target):
        x = g["rng"].random((g["n"], 16)).astype(np.float32)
        k = kernels.dot_attention(g["adj"], g["n"], 16, target=target)
        ref = (x[g["src"]] * x[g["dst"]]).sum(1)
        assert np.allclose(k.run({"XV": x})[:, 0], ref, atol=1e-4)

    def test_multihead_attention(self, g):
        x = g["rng"].random((g["n"], 4, 8)).astype(np.float32)
        k = kernels.multihead_dot_attention(g["adj"], g["n"], 4, 8)
        ref = np.einsum("ehk,ehk->eh", x[g["src"]], x[g["dst"]])
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_graphsage_mean(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        k = kernels.graphsage_aggregation(g["adj"], g["n"], 8, agg="mean")
        deg = np.bincount(g["dst"], minlength=g["n"]).reshape(-1, 1)
        ref = _sum_ref(g, x[g["src"]]) / np.maximum(deg, 1)
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-4)

    def test_graphsage_max(self, g):
        x = g["rng"].standard_normal((g["n"], 8)).astype(np.float32)
        k = kernels.graphsage_aggregation(g["adj"], g["n"], 8, agg="max")
        ref = np.full((g["n"], 8), -np.inf, np.float32)
        np.maximum.at(ref, g["dst"], x[g["src"]])
        ref[np.bincount(g["dst"], minlength=g["n"]) == 0] = 0
        assert np.allclose(k.run({"XV": x}), ref, atol=1e-5)

    def test_attention_weighted_aggregation(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        ew = g["rng"].random(g["m"]).astype(np.float32)
        k = kernels.attention_weighted_aggregation(g["adj"], g["n"], 8, g["m"])
        # EW is indexed by original edge id == position in (src, dst) arrays
        ref = _sum_ref(g, x[g["src"]] * ew[:, None])
        assert np.allclose(k.run({"XV": x, "EW": ew}), ref, atol=1e-4)


class TestDGLBuiltins:
    def test_copy_u(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        k = kernels.copy_u(g["adj"], g["n"], 8, agg="sum")
        assert np.allclose(k.run({"XV": x}), _sum_ref(g, x[g["src"]]), atol=1e-4)

    def test_copy_e(self, g):
        xe = g["rng"].random((g["m"], 8)).astype(np.float32)
        k = kernels.copy_e(g["adj"], g["m"], 8)
        assert np.allclose(k.run({"XE": xe}), _sum_ref(g, xe), atol=1e-4)

    def test_u_add_v(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        k = kernels.u_add_v(g["adj"], g["n"], 8)
        assert np.allclose(k.run({"XV": x}),
                           _sum_ref(g, x[g["src"]] + x[g["dst"]]), atol=1e-4)

    def test_u_sub_v(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        k = kernels.u_sub_v(g["adj"], g["n"], 8)
        assert np.allclose(k.run({"XV": x}),
                           _sum_ref(g, x[g["src"]] - x[g["dst"]]), atol=1e-4)

    def test_u_mul_v(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        k = kernels.u_mul_v(g["adj"], g["n"], 8)
        assert np.allclose(k.run({"XV": x}),
                           _sum_ref(g, x[g["src"]] * x[g["dst"]]), atol=1e-4)

    def test_u_mul_e(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        xe = g["rng"].random((g["m"], 8)).astype(np.float32)
        k = kernels.u_mul_e(g["adj"], g["n"], g["m"], 8)
        assert np.allclose(k.run({"XV": x, "XE": xe}),
                           _sum_ref(g, x[g["src"]] * xe), atol=1e-4)

    def test_e_div_sum(self, g):
        es = g["rng"].random(g["m"]).astype(np.float32)
        k = kernels.e_div_sum(g["adj"], g["m"])
        ref = np.zeros(g["n"], np.float32)
        np.add.at(ref, g["dst"], es)
        assert np.allclose(k.run({"ES": es})[:, 0], ref, atol=1e-4)


class TestExtendedKernels:
    def test_gcn_norm_aggregation(self, g):
        x = g["rng"].random((g["n"], 8)).astype(np.float32)
        deg = np.bincount(g["dst"], minlength=g["n"])
        cn = (1.0 / np.sqrt(np.maximum(deg, 1))).astype(np.float32)
        k = kernels.gcn_norm_aggregation(g["adj"], g["n"], 8)
        out = k.run({"XV": x, "CN": cn})
        msgs = x[g["src"]] * cn[g["src"]][:, None] * cn[g["dst"]][:, None]
        assert np.allclose(out, _sum_ref(g, msgs), atol=1e-4)

    def test_rgcn_aggregation(self, g):
        R, d1, d2 = 4, 6, 10
        x = g["rng"].standard_normal((g["n"], d1)).astype(np.float32)
        w = g["rng"].standard_normal((R, d1, d2)).astype(np.float32)
        rel = g["rng"].integers(0, R, g["m"])
        k = kernels.rgcn_aggregation(g["adj"], g["n"], g["m"], R, d1, d2)
        out = k.run({"XV": x, "W": w, "REL": rel})
        msgs = np.einsum("ek,eki->ei", x[g["src"]], w[rel])
        assert np.allclose(out, _sum_ref(g, msgs), atol=1e-3)

    def test_rgcn_single_relation_equals_dense_transform(self, g):
        d1, d2 = 5, 7
        x = g["rng"].standard_normal((g["n"], d1)).astype(np.float32)
        w = g["rng"].standard_normal((1, d1, d2)).astype(np.float32)
        rel = np.zeros(g["m"], dtype=np.int64)
        k = kernels.rgcn_aggregation(g["adj"], g["n"], g["m"], 1, d1, d2)
        out = k.run({"XV": x, "W": w, "REL": rel})
        ref = _sum_ref(g, (x @ w[0])[g["src"]])
        assert np.allclose(out, ref, atol=1e-3)

    def test_rgcn_gpu_target(self, g):
        R, d1, d2 = 2, 4, 6
        x = g["rng"].random((g["n"], d1)).astype(np.float32)
        w = g["rng"].random((R, d1, d2)).astype(np.float32)
        rel = g["rng"].integers(0, R, g["m"])
        cpu = kernels.rgcn_aggregation(g["adj"], g["n"], g["m"], R, d1, d2)
        gpu = kernels.rgcn_aggregation(g["adj"], g["n"], g["m"], R, d1, d2,
                                       target="gpu")
        b = {"XV": x, "W": w, "REL": rel}
        assert np.allclose(cpu.run(b), gpu.run(b), atol=1e-4)


class TestKernelProperties:
    def test_mlp_udf_flops_scale_with_dims(self, g):
        k_small = kernels.mlp_aggregation(g["adj"], g["n"], 8, 16)
        k_big = kernels.mlp_aggregation(g["adj"], g["n"], 8, 64)
        assert k_big.udf_flops > k_small.udf_flops
        assert k_small.udf_flops > 0

    def test_gcn_cpu_default_fds_tiles(self, g):
        k = kernels.gcn_aggregation(g["adj"], g["n"], 128, target="cpu")
        assert k.num_feature_partitions == 4  # 128 / default tile 32

    def test_gpu_default_fds_binds_threads(self, g):
        k = kernels.gcn_aggregation(g["adj"], g["n"], 64, target="gpu")
        assert "thread.x" in k.fds_info.bindings

    def test_attention_gpu_uses_tree_reduce(self, g):
        k = kernels.dot_attention(g["adj"], g["n"], 64, target="gpu")
        assert k.tree_reduce
