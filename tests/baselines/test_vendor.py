"""Vendor-library stand-ins (MKL / cuSPARSE) and Table I kernel coverage."""

import numpy as np
import pytest

from repro.baselines import (
    CuSparseBackend,
    GunrockBackend,
    LigraBackend,
    MKLBackend,
    UnsupportedKernel,
)
from repro.baselines.common import KERNELS
from repro.core.backend import FeatGraphBackend


class TestVendorSpMM:
    @pytest.mark.parametrize("backend_cls", [MKLBackend, CuSparseBackend])
    def test_gcn_correct(self, backend_cls, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(0).random((adj.shape[0], 16)).astype(np.float32)
        out = backend_cls().gcn_aggregation(adj, x)
        ref = np.zeros_like(out)
        np.add.at(ref, dst, x[src])
        assert np.allclose(out, ref, atol=1e-3)

    @pytest.mark.parametrize("backend_cls", [MKLBackend, CuSparseBackend])
    def test_generalized_kernels_unsupported(self, backend_cls, edge_list_graph):
        """Sec. V-B: 'MKL does not support MLP aggregation and dot-product
        attention' (same for cuSPARSE)."""
        adj, *_ = edge_list_graph
        b = backend_cls()
        x = np.zeros((adj.shape[0], 8), np.float32)
        with pytest.raises(UnsupportedKernel):
            b.mlp_aggregation(adj, x, np.zeros((8, 4), np.float32))
        with pytest.raises(UnsupportedKernel):
            b.dot_attention(adj, x)
        with pytest.raises(UnsupportedKernel):
            b.cost("dot_attention", None, 32)


class TestTable1Coverage:
    """The paper's Table I flexibility/efficiency matrix."""

    def test_kernel_coverage_matrix(self):
        coverage = {
            "Ligra": LigraBackend().supported,
            "Gunrock": GunrockBackend().supported,
            "MKL": MKLBackend().supported,
            "cuSPARSE": CuSparseBackend().supported,
            "FeatGraph-CPU": FeatGraphBackend("cpu").supported,
            "FeatGraph-GPU": FeatGraphBackend("gpu").supported,
        }
        # graph frameworks and FeatGraph are flexible; vendor libraries not
        for flexible in ("Ligra", "Gunrock", "FeatGraph-CPU", "FeatGraph-GPU"):
            assert coverage[flexible] == frozenset(KERNELS)
        for vendor in ("MKL", "cuSPARSE"):
            assert coverage[vendor] == frozenset({"gcn_aggregation"})

    def test_platforms(self):
        assert LigraBackend().platform == "cpu"
        assert MKLBackend().platform == "cpu"
        assert GunrockBackend().platform == "gpu"
        assert CuSparseBackend().platform == "gpu"

    def test_featgraph_efficient_and_flexible(self):
        """Table I's FeatGraph row: high flexibility AND efficiency --
        supports everything and (modeled) beats the flexible baselines."""
        from repro.graph.datasets import paper_stats
        st = paper_stats("reddit")
        fg_cpu = FeatGraphBackend("cpu")
        fg_gpu = FeatGraphBackend("gpu")
        for kernel in KERNELS:
            assert (fg_cpu.cost(kernel, st, 256).seconds
                    < LigraBackend().cost(kernel, st, 256).seconds)
            assert (fg_gpu.cost(kernel, st, 256).seconds
                    < GunrockBackend().cost(kernel, st, 256).seconds)


class TestAllBackendsAgree:
    """Every backend that supports a kernel computes the same function."""

    def test_gcn_agreement(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(1).random((adj.shape[0], 12)).astype(np.float32)
        outputs = {}
        for b in (LigraBackend(), GunrockBackend(), MKLBackend(),
                  CuSparseBackend(), FeatGraphBackend("cpu"),
                  FeatGraphBackend("gpu")):
            outputs[b.name] = b.gcn_aggregation(adj, x)
        ref = outputs["FeatGraph-CPU"]
        for name, out in outputs.items():
            assert np.allclose(out, ref, atol=1e-2), name

    def test_attention_agreement(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(2).random((adj.shape[0], 12)).astype(np.float32)
        outs = [b.dot_attention(adj, x) for b in
                (LigraBackend(), GunrockBackend(), FeatGraphBackend("cpu"))]
        assert np.allclose(outs[0], outs[1], atol=1e-3)
        assert np.allclose(outs[0], outs[2], atol=1e-3)

    def test_mlp_agreement(self, edge_list_graph):
        adj, *_ = edge_list_graph
        rng = np.random.default_rng(3)
        x = rng.standard_normal((adj.shape[0], 8)).astype(np.float32)
        w = rng.standard_normal((8, 10)).astype(np.float32)
        outs = [b.mlp_aggregation(adj, x, w) for b in
                (LigraBackend(), GunrockBackend(), FeatGraphBackend("cpu"),
                 FeatGraphBackend("gpu"))]
        for o in outs[1:]:
            assert np.allclose(outs[0], o, atol=1e-3)
