"""Ligra framework tests: the programming model itself (edge_map /
vertex_map / direction switching), classic algorithms, and the GNN kernels."""

import numpy as np
import pytest

from repro.baselines.ligra import (
    Frontier,
    LigraBackend,
    LigraGraph,
    bfs,
    edge_map,
    pagerank,
    vertex_map,
)
from repro.graph.sparse import from_edges


def _chain_graph(n=10):
    """0 -> 1 -> 2 -> ... -> n-1"""
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return from_edges(n, n, src, dst)


def _random(n=50, m=600, seed=0):
    r = np.random.default_rng(seed)
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m)), r


class TestFrontier:
    def test_sparse_dense_round_trip(self):
        fr = Frontier(10, ids=np.array([1, 5]))
        assert fr.dense()[1] and fr.dense()[5] and fr.dense().sum() == 2
        fd = Frontier(10, dense=fr.dense())
        assert set(fd.ids()) == {1, 5}

    def test_all_and_empty(self):
        assert len(Frontier.all(7)) == 7
        assert len(Frontier.empty(7)) == 0

    def test_exactly_one_representation(self):
        with pytest.raises(ValueError):
            Frontier(4)
        with pytest.raises(ValueError):
            Frontier(4, ids=np.array([0]), dense=np.zeros(4, bool))


class TestVertexMap:
    def test_filters_by_predicate(self):
        fr = Frontier(10, ids=np.arange(10))
        out = vertex_map(fr, lambda ids: ids % 2 == 0)
        assert set(out.ids()) == {0, 2, 4, 6, 8}

    def test_empty_input(self):
        out = vertex_map(Frontier.empty(5), lambda ids: ids >= 0)
        assert len(out) == 0

    def test_shape_mismatch_rejected(self):
        fr = Frontier(5, ids=np.array([0, 1]))
        with pytest.raises(ValueError):
            vertex_map(fr, lambda ids: np.array([True]))


class TestEdgeMap:
    def test_push_pull_equivalent(self):
        adj, r = _random(seed=1)
        g = LigraGraph(adj)
        seen_push = np.zeros(g.n, bool)
        seen_pull = np.zeros(g.n, bool)
        frontier = Frontier(g.n, ids=np.arange(0, g.n, 3))

        def mk(seen):
            def update(src, dst, eid):
                seen[dst] = True
                return np.ones(len(dst), bool)
            return update

        # force push (huge threshold denominator => small work bound fails)
        out_push = edge_map(g, frontier, mk(seen_push), threshold_den=1)
        out_pull = edge_map(g, frontier, mk(seen_pull), threshold_den=10**9)
        assert np.array_equal(seen_push, seen_pull)
        assert set(out_push.ids()) == set(out_pull.ids())

    def test_cond_filters_destinations(self):
        adj, _ = _random(seed=2)
        g = LigraGraph(adj)
        touched = np.zeros(g.n, bool)

        def update(src, dst, eid):
            touched[dst] = True
            return np.ones(len(dst), bool)

        edge_map(g, Frontier.all(g.n), update, cond=lambda d: d < 10)
        assert not touched[10:].any()

    def test_empty_frontier(self):
        adj, _ = _random(seed=3)
        g = LigraGraph(adj)
        out = edge_map(g, Frontier.empty(g.n), lambda s, d, e: np.ones(len(d), bool))
        assert len(out) == 0


class TestClassicAlgorithms:
    def test_bfs_on_chain(self):
        g = LigraGraph(_chain_graph(8))
        dist = bfs(g, 0)
        assert np.array_equal(dist, np.arange(8))

    def test_bfs_unreachable(self):
        g = LigraGraph(_chain_graph(8))
        dist = bfs(g, 4)
        assert np.all(dist[:4] == -1)
        assert np.array_equal(dist[4:], np.arange(4))

    def test_bfs_matches_networkx(self):
        import networkx as nx
        adj, r = _random(n=40, m=200, seed=4)
        g = LigraGraph(adj)
        dist = bfs(g, 0)
        G = nx.DiGraph()
        G.add_nodes_from(range(40))
        G.add_edges_from(zip(adj.indices.tolist(), adj.row_of_edge().tolist()))
        ref = nx.single_source_shortest_path_length(G, 0)
        for v in range(40):
            assert dist[v] == ref.get(v, -1)

    def test_pagerank_sums_to_one(self):
        adj, _ = _random(seed=5)
        pr = pagerank(LigraGraph(adj), iters=10)
        assert pr.sum() == pytest.approx(1.0, abs=0.05)
        assert np.all(pr > 0)

    def test_pagerank_prefers_high_in_degree(self):
        # everything points to vertex 0
        n = 20
        src = np.arange(1, n)
        dst = np.zeros(n - 1, dtype=np.int64)
        g = LigraGraph(from_edges(n, n, src, dst))
        pr = pagerank(g, iters=20)
        assert pr[0] == pr.max()


class TestLigraGNNKernels:
    def test_gcn(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(6).random((adj.shape[0], 8)).astype(np.float32)
        out = LigraBackend().gcn_aggregation(adj, x)
        ref = np.zeros_like(out)
        np.add.at(ref, dst, x[src])
        assert np.allclose(out, ref, atol=1e-4)

    def test_mlp(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        n = adj.shape[0]
        rng = np.random.default_rng(7)
        x = rng.standard_normal((n, 8)).astype(np.float32)
        w = rng.standard_normal((8, 6)).astype(np.float32)
        out = LigraBackend().mlp_aggregation(adj, x, w)
        msgs = np.maximum((x[src] + x[dst]) @ w, 0).astype(np.float32)
        ref = np.full((n, 6), -np.inf, np.float32)
        np.maximum.at(ref, dst, msgs)
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(out, ref, atol=1e-4)

    def test_attention(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(8).random((adj.shape[0], 8)).astype(np.float32)
        out = LigraBackend().dot_attention(adj, x)
        assert np.allclose(out, (x[src] * x[dst]).sum(1), atol=1e-4)

    def test_cost_uses_ligra_frame(self):
        from repro.graph.datasets import paper_stats
        st = paper_stats("reddit")
        b = LigraBackend()
        rep = b.cost("gcn_aggregation", st, 128)
        assert rep.seconds > 0
        assert rep.detail["graph_partitions"] == 1  # Ligra never partitions
