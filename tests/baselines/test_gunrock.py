"""Gunrock framework tests: load balancing, advance, BFS, GNN kernels."""

import numpy as np
import pytest

from repro.baselines.gunrock import (
    GunrockBackend,
    GunrockFrontier,
    LoadBalanceBuckets,
    THREAD_MAX_DEGREE,
    WARP_MAX_DEGREE,
    advance,
    bfs,
    load_balance,
)
from repro.graph.sparse import from_edges


def _skewed_graph(seed=0):
    """A graph with low-, mid-, and high-degree vertices (source-major)."""
    r = np.random.default_rng(seed)
    src = np.concatenate([
        np.repeat(0, 500),             # block bucket
        np.repeat(1, 100),             # warp bucket
        r.integers(2, 50, 300),        # thread bucket
    ])
    dst = r.integers(0, 50, len(src))
    return from_edges(50, 50, dst, src)  # rows = sources for advance


class TestLoadBalance:
    def test_bucket_thresholds(self):
        csr = _skewed_graph()
        buckets = load_balance(csr, GunrockFrontier.all(50))
        deg = csr.row_degrees()
        assert np.all(deg[buckets.thread] <= THREAD_MAX_DEGREE)
        assert np.all((deg[buckets.warp] > THREAD_MAX_DEGREE)
                      & (deg[buckets.warp] <= WARP_MAX_DEGREE))
        assert np.all(deg[buckets.block] > WARP_MAX_DEGREE)

    def test_buckets_partition_frontier(self):
        csr = _skewed_graph()
        buckets = load_balance(csr, GunrockFrontier.all(50))
        assert sum(buckets.sizes()) == 50

    def test_known_graph_bucket_counts(self):
        csr = _skewed_graph()
        buckets = load_balance(csr, GunrockFrontier.all(50))
        assert 0 in buckets.block
        assert 1 in buckets.warp


class TestAdvance:
    def test_visits_every_frontier_edge(self):
        csr = _skewed_graph(seed=1)
        count = [0]

        def apply_edge(src, dst, eid):
            count[0] += len(src)
            return None

        advance(csr, GunrockFrontier.all(50), apply_edge, output_frontier=False)
        assert count[0] == csr.nnz

    def test_partial_frontier(self):
        csr = _skewed_graph(seed=2)
        seen_src = set()

        def apply_edge(src, dst, eid):
            seen_src.update(src.tolist())
            return None

        advance(csr, GunrockFrontier(np.array([0, 1])), apply_edge,
                output_frontier=False)
        assert seen_src <= {0, 1}

    def test_output_frontier_filtered_by_mask(self):
        csr = _skewed_graph(seed=3)

        def apply_edge(src, dst, eid):
            return dst < 5

        out = advance(csr, GunrockFrontier.all(50), apply_edge)
        assert np.all(out.ids < 5)

    def test_empty_frontier(self):
        csr = _skewed_graph(seed=4)
        out = advance(csr, GunrockFrontier(np.empty(0, dtype=np.int64)),
                      lambda s, d, e: np.ones(len(d), bool))
        assert len(out) == 0


class TestBFS:
    def test_matches_ligra_bfs(self):
        from repro.baselines.ligra import LigraGraph, bfs as ligra_bfs
        r = np.random.default_rng(5)
        adj = from_edges(40, 40, r.integers(0, 40, 300), r.integers(0, 40, 300))
        d_gunrock = bfs(adj.transpose(), 0)
        d_ligra = ligra_bfs(LigraGraph(adj), 0)
        assert np.array_equal(d_gunrock, d_ligra)


class TestGunrockGNNKernels:
    def test_gcn(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(6).random((adj.shape[0], 8)).astype(np.float32)
        out = GunrockBackend().gcn_aggregation(adj, x)
        ref = np.zeros_like(out)
        np.add.at(ref, dst, x[src])
        assert np.allclose(out, ref, atol=1e-4)

    def test_mlp(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        n = adj.shape[0]
        rng = np.random.default_rng(7)
        x = rng.standard_normal((n, 8)).astype(np.float32)
        w = rng.standard_normal((8, 6)).astype(np.float32)
        out = GunrockBackend().mlp_aggregation(adj, x, w)
        msgs = np.maximum((x[src] + x[dst]) @ w, 0).astype(np.float32)
        ref = np.full((n, 6), -np.inf, np.float32)
        np.maximum.at(ref, dst, msgs)
        ref[np.bincount(dst, minlength=n) == 0] = 0
        assert np.allclose(out, ref, atol=1e-4)

    def test_attention(self, edge_list_graph):
        adj, src, dst = edge_list_graph
        x = np.random.default_rng(8).random((adj.shape[0], 8)).astype(np.float32)
        out = GunrockBackend().dot_attention(adj, x)
        assert np.allclose(out, (x[src] * x[dst]).sum(1), atol=1e-4)

    def test_cost_reflects_atomics(self):
        """Gunrock's modeled GCN time must dwarf its attention time at equal
        f (atomics vs no atomics) on a skewed graph."""
        from repro.graph.datasets import paper_stats
        st = paper_stats("reddit")
        b = GunrockBackend()
        gcn = b.cost("gcn_aggregation", st, 256)
        attn = b.cost("dot_attention", st, 256)
        assert gcn.seconds > 3 * attn.seconds
