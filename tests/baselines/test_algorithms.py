"""Classic graph algorithms on the baseline frameworks, vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.algorithms import connected_components, k_core, triangle_count
from repro.baselines.ligra import LigraGraph
from repro.graph.sparse import from_edges


def _random(n=60, m=200, seed=0):
    r = np.random.default_rng(seed)
    src = r.integers(0, n, m)
    dst = r.integers(0, n, m)
    return from_edges(n, n, src, dst), src, dst


def _nx_undirected(adj):
    G = nx.Graph()
    G.add_nodes_from(range(adj.shape[0]))
    G.add_edges_from(zip(adj.indices.tolist(), adj.row_of_edge().tolist()))
    G.remove_edges_from(nx.selfloop_edges(G))
    return G


class TestConnectedComponents:
    def test_matches_networkx(self):
        adj, *_ = _random(seed=1)
        labels = connected_components(LigraGraph(adj))
        G = _nx_undirected(adj)
        for comp in nx.connected_components(G):
            comp = sorted(comp)
            assert len(set(labels[comp])) == 1

    def test_distinct_components_get_distinct_labels(self):
        # two disjoint triangles
        src = np.array([0, 1, 2, 3, 4, 5])
        dst = np.array([1, 2, 0, 4, 5, 3])
        adj = from_edges(6, 6, src, dst)
        labels = connected_components(LigraGraph(adj))
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_isolated_vertices_keep_own_label(self):
        adj = from_edges(5, 5, np.array([0]), np.array([1]))
        labels = connected_components(LigraGraph(adj))
        assert labels[2] == 2 and labels[3] == 3 and labels[4] == 4

    def test_labels_are_component_minima(self):
        adj, *_ = _random(seed=2)
        labels = connected_components(LigraGraph(adj))
        G = _nx_undirected(adj)
        for comp in nx.connected_components(G):
            assert labels[min(comp)] == min(comp)


class TestKCore:
    def test_matches_networkx(self):
        adj, *_ = _random(n=40, m=300, seed=3)
        G = _nx_undirected(adj)
        # networkx k_core uses simple-graph degrees; our peeling counts
        # parallel edges, so compare on the deduplicated graph
        simple = from_edges(
            40, 40,
            np.array([u for u, v in G.edges] + [v for u, v in G.edges]),
            np.array([v for u, v in G.edges] + [u for u, v in G.edges]),
        )
        for k in (2, 3, 4):
            ours = set(k_core(simple, k).tolist())
            theirs = set(nx.k_core(G, k).nodes)
            assert ours == theirs, k

    def test_k_zero_keeps_everything(self):
        adj, *_ = _random(seed=4)
        assert len(k_core(adj, 0)) == adj.shape[0]

    def test_huge_k_empties(self):
        adj, *_ = _random(seed=5)
        assert len(k_core(adj, 10_000)) == 0

    def test_negative_k_rejected(self):
        adj, *_ = _random()
        with pytest.raises(ValueError):
            k_core(adj, -1)


class TestTriangleCount:
    def test_matches_networkx(self):
        adj, *_ = _random(n=30, m=300, seed=6)
        ours = triangle_count(adj)
        G = _nx_undirected(adj)
        theirs = sum(nx.triangles(G).values()) // 3
        assert ours == theirs

    def test_known_small_graphs(self):
        # one triangle
        adj = from_edges(3, 3, np.array([0, 1, 2]), np.array([1, 2, 0]))
        assert triangle_count(adj) == 1
        # a square has none
        adj = from_edges(4, 4, np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]))
        assert triangle_count(adj) == 0

    def test_parallel_edges_and_self_loops_ignored(self):
        src = np.array([0, 0, 1, 2, 2, 1])
        dst = np.array([1, 1, 2, 0, 2, 0])
        adj = from_edges(3, 3, src, dst)
        assert triangle_count(adj) == 1

    def test_complete_graph(self):
        n = 7
        src, dst = [], []
        for i in range(n):
            for j in range(i + 1, n):
                src.append(i)
                dst.append(j)
        adj = from_edges(n, n, np.array(src), np.array(dst))
        assert triangle_count(adj) == n * (n - 1) * (n - 2) // 6
