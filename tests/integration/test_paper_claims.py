"""The paper's headline quantitative claims, checked against the machine
models at paper scale.  These are the statements a reader would quote:

- abstract: "speeds up end-to-end GNN training and inference by up to 32x on
  CPU and 7x on GPU";
- Sec. V-B: kernel speedup bands vs Ligra / MKL / Gunrock / cuSPARSE;
- Sec. V-C/V-D: ablation and sensitivity directions.
"""

import pytest

from repro.baselines import (
    CuSparseBackend,
    GunrockBackend,
    LigraBackend,
    MKLBackend,
)
from repro.core.backend import FeatGraphBackend
from repro.graph.datasets import paper_stats
from repro.minidgl import perfmodel

DATASETS = ("ogbn-proteins", "reddit", "rand-100K")
FEATURES = (32, 64, 128, 256, 512)


@pytest.fixture(scope="module")
def stats():
    return {name: paper_stats(name) for name in DATASETS}


class TestKernelSpeedupBands:
    def test_gcn_vs_ligra_band(self, stats):
        """Paper: 1.4x-4.0x over Ligra on GCN aggregation (we accept a
        factor-2 margin either side of the band)."""
        fg, lig = FeatGraphBackend("cpu"), LigraBackend()
        for name in DATASETS:
            for f in FEATURES:
                ratio = (lig.cost("gcn_aggregation", stats[name], f).seconds
                         / fg.cost("gcn_aggregation", stats[name], f).seconds)
                assert 1.0 < ratio < 8.0, (name, f, ratio)

    def test_mlp_vs_ligra_band(self, stats):
        """Paper: 4.4x-5.5x over Ligra on MLP aggregation."""
        fg, lig = FeatGraphBackend("cpu"), LigraBackend()
        for name in DATASETS:
            for f in (32, 512):
                ratio = (lig.cost("mlp_aggregation", stats[name], f).seconds
                         / fg.cost("mlp_aggregation", stats[name], f).seconds)
                assert 2.5 < ratio < 11.0, (name, f, ratio)

    def test_attention_vs_ligra_band(self, stats):
        """Paper: 4.3x-6.0x over Ligra on dot-product attention."""
        fg, lig = FeatGraphBackend("cpu"), LigraBackend()
        for name in DATASETS:
            for f in (32, 512):
                ratio = (lig.cost("dot_attention", stats[name], f).seconds
                         / fg.cost("dot_attention", stats[name], f).seconds)
                assert 1.5 < ratio < 12.0, (name, f, ratio)

    def test_gcn_vs_gunrock_band_gpu(self, stats):
        """Paper: 24x-206x over Gunrock on GCN aggregation."""
        fg, gr = FeatGraphBackend("gpu"), GunrockBackend()
        for name in DATASETS:
            for f in (32, 512):
                ratio = (gr.cost("gcn_aggregation", stats[name], f).seconds
                         / fg.cost("gcn_aggregation", stats[name], f).seconds)
                assert 10 < ratio < 500, (name, f, ratio)

    def test_attention_vs_gunrock_modest(self, stats):
        """Paper: only 1.2x-3.1x on attention (no atomics in Gunrock there)."""
        fg, gr = FeatGraphBackend("gpu"), GunrockBackend()
        for name in DATASETS:
            for f in (32, 512):
                ratio = (gr.cost("dot_attention", stats[name], f).seconds
                         / fg.cost("dot_attention", stats[name], f).seconds)
                assert 0.8 < ratio < 5.0, (name, f, ratio)

    def test_on_par_with_vendor_libraries(self, stats):
        """Paper: competitive with MKL/cuSPARSE on vanilla SpMM (within
        ~3x everywhere, winning at large f on CPU)."""
        fg_cpu, mkl = FeatGraphBackend("cpu"), MKLBackend()
        fg_gpu, cus = FeatGraphBackend("gpu"), CuSparseBackend()
        for name in DATASETS:
            for f in (32, 512):
                r_cpu = (mkl.cost("gcn_aggregation", stats[name], f).seconds
                         / fg_cpu.cost("gcn_aggregation", stats[name], f).seconds)
                r_gpu = (cus.cost("gcn_aggregation", stats[name], f).seconds
                         / fg_gpu.cost("gcn_aggregation", stats[name], f).seconds)
                assert 0.5 < r_cpu < 5.0, (name, f)
                assert 0.5 < r_gpu < 2.0, (name, f)
            # FeatGraph wins on CPU at f=512 (feature tiling pays off)
            assert (mkl.cost("gcn_aggregation", stats[name], 512).seconds
                    > fg_cpu.cost("gcn_aggregation", stats[name], 512).seconds)


class TestEndToEndClaims:
    def test_abstract_headline_numbers(self, stats):
        """'up to 32x on CPU and 7x on GPU' -- our maxima must land in a
        comparable band (>= 15x CPU, >= 2x GPU)."""
        best_cpu, best_gpu = 0.0, 0.0
        for model in ("GCN", "GraphSage", "GAT"):
            for training in (True, False):
                w = perfmodel.epoch_cost(model, stats["reddit"], 602, 41,
                                         backend="featgraph", platform="cpu",
                                         training=training)
                wo = perfmodel.epoch_cost(model, stats["reddit"], 602, 41,
                                          backend="minigun", platform="cpu",
                                          training=training)
                best_cpu = max(best_cpu, wo / w)
                try:
                    wog = perfmodel.epoch_cost(model, stats["reddit"], 602, 41,
                                               backend="minigun", platform="gpu",
                                               training=training)
                    wg = perfmodel.epoch_cost(model, stats["reddit"], 602, 41,
                                              backend="featgraph", platform="gpu",
                                              training=training)
                    best_gpu = max(best_gpu, wog / wg)
                except perfmodel.OOM:
                    pass
        assert best_cpu >= 15
        assert best_gpu >= 2

    def test_sparsity_trend_table5(self):
        """Table V: FeatGraph's edge over MKL grows as the graph densifies."""
        from repro.hwsim import cpu
        from repro.hwsim.spec import XEON_8124M

        ratios = []
        for density in (0.0005, 0.005, 0.05):
            st = paper_stats(f"uniform-{density}")
            mkl = cpu.spmm_time(XEON_8124M, st, 128, frame=cpu.MKL_CPU)
            nf = 4
            ws = st.n_src * (128 // nf) * 4
            np_parts = max(1, round(ws / (2 * 1024 * 1024)))
            fg = cpu.spmm_time(XEON_8124M, st, 128, frame=cpu.FEATGRAPH_CPU,
                               num_graph_partitions=np_parts,
                               num_feature_partitions=nf)
            ratios.append(mkl.seconds / fg.seconds)
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 1.5
