"""End-to-end integration: the Sec. V-E accuracy-parity experiment at test
scale.  FeatGraph is a backend swap -- it must not change model semantics."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GAT, GCN, GraphSage
from repro.minidgl.train import inference, train_model


@pytest.fixture(scope="module")
def dataset():
    return planted_partition(n=350, num_classes=4, feature_dim=16,
                             avg_degree=10, seed=7)


class TestAccuracyParity:
    @pytest.mark.parametrize("model_cls,kw", [
        (GCN, {}),
        (GraphSage, {}),
        (GAT, {"num_heads": 2}),
    ])
    def test_backends_reach_same_accuracy(self, dataset, model_cls, kw):
        """Training with either backend gives the same test accuracy, as the
        paper reports for GCN (93.7%) and GraphSage (93.1%) on reddit."""
        results = {}
        for backend_name in ("minigun", "featgraph"):
            model = model_cls(16, 4, hidden=16, dropout=0.0, seed=3, **kw)
            res = train_model(model, dataset, get_backend(backend_name),
                              epochs=30, lr=0.02)
            results[backend_name] = res.test_accuracy
        assert results["minigun"] == pytest.approx(results["featgraph"],
                                                   abs=0.02)
        assert results["featgraph"] > 0.6

    def test_logits_bitwise_close_across_backends(self, dataset):
        """Same weights, either backend: identical predictions."""
        model = GCN(16, 4, hidden=16, dropout=0.0, seed=5)
        logits_mg, _ = inference(model, dataset, get_backend("minigun"))
        logits_fg, _ = inference(model, dataset, get_backend("featgraph"))
        assert np.allclose(logits_mg, logits_fg, atol=1e-3)

    def test_gradient_parity_after_epochs(self, dataset):
        """Weights stay in lockstep when trained identically on the two
        backends (no dropout, same seed)."""
        from repro.minidgl.autograd import Tensor
        from repro.minidgl.graph import Graph
        from repro.minidgl.optim import Adam
        from repro.minidgl.train import cross_entropy

        models = {}
        for name in ("minigun", "featgraph"):
            model = GCN(16, 4, hidden=8, dropout=0.0, seed=9)
            backend = get_backend(name)
            g = Graph(dataset.adj)
            x = Tensor(dataset.features)
            opt = Adam(model.parameters(), lr=0.01)
            for _ in range(3):
                opt.zero_grad()
                loss = cross_entropy(model(g, x, backend), dataset.labels,
                                     dataset.train_mask)
                loss.backward()
                opt.step()
            models[name] = model
        for pa, pb in zip(models["minigun"].parameters(),
                          models["featgraph"].parameters()):
            assert np.allclose(pa.data, pb.data, atol=1e-3)


class TestEndToEndSpeedMechanism:
    def test_featgraph_avoids_materialization_end_to_end(self, dataset):
        """After a full training run, the Minigun backend has materialized
        per-edge tensors; the FeatGraph backend none (the Table VI memory
        mechanism)."""
        mg = get_backend("minigun")
        fg = get_backend("featgraph")
        for backend in (mg, fg):
            model = GAT(16, 4, hidden=8, num_heads=2, dropout=0.0, seed=1)
            train_model(model, dataset, backend, epochs=2)
        assert mg.materialized_bytes > 0
        assert fg.materialized_bytes == 0
