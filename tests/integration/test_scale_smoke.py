"""Scale smoke tests: the full pipeline on the largest graphs the test
suite touches (1/256-scale paper datasets, hundreds of thousands of edges).

These guard against quadratic blowups and memory surprises in the template
execution paths that the small unit tests cannot see."""

import numpy as np
import pytest

from repro.bench.timing import measure
from repro.core import kernels
from repro.core.backend import FeatGraphBackend
from repro.graph.datasets import load


@pytest.fixture(scope="module")
def reddit_scaled():
    return load("reddit", scale=1 / 256)


class TestScaleSmoke:
    def test_dataset_size(self, reddit_scaled):
        assert reddit_scaled.num_edges > 200_000

    def test_gcn_kernel_throughput(self, reddit_scaled):
        ds = reddit_scaled
        x = np.random.default_rng(0).random((ds.num_vertices, 64),
                                            dtype=np.float32)
        k = kernels.gcn_aggregation(ds.adj, ds.num_vertices, 64)
        m = measure(lambda: k.run({"XV": x}), runs=2, warmup=1)
        # > 3M edge-features/ms would be absurdly slow for vectorized numpy;
        # this is a regression tripwire, not a performance claim
        rate = ds.num_edges * 64 / m.mean_seconds
        assert rate > 3e7, f"{rate:.2e} edge-elements/s"

    def test_all_three_kernels_run_and_agree_with_ligra(self, reddit_scaled):
        from repro.baselines import LigraBackend

        ds = reddit_scaled
        rng = np.random.default_rng(1)
        fg = FeatGraphBackend("cpu")
        lig = LigraBackend()
        x = rng.random((ds.num_vertices, 32), dtype=np.float32)
        assert np.allclose(fg.gcn_aggregation(ds.adj, x),
                           lig.gcn_aggregation(ds.adj, x), atol=1e-2)
        scores_fg = fg.dot_attention(ds.adj, x)
        scores_lig = lig.dot_attention(ds.adj, x)
        assert np.allclose(scores_fg, scores_lig, atol=1e-2)

    def test_partitioned_execution_at_scale(self, reddit_scaled):
        ds = reddit_scaled
        x = np.random.default_rng(2).random((ds.num_vertices, 32),
                                            dtype=np.float32)
        k_base = kernels.gcn_aggregation(ds.adj, ds.num_vertices, 32,
                                         num_graph_partitions=1,
                                         num_feature_partitions=1)
        k_part = kernels.gcn_aggregation(ds.adj, ds.num_vertices, 32,
                                         num_graph_partitions=8,
                                         num_feature_partitions=4)
        assert np.allclose(k_base.run({"XV": x}), k_part.run({"XV": x}),
                           atol=1e-2)

    def test_memory_stays_bounded(self, reddit_scaled):
        """Chunked execution must not materialize an (m, f) message tensor."""
        import tracemalloc

        ds = reddit_scaled
        f = 64
        x = np.random.default_rng(3).random((ds.num_vertices, f),
                                            dtype=np.float32)
        k = kernels.gcn_aggregation(ds.adj, ds.num_vertices, f,
                                    chunk_edges=1 << 15)
        k.run({"XV": x})  # warm caches/partitions
        tracemalloc.start()
        k.run({"XV": x})
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        full_messages = ds.num_edges * f * 4
        assert peak < 0.6 * full_messages, (
            f"peak {peak / 1e6:.1f} MB vs materialized "
            f"{full_messages / 1e6:.1f} MB")
