"""Documentation consistency: the docs must track the artifacts.

These meta-tests keep README / DESIGN.md / EXPERIMENTS.md from drifting as
benches and examples are added -- every runnable artifact must be referenced
where a reader would look for it.
"""

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_every_example_listed(self):
        readme = _read("README.md")
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, (
                f"examples/{example.name} missing from README")

    def test_install_and_test_commands_present(self):
        readme = _read("README.md")
        assert "pip install -e ." in readme
        assert "pytest tests/" in readme
        assert "pytest benchmarks/" in readme

    def test_cites_the_paper(self):
        readme = _read("README.md")
        assert "SC 2020" in readme or "SC20" in readme
        assert "2008.11359" in readme


class TestDesign:
    def test_every_bench_file_documented(self):
        design = _read("DESIGN.md")
        experiments = _read("EXPERIMENTS.md")
        docs = design + experiments
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in docs, (
                f"benchmarks/{bench.name} not referenced in DESIGN.md or "
                "EXPERIMENTS.md")

    def test_paper_verification_recorded(self):
        design = _read("DESIGN.md")
        assert "verified" in design.lower()
        assert "FeatGraph" in design

    def test_every_source_package_in_inventory(self):
        design = _read("DESIGN.md")
        for pkg in sorted((ROOT / "src" / "repro").iterdir()):
            if pkg.is_dir() and (pkg / "__init__.py").exists():
                assert f"repro.{pkg.name}" in design or \
                    f"repro/{pkg.name}" in design, (
                        f"package repro.{pkg.name} missing from DESIGN.md")


class TestExperiments:
    @pytest.mark.parametrize("marker", [
        "Table II", "Table III", "Table IV", "Table V", "Table VI",
        "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15",
        "Table I", "accuracy",
    ])
    def test_every_paper_artifact_has_a_section(self, marker):
        assert marker in _read("EXPERIMENTS.md")

    def test_deviations_are_documented(self):
        text = _read("EXPERIMENTS.md")
        assert "Known deviations" in text

    def test_api_doc_mentions_all_public_packages(self):
        api = _read("docs/API.md")
        for pkg in ("repro.core", "repro.tensorir", "repro.graph",
                    "repro.hwsim", "repro.baselines", "repro.minidgl",
                    "repro.bench"):
            assert pkg in api
