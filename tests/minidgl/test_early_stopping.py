"""Early-stopping tests for the training loop."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN
from repro.minidgl.train import train_model


@pytest.fixture(scope="module")
def dataset():
    return planted_partition(n=250, num_classes=4, feature_dim=16,
                             avg_degree=10, seed=0)


class TestEarlyStopping:
    def test_stops_before_epoch_budget(self, dataset):
        """An easy task saturates validation accuracy quickly; patience must
        cut training well short of the budget."""
        model = GCN(16, 4, hidden=16, dropout=0.0, seed=1)
        res = train_model(model, dataset, get_backend("featgraph"),
                          epochs=200, lr=0.05, patience=3)
        assert len(res.train_losses) < 200
        assert res.test_accuracy > 0.8

    def test_no_patience_runs_full_budget(self, dataset):
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=2)
        res = train_model(model, dataset, get_backend("featgraph"),
                          epochs=7, lr=0.02)
        assert len(res.train_losses) == 7

    def test_patience_validation(self, dataset):
        with pytest.raises(ValueError):
            train_model(GCN(16, 4, hidden=8), dataset,
                        get_backend("featgraph"), patience=0)

    def test_early_stop_accuracy_close_to_full_run(self, dataset):
        full = train_model(GCN(16, 4, hidden=16, dropout=0.0, seed=3),
                           dataset, get_backend("featgraph"), epochs=60,
                           lr=0.03)
        early = train_model(GCN(16, 4, hidden=16, dropout=0.0, seed=3),
                            dataset, get_backend("featgraph"), epochs=60,
                            lr=0.03, patience=5)
        assert early.test_accuracy >= full.test_accuracy - 0.08
