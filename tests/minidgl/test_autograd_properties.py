"""Property-based autograd tests: random op chains against numeric
gradients, and algebraic invariants of differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.minidgl.autograd import Tensor, no_grad

OPS = ("add", "mul", "relu", "elu", "tanh_like", "scale", "matmul_small")


def _apply(op: str, x: Tensor, rng: np.random.Generator) -> Tensor:
    if op == "add":
        return x + Tensor(rng.standard_normal(x.shape).astype(np.float32))
    if op == "mul":
        return x * Tensor((rng.random(x.shape) + 0.5).astype(np.float32))
    if op == "relu":
        return x.relu()
    if op == "elu":
        return x.elu()
    if op == "tanh_like":
        # smooth composite: exp / (1 + exp)
        return x.exp() / (x.exp() + 1.0)
    if op == "scale":
        return x * 0.7 + 0.1
    if op == "matmul_small":
        w = Tensor(rng.standard_normal((x.shape[-1], x.shape[-1])).astype(
            np.float32) * 0.3)
        return x @ w
    raise ValueError(op)


@settings(max_examples=25, deadline=None)
@given(
    chain=st.lists(st.sampled_from(OPS), min_size=1, max_size=4),
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_random_chain_matches_numeric_gradient(chain, rows, cols, seed):
    """Property: d(sum(f(x)))/dx from the tape equals central differences
    for arbitrary compositions of supported ops."""
    rng = np.random.default_rng(seed)
    # avoid relu/elu kinks in the numeric check by keeping values away from 0
    base = rng.standard_normal((rows, cols)).astype(np.float32)
    base = np.where(np.abs(base) < 0.15, 0.3, base)
    x = Tensor(base.copy(), requires_grad=True)

    # freeze rng state for the op constants so every call builds the same fn
    def forward():
        local = np.random.default_rng(seed + 1)
        t = x
        for op in chain:
            t = _apply(op, t, local)
        return t

    forward().sum().backward()
    analytic = x.grad.copy()

    eps = 1e-3
    numeric = np.zeros_like(base, dtype=np.float64)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        orig = x.data[ix]
        with no_grad():
            x.data[ix] = orig + eps
            fp = float(forward().data.sum())
            x.data[ix] = orig - eps
            fm = float(forward().data.sum())
        x.data[ix] = orig
        numeric[ix] = (fp - fm) / (2 * eps)
        it.iternext()
    assert np.allclose(analytic, numeric, atol=5e-2), (
        chain, np.abs(analytic - numeric).max())


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    a=st.floats(-3, 3),
    b=st.floats(-3, 3),
    seed=st.integers(0, 10_000),
)
def test_linearity_of_gradient(rows, cols, a, b, seed):
    """Property: grad(a*f + b*g) == a*grad(f) + b*grad(g)."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((rows, cols)).astype(np.float32)
    c1 = Tensor(rng.standard_normal((rows, cols)).astype(np.float32))
    c2 = Tensor(rng.standard_normal((rows, cols)).astype(np.float32))

    def grad_of(scale_f, scale_g):
        x = Tensor(data.copy(), requires_grad=True)
        ((x * c1).sum() * scale_f + (x * c2).sum() * scale_g).backward()
        return x.grad

    combined = grad_of(a, b)
    separate = a * grad_of(1.0, 0.0) + b * grad_of(0.0, 1.0)
    assert np.allclose(combined, separate, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_log_softmax_gradient_rows_sum_to_zero(n, seed):
    """Property: softmax-gradient rows sum to ~0 when upstream grad is
    uniform within a row (shift invariance of log-softmax)."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((n, 4)).astype(np.float32),
               requires_grad=True)
    x.log_softmax(axis=-1).sum().backward()
    assert np.allclose(x.grad.sum(axis=-1), 0, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(2, 6),
    k=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_gather_scatter_adjoint(rows, k, seed):
    """Property: gather's backward is scatter-add -- <gather(x), y> ==
    <x, scatter(y)> (adjoint identity)."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, rows, k)
    x_data = rng.standard_normal((rows, 3)).astype(np.float32)
    y = rng.standard_normal((k, 3)).astype(np.float32)

    x = Tensor(x_data, requires_grad=True)
    (x.gather_rows(idx) * Tensor(y)).sum().backward()
    scatter = np.zeros_like(x_data)
    np.add.at(scatter, idx, y)
    lhs = (x_data[idx] * y).sum()
    rhs = (x_data * scatter).sum()
    assert np.allclose(lhs, rhs, atol=1e-3)
    assert np.allclose(x.grad, scatter, atol=1e-5)
