"""Heterogeneous-graph and R-GCN tests."""

import numpy as np
import pytest

from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.hetero import HeteroGraph, RGCN, RGCNConv
from repro.minidgl.optim import Adam


def _hetero(n=60, m=400, rels=("cites", "follows"), seed=0):
    r = np.random.default_rng(seed)
    relations = {name: (r.integers(0, n, m), r.integers(0, n, m))
                 for name in rels}
    return HeteroGraph(n, relations), relations


class TestHeteroGraph:
    def test_construction(self):
        hg, rels = _hetero()
        assert hg.relations == ("cites", "follows")
        assert hg.num_edges == 800

    def test_relation_lookup(self):
        hg, _ = _hetero()
        assert hg["cites"].num_edges == 400
        with pytest.raises(KeyError, match="unknown relation"):
            hg["likes"]

    def test_total_in_degrees(self):
        hg, rels = _hetero()
        total = hg.total_in_degrees()
        manual = np.zeros(60, dtype=np.int64)
        for src, dst in rels.values():
            np.add.at(manual, dst, 1)
        assert np.array_equal(total, manual)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeteroGraph(0, {"r": (np.array([0]), np.array([0]))})
        with pytest.raises(ValueError):
            HeteroGraph(5, {})


class TestRGCNConv:
    def test_forward_shape(self):
        hg, _ = _hetero()
        conv = RGCNConv(8, 4, hg.relations)
        x = Tensor(np.random.default_rng(1).random((60, 8)).astype(np.float32))
        out = conv(hg, x, get_backend("featgraph"))
        assert out.shape == (60, 4)

    def test_backend_parity(self):
        hg, _ = _hetero(seed=2)
        conv = RGCNConv(8, 4, hg.relations, rng=np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).random((60, 8)).astype(np.float32))
        a = conv(hg, x, get_backend("featgraph")).data
        b = conv(hg, x, get_backend("minigun")).data
        assert np.allclose(a, b, atol=1e-4)

    def test_relation_mismatch_rejected(self):
        hg, _ = _hetero()
        conv = RGCNConv(8, 4, ("other",))
        x = Tensor(np.zeros((60, 8), np.float32))
        with pytest.raises(ValueError, match="relations"):
            conv(hg, x, get_backend("minigun"))

    def test_relations_contribute_independently(self):
        """Zeroing one relation's weights removes exactly its contribution."""
        hg, rels = _hetero(seed=5)
        backend = get_backend("minigun")
        rng = np.random.default_rng(6)
        conv = RGCNConv(8, 4, hg.relations, rng=rng)
        x = Tensor(rng.random((60, 8)).astype(np.float32))
        full = conv(hg, x, backend).data.copy()
        conv.rel_linears[1].weight.data[:] = 0
        without = conv(hg, x, backend).data
        # rebuild the dropped term manually
        src, dst = rels["follows"]
        assert not np.allclose(full, without)

    def test_gradients_flow_to_all_relations(self):
        hg, _ = _hetero(seed=7)
        conv = RGCNConv(8, 4, hg.relations)
        x = Tensor(np.random.default_rng(8).random((60, 8)).astype(np.float32),
                   requires_grad=True)
        conv(hg, x, get_backend("featgraph")).sum().backward()
        assert x.grad is not None
        for lin in conv.rel_linears:
            assert lin.weight.grad is not None


class TestRGCNModel:
    def _relational_dataset(self, n=240, classes=3, seed=9):
        """Classes are encoded *only* in the relation structure: relation
        'same' connects within-class, 'diff' across classes; features are
        noise, so learning requires using the relations differently."""
        r = np.random.default_rng(seed)
        labels = r.integers(0, classes, n)
        by_class = [np.nonzero(labels == c)[0] for c in range(classes)]
        same_src = r.integers(0, n, n * 8)
        same_dst = np.array([r.choice(by_class[labels[s]])
                             for s in same_src])
        diff_src = r.integers(0, n, n * 4)
        diff_dst = np.array([
            r.choice(by_class[(labels[s] + 1) % classes]) for s in diff_src])
        hg = HeteroGraph(n, {"same": (same_src, same_dst),
                             "diff": (diff_src, diff_dst)})
        # one-hot-ish noisy identity features
        feats = r.normal(0, 1, (n, 16)).astype(np.float32)
        return hg, feats, labels

    def test_learns_from_relation_structure(self):
        hg, feats, labels = self._relational_dataset()
        n = hg.num_vertices
        train = np.arange(n) % 4 != 0
        test = ~train
        model = RGCN(16, 3, hg.relations, hidden=16, seed=1)
        backend = get_backend("featgraph")
        opt = Adam(model.parameters(), lr=0.02)
        x = Tensor(feats)
        onehot = np.eye(3, dtype=np.float32)[labels]
        for _ in range(60):
            opt.zero_grad()
            logits = model(hg, x, backend)
            logp = logits.gather_rows(np.nonzero(train)[0]).log_softmax(-1)
            loss = -(logp * Tensor(onehot[train])).sum() * (1 / train.sum())
            loss.backward()
            opt.step()
        model.eval()
        from repro.minidgl.autograd import no_grad
        with no_grad():
            pred = model(hg, x, backend).data.argmax(1)
        acc = (pred[test] == labels[test]).mean()
        assert acc > 0.6  # far above the 1/3 chance rate

    def test_model_shapes_and_params(self):
        hg, _ = _hetero()
        model = RGCN(8, 3, hg.relations, hidden=12)
        # per layer: 2 relation weights + self (W, b) = 4 params
        assert len(model.parameters()) == 8
