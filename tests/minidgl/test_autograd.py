"""Autograd engine tests: every op gets a numeric gradient check."""

import numpy as np
import pytest

from repro.minidgl.autograd import Tensor, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        orig = x[ix]
        x[ix] = orig + eps
        fp = fn()
        x[ix] = orig - eps
        fm = fn()
        x[ix] = orig
        g[ix] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_op(op, *shapes, seed=0, atol=2e-2):
    """Build tensors, apply op, compare autograd vs numeric grads."""
    rng = np.random.default_rng(seed)
    tensors = [Tensor(rng.standard_normal(s).astype(np.float32) + 0.5,
                      requires_grad=True) for s in shapes]
    out = op(*tensors)
    loss = out.sum() if out.data.size > 1 else out
    loss.backward()
    for t in tensors:
        def f(t=t):
            with no_grad():
                o = op(*tensors)
                return float(o.data.sum())
        num = numeric_grad(f, t.data)
        assert t.grad is not None
        assert np.allclose(t.grad, num, atol=atol), (
            np.abs(t.grad - num).max())


class TestBasicOps:
    def test_add(self):
        check_op(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_op(lambda a, b: a + b, (3, 4), (4,))

    def test_sub(self):
        check_op(lambda a, b: a - b, (3, 4), (3, 4))

    def test_mul(self):
        check_op(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast_heads(self):
        check_op(lambda a, b: a * b, (5, 2, 3), (2, 3))

    def test_div(self):
        # divide by a strictly positive, well-conditioned denominator so the
        # central-difference reference stays stable
        check_op(lambda a, b: a / (b * b + 1.0), (3, 4), (3, 4), seed=1)

    def test_matmul(self):
        check_op(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_neg(self):
        check_op(lambda a: -a, (3, 4))

    def test_scalar_mixing(self):
        check_op(lambda a: a * 3.0 + 1.0, (2, 2))


class TestNonlinearities:
    def test_relu(self):
        check_op(lambda a: a.relu(), (4, 4), seed=2)

    def test_leaky_relu(self):
        check_op(lambda a: a.leaky_relu(0.2), (4, 4), seed=3)

    def test_elu(self):
        check_op(lambda a: a.elu(), (4, 4), seed=4)

    def test_exp(self):
        check_op(lambda a: a.exp(), (3, 3), seed=5)

    def test_log(self):
        # keep values positive
        rng = np.random.default_rng(6)
        a = Tensor(rng.random((3, 3)).astype(np.float32) + 1.0, requires_grad=True)
        (a.log().sum()).backward()
        assert np.allclose(a.grad, 1 / a.data, atol=1e-3)

    def test_log_softmax_rows_normalized(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.standard_normal((5, 4)).astype(np.float32),
                   requires_grad=True)
        out = a.log_softmax(axis=-1)
        assert np.allclose(np.exp(out.data).sum(axis=-1), 1, atol=1e-5)

    def test_log_softmax_grad(self):
        check_op(lambda a: a.log_softmax(axis=-1), (4, 5), seed=8)


class TestShapeOps:
    def test_reshape(self):
        check_op(lambda a: a.reshape(6, 2), (3, 4))

    def test_sum_all(self):
        check_op(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        check_op(lambda a: a.sum(axis=1), (3, 4))

    def test_mean(self):
        check_op(lambda a: a.mean(), (3, 4))

    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_op(lambda a: a.gather_rows(idx), (4, 3), seed=9)


class TestEngine:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_constant_rejected(self):
        a = Tensor(np.ones(2))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = (a * 2 + a * 3).sum()
        out.backward()
        assert np.allclose(a.grad, 5)

    def test_no_grad_blocks_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (a * 2).sum()
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert not a.detach().requires_grad

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum()).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_grads(self):
        """Shared subexpression must backprop through both paths."""
        a = Tensor(np.array([2.0], np.float32), requires_grad=True)
        b = a * 3
        out = (b * b).sum()  # (3a)^2 -> d/da = 18a = 36
        out.backward()
        assert np.allclose(a.grad, 36)
