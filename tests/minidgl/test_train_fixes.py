"""Regression tests for the training-loop fixes (PR-5).

Three bugs: ``accuracy`` crashed on datasets without val/test masks,
early stopping evaluated whatever weights the final (stale) epochs drifted
to instead of the best-validation snapshot, and the mini-batch path lacked
a harness entirely.
"""

import dataclasses

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN, GraphSage
from repro.minidgl.train import (
    accuracy,
    infer_minibatch,
    train_minibatch,
    train_model,
)


@pytest.fixture(scope="module")
def dataset():
    return planted_partition(n=250, num_classes=4, feature_dim=16,
                             avg_degree=10, seed=0)


class TestNoneMaskAccuracy:
    def test_accuracy_none_mask_is_nan(self):
        logits = np.zeros((4, 2), dtype=np.float32)
        labels = np.zeros(4, dtype=np.int64)
        assert np.isnan(accuracy(logits, labels, None))

    def test_train_model_without_val_test_masks(self, dataset):
        """Regression: ``train_model`` raised ``TypeError`` from
        ``np.nonzero(None)`` when the dataset had no val/test split."""
        ds = dataclasses.replace(dataset, val_mask=None, test_mask=None)
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=1)
        res = train_model(model, ds, get_backend("featgraph"), epochs=3,
                          lr=0.05)
        assert np.isnan(res.test_accuracy)
        assert np.isnan(res.val_accuracy)
        assert len(res.train_losses) == 3

    def test_patience_with_none_val_mask_runs_full_budget(self, dataset):
        """No val split means the patience check is skipped cleanly rather
        than crashing or stopping on garbage."""
        ds = dataclasses.replace(dataset, val_mask=None, test_mask=None)
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=2)
        res = train_model(model, ds, get_backend("featgraph"), epochs=5,
                          lr=0.05, patience=1)
        assert len(res.train_losses) == 5


class TestBestWeightRestore:
    def test_reported_val_accuracy_is_best_observed(self, dataset):
        """Regression: early stopping used to evaluate the stale final
        weights.  With snapshot/restore, the returned val accuracy equals
        the best seen during training -- recomputing it after restore is
        deterministic (eval mode)."""
        model = GCN(16, 4, hidden=16, dropout=0.0, seed=3)
        res = train_model(model, dataset, get_backend("featgraph"),
                          epochs=60, lr=0.05, patience=3)
        # re-evaluate the restored weights independently
        from repro.minidgl.autograd import Tensor, no_grad
        from repro.minidgl.graph import Graph

        model.eval()
        with no_grad():
            logits = model(Graph(dataset.adj), Tensor(dataset.features),
                           get_backend("featgraph")).numpy()
        assert accuracy(logits, dataset.labels,
                        dataset.val_mask) == pytest.approx(res.val_accuracy)

    def test_restore_never_hurts_val_accuracy(self, dataset):
        """The patience run's val accuracy can't be below a run without
        restore whose final epochs went stale (same seed, same stream)."""
        a = GCN(16, 4, hidden=16, dropout=0.0, seed=4)
        res = train_model(a, dataset, get_backend("featgraph"), epochs=40,
                          lr=0.05, patience=3)
        assert res.val_accuracy >= 0.5  # sane on this easy task


class TestMinibatchHarness:
    def test_train_minibatch_learns(self, dataset):
        model = GraphSage(16, 4, hidden=16, dropout=0.0, seed=5)
        res = train_minibatch(model, dataset, get_backend("featgraph"),
                              fanouts=[8, 8], batch_size=64, epochs=8,
                              lr=0.05, seed=6, prefetch=2)
        assert res.test_accuracy > 0.7
        assert len(res.epoch_seconds) == 8
        assert len(res.sample_seconds) == 8
        assert len(res.compute_seconds) == 8
        assert all(t >= 0 for t in res.sample_seconds)

    def test_none_masks_give_nan_accuracies(self, dataset):
        ds = dataclasses.replace(dataset, val_mask=None, test_mask=None)
        model = GraphSage(16, 4, hidden=8, dropout=0.0, seed=7)
        res = train_minibatch(model, ds, get_backend("featgraph"),
                              fanouts=[4, 4], batch_size=64, epochs=1,
                              lr=0.05, seed=8)
        assert np.isnan(res.test_accuracy)
        assert np.isnan(res.val_accuracy)

    def test_infer_minibatch_matches_full_graph(self, dataset):
        """Full-neighborhood block inference equals full-graph inference on
        the requested ids."""
        from repro.minidgl.autograd import Tensor, no_grad
        from repro.minidgl.graph import Graph

        model = GraphSage(16, 4, hidden=16, dropout=0.0, seed=9)
        backend = get_backend("featgraph")
        ids = np.nonzero(dataset.test_mask)[0]
        block_logits, _ = infer_minibatch(model, dataset, backend, ids,
                                          batch_size=32)
        model.eval()
        with no_grad():
            full = model(Graph(dataset.adj), Tensor(dataset.features),
                         backend).numpy()
        assert np.allclose(block_logits, full[ids], atol=1e-4)

    def test_missing_train_mask_rejected(self, dataset):
        ds = dataclasses.replace(dataset, train_mask=None)
        with pytest.raises(ValueError):
            train_minibatch(GraphSage(16, 4, hidden=8), ds,
                            get_backend("featgraph"))


class TestInferMinibatchEmptyIds:
    """Regression (PR-10): empty ``ids`` crashed ``infer_minibatch`` in
    ``np.concatenate([])``; the contract is a ``(0, num_classes)`` logits
    array and ``0.0`` seconds."""

    def test_empty_ids_return_zero_row_logits(self, dataset):
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=0)
        logits, seconds = infer_minibatch(
            model, dataset, get_backend("featgraph"),
            np.array([], dtype=np.int64))
        assert logits.shape == (0, 4)
        assert logits.dtype == np.float32
        assert seconds == 0.0

    def test_models_expose_out_dim(self):
        from repro.minidgl.models import APPNP, GAT, GraphSage

        assert GCN(16, 4, hidden=8).out_dim == 4
        assert GraphSage(16, 5, hidden=8).out_dim == 5
        assert GAT(16, 3, hidden=8).out_dim == 3
        assert APPNP(16, 6, hidden=8).out_dim == 6

    def test_empty_ids_width_falls_back_to_labels(self, dataset):
        """Models without ``out_dim`` still get a correctly-shaped result
        via the dataset's label count."""
        model = GCN(16, 4, hidden=8, dropout=0.0, seed=0)
        del model.out_dim
        logits, _ = infer_minibatch(model, dataset,
                                    get_backend("featgraph"),
                                    np.array([], dtype=np.int64))
        assert logits.shape == (0, 4)
