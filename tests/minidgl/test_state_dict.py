"""Model state serialization and the Gunrock filter operator."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.backends import get_backend
from repro.minidgl.graph import Graph
from repro.minidgl.models import GAT, GCN


class TestStateDict:
    def test_roundtrip_restores_predictions(self):
        ds = planted_partition(n=120, num_classes=3, feature_dim=8, seed=0)
        g = Graph(ds.adj)
        x = Tensor(ds.features)
        backend = get_backend("minigun")
        model = GCN(8, 3, hidden=8, dropout=0.0, seed=1)
        with no_grad():
            before = model(g, x, backend).data.copy()
        state = model.state_dict()
        # scramble, then restore
        for p in model.parameters():
            p.data[...] = 0
        with no_grad():
            scrambled = model(g, x, backend).data
        assert not np.allclose(scrambled, before)
        model.load_state_dict(state)
        with no_grad():
            after = model(g, x, backend).data
        assert np.allclose(after, before)

    def test_keys_cover_all_parameters(self):
        model = GAT(8, 3, hidden=8, num_heads=2, seed=2)
        state = model.state_dict()
        assert len(state) == len(model.parameters())

    def test_transfers_between_models(self):
        a = GCN(8, 3, hidden=8, seed=3)
        b = GCN(8, 3, hidden=8, seed=4)
        b.load_state_dict(a.state_dict())
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_strict_key_matching(self):
        model = GCN(8, 3, hidden=8)
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            model.load_state_dict(state)
        state2 = model.state_dict()
        state2.pop(next(iter(state2)))
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state2)

    def test_shape_checking(self):
        model = GCN(8, 3, hidden=8)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1), np.float32)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)

    def test_state_is_a_copy(self):
        model = GCN(8, 3, hidden=8)
        state = model.state_dict()
        key = next(iter(state))
        state[key][...] = 1234.0
        assert not np.allclose(model.state_dict()[key], 1234.0)

    def test_npz_roundtrip(self, tmp_path):
        model = GCN(8, 3, hidden=8, seed=5)
        state = model.state_dict()
        np.savez(tmp_path / "weights.npz", **state)
        loaded = dict(np.load(tmp_path / "weights.npz"))
        fresh = GCN(8, 3, hidden=8, seed=6)
        fresh.load_state_dict(loaded)
        for pa, pb in zip(model.parameters(), fresh.parameters()):
            assert np.array_equal(pa.data, pb.data)


class TestGunrockFilter:
    def test_filters_by_predicate(self):
        from repro.baselines.gunrock import GunrockFrontier, gunrock_filter
        fr = GunrockFrontier(np.arange(10))
        out = gunrock_filter(fr, lambda ids: ids % 3 == 0)
        assert set(out.ids) == {0, 3, 6, 9}

    def test_empty_frontier(self):
        from repro.baselines.gunrock import GunrockFrontier, gunrock_filter
        fr = GunrockFrontier(np.empty(0, dtype=np.int64))
        assert len(gunrock_filter(fr, lambda ids: ids >= 0)) == 0

    def test_shape_mismatch_rejected(self):
        from repro.baselines.gunrock import GunrockFrontier, gunrock_filter
        fr = GunrockFrontier(np.arange(5))
        with pytest.raises(ValueError):
            gunrock_filter(fr, lambda ids: np.array([True]))

    def test_advance_filter_composition(self):
        """The canonical Gunrock iteration: advance then filter."""
        from repro.baselines.gunrock import (GunrockFrontier, advance,
                                             gunrock_filter)
        from repro.graph.sparse import from_edges
        r = np.random.default_rng(0)
        csr = from_edges(30, 30, r.integers(0, 30, 200),
                         r.integers(0, 30, 200))
        visited = np.zeros(30, bool)
        visited[0] = True
        frontier = GunrockFrontier(np.array([0]))
        out = advance(csr, frontier, lambda s, d, e: ~visited[d])
        out = gunrock_filter(out, lambda ids: ids % 2 == 0)
        assert np.all(out.ids % 2 == 0)
