"""Layer and model tests."""

import numpy as np
import pytest

from repro.graph.sparse import from_edges
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.graph import Graph
from repro.minidgl.models import GAT, GCN, GraphSage, MODELS
from repro.minidgl.nn import Dropout, GATConv, GCNConv, Linear, SAGEConv


@pytest.fixture()
def graph():
    r = np.random.default_rng(0)
    n, m = 40, 300
    return Graph(from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m)))


@pytest.fixture()
def backend():
    return get_backend("featgraph")


class TestLinear:
    def test_shapes(self):
        lin = Linear(8, 5)
        x = Tensor(np.ones((3, 8), np.float32))
        assert lin(x).shape == (3, 5)

    def test_parameters_discovered(self):
        lin = Linear(8, 5)
        assert len(lin.parameters()) == 2
        assert len(Linear(8, 5, bias=False).parameters()) == 1

    def test_glorot_scale(self):
        lin = Linear(100, 100, rng=np.random.default_rng(1))
        bound = np.sqrt(6 / 200)
        assert np.abs(lin.weight.data).max() <= bound + 1e-6


class TestDropout:
    def test_eval_mode_identity(self):
        d = Dropout(0.5).eval()
        x = Tensor(np.ones((10, 10), np.float32))
        assert np.array_equal(d(x).data, x.data)

    def test_train_mode_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(2))
        x = Tensor(np.ones((1000, 10), np.float32))
        out = d(x).data
        kept = out != 0
        assert np.allclose(out[kept], 2.0)
        assert 0.4 < kept.mean() < 0.6

    def test_zero_p_identity(self):
        d = Dropout(0.0)
        x = Tensor(np.ones((4, 4), np.float32))
        assert np.array_equal(d(x).data, x.data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConvLayers:
    def test_gcnconv_normalizes_by_degree(self, graph, backend):
        conv = GCNConv(6, 4, rng=np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).random((40, 6)).astype(np.float32))
        out = conv(graph, x, backend)
        assert out.shape == (40, 4)
        # isolated vertices (if any) produce zero rows
        deg = graph.in_degrees()
        if (deg == 0).any():
            assert np.allclose(out.data[deg == 0], conv.linear.bias.data * 0, atol=1)

    def test_sageconv_self_term(self, graph, backend):
        conv = SAGEConv(6, 4, rng=np.random.default_rng(5))
        x = Tensor(np.random.default_rng(6).random((40, 6)).astype(np.float32))
        out = conv(graph, x, backend)
        assert out.shape == (40, 4)

    def test_gatconv_shapes_and_heads(self, graph, backend):
        conv = GATConv(6, 8, num_heads=4, rng=np.random.default_rng(7))
        x = Tensor(np.random.default_rng(8).random((40, 6)).astype(np.float32))
        out = conv(graph, x, backend)
        assert out.shape == (40, 8)
        assert conv.head_dim == 2

    def test_gatconv_head_divisibility(self):
        with pytest.raises(ValueError):
            GATConv(6, 7, num_heads=2)

    def test_conv_layers_backprop(self, graph, backend):
        for conv in (GCNConv(6, 4), SAGEConv(6, 4), GATConv(6, 4, num_heads=2)):
            x = Tensor(np.random.default_rng(9).random((40, 6)).astype(np.float32),
                       requires_grad=True)
            conv(graph, x, backend).sum().backward()
            assert x.grad is not None
            for p in conv.parameters():
                assert p.grad is not None, type(conv).__name__


class TestModels:
    @pytest.mark.parametrize("name", list(MODELS))
    def test_forward_shapes(self, graph, backend, name):
        model = MODELS[name](in_dim=6, num_classes=3, hidden=8)
        x = Tensor(np.random.default_rng(10).random((40, 6)).astype(np.float32))
        logits = model(graph, x, backend)
        assert logits.shape == (40, 3)

    def test_paper_hidden_sizes(self):
        assert GCN.paper_hidden == 512
        assert GraphSage.paper_hidden == 256
        assert GAT.paper_hidden == 256

    def test_train_eval_mode_propagates(self, graph, backend):
        model = GCN(6, 3, hidden=8, dropout=0.5)
        model.eval()
        assert not model.dropout.training
        model.train()
        assert model.dropout.training

    def test_eval_deterministic(self, graph, backend):
        model = GCN(6, 3, hidden=8, dropout=0.5)
        model.eval()
        x = Tensor(np.random.default_rng(11).random((40, 6)).astype(np.float32))
        a = model(graph, x, backend).data
        b = model(graph, x, backend).data
        assert np.array_equal(a, b)

    def test_parameter_counts(self):
        gcn = GCN(10, 4, hidden=16)
        # conv1: W(10x16)+b, conv2: W(16x4)+b
        assert len(gcn.parameters()) == 4
        gat = GAT(10, 4, hidden=16, num_heads=4)
        # per layer: fc W, attn_l, attn_r
        assert len(gat.parameters()) == 6
