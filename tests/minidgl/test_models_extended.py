"""APPNP model, fused edge softmax dispatch, and PageRank on FeatGraph."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.graph.sparse import from_edges
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.graph import Graph, edge_softmax
from repro.minidgl.models import APPNP
from repro.minidgl.train import train_model


class TestAPPNP:
    def test_forward_shape(self):
        ds = planted_partition(n=120, num_classes=3, feature_dim=8, seed=0)
        g = Graph(ds.adj)
        model = APPNP(8, 3, hidden=8, k_hops=3)
        out = model(g, Tensor(ds.features), get_backend("featgraph"))
        assert out.shape == (120, 3)

    def test_learns(self):
        ds = planted_partition(n=300, num_classes=4, feature_dim=16,
                               avg_degree=10, seed=1)
        model = APPNP(16, 4, hidden=16, k_hops=4, dropout=0.0, seed=2)
        res = train_model(model, ds, get_backend("featgraph"),
                          epochs=40, lr=0.02)
        assert res.test_accuracy > 0.7

    def test_backend_parity(self):
        ds = planted_partition(n=150, num_classes=3, feature_dim=8, seed=3)
        g = Graph(ds.adj)
        x = Tensor(ds.features)
        model = APPNP(8, 3, hidden=8, k_hops=3, dropout=0.0, seed=4)
        a = model(g, x, get_backend("featgraph")).data
        b = model(g, x, get_backend("minigun")).data
        assert np.allclose(a, b, atol=1e-3)

    def test_alpha_one_is_pure_mlp(self):
        """alpha=1 disables propagation: output equals the MLP prediction."""
        ds = planted_partition(n=100, num_classes=3, feature_dim=8, seed=5)
        g = Graph(ds.adj)
        x = Tensor(ds.features)
        model = APPNP(8, 3, hidden=8, k_hops=5, alpha=1.0, dropout=0.0, seed=6)
        out = model(g, x, get_backend("minigun")).data
        h0 = model.lin2(model.lin1(x).relu()).data
        assert np.allclose(out, h0, atol=1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            APPNP(8, 3, alpha=1.5)
        with pytest.raises(ValueError):
            APPNP(8, 3, k_hops=0)

    def test_kernel_count_scales_with_hops(self):
        from repro.minidgl.profiler import ProfiledBackend
        ds = planted_partition(n=100, num_classes=3, feature_dim=8, seed=7)
        g = Graph(ds.adj)
        x = Tensor(ds.features)
        prof = ProfiledBackend(get_backend("featgraph"))
        APPNP(8, 3, hidden=8, k_hops=6, dropout=0.0)(g, x, prof)
        assert prof.records["spmm_copy_sum"].calls == 6


class TestFusedSoftmaxDispatch:
    def test_backend_path_matches_segment_path(self):
        r = np.random.default_rng(0)
        g = Graph(from_edges(50, 50, r.integers(0, 50, 400),
                             r.integers(0, 50, 400)))
        scores = Tensor(r.standard_normal(g.num_edges).astype(np.float32))
        via_backend = edge_softmax(g, scores, get_backend("featgraph")).data
        via_segments = edge_softmax(g, scores, None).data
        assert np.allclose(via_backend, via_segments, atol=1e-4)

    def test_minigun_backend_takes_segment_path(self):
        r = np.random.default_rng(1)
        g = Graph(from_edges(30, 30, r.integers(0, 30, 200),
                             r.integers(0, 30, 200)))
        scores = Tensor(r.standard_normal(g.num_edges).astype(np.float32))
        # MinigunBackend has no edge_softmax attr -> segment path; must work
        out = edge_softmax(g, scores, get_backend("minigun")).data
        assert np.isfinite(out).all()

    def test_gradients_flow_through_backend_path(self):
        r = np.random.default_rng(2)
        g = Graph(from_edges(40, 40, r.integers(0, 40, 300),
                             r.integers(0, 40, 300)))
        scores = Tensor(r.standard_normal(g.num_edges).astype(np.float32),
                        requires_grad=True)
        edge_softmax(g, scores, get_backend("featgraph")).sum().backward()
        assert scores.grad is not None


class TestTraditionalWorkloadsOnFeatGraph:
    def test_pagerank_via_spmm_f1(self):
        """Table I's flexibility claim in the other direction: the scalar
        traditional workload (PageRank) is just generalized SpMM at f=1."""
        import repro.core as featgraph
        from repro import tensorir as T
        from repro.baselines.ligra import LigraGraph, pagerank

        r = np.random.default_rng(3)
        n = 80
        adj = from_edges(n, n, r.integers(0, n, 600), r.integers(0, n, 600))
        out_deg = np.maximum(adj.col_degrees(), 1).astype(np.float32)

        RANK = T.placeholder((n,), name="RANK")
        DEG = T.placeholder((n,), name="DEG")

        def msgfunc(src, dst, eid):
            return T.compute((1,), lambda i: RANK[src] / DEG[src])

        k = featgraph.spmm(adj, msgfunc, "sum")
        rank = np.full(n, 1.0 / n, dtype=np.float32)
        for _ in range(15):
            contrib = k.run({"RANK": rank, "DEG": out_deg})[:, 0]
            rank = (0.15 / n + 0.85 * contrib).astype(np.float32)

        ref = pagerank(LigraGraph(adj), iters=15)
        assert np.allclose(rank, ref, atol=1e-4)
