"""Optimizer and training-loop tests."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN
from repro.minidgl.optim import SGD, Adam
from repro.minidgl.train import accuracy, cross_entropy, train_model


class TestOptimizers:
    def _quadratic_descent(self, opt_cls, **kw):
        # minimize ||x - 3||^2
        x = Tensor(np.zeros(4, np.float32), requires_grad=True)
        opt = opt_cls([x], **kw)
        for _ in range(200):
            opt.zero_grad()
            loss = ((x - 3.0) * (x - 3.0)).sum()
            loss.backward()
            opt.step()
        return x.data

    def test_sgd_converges(self):
        assert np.allclose(self._quadratic_descent(SGD, lr=0.1), 3.0, atol=1e-2)

    def test_sgd_momentum_converges(self):
        assert np.allclose(self._quadratic_descent(SGD, lr=0.05, momentum=0.9),
                           3.0, atol=1e-2)

    def test_adam_converges(self):
        assert np.allclose(self._quadratic_descent(Adam, lr=0.1), 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = self._quadratic_descent(Adam, lr=0.1)
        decayed = self._quadratic_descent(Adam, lr=0.1, weight_decay=1.0)
        assert np.all(np.abs(decayed) < np.abs(plain))

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0)
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1), requires_grad=True)], lr=-1)

    def test_skips_parameters_without_grad(self):
        x = Tensor(np.zeros(2, np.float32), requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad yet: must not crash
        assert np.all(x.data == 0)


class TestLossAndMetrics:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3), np.float32), requires_grad=True)
        labels = np.array([0, 1, 2, 0])
        mask = np.ones(4, bool)
        loss = cross_entropy(logits, labels, mask)
        assert loss.data == pytest.approx(np.log(3), abs=1e-5)

    def test_cross_entropy_respects_mask(self):
        logits = Tensor(np.array([[10.0, 0], [0, 10.0]], np.float32),
                        requires_grad=True)
        labels = np.array([0, 0])  # second one wrong
        only_first = np.array([True, False])
        loss = cross_entropy(logits, labels, only_first)
        assert loss.data < 0.01

    def test_cross_entropy_empty_mask(self):
        logits = Tensor(np.zeros((2, 2), np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0, 1]), np.zeros(2, bool))

    def test_accuracy(self):
        logits = np.array([[1, 0], [0, 1], [1, 0]], np.float32)
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels, np.ones(3, bool)) == pytest.approx(2 / 3)

    def test_accuracy_empty_mask_nan(self):
        out = accuracy(np.zeros((2, 2)), np.array([0, 1]), np.zeros(2, bool))
        assert np.isnan(out)


class TestTrainModel:
    def test_learns_planted_partition(self):
        ds = planted_partition(n=300, num_classes=4, feature_dim=16,
                               avg_degree=10, seed=0)
        model = GCN(16, 4, hidden=24, dropout=0.0, seed=1)
        res = train_model(model, ds, get_backend("featgraph"),
                          epochs=40, lr=0.02)
        assert res.test_accuracy > 0.7
        assert res.train_losses[-1] < res.train_losses[0]

    def test_records_epoch_times(self):
        ds = planted_partition(n=120, num_classes=3, feature_dim=8,
                               avg_degree=6, seed=2)
        model = GCN(8, 3, hidden=8, seed=3)
        res = train_model(model, ds, get_backend("minigun"), epochs=3)
        assert len(res.epoch_seconds) == 3
        assert res.mean_epoch_seconds > 0

    def test_requires_labeled_dataset(self):
        from repro.graph.datasets import uniform_random
        ds = uniform_random(50, 0.05)
        with pytest.raises(ValueError):
            train_model(GCN(4, 2, hidden=4), ds, get_backend("minigun"))
