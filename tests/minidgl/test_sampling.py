"""Neighbor-sampling and mini-batch tests."""

import threading
import time

import numpy as np
import pytest

from repro.graph.sparse import from_edges
from repro.minidgl.sampling import Block, build_blocks, minibatches, sample_neighbors


@pytest.fixture()
def graph():
    r = np.random.default_rng(0)
    n, m = 100, 2000
    return from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))


class TestSampleNeighbors:
    def test_fanout_respected(self, graph):
        rng = np.random.default_rng(1)
        seeds = np.arange(20)
        block = sample_neighbors(graph, seeds, fanout=5, rng=rng)
        deg = np.diff(block.adj.indptr)
        assert deg.max() <= 5

    def test_low_degree_vertices_keep_all_edges(self):
        adj = from_edges(10, 10, np.array([1, 2]), np.array([0, 0]))
        block = sample_neighbors(adj, np.array([0]), fanout=8,
                                 rng=np.random.default_rng(2))
        assert block.adj.nnz == 2

    def test_sampled_edges_exist_in_graph(self, graph):
        rng = np.random.default_rng(3)
        seeds = np.arange(10, 30)
        block = sample_neighbors(graph, seeds, fanout=4, rng=rng)
        real = set(zip(graph.row_of_edge().tolist(), graph.indices.tolist()))
        for lr, lc in zip(block.adj.row_of_edge(), block.adj.indices):
            g_dst = block.dst_ids[lr]
            g_src = block.src_ids[lc]
            assert (int(g_dst), int(g_src)) in real

    def test_seeds_prefix_of_sources(self, graph):
        rng = np.random.default_rng(4)
        seeds = np.array([7, 3, 50])
        block = sample_neighbors(graph, seeds, fanout=3, rng=rng)
        assert np.array_equal(block.src_ids[:3], seeds)
        assert np.array_equal(block.dst_ids, seeds)

    def test_no_replacement(self, graph):
        rng = np.random.default_rng(5)
        block = sample_neighbors(graph, np.arange(50), fanout=10, rng=rng)
        # within one destination, sampled (dst, position) pairs are distinct
        # edge slots; degree never exceeds the true degree
        true_deg = np.diff(graph.indptr)[:50]
        got_deg = np.diff(block.adj.indptr)
        assert np.all(got_deg <= np.minimum(true_deg, 10))

    def test_duplicate_seeds_rejected(self, graph):
        with pytest.raises(ValueError):
            sample_neighbors(graph, np.array([1, 1]), 2,
                             np.random.default_rng(0))

    def test_invalid_fanout(self, graph):
        with pytest.raises(ValueError):
            sample_neighbors(graph, np.array([0]), 0, np.random.default_rng(0))

    def test_isolated_seed(self):
        adj = from_edges(5, 5, np.array([0]), np.array([1]))
        block = sample_neighbors(adj, np.array([3]), 4,
                                 np.random.default_rng(1))
        assert block.adj.nnz == 0
        assert block.num_dst == 1


class TestBuildBlocks:
    def test_layer_count_and_order(self, graph):
        rng = np.random.default_rng(6)
        seeds = np.arange(8)
        blocks = build_blocks(graph, seeds, fanouts=[4, 4], rng=rng)
        assert len(blocks) == 2
        # execution order: last block's destinations are the seeds
        assert np.array_equal(blocks[-1].dst_ids, seeds)
        # layer boundary: block i's sources are block i+1's... destinations
        assert np.array_equal(blocks[0].dst_ids, blocks[1].src_ids)

    def test_frontier_grows_inward(self, graph):
        rng = np.random.default_rng(7)
        blocks = build_blocks(graph, np.arange(5), fanouts=[8, 8], rng=rng)
        assert blocks[0].num_src >= blocks[1].num_src

    def test_sampled_sage_forward_matches_full_when_fanout_huge(self, graph):
        """With fanout >= max degree, a sampled mean-aggregation equals the
        full-graph one on the seeds."""
        from repro.graph.segment import segment_reduce

        rng = np.random.default_rng(8)
        n = graph.shape[0]
        x = rng.random((n, 6)).astype(np.float32)
        seeds = np.arange(0, 40)
        block = sample_neighbors(graph, seeds, fanout=10_000, rng=rng)
        local_x = block.gather_src_features(x)
        mean_block = segment_reduce(local_x[block.adj.indices],
                                    block.adj.indptr, "mean")
        full_mean = segment_reduce(x[graph.indices], graph.indptr, "mean")
        assert np.allclose(mean_block, full_mean[seeds], atol=1e-4)


class TestMinibatches:
    def test_partitions_ids(self):
        ids = np.arange(23)
        batches = list(minibatches(ids, 5))
        assert sum(len(b) for b in batches) == 23
        assert sorted(np.concatenate(batches).tolist()) == list(range(23))

    def test_shuffling(self):
        ids = np.arange(100)
        batches = list(minibatches(ids, 100, rng=np.random.default_rng(9)))
        assert not np.array_equal(batches[0], ids)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(minibatches(np.arange(4), 0))


class TestMinibatchTraining:
    def test_sampled_graphsage_learns(self):
        """End to end: minibatch GraphSage with sampled blocks reaches good
        accuracy on the planted-partition task."""
        from repro.graph.datasets import planted_partition
        from repro.graph.segment import segment_reduce
        from repro.minidgl.autograd import Tensor
        from repro.minidgl.nn import Linear
        from repro.minidgl.optim import Adam

        ds = planted_partition(n=400, num_classes=4, feature_dim=16,
                               avg_degree=12, seed=10)
        rng = np.random.default_rng(11)
        w_self = Linear(16, 4, rng=rng)
        w_neigh = Linear(16, 4, bias=False, rng=rng)
        opt = Adam(w_self.parameters() + w_neigh.parameters(), lr=0.05)
        train_ids = np.nonzero(ds.train_mask)[0]

        def forward(block):
            local_x = block.gather_src_features(ds.features)
            mean = segment_reduce(local_x[block.adj.indices],
                                  block.adj.indptr, "mean")
            return w_self(Tensor(local_x[: block.num_dst])) + \
                w_neigh(Tensor(mean))

        for epoch in range(25):
            for batch in minibatches(train_ids, 128, rng=rng):
                block = sample_neighbors(ds.adj, batch, fanout=8, rng=rng)
                logits = forward(block)
                idx = np.arange(block.num_dst)
                labels = ds.labels[block.dst_ids]
                logp = logits.log_softmax(axis=-1)
                picked = logp * Tensor(np.eye(4, dtype=np.float32)[labels])
                loss = -(picked.sum() * (1.0 / block.num_dst))
                opt.zero_grad()
                loss.backward()
                opt.step()

        # evaluate on the test vertices with full neighborhoods
        test_ids = np.nonzero(ds.test_mask)[0]
        block = sample_neighbors(ds.adj, test_ids, fanout=10_000,
                                 rng=np.random.default_rng(12))
        logits = forward(block).numpy()
        acc = (logits.argmax(1) == ds.labels[test_ids]).mean()
        assert acc > 0.7


class TestVectorizedReferenceEquivalence:
    """The vectorized sampler and the per-seed reference consume the RNG
    identically: same generator state in -> same blocks out."""

    def _assert_blocks_equal(self, b1, b2):
        assert np.array_equal(b1.src_ids, b2.src_ids)
        assert np.array_equal(b1.dst_ids, b2.dst_ids)
        assert np.array_equal(b1.adj.indptr, b2.adj.indptr)
        assert np.array_equal(b1.adj.indices, b2.adj.indices)
        assert b1.adj.shape == b2.adj.shape

    @pytest.mark.parametrize("fanout", [1, 3, 8, 50])
    def test_same_seed_same_block(self, graph, fanout):
        from repro.minidgl.sampling import sample_neighbors_reference

        seeds = np.random.default_rng(13).choice(100, 40, replace=False)
        b1 = sample_neighbors(graph, seeds, fanout, np.random.default_rng(5))
        b2 = sample_neighbors_reference(graph, seeds, fanout,
                                        np.random.default_rng(5))
        self._assert_blocks_equal(b1, b2)

    def test_stream_equivalence_across_calls(self, graph):
        """Equivalence holds for a *shared* generator advanced across many
        calls, not just for fresh generators."""
        from repro.minidgl.sampling import sample_neighbors_reference

        rv = np.random.default_rng(6)
        rr = np.random.default_rng(6)
        for batch in (np.arange(10), np.arange(20, 50), np.arange(90, 100)):
            b1 = sample_neighbors(graph, batch, 4, rv)
            b2 = sample_neighbors_reference(graph, batch, 4, rr)
            self._assert_blocks_equal(b1, b2)

    def test_isolated_and_low_degree_seeds(self):
        from repro.graph.sparse import from_edges
        from repro.minidgl.sampling import sample_neighbors_reference

        adj = from_edges(10, 10, np.array([1, 2, 3]), np.array([0, 0, 5]))
        seeds = np.array([0, 4, 5])  # mixed: deg 2, isolated, deg 1
        b1 = sample_neighbors(adj, seeds, 1, np.random.default_rng(2))
        b2 = sample_neighbors_reference(adj, seeds, 1,
                                        np.random.default_rng(2))
        self._assert_blocks_equal(b1, b2)


class TestBlockInvariants:
    def test_dst_ids_prefix_of_src_ids(self, graph):
        blocks = build_blocks(graph, np.arange(12), [3, 3],
                              np.random.default_rng(1))
        for b in blocks:
            assert np.array_equal(b.dst_ids, b.src_ids[: b.num_dst])

    def test_local_csr_shape(self, graph):
        b = sample_neighbors(graph, np.arange(15), 4,
                             np.random.default_rng(3))
        assert b.adj.shape == (b.num_dst, b.num_src)

    def test_per_seed_degree_bounded_by_fanout(self, graph):
        b = sample_neighbors(graph, np.arange(30), 6,
                             np.random.default_rng(4))
        assert np.diff(b.adj.indptr).max() <= 6

    def test_frontier_sources_sorted_after_seeds(self, graph):
        b = sample_neighbors(graph, np.array([9, 2, 41]), 5,
                             np.random.default_rng(7))
        frontier = b.src_ids[b.num_dst:]
        assert np.all(np.diff(frontier) > 0)  # ascending, unique
        assert not np.isin(frontier, b.dst_ids).any()


class TestMinibatchesOrderAndDropLast:
    def test_in_order_without_rng(self):
        """Regression: the docstring used to promise shuffling even when no
        rng was given; without an rng, batches come in the given order."""
        ids = np.arange(10)
        batches = list(minibatches(ids, 4))
        assert np.array_equal(batches[0], [0, 1, 2, 3])
        assert np.array_equal(batches[1], [4, 5, 6, 7])
        assert np.array_equal(batches[2], [8, 9])

    def test_drop_last(self):
        ids = np.arange(10)
        batches = list(minibatches(ids, 4, drop_last=True))
        assert len(batches) == 2
        assert all(len(b) == 4 for b in batches)

    def test_drop_last_with_shuffle_keeps_full_batches(self):
        ids = np.arange(21)
        batches = list(minibatches(ids, 5, rng=np.random.default_rng(0),
                                   drop_last=True))
        assert len(batches) == 4
        assert all(len(b) == 5 for b in batches)
        # the dropped vertex is whatever the shuffle put last
        assert len(np.unique(np.concatenate(batches))) == 20


class TestBlockLoader:
    def _collect(self, graph, prefetch, pool=None, seed=8):
        from repro.minidgl.sampling import BlockLoader

        loader = BlockLoader(graph, np.arange(60), 16, [3, 3],
                             rng=np.random.default_rng(seed),
                             prefetch=prefetch, pool=pool)
        out = list(loader)
        return loader, out

    def _assert_runs_equal(self, run1, run2):
        assert len(run1) == len(run2)
        for (s1, bl1), (s2, bl2) in zip(run1, run2):
            assert np.array_equal(s1, s2)
            for b1, b2 in zip(bl1, bl2):
                assert np.array_equal(b1.src_ids, b2.src_ids)
                assert np.array_equal(b1.adj.indptr, b2.adj.indptr)
                assert np.array_equal(b1.adj.indices, b2.adj.indices)

    def test_prefetch_matches_synchronous(self, graph):
        _, sync = self._collect(graph, prefetch=0)
        _, pre = self._collect(graph, prefetch=3)
        self._assert_runs_equal(sync, pre)

    def test_workpool_producer_matches_thread_producer(self, graph):
        from repro.tensorir.runtime import WorkPool

        with WorkPool(2) as pool:
            _, pooled = self._collect(graph, prefetch=2, pool=pool)
        _, threaded = self._collect(graph, prefetch=2)
        self._assert_runs_equal(pooled, threaded)

    def test_epochs_differ_but_runs_reproduce(self, graph):
        from repro.minidgl.sampling import BlockLoader

        def two_epochs(seed):
            loader = BlockLoader(graph, np.arange(60), 16, [3, 3],
                                 rng=np.random.default_rng(seed), prefetch=2)
            return list(loader), list(loader)

        e1a, e2a = two_epochs(9)
        e1b, e2b = two_epochs(9)
        self._assert_runs_equal(e1a, e1b)  # same seed -> same run
        self._assert_runs_equal(e2a, e2b)
        # successive epochs reshuffle (first batches differ)
        assert not np.array_equal(e1a[0][0], e2a[0][0])

    def test_constructor_validation(self):
        from repro.minidgl.sampling import BlockLoader

        with pytest.raises(ValueError):
            BlockLoader(None, np.arange(4), 0, [2])  # bad batch_size
        with pytest.raises(ValueError):
            BlockLoader(None, np.arange(4), 2, [])  # no fanouts

    def test_sampling_error_raised_in_consumer(self, graph):
        from repro.minidgl.sampling import BlockLoader

        loader = BlockLoader(graph, np.array([1, 1, 2, 3]), 4, [2],
                             rng=np.random.default_rng(0), prefetch=2,
                             shuffle=False)
        with pytest.raises(ValueError):  # duplicate seeds surface here
            list(loader)

    def test_early_break_does_not_deadlock(self, graph):
        from repro.minidgl.sampling import BlockLoader

        loader = BlockLoader(graph, np.arange(100), 10, [3],
                             rng=np.random.default_rng(1), prefetch=1)
        for i, _ in enumerate(loader):
            if i == 1:
                break
        # a second full iteration still works after the abandoned one
        assert len(list(loader)) == 10

    def test_len(self, graph):
        from repro.minidgl.sampling import BlockLoader

        assert len(BlockLoader(graph, np.arange(10), 4, [2])) == 3
        assert len(BlockLoader(graph, np.arange(10), 4, [2],
                               drop_last=True)) == 2

    def test_timing_counters_populate(self, graph):
        loader, out = self._collect(graph, prefetch=2)
        assert loader.batches_produced == len(out) == 4
        assert loader.sample_seconds > 0
        assert loader.wait_seconds >= 0


class TestBlockLoaderShutdown:
    """Regression (PR-10): the producer's terminal ``end``/``error`` puts
    must be stop-aware.  Pre-fix, a consumer that left the loop mid-epoch
    with the queue full stranded the producer forever in
    ``out.put(("end", None))`` -- a leaked thread on the thread backend and,
    with a ``pool``, a consumer deadlock in the generator's
    ``finally: future.result()``.
    """

    def _make_loader(self, graph, pool=None):
        from repro.minidgl.sampling import BlockLoader

        # exactly 2 batches with prefetch=1: after the consumer takes batch
        # 1, the producer re-fills the depth-1 queue with batch 2 and its
        # next put is the terminal "end" -- the pre-fix hang site
        return BlockLoader(graph, np.arange(20), 10, [3],
                           rng=np.random.default_rng(1), prefetch=1,
                           shuffle=False, pool=pool)

    def _wait_until_end_put(self, loader, timeout=5.0):
        """Block until the producer has sampled every batch (its next queue
        offer is the terminal put)."""
        deadline = time.time() + timeout
        while loader.batches_produced < 2:
            assert time.time() < deadline, "producer never reached batch 2"
            time.sleep(0.005)
        time.sleep(0.05)  # let it advance from sampling to the put itself

    def _no_producer_threads(self, timeout=5.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if not [t for t in threading.enumerate()
                    if t.name == "repro-block-loader"]:
                return True
            time.sleep(0.01)
        return False

    def test_early_break_releases_thread_producer(self, graph):
        assert self._no_producer_threads(), "stale producers from other tests"
        loader = self._make_loader(graph)
        it = iter(loader)
        next(it)
        self._wait_until_end_put(loader)
        it.close()  # abandon the epoch with the queue full
        assert self._no_producer_threads(), \
            "producer thread still blocked on its terminal put"

    def test_early_break_with_pool_does_not_deadlock(self, graph):
        from repro.tensorir.runtime import WorkPool

        done = threading.Event()

        def consume():
            with WorkPool(1) as pool:
                loader = self._make_loader(graph, pool=pool)
                it = iter(loader)
                next(it)
                self._wait_until_end_put(loader)
                it.close()  # pre-fix: deadlocks in finally future.result()
            done.set()

        t = threading.Thread(target=consume, daemon=True)
        t.start()
        t.join(10.0)
        assert done.is_set(), \
            "early break deadlocked the consumer with a pool producer"


class TestEmptyIdsContract:
    """Empty ``ids`` are a no-op epoch: ``__len__`` is 0 and iteration
    yields nothing, for both ``drop_last`` values and all producer modes
    (pinned by PR-10 alongside the serving layer, which feeds arbitrary
    request-derived id sets to the loaders)."""

    @pytest.mark.parametrize("drop_last", [False, True])
    def test_minibatches_yield_nothing(self, drop_last):
        empty = np.array([], dtype=np.int64)
        assert list(minibatches(empty, 4, drop_last=drop_last)) == []
        assert list(minibatches(empty, 4, rng=np.random.default_rng(0),
                                drop_last=drop_last)) == []

    @pytest.mark.parametrize("drop_last", [False, True])
    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_loader_len_agrees_with_iteration(self, graph, drop_last,
                                              prefetch):
        from repro.minidgl.sampling import BlockLoader

        loader = BlockLoader(graph, np.array([], dtype=np.int64), 4, [2],
                             rng=np.random.default_rng(0), prefetch=prefetch,
                             drop_last=drop_last)
        assert len(loader) == 0
        assert list(loader) == []
