"""Multi-GPU (NeuGraph-style) extension tests."""

import numpy as np
import pytest

from repro.graph.datasets import paper_stats
from repro.graph.sparse import from_edges
from repro.minidgl.multigpu import LinkSpec, MultiGPUSpMM


@pytest.fixture()
def setup():
    r = np.random.default_rng(0)
    n, m, f = 120, 3000, 16
    g = from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))
    x = r.random((n, f), dtype=np.float32)
    ref = np.zeros((n, f), np.float32)
    np.add.at(ref, g.row_of_edge(), x[g.indices])
    return g, x, ref, f


class TestNumerics:
    @pytest.mark.parametrize("gpus", [1, 2, 3, 8])
    def test_matches_single_device(self, setup, gpus):
        g, x, ref, f = setup
        mg = MultiGPUSpMM(g, num_gpus=gpus, feature_len=f)
        assert np.allclose(mg.run(x), ref, atol=1e-4)

    def test_shape_validation(self, setup):
        g, x, ref, f = setup
        mg = MultiGPUSpMM(g, num_gpus=2, feature_len=f)
        with pytest.raises(ValueError):
            mg.run(x[:, :f - 1])

    def test_invalid_construction(self, setup):
        g, *_ = setup
        with pytest.raises(ValueError):
            MultiGPUSpMM(g, num_gpus=0, feature_len=8)
        with pytest.raises(ValueError):
            MultiGPUSpMM(g, num_gpus=2, feature_len=0)

    def test_owner_round_robin(self, setup):
        g, *_ = setup
        mg = MultiGPUSpMM(g, num_gpus=3, feature_len=8)
        assert set(mg.owner) == {0, 1, 2}


class TestCostModel:
    @pytest.fixture(scope="class")
    def reddit(self):
        return paper_stats("reddit")

    @pytest.fixture(scope="class")
    def kernel(self):
        r = np.random.default_rng(1)
        g = from_edges(60, 60, r.integers(0, 60, 500), r.integers(0, 60, 500))
        return g

    def test_chain_beats_host_to_all(self, kernel, reddit):
        for gpus in (2, 4, 8):
            mg = MultiGPUSpMM(kernel, num_gpus=gpus, feature_len=512)
            chain = mg.cost(reddit, schedule="chain").seconds
            naive = mg.cost(reddit, schedule="host-to-all").seconds
            assert chain < naive, gpus

    def test_chain_scales_with_gpus(self, kernel, reddit):
        speedups = [MultiGPUSpMM(kernel, num_gpus=g, feature_len=512)
                    .speedup_over_single(reddit, "chain")
                    for g in (1, 2, 4, 8)]
        assert speedups[1] > 1.3
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_host_to_all_saturates(self, kernel, reddit):
        """The naive broadcast schedule stops scaling: PCIe is shared."""
        s4 = MultiGPUSpMM(kernel, num_gpus=4, feature_len=512) \
            .speedup_over_single(reddit, "host-to-all")
        s8 = MultiGPUSpMM(kernel, num_gpus=8, feature_len=512) \
            .speedup_over_single(reddit, "host-to-all")
        assert s8 <= s4 * 1.1

    def test_faster_links_help_chain(self, kernel, reddit):
        slow = MultiGPUSpMM(kernel, num_gpus=4, feature_len=512,
                            links=LinkSpec(pcie_bw=6e9, peer_bw=12e9))
        fast = MultiGPUSpMM(kernel, num_gpus=4, feature_len=512,
                            links=LinkSpec(pcie_bw=12e9, peer_bw=48e9))
        assert (fast.cost(reddit, "chain").seconds
                < slow.cost(reddit, "chain").seconds)

    def test_unknown_schedule(self, kernel, reddit):
        mg = MultiGPUSpMM(kernel, num_gpus=2, feature_len=64)
        with pytest.raises(ValueError):
            mg.cost(reddit, schedule="ring")
