"""Backend-profiler tests."""

import numpy as np
import pytest

from repro.graph.datasets import planted_partition
from repro.graph.sparse import from_edges
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GAT, GCN
from repro.minidgl.profiler import ProfiledBackend
from repro.minidgl.train import train_model


@pytest.fixture()
def adj():
    r = np.random.default_rng(0)
    return from_edges(40, 40, r.integers(0, 40, 400), r.integers(0, 40, 400))


class TestProfiledBackend:
    def test_transparent_results(self, adj):
        inner = get_backend("featgraph")
        prof = ProfiledBackend(inner)
        x = np.random.default_rng(1).random((40, 8)).astype(np.float32)
        assert np.allclose(prof.spmm_copy_sum(adj, x),
                           inner.spmm_copy_sum(adj, x), atol=1e-5)

    def test_counts_calls_and_time(self, adj):
        prof = ProfiledBackend(get_backend("minigun"))
        x = np.random.default_rng(2).random((40, 8)).astype(np.float32)
        w = np.random.default_rng(3).random(adj.nnz).astype(np.float32)
        prof.spmm_copy_sum(adj, x)
        prof.spmm_copy_sum(adj, x)
        prof.spmm_mul_sum(adj, x, w)
        prof.sddmm_dot(adj, x, x)
        assert prof.records["spmm_copy_sum"].calls == 2
        assert prof.records["spmm_mul_sum"].calls == 1
        assert prof.records["sddmm_dot"].calls == 1
        assert prof.total_calls() == 4
        assert prof.total_sparse_seconds() > 0
        assert prof.records["spmm_copy_sum"].edge_elements == 2 * adj.nnz * 8

    def test_reset(self, adj):
        prof = ProfiledBackend(get_backend("minigun"))
        x = np.random.default_rng(4).random((40, 4)).astype(np.float32)
        prof.spmm_copy_sum(adj, x)
        prof.reset()
        assert prof.total_calls() == 0

    def test_materialized_bytes_passthrough(self, adj):
        prof = ProfiledBackend(get_backend("minigun"))
        x = np.random.default_rng(5).random((40, 4)).astype(np.float32)
        prof.spmm_copy_sum(adj, x)
        assert prof.materialized_bytes > 0

    def test_summary_renders(self, adj):
        prof = ProfiledBackend(get_backend("featgraph"))
        x = np.random.default_rng(6).random((40, 4)).astype(np.float32)
        prof.spmm_copy_sum(adj, x)
        text = prof.summary()
        assert "spmm_copy_sum" in text and "total sparse time" in text


class TestEndToEndProfiling:
    def test_gcn_epoch_kernel_counts(self):
        """2-layer GCN: 2 forward SpMMs + 2 backward SpMMs per epoch."""
        ds = planted_partition(n=150, num_classes=3, feature_dim=8,
                               avg_degree=6, seed=7)
        prof = ProfiledBackend(get_backend("featgraph"))
        train_model(GCN(8, 3, hidden=8, dropout=0.0, seed=1), ds, prof,
                    epochs=2)
        # 2 epochs x 4 + 2 for the final inference pass
        assert prof.records["spmm_copy_sum"].calls == 2 * 4 + 2

    def test_gat_uses_all_primitives(self):
        ds = planted_partition(n=120, num_classes=3, feature_dim=8,
                               avg_degree=6, seed=8)
        prof = ProfiledBackend(get_backend("featgraph"))
        train_model(GAT(8, 3, hidden=8, num_heads=2, dropout=0.0, seed=2),
                    ds, prof, epochs=1)
        assert prof.records["spmm_mul_sum"].calls > 0
        assert prof.records["sddmm_dot"].calls > 0
