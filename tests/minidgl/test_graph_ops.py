"""Message-passing ops: forward correctness, gradient checks, and parity
between the Minigun and FeatGraph backends (the paper's Sec. II-A calculus:
SpMM gradients are SDDMMs and vice versa)."""

import numpy as np
import pytest

from repro.graph.sparse import from_edges
from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.backends import FeatGraphDGLBackend, MinigunBackend, get_backend
from repro.minidgl.graph import (
    Graph,
    copy_u_sum,
    edge_add,
    edge_softmax,
    u_dot_v,
    u_mul_e_sum,
)


@pytest.fixture()
def graph():
    r = np.random.default_rng(0)
    n, m = 30, 250
    return Graph(from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m)))


@pytest.fixture(params=["minigun", "featgraph"])
def backend(request):
    return get_backend(request.param)


def _numeric_grad(fn, arr, eps=1e-2):
    g = np.zeros_like(arr, dtype=np.float64)
    it = np.nditer(arr, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        orig = arr[ix]
        arr[ix] = orig + eps
        fp = fn()
        arr[ix] = orig - eps
        fm = fn()
        arr[ix] = orig
        g[ix] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestCopyUSum:
    def test_forward(self, graph, backend):
        x = Tensor(np.random.default_rng(1).random((30, 6)).astype(np.float32))
        out = copy_u_sum(graph, x, backend)
        ref = np.zeros((30, 6), np.float32)
        np.add.at(ref, graph.dst_of_edge(), x.data[graph.src_of_edge()])
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_backward_is_reverse_spmm(self, graph, backend):
        x = Tensor(np.random.default_rng(2).random((30, 4)).astype(np.float32),
                   requires_grad=True)
        copy_u_sum(graph, x, backend).sum().backward()
        # gradient of sum-aggregation w.r.t. x[u] is u's out-degree
        out_deg = np.bincount(graph.src_of_edge(), minlength=30)
        assert np.allclose(x.grad, np.repeat(out_deg[:, None], 4, 1), atol=1e-4)


class TestUMulESum:
    def test_forward(self, graph, backend):
        r = np.random.default_rng(3)
        x = Tensor(r.random((30, 5)).astype(np.float32))
        w = Tensor(r.random(graph.num_edges).astype(np.float32))
        out = u_mul_e_sum(graph, x, w, backend)
        ref = np.zeros((30, 5), np.float32)
        np.add.at(ref, graph.dst_of_edge(),
                  x.data[graph.src_of_edge()] * w.data[:, None])
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_weight_grad_is_sddmm(self, graph, backend):
        """d(out)/d(w_uv) must equal x_u . g_v -- the SDDMM pattern."""
        r = np.random.default_rng(4)
        x = Tensor(r.random((30, 5)).astype(np.float32))
        w = Tensor(r.random(graph.num_edges).astype(np.float32),
                   requires_grad=True)
        u_mul_e_sum(graph, x, w, backend).sum().backward()
        ref = x.data[graph.src_of_edge()].sum(axis=1)  # g == ones
        assert np.allclose(w.grad, ref, atol=1e-4)

    def test_x_grad_numeric(self, graph, backend):
        r = np.random.default_rng(5)
        x = Tensor(r.random((30, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(r.random(graph.num_edges).astype(np.float32))
        u_mul_e_sum(graph, x, w, backend).sum().backward()

        def f():
            with no_grad():
                return float(u_mul_e_sum(graph, x, w, backend).data.sum())

        assert np.allclose(x.grad, _numeric_grad(f, x.data), atol=3e-2)

    def test_multihead_weights(self, graph, backend):
        r = np.random.default_rng(6)
        x = Tensor(r.random((30, 2, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(r.random((graph.num_edges, 2)).astype(np.float32),
                   requires_grad=True)
        out = u_mul_e_sum(graph, x, w, backend)
        assert out.shape == (30, 2, 4)
        out.sum().backward()
        assert x.grad is not None and w.grad is not None


class TestUDotV:
    def test_forward(self, graph, backend):
        r = np.random.default_rng(7)
        a = Tensor(r.random((30, 6)).astype(np.float32))
        b = Tensor(r.random((30, 6)).astype(np.float32))
        out = u_dot_v(graph, a, b, backend)
        src, dst = graph.src_of_edge(), graph.dst_of_edge()
        assert np.allclose(out.data, (a.data[src] * b.data[dst]).sum(1), atol=1e-4)

    def test_grads_follow_spmm_pattern(self, graph, backend):
        r = np.random.default_rng(8)
        a = Tensor(r.random((30, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(r.random((30, 4)).astype(np.float32), requires_grad=True)
        u_dot_v(graph, a, b, backend).sum().backward()
        src, dst = graph.src_of_edge(), graph.dst_of_edge()
        ref_a = np.zeros((30, 4), np.float32)
        np.add.at(ref_a, src, b.data[dst])
        ref_b = np.zeros((30, 4), np.float32)
        np.add.at(ref_b, dst, a.data[src])
        assert np.allclose(a.grad, ref_a, atol=1e-3)
        assert np.allclose(b.grad, ref_b, atol=1e-3)


class TestEdgeOps:
    def test_edge_add_forward(self, graph):
        r = np.random.default_rng(9)
        a = Tensor(r.random((30, 2)).astype(np.float32))
        b = Tensor(r.random((30, 2)).astype(np.float32))
        out = edge_add(graph, a, b)
        src, dst = graph.src_of_edge(), graph.dst_of_edge()
        assert np.allclose(out.data, a.data[src] + b.data[dst], atol=1e-6)

    def test_edge_add_backward(self, graph):
        a = Tensor(np.zeros((30, 2), np.float32), requires_grad=True)
        b = Tensor(np.zeros((30, 2), np.float32), requires_grad=True)
        edge_add(graph, a, b).sum().backward()
        out_deg = np.bincount(graph.src_of_edge(), minlength=30)
        in_deg = np.bincount(graph.dst_of_edge(), minlength=30)
        assert np.allclose(a.grad[:, 0], out_deg)
        assert np.allclose(b.grad[:, 0], in_deg)

    def test_edge_softmax_normalizes_per_destination(self, graph):
        r = np.random.default_rng(10)
        s = Tensor(r.standard_normal(graph.num_edges).astype(np.float32))
        alpha = edge_softmax(graph, s).data
        sums = np.zeros(30)
        np.add.at(sums, graph.dst_of_edge(), alpha)
        deg = np.bincount(graph.dst_of_edge(), minlength=30)
        assert np.allclose(sums[deg > 0], 1, atol=1e-4)

    def test_edge_softmax_grad_numeric(self, graph):
        r = np.random.default_rng(11)
        s = Tensor(r.standard_normal(graph.num_edges).astype(np.float32),
                   requires_grad=True)
        coef = r.random(graph.num_edges).astype(np.float32)
        (edge_softmax(graph, s) * Tensor(coef)).sum().backward()

        def f():
            with no_grad():
                return float((edge_softmax(graph, s).data * coef).sum())

        # spot check a subset of coordinates (full numeric sweep is slow)
        num = _numeric_grad(f, s.data[:20].reshape(-1))
        # recompute properly: perturb only first 20 entries
        g = np.zeros(20)
        eps = 1e-2
        for i in range(20):
            orig = s.data[i]
            s.data[i] = orig + eps
            fp = f()
            s.data[i] = orig - eps
            fm = f()
            s.data[i] = orig
            g[i] = (fp - fm) / (2 * eps)
        assert np.allclose(s.grad[:20], g, atol=3e-2)


class TestBackendParity:
    def test_all_primitives_agree(self, graph):
        r = np.random.default_rng(12)
        mg, fg = MinigunBackend(), FeatGraphDGLBackend()
        x = r.random((30, 7)).astype(np.float32)
        w = r.random(graph.num_edges).astype(np.float32)
        assert np.allclose(mg.spmm_copy_sum(graph.adj, x),
                           fg.spmm_copy_sum(graph.adj, x), atol=1e-4)
        assert np.allclose(mg.spmm_mul_sum(graph.adj, x, w),
                           fg.spmm_mul_sum(graph.adj, x, w), atol=1e-4)
        assert np.allclose(mg.sddmm_dot(graph.adj, x, x),
                           fg.sddmm_dot(graph.adj, x, x), atol=1e-4)

    def test_minigun_tracks_materialization(self, graph):
        """DGL-w/o-FeatGraph materializes per-edge messages; FeatGraph not."""
        r = np.random.default_rng(13)
        x = r.random((30, 7)).astype(np.float32)
        mg, fg = MinigunBackend(), FeatGraphDGLBackend()
        mg.spmm_copy_sum(graph.adj, x)
        fg.spmm_copy_sum(graph.adj, x)
        assert mg.materialized_bytes == graph.num_edges * 7 * 4
        assert fg.materialized_bytes == 0

    def test_get_backend_factory(self):
        assert isinstance(get_backend("minigun"), MinigunBackend)
        assert isinstance(get_backend("featgraph", "gpu"), FeatGraphDGLBackend)
        with pytest.raises(KeyError):
            get_backend("tvm")
