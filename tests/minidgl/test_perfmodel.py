"""Table VI epoch-cost model tests."""

import pytest

from repro.graph.datasets import paper_stats
from repro.minidgl import perfmodel
from repro.minidgl.perfmodel import OOM, epoch_calls, epoch_cost


@pytest.fixture(scope="module")
def reddit():
    return paper_stats("reddit")


IN_DIM, CLASSES = 602, 41


class TestEpochCalls:
    def test_training_has_backward_calls(self, reddit):
        fwd = epoch_calls("GCN", reddit, IN_DIM, CLASSES, training=False)
        full = epoch_calls("GCN", reddit, IN_DIM, CLASSES, training=True)
        assert len(full) > len(fwd)

    def test_gcn_spmm_widths_follow_hidden(self, reddit):
        calls = epoch_calls("GCN", reddit, IN_DIM, CLASSES, training=False)
        widths = [c.feature_len for c in calls if c.kind == "spmm"]
        assert widths == [512, CLASSES]

    def test_gat_has_sddmm_and_softmax(self, reddit):
        kinds = {c.kind for c in epoch_calls("GAT", reddit, IN_DIM, CLASSES)}
        assert {"spmm", "sddmm", "softmax", "dense"} <= kinds

    def test_gat_weighted_spmm_not_builtin(self, reddit):
        calls = epoch_calls("GAT", reddit, IN_DIM, CLASSES)
        weighted = [c for c in calls if c.kind == "spmm"]
        assert all(c.weighted and not c.builtin for c in weighted)

    def test_gcn_all_builtin(self, reddit):
        calls = epoch_calls("GCN", reddit, IN_DIM, CLASSES)
        assert all(c.builtin for c in calls)

    def test_unknown_model(self, reddit):
        with pytest.raises(KeyError):
            epoch_calls("GIN", reddit, IN_DIM, CLASSES)


class TestEpochCost:
    @pytest.mark.parametrize("model", ["GCN", "GraphSage"])
    @pytest.mark.parametrize("platform", ["cpu", "gpu"])
    @pytest.mark.parametrize("training", [True, False])
    def test_featgraph_always_faster(self, reddit, model, platform, training):
        wo = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="minigun",
                        platform=platform, training=training)
        w = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="featgraph",
                       platform=platform, training=training)
        assert wo > w

    def test_cpu_speedups_in_paper_band(self, reddit):
        """Paper: >20x on CPU for all three models (we accept 10x-60x)."""
        for model in ("GCN", "GraphSage", "GAT"):
            wo = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="minigun",
                            platform="cpu", training=True)
            w = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="featgraph",
                           platform="cpu", training=True)
            assert 10 < wo / w < 60, model

    def test_gpu_speedups_moderate(self, reddit):
        """Paper: 2.1x-2.9x GPU training speedups for GCN/GraphSage."""
        for model in ("GCN", "GraphSage"):
            wo = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="minigun",
                            platform="gpu", training=True)
            w = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="featgraph",
                           platform="gpu", training=True)
            assert 1.2 < wo / w < 6, model

    def test_gat_gpu_training_ooms_without_featgraph(self, reddit):
        """The starred N/A of Table VI."""
        with pytest.raises(OOM):
            epoch_cost("GAT", reddit, IN_DIM, CLASSES, backend="minigun",
                       platform="gpu", training=True)

    def test_gat_gpu_inference_does_not_oom(self, reddit):
        t = epoch_cost("GAT", reddit, IN_DIM, CLASSES, backend="minigun",
                       platform="gpu", training=False)
        assert t > 0

    def test_gat_gpu_training_fine_with_featgraph(self, reddit):
        t = epoch_cost("GAT", reddit, IN_DIM, CLASSES, backend="featgraph",
                       platform="gpu", training=True)
        assert 0 < t < 30

    def test_gat_highest_cpu_speedup(self, reddit):
        """Paper: 'The highest speedup is achieved on GAT'."""
        def speedup(model):
            wo = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="minigun",
                            platform="cpu", training=True)
            w = epoch_cost(model, reddit, IN_DIM, CLASSES, backend="featgraph",
                           platform="cpu", training=True)
            return wo / w

        assert speedup("GAT") > speedup("GCN")
        assert speedup("GAT") > speedup("GraphSage")

    def test_inference_cheaper_than_training(self, reddit):
        for backend in ("minigun", "featgraph"):
            tr = epoch_cost("GCN", reddit, IN_DIM, CLASSES, backend=backend,
                            platform="cpu", training=True)
            inf = epoch_cost("GCN", reddit, IN_DIM, CLASSES, backend=backend,
                             platform="cpu", training=False)
            assert inf < tr

    def test_invalid_args(self, reddit):
        with pytest.raises(KeyError):
            epoch_cost("GCN", reddit, IN_DIM, CLASSES, backend="tf",
                       platform="cpu")
        with pytest.raises(KeyError):
            epoch_cost("GCN", reddit, IN_DIM, CLASSES, backend="minigun",
                       platform="tpu")
