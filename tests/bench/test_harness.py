"""Benchmark-harness unit tests."""

import pytest

from repro.bench import paper
from repro.bench.tables import Table, fmt_seconds, fmt_speedup
from repro.bench.timing import measure


class TestTable:
    def test_render_aligns_columns(self):
        t = Table("Demo", ["name", "value"])
        t.add("a", 1)
        t.add("longer-name", 22)
        text = t.render()
        lines = text.splitlines()
        assert "Demo" in lines[0]
        assert all(len(l) == len(lines[2]) for l in lines[2:])

    def test_wrong_cell_count_rejected(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_formatters(self):
        assert fmt_seconds(1.234) == "1.23"
        assert fmt_seconds(0.0123, "ms") == "12.3"
        assert fmt_seconds(None) == "N/A"
        assert fmt_speedup(2.5) == "2.50x"
        assert fmt_speedup(None) == "-"


class TestMeasure:
    def test_counts_runs(self):
        calls = []
        m = measure(lambda: calls.append(1), runs=5, warmup=2)
        assert len(calls) == 7
        assert m.runs == 5
        assert m.min_seconds <= m.mean_seconds <= m.max_seconds

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            measure(lambda: None, runs=0)


class TestPaperNumbers:
    """Internal consistency of the transcription."""

    def test_table3_complete(self):
        for table in (paper.TABLE3_GCN, paper.TABLE3_MLP, paper.TABLE3_ATTENTION):
            for ds in paper.DATASETS:
                for system, row in table[ds].items():
                    assert set(row) == set(paper.FEATURE_LENGTHS), (ds, system)
                    assert all(v > 0 for v in row.values())

    def test_table4_complete(self):
        for table in (paper.TABLE4_GCN_MS, paper.TABLE4_MLP_MS,
                      paper.TABLE4_ATTENTION_MS):
            for ds in paper.DATASETS:
                for system, row in table[ds].items():
                    assert set(row) == set(paper.FEATURE_LENGTHS)

    def test_ligra_always_slower_than_featgraph_in_paper(self):
        for table in (paper.TABLE3_GCN, paper.TABLE3_MLP, paper.TABLE3_ATTENTION):
            for ds in paper.DATASETS:
                for f in paper.FEATURE_LENGTHS:
                    assert table[ds]["Ligra"][f] > table[ds]["FeatGraph"][f]

    def test_table5_speedups_consistent(self):
        for sparsity, (mkl, fg, speedup) in paper.TABLE5_SPARSITY.items():
            assert mkl / fg == pytest.approx(speedup, abs=0.02)

    def test_table6_gat_gpu_training_is_oom(self):
        wo, w = paper.TABLE6[("gpu", "training", "GAT")]
        assert wo is None and w > 0

    def test_fig14_best_cell(self):
        best = min(paper.FIG14_GRID, key=paper.FIG14_GRID.get)
        assert best == paper.FIG14_BEST

    def test_fig10_featgraph_scales_best(self):
        assert (paper.FIG10_SCALABILITY["FeatGraph"][16]
                > paper.FIG10_SCALABILITY["Ligra"][16])
        assert (paper.FIG10_SCALABILITY["FeatGraph"][16]
                > paper.FIG10_SCALABILITY["MKL"][16])
