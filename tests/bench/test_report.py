"""Benchmark report aggregation tests."""

import json

import pytest

from repro.bench.report import load_results, summarize


@pytest.fixture()
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table3a_gcn.json").write_text(json.dumps({
        "reddit": {
            "Ligra": {"32": 4.0, "512": 40.0},
            "MKL": {"32": 2.0, "512": 35.0},
            "FeatGraph": {"32": 1.0, "512": 16.0},
        }
    }))
    (d / "table6_end_to_end.json").write_text(json.dumps({
        "('cpu', 'training', 'GCN')": [2000.0, 100.0],
        "('gpu', 'training', 'GCN')": [6.0, 2.0],
        "('gpu', 'training', 'GAT')": [None, 2.0],
    }))
    (d / "accuracy_parity.json").write_text(json.dumps({
        "('GCN', 'minigun')": 0.93,
        "('GCN', 'featgraph')": 0.93,
    }))
    return d


class TestLoadResults:
    def test_loads_all_files(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"table3a_gcn", "table6_end_to_end",
                                "accuracy_parity"}

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope")


class TestSummarize:
    def test_kernel_speedup_bands(self, results_dir):
        text = summarize(load_results(results_dir))
        assert "vs Ligra: 2.5x-4.0x" in text
        assert "vs MKL: 2.0x-2.2x" in text

    def test_end_to_end_and_oom(self, results_dir):
        text = summarize(load_results(results_dir))
        assert "20x on CPU" in text
        assert "OOM" in text

    def test_accuracy_parity_line(self, results_dir):
        text = summarize(load_results(results_dir))
        assert "parity: holds" in text

    def test_handles_empty_results(self, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        text = summarize(load_results(d))
        assert "0 experiment" in text

    def test_cli_main(self, results_dir, capsys):
        from repro.bench.__main__ import main
        assert main([str(results_dir)]) == 0
        assert "Reproduced headline" in capsys.readouterr().out
        assert main([str(results_dir / "missing")]) == 1
