"""Baseline systems the paper compares against.

Each baseline reproduces both the *functionality* (a runnable
reimplementation faithful to the system's execution style) and the
*limitation* the paper identifies:

- :mod:`repro.baselines.ligra` -- Ligra-like shared-memory CPU framework:
  vertex-centric edge-map/vertex-map with push/pull direction switching.
  Feature-dimension-blind: the per-edge UDF is a black box to the scheduler
  (no feature tiling, scalar arithmetic model).
- :mod:`repro.baselines.gunrock` -- Gunrock-like GPU framework: advance
  operator with per-degree load balancing (thread/warp/block buckets), edge
  parallelization, atomic vertex reductions.  Blackbox UDFs: no feature
  dimension parallelism.
- :mod:`repro.baselines.mkl` -- vendor CPU sparse library stand-in: highly
  optimized vanilla CSR SpMM only; no generalized kernels, no graph
  partitioning or feature tiling.
- :mod:`repro.baselines.cusparse` -- vendor GPU sparse library stand-in:
  vanilla SpMM only.

:class:`UnsupportedKernel` signals the coverage gaps that paper Table I and
the "MKL does not support MLP aggregation" notes describe.
"""

from repro.baselines.common import Backend, UnsupportedKernel
from repro.baselines.ligra import LigraBackend, LigraGraph, edge_map, vertex_map
from repro.baselines.gunrock import GunrockBackend, GunrockFrontier, advance
from repro.baselines.mkl import MKLBackend
from repro.baselines.cusparse import CuSparseBackend

__all__ = [
    "Backend",
    "UnsupportedKernel",
    "LigraBackend",
    "LigraGraph",
    "edge_map",
    "vertex_map",
    "GunrockBackend",
    "GunrockFrontier",
    "advance",
    "MKLBackend",
    "CuSparseBackend",
]
