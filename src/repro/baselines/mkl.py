"""Vendor CPU sparse library stand-in (Intel MKL's ``mkl_sparse_s_mm``).

A vendor library is a *fixed* set of hand-optimized kernels: vanilla CSR
SpMM is fast (row-major, SIMD, software-prefetched) but there is no feature
tiling, no graph partitioning, and no generalized kernels at all -- "MKL
does not support MLP aggregation and dot-product attention" (Sec. V-B).

The numerical path delegates to scipy.sparse (a vendor BLAS in spirit); the
cost model charges :data:`repro.hwsim.cpu.MKL_CPU` prices.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import Backend
from repro.graph.sparse import CSRMatrix
from repro.hwsim import cpu as cpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, XEON_8124M
from repro.hwsim.stats import GraphStats

__all__ = ["MKLBackend"]


def _to_scipy(adj: CSRMatrix) -> sp.csr_matrix:
    data = np.ones(adj.nnz, dtype=np.float32)
    return sp.csr_matrix((data, adj.indices, adj.indptr), shape=adj.shape)


class MKLBackend(Backend):
    """Vanilla CSR SpMM only."""

    name = "MKL"
    platform = "cpu"
    supported = frozenset(("gcn_aggregation",))

    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        return np.asarray(_to_scipy(adj) @ features, dtype=np.float32)

    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8, spec: CPUSpec = XEON_8124M) -> CostReport:
        self._require(kernel)
        return cpu_model.spmm_time(spec, stats, feature_len,
                                   frame=cpu_model.MKL_CPU, threads=threads)
