"""Vendor GPU sparse library stand-in (NVIDIA cuSPARSE ``csrmm``).

Like MKL: a fixed, highly tuned vanilla SpMM (the row-block /
feature-across-threads schedule of [Yang, Buluc, Owens 2018], which is also
what FeatGraph's GPU SpMM template generates) -- but no generalized kernels
and no graph-aware partitioning options (no hybrid degree partitioning).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.common import Backend
from repro.graph.sparse import CSRMatrix
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import GPUSpec, TESLA_V100
from repro.hwsim.stats import GraphStats

__all__ = ["CuSparseBackend"]


class CuSparseBackend(Backend):
    """Vanilla GPU SpMM only."""

    name = "cuSPARSE"
    platform = "gpu"
    supported = frozenset(("gcn_aggregation",))

    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        data = np.ones(adj.nnz, dtype=np.float32)
        a = sp.csr_matrix((data, adj.indices, adj.indptr), shape=adj.shape)
        return np.asarray(a @ features, dtype=np.float32)

    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8, spec: GPUSpec = TESLA_V100) -> CostReport:
        self._require(kernel)
        return gpu_model.spmm_row_block_time(spec, stats, feature_len,
                                             kernel_efficiency=1.0)
