"""A Ligra-like shared-memory graph processing framework [Shun & Blelloch].

Implements the genuine Ligra programming model:

- a :class:`LigraGraph` with both out- and in-adjacency (push and pull);
- :func:`vertex_map` applying a predicate/update over a frontier;
- :func:`edge_map` applying an update over the out-edges of a frontier, with
  Ligra's signature **direction switching**: when the frontier (plus its
  out-degrees) is large relative to ``|E| / threshold_den``, switch from
  sparse *push* to dense *pull* traversal.

The GNN kernels run on top of ``edge_map`` with an all-vertices frontier --
which is why, as the paper notes, "its push-pull optimization is no longer
critical in GNN workloads since typically all vertices are active".  The
per-edge feature computation is a black box to the scheduler: no feature
tiling, no SIMD awareness -- that execution style is what
:data:`repro.hwsim.cpu.LIGRA_CPU` models.

The numerical path is vectorized per *destination-row block* purely so the
Python harness finishes; the cost model charges the scalar/blackbox prices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.common import Backend
from repro.graph.sparse import CSRMatrix
from repro.hwsim import cpu as cpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, XEON_8124M
from repro.hwsim.stats import GraphStats

__all__ = ["LigraGraph", "Frontier", "vertex_map", "edge_map", "LigraBackend"]


class Frontier:
    """A vertex subset, stored sparse (ids) or dense (bitmap) like Ligra."""

    def __init__(self, n: int, ids: np.ndarray | None = None,
                 dense: np.ndarray | None = None):
        self.n = int(n)
        if (ids is None) == (dense is None):
            raise ValueError("give exactly one of ids= or dense=")
        self._ids = None if ids is None else np.asarray(ids, dtype=np.int64)
        self._dense = None if dense is None else np.asarray(dense, dtype=bool)

    @classmethod
    def all(cls, n: int) -> "Frontier":
        return cls(n, dense=np.ones(n, dtype=bool))

    @classmethod
    def empty(cls, n: int) -> "Frontier":
        return cls(n, ids=np.empty(0, dtype=np.int64))

    @property
    def is_dense(self) -> bool:
        return self._dense is not None

    def ids(self) -> np.ndarray:
        if self._ids is None:
            return np.nonzero(self._dense)[0]
        return self._ids

    def dense(self) -> np.ndarray:
        if self._dense is None:
            d = np.zeros(self.n, dtype=bool)
            d[self._ids] = True
            return d
        return self._dense

    def __len__(self):
        return int(self._dense.sum()) if self._dense is not None else len(self._ids)


class LigraGraph:
    """Graph with both directions materialized, as Ligra requires."""

    def __init__(self, pull_csr: CSRMatrix):
        #: rows = destinations (pull / in-edges)
        self.pull = pull_csr
        #: rows = sources (push / out-edges)
        self.push = pull_csr.transpose()
        self.n = pull_csr.shape[0]
        self.m = pull_csr.nnz

    def out_degrees(self) -> np.ndarray:
        return self.push.row_degrees()

    def in_degrees(self) -> np.ndarray:
        return self.pull.row_degrees()


def vertex_map(frontier: Frontier, fn: Callable[[np.ndarray], np.ndarray]) -> Frontier:
    """Apply ``fn`` over the frontier's vertex ids; keep those returning True."""
    ids = frontier.ids()
    if len(ids) == 0:
        return Frontier.empty(frontier.n)
    keep = np.asarray(fn(ids), dtype=bool)
    if keep.shape != ids.shape:
        raise ValueError("vertex_map fn must return one bool per vertex")
    return Frontier(frontier.n, ids=ids[keep])


def edge_map(
    graph: LigraGraph,
    frontier: Frontier,
    update: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    cond: Callable[[np.ndarray], np.ndarray] | None = None,
    threshold_den: int = 20,
) -> Frontier:
    """Ligra's EDGEMAP with direction switching.

    ``update(src, dst, eid) -> bool array`` marks destinations activated for
    the next frontier; ``cond(dst) -> bool array`` filters candidate
    destinations (dense/pull direction).  Push is used when
    ``len(frontier) + sum(out_deg(frontier)) <= m / threshold_den``.
    """
    ids = frontier.ids()
    if len(ids) == 0:
        return Frontier.empty(graph.n)
    work = len(ids) + int(graph.out_degrees()[ids].sum())
    if work <= graph.m // threshold_den:
        return _edge_map_push(graph, ids, update, cond)
    return _edge_map_pull(graph, frontier.dense(), update, cond)


def _edge_map_push(graph, ids, update, cond):
    csr = graph.push
    deg = csr.row_degrees()
    src = np.repeat(ids, deg[ids])
    # gather each frontier vertex's out-edge slice
    starts = csr.indptr[ids]
    offs = np.concatenate([np.arange(d) for d in deg[ids]]) if len(ids) else np.empty(0, int)
    pos = np.repeat(starts, deg[ids]) + offs
    dst = csr.indices[pos]
    eid = csr.edge_ids[pos]
    if cond is not None:
        keep = np.asarray(cond(dst), dtype=bool)
        src, dst, eid = src[keep], dst[keep], eid[keep]
    activated = np.asarray(update(src, dst, eid), dtype=bool)
    nxt = np.unique(dst[activated])
    return Frontier(graph.n, ids=nxt)


def _edge_map_pull(graph, dense_frontier, update, cond):
    csr = graph.pull
    dst = csr.row_of_edge()
    src = csr.indices
    eid = csr.edge_ids
    keep = dense_frontier[src]
    if cond is not None:
        keep &= np.asarray(cond(dst), dtype=bool)
    src, dst, eid = src[keep], dst[keep], eid[keep]
    activated = np.asarray(update(src, dst, eid), dtype=bool)
    out = np.zeros(graph.n, dtype=bool)
    out[dst[activated]] = True
    return Frontier(graph.n, dense=out)


# ----------------------------------------------------------------------
# classic graph algorithms, to show the framework is the real thing
# ----------------------------------------------------------------------

def bfs(graph: LigraGraph, source: int) -> np.ndarray:
    """Breadth-first search distances via edge_map rounds."""
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = Frontier(graph.n, ids=np.array([source], dtype=np.int64))
    level = 0
    while len(frontier):
        level += 1

        def update(src, dst, eid, _level=level):
            fresh = dist[dst] == -1
            dist[dst[fresh]] = _level
            return fresh

        frontier = edge_map(graph, frontier, update,
                            cond=lambda d: dist[d] == -1)
    return dist


def pagerank(graph: LigraGraph, iters: int = 20, damping: float = 0.85) -> np.ndarray:
    """PageRank via dense edge_map rounds."""
    n = graph.n
    rank = np.full(n, 1.0 / n)
    out_deg = np.maximum(graph.out_degrees(), 1)
    for _ in range(iters):
        contrib = np.zeros(n)

        def update(src, dst, eid):
            np.add.at(contrib, dst, rank[src] / out_deg[src])
            return np.ones(len(dst), dtype=bool)

        edge_map(graph, Frontier.all(n), update)
        rank = (1 - damping) / n + damping * contrib
    return rank


# ----------------------------------------------------------------------
# GNN kernels on the Ligra model
# ----------------------------------------------------------------------

class LigraBackend(Backend):
    """GNN kernels expressed as Ligra edge_map programs."""

    name = "Ligra"
    platform = "cpu"
    supported = frozenset(("gcn_aggregation", "mlp_aggregation", "dot_attention"))

    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        g = LigraGraph(adj)
        out = np.zeros((adj.shape[0], features.shape[1]), dtype=np.float32)

        def update(src, dst, eid):
            np.add.at(out, dst, features[src])
            return np.ones(len(dst), dtype=bool)

        edge_map(g, Frontier.all(g.n), update)
        return out

    def mlp_aggregation(self, adj: CSRMatrix, features: np.ndarray,
                        weight: np.ndarray) -> np.ndarray:
        g = LigraGraph(adj)
        out = np.full((adj.shape[0], weight.shape[1]), -np.inf, dtype=np.float32)

        def update(src, dst, eid):
            msgs = np.maximum((features[src] + features[dst]) @ weight, 0)
            np.maximum.at(out, dst, msgs.astype(np.float32))
            return np.ones(len(dst), dtype=bool)

        edge_map(g, Frontier.all(g.n), update)
        out[np.diff(adj.indptr) == 0] = 0.0
        return out

    def dot_attention(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        g = LigraGraph(adj)
        scores = np.zeros(adj.nnz, dtype=np.float32)

        def update(src, dst, eid):
            scores[eid] = (features[src] * features[dst]).sum(axis=1)
            return np.ones(len(dst), dtype=bool)

        edge_map(g, Frontier.all(g.n), update)
        return scores

    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8, spec: CPUSpec = XEON_8124M) -> CostReport:
        self._require(kernel)
        frame = cpu_model.LIGRA_CPU
        if kernel == "gcn_aggregation":
            return cpu_model.spmm_time(spec, stats, feature_len, frame=frame,
                                       threads=threads)
        if kernel == "mlp_aggregation":
            return cpu_model.spmm_time(spec, stats, feature_len, frame=frame,
                                       udf_flops_per_edge=2 * d1 * feature_len,
                                       reads_dst=True, threads=threads)
        return cpu_model.sddmm_time(spec, stats, feature_len, frame=frame,
                                    threads=threads)
