"""A Gunrock-like GPU graph processing framework [Wang et al.].

Implements Gunrock's core abstractions:

- :class:`GunrockFrontier` -- the active edge/vertex set;
- :func:`advance` -- the frontier-expansion operator with Gunrock's
  **load-balanced scheduling**: each frontier vertex's edge list is assigned
  to a thread, a warp, or a block bucket by degree thresholds (the paper's
  Sec. II-B description), then all buckets are processed edge-parallel;
- ``filter`` via boolean predicates on the produced frontier.

Vertex-wise reductions go through *atomic* updates (``np.add.at`` /
``np.maximum.at`` stand in for atomicAdd/atomicMax), which is exactly the
overhead the paper blames for Gunrock's slowness on GCN/MLP aggregation.
The per-edge UDF is opaque to the scheduler: a single virtual thread
executes the whole feature computation of its edge, which
:func:`repro.hwsim.gpu.spmm_edge_parallel_time` prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.common import Backend
from repro.graph.sparse import CSRMatrix
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import GPUSpec, TESLA_V100
from repro.hwsim.stats import GraphStats

__all__ = ["GunrockFrontier", "LoadBalanceBuckets", "advance", "GunrockBackend"]

#: degree thresholds for thread / warp / block scheduling buckets
THREAD_MAX_DEGREE = 32
WARP_MAX_DEGREE = 256


class GunrockFrontier:
    """An active vertex set."""

    def __init__(self, ids: np.ndarray):
        self.ids = np.asarray(ids, dtype=np.int64)

    @classmethod
    def all(cls, n: int) -> "GunrockFrontier":
        return cls(np.arange(n, dtype=np.int64))

    def __len__(self):
        return len(self.ids)


@dataclass
class LoadBalanceBuckets:
    """Frontier vertices bucketed by degree for thread/warp/block scheduling."""

    thread: np.ndarray  # degree <= THREAD_MAX_DEGREE
    warp: np.ndarray    # THREAD_MAX_DEGREE < degree <= WARP_MAX_DEGREE
    block: np.ndarray   # degree > WARP_MAX_DEGREE

    def sizes(self) -> tuple[int, int, int]:
        return len(self.thread), len(self.warp), len(self.block)


def load_balance(csr: CSRMatrix, frontier: GunrockFrontier) -> LoadBalanceBuckets:
    """Partition frontier vertices into scheduling buckets by out-degree."""
    deg = csr.row_degrees()[frontier.ids]
    t = frontier.ids[deg <= THREAD_MAX_DEGREE]
    w = frontier.ids[(deg > THREAD_MAX_DEGREE) & (deg <= WARP_MAX_DEGREE)]
    b = frontier.ids[deg > WARP_MAX_DEGREE]
    return LoadBalanceBuckets(thread=t, warp=w, block=b)


def advance(
    csr: CSRMatrix,
    frontier: GunrockFrontier,
    apply_edge: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray | None],
    output_frontier: bool = True,
) -> GunrockFrontier | None:
    """Gunrock's advance: expand the frontier along out-edges.

    ``csr`` rows are the traversal direction (source-major here).
    ``apply_edge(src, dst, eid)`` may return a bool mask of edges whose
    destinations enter the output frontier.  Edges are dispatched per
    load-balance bucket, mirroring the kernel structure of the real system.
    """
    buckets = load_balance(csr, frontier)
    out_ids: list[np.ndarray] = []
    deg = csr.row_degrees()
    for bucket in (buckets.thread, buckets.warp, buckets.block):
        if len(bucket) == 0:
            continue
        d = deg[bucket]
        starts = csr.indptr[bucket]
        offs = np.concatenate([np.arange(x) for x in d]) if len(bucket) else np.empty(0, int)
        pos = np.repeat(starts, d) + offs
        src = np.repeat(bucket, d)
        dst = csr.indices[pos]
        eid = csr.edge_ids[pos]
        mask = apply_edge(src, dst, eid)
        if output_frontier and mask is not None:
            out_ids.append(dst[np.asarray(mask, dtype=bool)])
    if not output_frontier:
        return None
    if out_ids:
        return GunrockFrontier(np.unique(np.concatenate(out_ids)))
    return GunrockFrontier(np.empty(0, dtype=np.int64))


def gunrock_filter(frontier: GunrockFrontier,
                   predicate) -> GunrockFrontier:
    """Gunrock's filter operator: keep frontier vertices passing a
    vectorized predicate (``ids -> bool array``)."""
    if len(frontier) == 0:
        return frontier
    keep = np.asarray(predicate(frontier.ids), dtype=bool)
    if keep.shape != frontier.ids.shape:
        raise ValueError("filter predicate must return one bool per vertex")
    return GunrockFrontier(frontier.ids[keep])


def bfs(csr_push: CSRMatrix, source: int) -> np.ndarray:
    """BFS on the Gunrock model (advance + filter rounds)."""
    n = csr_push.shape[0]
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = GunrockFrontier(np.array([source], dtype=np.int64))
    level = 0
    while len(frontier):
        level += 1

        def apply_edge(src, dst, eid, _level=level):
            fresh = dist[dst] == -1
            dist[dst[fresh]] = _level
            return fresh

        frontier = advance(csr_push, frontier, apply_edge)
    return dist


class GunrockBackend(Backend):
    """GNN kernels as Gunrock advance programs with atomic reductions."""

    name = "Gunrock"
    platform = "gpu"
    supported = frozenset(("gcn_aggregation", "mlp_aggregation", "dot_attention"))

    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        push = adj.transpose()  # advance traverses out-edges (source-major)
        out = np.zeros((adj.shape[0], features.shape[1]), dtype=np.float32)

        def apply_edge(src, dst, eid):
            np.add.at(out, dst, features[src])  # atomicAdd per element
            return None

        advance(push, GunrockFrontier.all(push.shape[0]), apply_edge,
                output_frontier=False)
        return out

    def mlp_aggregation(self, adj: CSRMatrix, features: np.ndarray,
                        weight: np.ndarray) -> np.ndarray:
        push = adj.transpose()
        out = np.full((adj.shape[0], weight.shape[1]), -np.inf, dtype=np.float32)

        def apply_edge(src, dst, eid):
            msgs = np.maximum((features[src] + features[dst]) @ weight, 0)
            np.maximum.at(out, dst, msgs.astype(np.float32))  # atomicMax
            return None

        advance(push, GunrockFrontier.all(push.shape[0]), apply_edge,
                output_frontier=False)
        out[np.diff(adj.indptr) == 0] = 0.0
        return out

    def dot_attention(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        push = adj.transpose()
        scores = np.zeros(adj.nnz, dtype=np.float32)

        def apply_edge(src, dst, eid):
            scores[eid] = (features[src] * features[dst]).sum(axis=1)
            return None

        advance(push, GunrockFrontier.all(push.shape[0]), apply_edge,
                output_frontier=False)
        return scores

    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8, spec: GPUSpec = TESLA_V100) -> CostReport:
        self._require(kernel)
        if kernel == "gcn_aggregation":
            return gpu_model.spmm_edge_parallel_time(spec, stats, feature_len)
        if kernel == "mlp_aggregation":
            return gpu_model.spmm_edge_parallel_time(
                spec, stats, feature_len, udf_flops_per_edge=2 * d1 * feature_len
            )
        return gpu_model.sddmm_thread_per_edge_time(spec, stats, feature_len)
