"""Shared baseline interface.

Every backend (FeatGraph and the four baselines) exposes the three evaluated
kernels through one protocol so the benchmark harness can sweep them
uniformly.  ``run_*`` executes numerically; ``cost_*`` returns the
machine-model time for (possibly paper-scale) graph statistics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graph.sparse import CSRMatrix
from repro.hwsim.report import CostReport
from repro.hwsim.stats import GraphStats

__all__ = ["Backend", "UnsupportedKernel", "KERNELS"]

KERNELS = ("gcn_aggregation", "mlp_aggregation", "dot_attention")


class UnsupportedKernel(NotImplementedError):
    """Raised when a backend lacks a kernel (paper Table I coverage gaps)."""


class Backend(ABC):
    """A GNN-kernel execution backend."""

    name: str = "?"
    platform: str = "cpu"  # "cpu" | "gpu"
    #: kernels this backend can execute (Table I flexibility column)
    supported: frozenset = frozenset(KERNELS)

    def supports(self, kernel: str) -> bool:
        return kernel in self.supported

    def _require(self, kernel: str):
        if not self.supports(kernel):
            raise UnsupportedKernel(f"{self.name} does not support {kernel}")

    # -- numerical execution ------------------------------------------------
    @abstractmethod
    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        """Sum source features into destinations (vanilla SpMM)."""

    def mlp_aggregation(self, adj: CSRMatrix, features: np.ndarray,
                        weight: np.ndarray) -> np.ndarray:
        """Max-aggregate ``relu((x_u + x_v) @ W)`` over incoming edges."""
        self._require("mlp_aggregation")
        raise UnsupportedKernel(self.name)

    def dot_attention(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        """Per-edge dot product of endpoint features (vanilla SDDMM)."""
        self._require("dot_attention")
        raise UnsupportedKernel(self.name)

    # -- machine-model cost ---------------------------------------------------
    @abstractmethod
    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8) -> CostReport:
        """Modeled time of one kernel execution at the given scale."""

    def __repr__(self):
        return f"<{type(self).__name__} {self.name} ({self.platform})>"


def mlp_reference(adj: CSRMatrix, features: np.ndarray, weight: np.ndarray,
                  dst_rows: np.ndarray | None = None) -> np.ndarray:
    """Shared dense-vectorized reference for MLP aggregation semantics."""
    if dst_rows is None:
        dst_rows = adj.row_of_edge()
    msgs = np.maximum((features[adj.indices] + features[dst_rows]) @ weight, 0)
    out = np.full((adj.shape[0], weight.shape[1]), -np.inf, dtype=np.float32)
    np.maximum.at(out, dst_rows, msgs.astype(np.float32))
    out[np.diff(adj.indptr) == 0] = 0.0
    return out
