"""Classic graph algorithms on the baseline frameworks.

The reproduction's Ligra and Gunrock are real vertex-centric frameworks,
not shims; this module exercises them the way their papers do -- BFS and
PageRank live in the framework modules, and here: connected components
(label propagation), k-core decomposition (iterative peeling), and triangle
counting.  The tests validate each against networkx.

These workloads are also the paper's foil: "traditional graph workloads
(e.g., BFS, PageRank) where each vertex is associated with a scalar" -- one
scalar per vertex, trivially light per-edge computation, which is exactly
the regime the baselines' schedulers were built for.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.gunrock import GunrockFrontier, advance
from repro.baselines.ligra import Frontier, LigraGraph, edge_map
from repro.graph.sparse import CSRMatrix

__all__ = ["connected_components", "k_core", "triangle_count"]


def connected_components(graph: LigraGraph) -> np.ndarray:
    """Weakly connected components by min-label propagation (Ligra model).

    Each vertex starts with its own id; every round, both endpoints of each
    edge adopt the smaller label, until a fixpoint.
    """
    n = graph.n
    labels = np.arange(n, dtype=np.int64)
    while True:
        changed = np.zeros(n, dtype=bool)

        def update(src, dst, eid):
            # undirected semantics: push the min both ways
            m = np.minimum(labels[src], labels[dst])
            better_dst = m < labels[dst]
            better_src = m < labels[src]
            np.minimum.at(labels, dst, m)
            np.minimum.at(labels, src, m)
            changed[dst[better_dst]] = True
            changed[src[better_src]] = True
            return better_dst

        # full rounds to a fixpoint: min-label propagation needs reverse
        # reachability, so the frontier optimization does not apply
        edge_map(graph, Frontier.all(n), update)
        if not changed.any():
            return labels


def k_core(adj: CSRMatrix, k: int) -> np.ndarray:
    """Vertices of the k-core (undirected degree >= k after peeling),
    implemented as Gunrock advance/filter rounds."""
    if k < 0:
        raise ValueError("k must be >= 0")
    push = adj.transpose()
    n = adj.shape[0]
    # undirected degree: in + out
    degree = adj.row_degrees() + adj.col_degrees()
    alive = np.ones(n, dtype=bool)
    while True:
        peel = np.nonzero(alive & (degree < k))[0]
        if len(peel) == 0:
            break
        alive[peel] = False

        def apply_edge(src, dst, eid):
            live = alive[dst]
            np.subtract.at(degree, dst[live], 1)
            return None

        # peeled vertices notify neighbors along both directions
        advance(push, GunrockFrontier(peel), apply_edge, output_frontier=False)
        advance(adj, GunrockFrontier(peel), apply_edge, output_frontier=False)
        degree[peel] = 0
    return np.nonzero(alive)[0]


def triangle_count(adj: CSRMatrix) -> int:
    """Undirected triangle count via sorted-adjacency intersection.

    Edges are deduplicated and oriented low->high id first (the standard
    forward counting trick), then each edge intersects its endpoints'
    oriented neighbor lists.
    """
    rows = adj.row_of_edge()
    cols = adj.indices
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    keep = lo != hi
    pairs = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
    n = adj.shape[0]
    # oriented adjacency lists (low -> high), as python sets of arrays
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    pairs = pairs[order]
    starts = np.searchsorted(pairs[:, 0], np.arange(n + 1))
    neighbors = [pairs[starts[v]:starts[v + 1], 1] for v in range(n)]
    total = 0
    for u, v in pairs:
        total += len(np.intersect1d(neighbors[u], neighbors[v],
                                    assume_unique=True))
    return int(total)
