"""Differential correctness testing for the template + UDF + FDS pipeline.

FeatGraph's promise is that any (graph, UDF, aggregation, FDS, target)
combination produces the same numbers as the naive implementation, only
faster.  This package exercises that promise systematically:

- :mod:`repro.testing.generators` -- seeded random generators for graphs
  (empty rows, self-loops, duplicate-free CSR, power-law skew), UDF families
  (copy / mul / MLP-like / dot-attention), aggregations, and FDS schedules.
  Every UDF family carries an *independent* numpy reference implementation,
  so the cross-check does not share code with the kernel under test.
- :mod:`repro.testing.differential` -- the trial driver: sample a config,
  compile it through :func:`repro.core.api.spmm` / ``sddmm``, run it, and
  cross-check against both the :mod:`repro.core.verify` oracle and the
  family's numpy reference.  Failing configs are shrunk to a minimal repro
  with a replayable seed.
- :mod:`repro.testing.fuzz` -- the CLI:
  ``python -m repro.testing.fuzz --trials N --seed S`` (and ``--replay`` to
  re-run a printed failure verbatim).
"""

from repro.testing.differential import (
    FuzzReport,
    TrialConfig,
    TrialResult,
    replay_command,
    run_trial,
    run_trials,
    sample_config,
    shrink,
)
from repro.testing.generators import (
    GRAPH_FAMILIES,
    UDF_FAMILIES,
    UDFFamily,
    UDFInstance,
    make_fds,
    make_graph,
    sample_fds_spec,
    sample_graph_spec,
)

__all__ = [
    "TrialConfig",
    "TrialResult",
    "FuzzReport",
    "sample_config",
    "run_trial",
    "run_trials",
    "shrink",
    "replay_command",
    "GRAPH_FAMILIES",
    "UDF_FAMILIES",
    "UDFFamily",
    "UDFInstance",
    "make_graph",
    "make_fds",
    "sample_graph_spec",
    "sample_fds_spec",
]
