"""Seeded random generators for the differential fuzzing harness.

Everything here is deterministic given its seed or ``random.Random``: graph
specs and arrays, UDF instances, FDS schedules.  The generators intentionally
bias toward the degenerate shapes that break sparse kernels in practice --
empty graphs, rows with zero or one edge, duplicate edges, self-loops, and
heavy power-law skew.

Each UDF family pairs a tensorir builder (what the kernel compiles) with an
**independent numpy reference** (plain fancy indexing / einsum), so a bug in
the shared expression evaluator cannot cancel out of the comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import tensorir as T
from repro.core.fds import (
    FDS,
    cpu_multilevel_fds,
    cpu_tile_fds,
    gpu_feature_thread_fds,
    gpu_multilevel_fds,
    gpu_tree_reduce_fds,
)
from repro.graph.sparse import CSRMatrix, from_edges

__all__ = [
    "GRAPH_FAMILIES",
    "sample_graph_spec",
    "make_graph",
    "UDFFamily",
    "UDFInstance",
    "UDF_FAMILIES",
    "sample_fds_spec",
    "make_fds",
    "SPMM_AGGREGATIONS",
]

# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------

GRAPH_FAMILIES = (
    "random",       # uniform multigraph (parallel edges allowed)
    "empty",        # zero edges: every row is empty
    "self_loops",   # diagonal edges plus random extras
    "coalesced",    # duplicate-free CSR (each (dst, src) pair at most once)
    "power_law",    # heavy skew: a few sources on most edges
    "lonely_rows",  # most destination rows empty, the rest degree >= 1
)


def sample_graph_spec(rnd: random.Random) -> dict:
    """Sample a small graph spec (JSON-serializable dict)."""
    family = rnd.choice(GRAPH_FAMILIES)
    n_src = rnd.randint(1, 12)
    n_dst = rnd.randint(1, 12)
    m = rnd.randint(0, 3 * max(n_src, n_dst))
    return {"family": family, "n_src": n_src, "n_dst": n_dst, "m": m,
            "seed": rnd.randrange(2**31)}


def make_graph(spec: dict) -> CSRMatrix:
    """Materialize a graph spec into a pull-layout CSR adjacency."""
    family = spec["family"]
    n_src, n_dst, m = int(spec["n_src"]), int(spec["n_dst"]), int(spec["m"])
    rng = np.random.default_rng(int(spec["seed"]))
    if family == "empty":
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
    elif family == "random":
        src = rng.integers(0, n_src, m)
        dst = rng.integers(0, n_dst, m)
    elif family == "self_loops":
        n = min(n_src, n_dst)
        extra = m // 2
        src = np.concatenate([np.arange(n), rng.integers(0, n_src, extra)])
        dst = np.concatenate([np.arange(n), rng.integers(0, n_dst, extra)])
    elif family == "coalesced":
        k = min(m, n_src * n_dst)
        flat = rng.choice(n_src * n_dst, size=k, replace=False)
        dst, src = np.divmod(flat, n_src)
    elif family == "power_law":
        ranks = np.arange(1, n_src + 1, dtype=np.float64)
        p = ranks ** -1.2
        p /= p.sum()
        src = rng.choice(n_src, size=m, p=p)
        dst = rng.integers(0, n_dst, m)
    elif family == "lonely_rows":
        occupied = max(1, n_dst // 4)
        src = rng.integers(0, n_src, m)
        dst = rng.integers(0, occupied, m)
    else:
        raise ValueError(f"unknown graph family {family!r}")
    return from_edges(n_src, n_dst, src, dst)


# ----------------------------------------------------------------------
# UDF families
# ----------------------------------------------------------------------

@dataclass
class UDFInstance:
    """A concrete UDF: tensorir builder plus an independent numpy reference.

    ``udf(src, dst, eid) -> Tensor`` is what the kernel compiles;
    ``reference(bindings, src_ids, dst_ids, eids) -> (m, *out_shape)``
    computes the per-edge messages with plain numpy.
    """

    udf: Callable
    placeholders: dict[str, tuple]
    reference: Callable
    out_shape: tuple


@dataclass
class UDFFamily:
    """A parameterized family of UDFs usable by one or both templates."""

    name: str
    kinds: tuple  # subset of ("spmm", "sddmm")
    make: Callable[[dict], UDFInstance]
    has_reduction: bool = False
    dims: tuple = ()  # which of ("f", "d", "h") parameterize the family


def _copy_u(dims: dict) -> UDFInstance:
    n, f = dims["n"], dims["f"]
    XV = T.placeholder((n, f), name="XV")

    def udf(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i], name="cp_u")

    return UDFInstance(
        udf, {"XV": (n, f)},
        lambda b, s, d, e: b["XV"][s],
        (f,))


def _copy_e(dims: dict) -> UDFInstance:
    m, f = dims["m"], dims["f"]
    EW = T.placeholder((m, f), name="EW")

    def udf(src, dst, eid):
        return T.compute((f,), lambda i: EW[eid, i], name="cp_e")

    return UDFInstance(
        udf, {"EW": (m, f)},
        lambda b, s, d, e: b["EW"][e],
        (f,))


def _u_mul_v(dims: dict) -> UDFInstance:
    n, f = dims["n"], dims["f"]
    XV = T.placeholder((n, f), name="XV")
    YV = T.placeholder((n, f), name="YV")

    def udf(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i] * YV[dst, i], name="umv")

    return UDFInstance(
        udf, {"XV": (n, f), "YV": (n, f)},
        lambda b, s, d, e: b["XV"][s] * b["YV"][d],
        (f,))


def _u_add_v_scaled(dims: dict) -> UDFInstance:
    n, f = dims["n"], dims["f"]
    XV = T.placeholder((n, f), name="XV")
    YV = T.placeholder((n, f), name="YV")

    def udf(src, dst, eid):
        return T.compute((f,), lambda i: XV[src, i] + YV[dst, i] * 0.5,
                         name="uav")

    return UDFInstance(
        udf, {"XV": (n, f), "YV": (n, f)},
        lambda b, s, d, e: b["XV"][s] + 0.5 * b["YV"][d],
        (f,))


def _mlp(dims: dict) -> UDFInstance:
    n, d1, f = dims["n"], dims["d"], dims["f"]
    XV = T.placeholder((n, d1), name="XV")
    W = T.placeholder((d1, f), name="W")

    def udf(src, dst, eid):
        k = T.reduce_axis((0, d1), name="k")
        return T.compute(
            (f,), lambda j: T.relu(T.sum_reduce(XV[src, k] * W[k, j], axis=k)),
            name="mlp")

    return UDFInstance(
        udf, {"XV": (n, d1), "W": (d1, f)},
        lambda b, s, d, e: np.maximum(b["XV"][s] @ b["W"], 0.0),
        (f,))


def _dot(dims: dict) -> UDFInstance:
    n, d1 = dims["n"], dims["d"]
    XV = T.placeholder((n, d1), name="XV")
    YV = T.placeholder((n, d1), name="YV")

    def udf(src, dst, eid):
        k = T.reduce_axis((0, d1), name="k")
        return T.compute(
            (1,), lambda i: T.sum_reduce(XV[src, k] * YV[dst, k], axis=k),
            name="dot")

    return UDFInstance(
        udf, {"XV": (n, d1), "YV": (n, d1)},
        lambda b, s, d, e: (b["XV"][s] * b["YV"][d]).sum(
            axis=-1, keepdims=True),
        (1,))


def _multihead_dot(dims: dict) -> UDFInstance:
    n, h, d1 = dims["n"], dims["h"], dims["d"]
    QH = T.placeholder((n, h, d1), name="QH")
    KH = T.placeholder((n, h, d1), name="KH")

    def udf(src, dst, eid):
        k = T.reduce_axis((0, d1), name="k")
        return T.compute(
            (h,), lambda hh: T.sum_reduce(QH[src, hh, k] * KH[dst, hh, k],
                                          axis=k),
            name="mh_dot")

    return UDFInstance(
        udf, {"QH": (n, h, d1), "KH": (n, h, d1)},
        lambda b, s, d, e: np.einsum("mhk,mhk->mh", b["QH"][s], b["KH"][d]),
        (h,))


def _exp_gate(dims: dict) -> UDFInstance:
    n, f = dims["n"], dims["f"]
    XV = T.placeholder((n, f), name="XV")

    def udf(src, dst, eid):
        return T.compute((f,), lambda i: T.exp(XV[src, i] * 0.25), name="expg")

    return UDFInstance(
        udf, {"XV": (n, f)},
        lambda b, s, d, e: np.exp(0.25 * b["XV"][s]),
        (f,))


UDF_FAMILIES: dict[str, UDFFamily] = {
    fam.name: fam for fam in [
        UDFFamily("copy_u", ("spmm", "sddmm"), _copy_u, dims=("f",)),
        UDFFamily("copy_e", ("spmm", "sddmm"), _copy_e, dims=("f",)),
        UDFFamily("u_mul_v", ("spmm", "sddmm"), _u_mul_v, dims=("f",)),
        UDFFamily("u_add_v_scaled", ("spmm", "sddmm"), _u_add_v_scaled,
                  dims=("f",)),
        UDFFamily("mlp", ("spmm",), _mlp, has_reduction=True,
                  dims=("f", "d")),
        UDFFamily("dot", ("spmm", "sddmm"), _dot, has_reduction=True,
                  dims=("d",)),
        UDFFamily("multihead_dot", ("sddmm",), _multihead_dot,
                  has_reduction=True, dims=("d", "h")),
        UDFFamily("exp_gate", ("spmm", "sddmm"), _exp_gate, dims=("f",)),
    ]
}

SPMM_AGGREGATIONS = ("sum", "max", "min", "mean", "prod")


# ----------------------------------------------------------------------
# FDS schedules
# ----------------------------------------------------------------------

def sample_fds_spec(rnd: random.Random, target: str,
                    has_reduction: bool) -> dict | None:
    """Sample an FDS spec legal for the target/UDF combination."""
    if target == "cpu":
        choices = [None, "cpu_tile", "cpu_multilevel"]
    else:
        choices = [None, "gpu_feature_thread", "gpu_multilevel"]
        if has_reduction:
            choices.append("gpu_tree_reduce")
    name = rnd.choice(choices)
    if name is None:
        return None
    spec: dict = {"name": name}
    if name == "cpu_tile":
        spec["factor"] = rnd.randint(1, 8)
    elif name == "cpu_multilevel":
        spec["out_factor"] = rnd.randint(1, 8)
        spec["reduce_factor"] = rnd.randint(1, 8)
    return spec


def make_fds(spec: dict | None) -> FDS | None:
    """Materialize an FDS spec (None = template default)."""
    if spec is None:
        return None
    name = spec["name"]
    if name == "cpu_tile":
        return cpu_tile_fds(int(spec.get("factor", 8)))
    if name == "cpu_multilevel":
        return cpu_multilevel_fds(int(spec.get("out_factor", 8)),
                                  int(spec.get("reduce_factor", 8)))
    if name == "gpu_feature_thread":
        return gpu_feature_thread_fds()
    if name == "gpu_tree_reduce":
        return gpu_tree_reduce_fds()
    if name == "gpu_multilevel":
        return gpu_multilevel_fds()
    raise ValueError(f"unknown FDS spec {name!r}")
