"""Differential fuzzing CLI.

Usage::

    PYTHONPATH=src python -m repro.testing.fuzz --trials 200 --seed 0
    PYTHONPATH=src python -m repro.testing.fuzz --replay '{"kind": ...}'

Runs ``--trials`` sampled (graph, UDF, aggregation, FDS, target) configs and
cross-checks each against the brute-force oracle and an independent numpy
reference.  On failure the config is shrunk to a minimal repro and the exact
``--replay`` command is printed; the process exits nonzero.

With ``--analyze``, the static analyzer's verdict is cross-checked too: a
config the ``analyze`` pass flags with error diagnostics must actually
diverge from a reference, otherwise the trial fails at stage ``analysis``
(an analyzer false positive) and is shrunk like any other failure.

With ``--fuse``, every config whose UDF family can head a fused
softmax-aggregate chain additionally runs the fused-vs-unfused whole-chain
differential (:func:`repro.testing.differential.run_fused_trial`): the same
five-stage program executed staged and as one fused edge sweep must agree
on both the aggregate output and the attention tensor.  Fused failures
shrink with the fused oracle as the predicate.

With ``--exec-strategy``, every SpMM config is additionally executed once
per segment-reduction strategy (``reduceat`` / ``bucketed`` / ``parallel``)
against the plain edge-loop oracle, plus the cross-strategy bit-parity
contract (:func:`repro.testing.differential.run_strategy_trial`).  The
same oracle then runs heterogeneous plans: per-chunk strategy maps
(``strategy:mixed:<a+b>`` failures) with bit-parity to ``reduceat``
whenever the map is order-preserving, and the adaptive cost-model
selector.  A strategy failure pins the offending strategy -- or the whole
per-chunk map -- into the config's options (``agg_strategy``) before
shrinking, so the minimal repro replays with the same assignment.

With ``--sanitize``, every config additionally runs under the dynamic
sanitizer executor (:func:`repro.testing.differential.run_sanitize_trial`):
the plan verifier's static verdicts (FG006-FG010 -- shard disjointness,
determinism class, gather bounds, shared-memory release) are cross-checked
against an instrumented run, per segment-reduction strategy for SpMM
configs.  A disagreement means the static proof or the runtime is lying;
either way the trial fails at stage ``sanitize:<strategy>``.
"""

from __future__ import annotations

import argparse
import sys

from repro.testing.differential import (
    DEFAULT_ATOL,
    TrialConfig,
    fusable_chain,
    replay_command,
    run_fused_trial,
    run_sanitize_trial,
    run_strategy_trial,
    run_trial,
    run_trials,
    shrink,
)

__all__ = ["main"]


def _print_coverage(coverage: dict, out=sys.stdout) -> None:
    for axis in ("kind", "target", "agg", "udf", "fused", "strategy",
                 "sanitize"):
        counts = coverage.get(axis, {})
        if not counts:
            continue
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  {axis:7s} {parts}", file=out)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential fuzzing of the template+UDF+FDS pipeline.")
    ap.add_argument("--trials", type=int, default=200,
                    help="number of sampled configs (default 200)")
    ap.add_argument("--seed", type=int, default=0,
                    help="PRNG seed; same seed + trials = same configs")
    ap.add_argument("--atol", type=float, default=DEFAULT_ATOL,
                    help="comparison tolerance (default %(default)g)")
    ap.add_argument("--replay", metavar="JSON", default=None,
                    help="re-run one config from its printed JSON")
    ap.add_argument("--no-shrink", action="store_true",
                    help="report failures without minimizing them")
    ap.add_argument("--analyze", action="store_true",
                    help="cross-check the static analyzer's verdict against "
                         "the numerics (analyzer errors must mean divergence)")
    ap.add_argument("--fuse", action="store_true",
                    help="also run the fused-vs-unfused whole-chain oracle "
                         "on every fusable config")
    ap.add_argument("--exec-strategy", action="store_true",
                    help="also run every SpMM config once per "
                         "segment-reduction strategy against the edge-loop "
                         "oracle (plus the cross-strategy parity contract)")
    ap.add_argument("--sanitize", action="store_true",
                    help="also run every config under the dynamic sanitizer "
                         "executor, cross-checking the plan verifier's "
                         "static verdicts (FG006-FG010) against an "
                         "instrumented run")
    args = ap.parse_args(argv)

    if args.replay is not None:
        try:
            cfg = TrialConfig.from_json(args.replay)
        except (ValueError, TypeError) as exc:
            print(f"error: invalid --replay payload: {exc}", file=sys.stderr)
            return 2
        res = run_trial(cfg, atol=args.atol,
                        analyzer_cross_check=args.analyze)
        if res.ok and args.fuse and fusable_chain(cfg):
            res = run_fused_trial(cfg, atol=args.atol)
        if res.ok and args.exec_strategy and cfg.kind == "spmm":
            res = run_strategy_trial(cfg, atol=args.atol)
        if res.ok and args.sanitize:
            res = run_sanitize_trial(cfg, atol=args.atol)
        if res.ok:
            print("replay PASSED")
            return 0
        print(f"replay FAILED at stage {res.stage}: {res.message}")
        return 1

    report = run_trials(args.trials, args.seed, atol=args.atol,
                        analyzer_cross_check=args.analyze,
                        fused_oracle=args.fuse,
                        strategy_oracle=args.exec_strategy,
                        sanitize_oracle=args.sanitize)
    print(f"{report.trials} trials, {len(report.failures)} failures "
          f"(seed {args.seed}, atol {args.atol:g})")
    _print_coverage(report.coverage)
    if report.ok:
        return 0

    for cfg, res in report.failures[:5]:
        print(f"\nFAIL [{res.stage}] {res.message}")
        if not args.no_shrink:
            if res.stage.startswith("fused"):
                cfg = shrink(cfg, lambda c: not run_fused_trial(
                    c, atol=args.atol).ok)
            elif res.stage.startswith("sanitize"):
                cfg = shrink(cfg, lambda c: not run_sanitize_trial(
                    c, atol=args.atol).ok)
            elif res.stage.startswith("strategy"):
                name = res.stage.split(":", 1)[-1]
                if name in ("parity", "build"):
                    cfg = shrink(cfg, lambda c: not run_strategy_trial(
                        c, atol=args.atol).ok)
                else:
                    # pin the failing strategy -- or the whole per-chunk
                    # map for mixed failures -- so the minimal repro
                    # replays through the ordinary oracle with
                    # agg_strategy set to the same assignment
                    from dataclasses import replace as _replace
                    pin = (name.split(":", 1)[1].split("+")
                           if name.startswith("mixed:") else name)
                    cfg = _replace(
                        cfg, options={**cfg.options, "agg_strategy": pin})
                    cfg = shrink(cfg, lambda c: not run_trial(
                        c, atol=args.atol).ok)
            else:
                cfg = shrink(cfg, lambda c: not run_trial(
                    c, atol=args.atol,
                    analyzer_cross_check=args.analyze).ok)
            print("minimal repro:")
        print(f"  {replay_command(cfg)}")
    if len(report.failures) > 5:
        print(f"\n... and {len(report.failures) - 5} more failures")
    return 1


if __name__ == "__main__":
    sys.exit(main())
