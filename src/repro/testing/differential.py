"""Differential trial driver: sample, compile, run, cross-check, shrink.

A :class:`TrialConfig` is a JSON-serializable description of one point in
the (graph x UDF x aggregation x FDS x target) space.  :func:`run_trial`
compiles it through :func:`repro.core.api.spmm` / ``sddmm``, runs the kernel,
and compares the output against **two** references:

1. the brute-force oracle of :mod:`repro.core.verify` (same expression
   evaluator, naive scatter loop), and
2. the UDF family's independent numpy reference combined by a plain Python
   edge loop (:func:`aggregate_edges`) -- sharing no code with the kernel.

:func:`shrink` greedily minimizes a failing config while it keeps failing,
and :func:`replay_command` prints the exact CLI invocation that reproduces
it (the config round-trips through JSON).
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.core import verify as V
from repro.core.api import sddmm, spmat, spmm
from repro.testing import generators as G

__all__ = [
    "TrialConfig",
    "TrialResult",
    "FuzzReport",
    "sample_config",
    "build_bindings",
    "aggregate_edges",
    "run_trial",
    "fusable_chain",
    "run_fused_trial",
    "run_strategy_trial",
    "run_sanitize_trial",
    "run_trials",
    "shrink",
    "replay_command",
]

DEFAULT_ATOL = 1e-5


@dataclass
class TrialConfig:
    """One sampled point of the differential test space (JSON round-trips)."""

    kind: str                      # "spmm" | "sddmm"
    target: str                    # "cpu" | "gpu"
    graph: dict                    # spec for generators.make_graph
    udf: str                       # UDF family name
    dims: dict                     # {"f": ..., "d": ..., "h": ...} as needed
    aggregation: str | None        # spmm only; None for sddmm
    fds: dict | None               # spec for generators.make_fds
    options: dict = field(default_factory=dict)
    data_seed: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TrialConfig":
        return cls(**json.loads(text))


@dataclass
class TrialResult:
    """Outcome of one trial."""

    ok: bool
    stage: str = "done"   # "build" | "run" | "oracle" | "reference" | "analysis"
    max_abs_diff: float = 0.0
    message: str = ""


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run."""

    trials: int
    failures: list  # [(TrialConfig, TrialResult), ...]
    coverage: dict  # {"udf": {...}, "target": {...}, "kind": {...}, "agg": {...}}

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------

def sample_config(rnd: random.Random) -> TrialConfig:
    """Sample one trial config from a seeded ``random.Random``."""
    kind = rnd.choice(("spmm", "spmm", "sddmm"))  # spmm has the larger space
    target = rnd.choice(("cpu", "gpu"))
    families = [f for f in G.UDF_FAMILIES.values() if kind in f.kinds]
    fam = rnd.choice(sorted(families, key=lambda f: f.name))
    dims = {}
    if "f" in fam.dims:
        dims["f"] = rnd.randint(1, 6)
    if "d" in fam.dims:
        dims["d"] = rnd.randint(1, 5)
    if "h" in fam.dims:
        dims["h"] = rnd.randint(1, 3)
    aggregation = rnd.choice(G.SPMM_AGGREGATIONS) if kind == "spmm" else None
    fds = G.sample_fds_spec(rnd, target, fam.has_reduction)
    options: dict = {}
    if kind == "spmm":
        if rnd.random() < 0.5:
            options["num_graph_partitions"] = rnd.randint(1, 3)
        if rnd.random() < 0.5:
            options["num_feature_partitions"] = rnd.randint(1, 2)
        if target == "gpu" and rnd.random() < 0.3:
            options["hybrid_partitioning"] = True
    else:
        if rnd.random() < 0.5:
            options["num_feature_partitions"] = rnd.randint(1, 2)
        if rnd.random() < 0.5:
            options["hilbert"] = rnd.random() < 0.5
    if rnd.random() < 0.25:
        options["chunk_edges"] = 8  # force multi-chunk execution
    return _clamp_options(TrialConfig(
        kind=kind, target=target, graph=sample_graph_spec(rnd),
        udf=fam.name, dims=dims, aggregation=aggregation, fds=fds,
        options=options, data_seed=rnd.randrange(2**31)))


def _clamp_options(cfg: TrialConfig) -> TrialConfig:
    """Keep sampled options inside the kernels' documented preconditions
    (e.g. ``partition_1d`` refuses more partitions than source vertices)."""
    opts = dict(cfg.options)
    if "num_graph_partitions" in opts:
        opts["num_graph_partitions"] = min(opts["num_graph_partitions"],
                                           int(cfg.graph["n_src"]))
    return replace(cfg, options=opts)


def sample_graph_spec(rnd: random.Random) -> dict:
    return G.sample_graph_spec(rnd)


def build_bindings(instance: G.UDFInstance, aggregation: str | None,
                   data_seed: int) -> dict:
    """Seeded input arrays for a UDF instance.

    ``prod`` aggregation gets values near 1 so products over high-degree
    rows stay inside float32 precision at the harness tolerance.
    """
    rng = np.random.default_rng(int(data_seed))
    out = {}
    for name, shape in instance.placeholders.items():
        if aggregation == "prod":
            arr = 1.0 + 0.05 * rng.standard_normal(shape)
        else:
            arr = rng.standard_normal(shape)
        out[name] = arr.astype(np.float32)
    return out


# ----------------------------------------------------------------------
# independent reference aggregation (plain Python edge loop)
# ----------------------------------------------------------------------

_IDENTITY = {"sum": 0.0, "max": -math.inf, "min": math.inf, "prod": 1.0}
_COMBINE = {
    "sum": lambda a, b: a + b,
    "max": np.maximum,
    "min": np.minimum,
    "prod": lambda a, b: a * b,
}


def aggregate_edges(msgs: np.ndarray, rows: np.ndarray, n_dst: int,
                    aggregation: str) -> np.ndarray:
    """Combine per-edge messages into per-destination rows, one edge at a
    time -- deliberately naive and independent of the kernel's vectorized
    segmented combine."""
    base = "sum" if aggregation == "mean" else aggregation
    out = np.full((n_dst,) + msgs.shape[1:], _IDENTITY[base], dtype=np.float64)
    combine = _COMBINE[base]
    for r, v in zip(rows, msgs):
        out[r] = combine(out[r], v.astype(np.float64))
    deg = np.bincount(rows, minlength=n_dst)
    out[deg == 0] = 0.0
    if aggregation == "mean":
        out /= np.maximum(deg, 1).reshape((-1,) + (1,) * (out.ndim - 1))
    return out.astype(np.float32)


# ----------------------------------------------------------------------
# running one trial
# ----------------------------------------------------------------------

def _materialize(cfg: TrialConfig, registry=None):
    registry = registry or G.UDF_FAMILIES
    fam = registry[cfg.udf]
    csr = G.make_graph(cfg.graph)
    dims = dict(cfg.dims)
    dims["n"] = max(int(cfg.graph["n_src"]), int(cfg.graph["n_dst"]))
    dims["m"] = max(int(csr.nnz), 1)
    instance = fam.make(dims)
    return csr, instance


def _build_kernel(cfg: TrialConfig, csr, instance):
    """Compile a config's kernel through the public builders.

    ``options["agg_strategy"]`` is not a builder kwarg: it is popped and
    pinned on the built kernel (the runtime engine's per-kernel strategy
    override).  Always assigned -- the shared kernel cache returns the same
    instance for identical specs, so a leftover pin from an earlier trial
    must be cleared.
    """
    adj = spmat(csr)
    fds = G.make_fds(cfg.fds)
    opts = dict(cfg.options)
    strategy = opts.pop("agg_strategy", None)
    if cfg.kind == "spmm":
        kernel = spmm(adj, instance.udf, aggregation=cfg.aggregation,
                      target=cfg.target, fds=fds, **opts)
        kernel.agg_strategy = strategy
    else:
        kernel = sddmm(adj, instance.udf, target=cfg.target, fds=fds, **opts)
    return kernel


def _analysis_errors(kernel) -> tuple:
    """Error-severity diagnostics of a compiled kernel's ``analyze`` pass.

    A seam for tests: monkeypatch this to inject analyzer verdicts without
    constructing genuinely racy kernels through the public builders.
    """
    from repro.tensorir.analysis import analyze_kernel

    return analyze_kernel(kernel).errors


def run_trial(cfg: TrialConfig, atol: float = DEFAULT_ATOL,
              registry=None, *,
              analyzer_cross_check: bool = False) -> TrialResult:
    """Compile and run one config; cross-check against both references.

    With ``analyzer_cross_check=True``, the static analyzer's verdict is
    validated against the numerics: a config the analyzer calls unsafe
    (error-severity diagnostics) must actually diverge from a reference.
    If the kernel nevertheless matches both references, the trial fails at
    stage ``"analysis"`` -- a false positive to be shrunk and reported,
    keeping the lint trustworthy enough for strict mode and tuner pruning.
    """
    try:
        csr, instance = _materialize(cfg, registry)
        kernel = _build_kernel(cfg, csr, instance)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the fuzzer
        return TrialResult(False, stage="build",
                           message=f"{type(exc).__name__}: {exc}")

    bindings = build_bindings(instance, cfg.aggregation, cfg.data_seed)
    try:
        got = kernel.run(bindings)
    except Exception as exc:  # noqa: BLE001
        return TrialResult(False, stage="run",
                           message=f"{type(exc).__name__}: {exc}")

    # 1) brute-force oracle (shared evaluator, naive combine)
    if cfg.kind == "spmm":
        oracle = V.reference_spmm(kernel, bindings)
    else:
        oracle = V.reference_sddmm(kernel, bindings)
    if not np.allclose(got, oracle, atol=atol, rtol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - oracle)))
        return TrialResult(False, stage="oracle", max_abs_diff=worst,
                           message=f"kernel vs verify oracle: max abs diff "
                                   f"{worst:.3g} > atol {atol:g}")

    # 2) independent numpy reference (no shared code with the kernel)
    rows = csr.row_of_edge()
    msgs = instance.reference(bindings, csr.indices, rows, csr.edge_ids)
    msgs = np.asarray(msgs, dtype=np.float32).reshape(
        (csr.nnz,) + instance.out_shape)
    if cfg.kind == "spmm":
        ref = aggregate_edges(msgs, rows, csr.shape[0], cfg.aggregation)
    else:
        ref = np.zeros((csr.nnz,) + instance.out_shape, dtype=np.float32)
        ref[csr.edge_ids] = msgs
    if not np.allclose(got, ref, atol=atol, rtol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - ref))) if got.size else 0.0
        return TrialResult(False, stage="reference", max_abs_diff=worst,
                           message=f"kernel vs independent reference: max abs "
                                   f"diff {worst:.3g} > atol {atol:g}")

    if analyzer_cross_check:
        errors = _analysis_errors(kernel)
        if errors:
            listing = "; ".join(d.render() for d in errors)
            return TrialResult(
                False, stage="analysis",
                message=f"analyzer reported {len(errors)} error diagnostic"
                        f"{'s' if len(errors) != 1 else ''} but the kernel "
                        f"matched both references (analyzer false positive): "
                        f"{listing}")
    return TrialResult(True)


# ----------------------------------------------------------------------
# fused-vs-unfused oracle (whole-chain differential, repro.core.fusion)
# ----------------------------------------------------------------------

def fusable_chain(cfg: TrialConfig, registry=None) -> bool:
    """Whether a config's UDF family can head a fused softmax-aggregate
    chain: it must trace as an SDDMM stage (the chain's score producer) and
    the fused sweep is CPU-only."""
    registry = registry or G.UDF_FAMILIES
    fam = registry[cfg.udf]
    return "sddmm" in fam.kinds and cfg.target == "cpu"


def run_fused_trial(cfg: TrialConfig, atol: float = DEFAULT_ATOL,
                    registry=None) -> TrialResult:
    """Differential oracle for whole-chain fusion.

    Builds the 5-stage chain *scores (family UDF) -> max -> exp-sum ->
    normalize -> weighted aggregate* twice: staged (four independent
    kernels plus the staged :class:`~repro.core.softmax.EdgeSoftmax`) and
    fused (:func:`repro.core.fusion.compile_fused`, one edge sweep with the
    score stage elided), then compares the aggregate output **and** the
    kept attention tensor at the harness tolerance.

    Failure stages are prefixed ``fused`` so the shrinker can re-run the
    right oracle.
    """
    from repro import tensorir as T
    from repro.core.builtins import u_mul_e_msg
    from repro.core.compile import KernelCache
    from repro.core.fusion import KernelGraph, compile_fused
    from repro.core.softmax import EdgeSoftmax

    try:
        csr, instance = _materialize(cfg, registry)
        adj = spmat(csr)
        if len(instance.out_shape) != 1:
            raise ValueError(
                f"chain scores must be 1-D per edge, got {instance.out_shape}")
        w = int(instance.out_shape[0])
        m, n_dst, n_src = csr.nnz, csr.shape[0], csr.shape[1]
        cache = KernelCache()
        bindings = build_bindings(instance, None, cfg.data_seed)
        z = np.random.default_rng(int(cfg.data_seed) + 1).standard_normal(
            (n_src, w)).astype(np.float32)

        # -- staged reference: independent kernels, staged softmax --------
        score_kernel = sddmm(adj, instance.udf, target="cpu", cache=cache)
        scores = np.asarray(score_kernel.run(bindings),
                            dtype=np.float32).reshape(m, w)
        alpha_ref = EdgeSoftmax(adj, w, cache=cache,
                                fused=False).run(scores).reshape(m, w)
        ZV = T.placeholder((n_src, w), name="ZV")
        AL = T.placeholder((m, w), name="AL")
        out_ref = spmm(adj, u_mul_e_msg(ZV, AL), "sum", cache=cache).run(
            {"ZV": z, "AL": alpha_ref})

        # -- fused chain --------------------------------------------------
        FES = T.placeholder((max(m, 1), w), name="FES")
        FMAX = T.placeholder((n_dst, w), name="FMAX")
        FSUM = T.placeholder((n_dst, w), name="FSUM")
        FALPHA = T.placeholder((max(m, 1), w), name="FALPHA")

        def max_msg(src, dst, eid):
            return T.compute((w,), lambda i: FES[eid, i], name="fz_max")

        def expsum_msg(src, dst, eid):
            return T.compute((w,), lambda i: T.exp(FES[eid, i] - FMAX[dst, i]),
                             name="fz_expsum")

        def norm_edge(src, dst, eid):
            return T.compute(
                (w,),
                lambda i: T.exp(FES[eid, i] - FMAX[dst, i]) / FSUM[dst, i],
                name="fz_norm")

        kg = KernelGraph(adj, target="cpu", outputs=("FOUT",))
        kg.add_stage("FES", "sddmm", instance.udf)
        kg.add_stage("FMAX", "spmm", max_msg, aggregation="max")
        kg.add_stage("FSUM", "spmm", expsum_msg, aggregation="sum",
                     guard_zero=True)
        kg.add_stage("FALPHA", "sddmm", norm_edge)
        kg.add_stage("FOUT", "spmm", u_mul_e_msg(ZV, FALPHA),
                     aggregation="sum")
        chunk = int(cfg.options.get("chunk_edges", 0))
        fused = (compile_fused(kg, cache=cache, chunk_edges=chunk) if chunk
                 else compile_fused(kg, cache=cache))
    except Exception as exc:  # noqa: BLE001 - report, don't crash the fuzzer
        return TrialResult(False, stage="fused-build",
                           message=f"{type(exc).__name__}: {exc}")

    try:
        res = fused.run({**bindings, "ZV": z}, keep=("FALPHA",))
    except Exception as exc:  # noqa: BLE001
        return TrialResult(False, stage="fused-run",
                           message=f"{type(exc).__name__}: {exc}")

    out, alpha = res["FOUT"], res["FALPHA"]
    if not np.allclose(out, out_ref, atol=atol, rtol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(out - out_ref))) if out.size else 0.0
        return TrialResult(False, stage="fused-out", max_abs_diff=worst,
                           message=f"fused vs staged aggregate: max abs diff "
                                   f"{worst:.3g} > atol {atol:g}")
    if not np.allclose(alpha, alpha_ref, atol=atol, rtol=atol,
                       equal_nan=True):
        worst = (float(np.nanmax(np.abs(alpha - alpha_ref)))
                 if alpha.size else 0.0)
        return TrialResult(False, stage="fused-alpha", max_abs_diff=worst,
                           message=f"fused (kept) vs staged attention: max "
                                   f"abs diff {worst:.3g} > atol {atol:g}")
    return TrialResult(True, stage="fused")


# ----------------------------------------------------------------------
# execution-strategy oracle (every segment-reduction strategy, same config)
# ----------------------------------------------------------------------

#: per-chunk strategy maps the --exec-strategy oracle exercises; the
#: runtime assigns entries cyclically over a plan's chunks, so every map
#: yields a heterogeneous plan whenever the config chunks at all
MIXED_STRATEGY_MAPS = (("reduceat", "parallel"),
                       ("bucketed", "reduceat", "parallel"))


def run_strategy_trial(cfg: TrialConfig, atol: float = DEFAULT_ATOL,
                       registry=None) -> TrialResult:
    """Differential oracle for the runtime's segment-reduction strategies.

    Runs the config's SpMM kernel once per strategy (``reduceat`` /
    ``bucketed`` / ``parallel``, pinned via the kernel's ``agg_strategy``
    override) and checks each output against the plain Python edge-loop
    oracle (:func:`aggregate_edges`).  The parallel run gets a 4-worker
    pool so the sharded path is exercised whenever chunks are big enough.

    On top of per-strategy correctness, the cross-strategy parity contract
    is enforced: ``parallel`` must be bit-identical to ``reduceat`` (same
    ``reduceat`` primitive per shard, deterministic combine), and for
    order-insensitive reducers (max/min) ``bucketed`` must be too.

    Heterogeneous plans run the same gauntlet: each map in
    :data:`MIXED_STRATEGY_MAPS` is pinned as a per-chunk assignment and
    checked against the oracle, with bit-parity to ``reduceat`` whenever
    the map contains only order-preserving strategies (or the reducer is
    order-insensitive); ``adaptive`` cost-model selection is checked
    against the oracle too.

    Failure stages are ``strategy:<name>``, ``strategy:mixed:<a+b+...>``,
    ``strategy:adaptive`` or ``strategy:parity`` so the shrinker can pin
    the offending strategy (or whole map) while minimizing.
    """
    from repro.runtime.strategies import STRATEGY_NAMES
    from repro.tensorir.runtime import WorkPool

    if cfg.kind != "spmm":
        return TrialResult(True, stage="strategy-skipped")
    try:
        csr, instance = _materialize(cfg, registry)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the fuzzer
        return TrialResult(False, stage="strategy:build",
                           message=f"{type(exc).__name__}: {exc}")
    bindings = build_bindings(instance, cfg.aggregation, cfg.data_seed)
    rows = csr.row_of_edge()
    msgs = instance.reference(bindings, csr.indices, rows, csr.edge_ids)
    msgs = np.asarray(msgs, dtype=np.float32).reshape(
        (csr.nnz,) + instance.out_shape)
    ref = aggregate_edges(msgs, rows, csr.shape[0], cfg.aggregation)

    outputs = {}
    pool = WorkPool(4)
    try:
        for name in STRATEGY_NAMES:
            scfg = replace(cfg, options={**cfg.options, "agg_strategy": name})
            try:
                kernel = _build_kernel(scfg, csr, instance)
                got = kernel.run(
                    bindings, pool=pool if name == "parallel" else None)
            except Exception as exc:  # noqa: BLE001
                return TrialResult(False, stage=f"strategy:{name}",
                                   message=f"{type(exc).__name__}: {exc}")
            if not np.allclose(got, ref, atol=atol, rtol=atol,
                               equal_nan=True):
                worst = (float(np.nanmax(np.abs(got - ref)))
                         if got.size else 0.0)
                return TrialResult(
                    False, stage=f"strategy:{name}", max_abs_diff=worst,
                    message=f"strategy {name} vs edge-loop oracle: max abs "
                            f"diff {worst:.3g} > atol {atol:g}")
            outputs[name] = got

        # heterogeneous plans: explicit per-chunk maps, then adaptive
        for names in MIXED_STRATEGY_MAPS:
            label = "+".join(names)
            scfg = replace(cfg, options={**cfg.options,
                                         "agg_strategy": list(names)})
            try:
                kernel = _build_kernel(scfg, csr, instance)
                got = kernel.run(
                    bindings, pool=pool if "parallel" in names else None)
            except Exception as exc:  # noqa: BLE001
                return TrialResult(False, stage=f"strategy:mixed:{label}",
                                   message=f"{type(exc).__name__}: {exc}")
            if not np.allclose(got, ref, atol=atol, rtol=atol,
                               equal_nan=True):
                worst = (float(np.nanmax(np.abs(got - ref)))
                         if got.size else 0.0)
                return TrialResult(
                    False, stage=f"strategy:mixed:{label}",
                    max_abs_diff=worst,
                    message=f"mixed map {label} vs edge-loop oracle: max "
                            f"abs diff {worst:.3g} > atol {atol:g}")
            order_preserving = all(n in ("reduceat", "parallel")
                                   for n in names)
            if (order_preserving or cfg.aggregation in ("max", "min")) and \
                    not np.array_equal(got, outputs["reduceat"]):
                worst = float(np.max(np.abs(got - outputs["reduceat"])))
                return TrialResult(
                    False, stage="strategy:parity", max_abs_diff=worst,
                    message=f"mixed map {label} not bit-identical to "
                            f"reduceat (max abs diff {worst:.3g})")

        scfg = replace(cfg, options={**cfg.options,
                                     "agg_strategy": "adaptive"})
        try:
            kernel = _build_kernel(scfg, csr, instance)
            got = kernel.run(bindings, pool=pool)
        except Exception as exc:  # noqa: BLE001
            return TrialResult(False, stage="strategy:adaptive",
                               message=f"{type(exc).__name__}: {exc}")
        if not np.allclose(got, ref, atol=atol, rtol=atol, equal_nan=True):
            worst = (float(np.nanmax(np.abs(got - ref)))
                     if got.size else 0.0)
            return TrialResult(
                False, stage="strategy:adaptive", max_abs_diff=worst,
                message=f"adaptive selection vs edge-loop oracle: max abs "
                        f"diff {worst:.3g} > atol {atol:g}")
    finally:
        pool.shutdown()

    if not np.array_equal(outputs["parallel"], outputs["reduceat"]):
        worst = float(np.max(np.abs(outputs["parallel"]
                                    - outputs["reduceat"])))
        return TrialResult(
            False, stage="strategy:parity", max_abs_diff=worst,
            message=f"parallel not bit-identical to reduceat "
                    f"(max abs diff {worst:.3g})")
    if cfg.aggregation in ("max", "min") and \
            not np.array_equal(outputs["bucketed"], outputs["reduceat"]):
        worst = float(np.max(np.abs(outputs["bucketed"]
                                    - outputs["reduceat"])))
        return TrialResult(
            False, stage="strategy:parity", max_abs_diff=worst,
            message=f"bucketed {cfg.aggregation} not bit-identical to "
                    f"reduceat (max abs diff {worst:.3g})")
    return TrialResult(True, stage="strategy")


def run_sanitize_trial(cfg: TrialConfig, atol: float = DEFAULT_ATOL,
                       registry=None) -> TrialResult:
    """Sanitizer cross-check: the plan verifier's static verdicts must
    survive an instrumented run.

    Executes the config's kernel under the dynamic sanitizer executor
    (:func:`repro.runtime.verify.sanitizing`), which statically verifies
    every plan (FG006-FG010) and then instruments the actual execution:
    shard write-sets are tracked against the disjointness proof, combine
    results against the determinism classification, gather indices against
    the bounds proof, and shared-memory segments against the release
    guarantee.  Any disagreement is a harness bug -- either the verifier
    promised something the runtime does not deliver, or the instrumentation
    is wrong -- and fails the trial.

    SpMM configs run once per segment-reduction strategy (pinned via
    ``agg_strategy``; ``parallel`` gets a 4-worker pool) so every strategy's
    static contract is exercised; SDDMM configs run once.  Failure stages
    are ``sanitize:<strategy>`` / ``sanitize:sddmm``.
    """
    from repro.runtime.strategies import STRATEGY_NAMES
    from repro.runtime.verify import SanitizerError, sanitizing
    from repro.tensorir.analysis import AnalysisError
    from repro.tensorir.runtime import WorkPool

    try:
        csr, instance = _materialize(cfg, registry)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the fuzzer
        return TrialResult(False, stage="sanitize:build",
                           message=f"{type(exc).__name__}: {exc}")
    bindings = build_bindings(instance, cfg.aggregation, cfg.data_seed)

    # independent reference: the sanitizer must observe, never perturb
    rows = csr.row_of_edge()
    msgs = instance.reference(bindings, csr.indices, rows, csr.edge_ids)
    msgs = np.asarray(msgs, dtype=np.float32).reshape(
        (csr.nnz,) + instance.out_shape)
    if cfg.kind == "spmm":
        ref = aggregate_edges(msgs, rows, csr.shape[0], cfg.aggregation)
        names = STRATEGY_NAMES
        pool = WorkPool(4)
    else:
        ref = np.zeros((csr.nnz,) + instance.out_shape, dtype=np.float32)
        ref[csr.edge_ids] = msgs
        names = (None,)
        pool = None

    try:
        for name in names:
            stage = f"sanitize:{name}" if name else "sanitize:sddmm"
            scfg = (replace(cfg, options={**cfg.options, "agg_strategy": name})
                    if name else cfg)
            try:
                kernel = _build_kernel(scfg, csr, instance)
                with sanitizing():
                    got = kernel.run(
                        bindings, pool=pool if name == "parallel" else None)
            except SanitizerError as exc:
                return TrialResult(
                    False, stage=stage,
                    message=f"static verdict contradicted at runtime: {exc}")
            except AnalysisError as exc:
                return TrialResult(
                    False, stage=stage,
                    message=f"plan verifier rejected the plan: {exc}")
            except Exception as exc:  # noqa: BLE001
                return TrialResult(False, stage=stage,
                                   message=f"{type(exc).__name__}: {exc}")
            if not np.allclose(got, ref, atol=atol, rtol=atol,
                               equal_nan=True):
                worst = (float(np.nanmax(np.abs(got - ref)))
                         if got.size else 0.0)
                return TrialResult(
                    False, stage=stage, max_abs_diff=worst,
                    message=f"sanitized run diverged from the independent "
                            f"reference: max abs diff {worst:.3g} > atol "
                            f"{atol:g} (instrumentation perturbed execution)")
    finally:
        if pool is not None:
            pool.shutdown()
    return TrialResult(True, stage="sanitize")


def run_trials(trials: int, seed: int, atol: float = DEFAULT_ATOL,
               registry=None, on_failure=None, *,
               analyzer_cross_check: bool = False,
               fused_oracle: bool = False,
               strategy_oracle: bool = False,
               sanitize_oracle: bool = False) -> FuzzReport:
    """Run ``trials`` sampled configs; collect failures and coverage.

    With ``fused_oracle=True``, every config whose family can head a fused
    chain (see :func:`fusable_chain`) additionally runs the fused-vs-staged
    differential; coverage gains a ``"fused"`` axis.  With
    ``strategy_oracle=True``, every SpMM config additionally runs once per
    segment-reduction strategy against the edge-loop oracle
    (:func:`run_strategy_trial`); coverage gains a ``"strategy"`` axis.
    With ``sanitize_oracle=True``, every config additionally runs under the
    dynamic sanitizer executor (:func:`run_sanitize_trial`), cross-checking
    the plan verifier's static verdicts against instrumented execution;
    coverage gains a ``"sanitize"`` axis.
    """
    rnd = random.Random(seed)
    failures = []
    coverage = {"udf": {}, "target": {}, "kind": {}, "agg": {}}
    if fused_oracle:
        coverage["fused"] = {"checked": 0, "skipped": 0}
    if strategy_oracle:
        coverage["strategy"] = {"checked": 0, "skipped": 0}
    if sanitize_oracle:
        coverage["sanitize"] = {"checked": 0}

    def record(cfg, res):
        failures.append((cfg, res))
        if on_failure is not None:
            on_failure(cfg, res)

    for _ in range(trials):
        cfg = sample_config(rnd)
        res = run_trial(cfg, atol=atol, registry=registry,
                        analyzer_cross_check=analyzer_cross_check)
        coverage["udf"][cfg.udf] = coverage["udf"].get(cfg.udf, 0) + 1
        coverage["target"][cfg.target] = coverage["target"].get(cfg.target, 0) + 1
        coverage["kind"][cfg.kind] = coverage["kind"].get(cfg.kind, 0) + 1
        agg = cfg.aggregation or "-"
        coverage["agg"][agg] = coverage["agg"].get(agg, 0) + 1
        if not res.ok:
            record(cfg, res)
            continue
        if fused_oracle:
            if fusable_chain(cfg, registry):
                coverage["fused"]["checked"] += 1
                fres = run_fused_trial(cfg, atol=atol, registry=registry)
                if not fres.ok:
                    record(cfg, fres)
            else:
                coverage["fused"]["skipped"] += 1
        if strategy_oracle:
            if cfg.kind == "spmm":
                coverage["strategy"]["checked"] += 1
                sres = run_strategy_trial(cfg, atol=atol, registry=registry)
                if not sres.ok:
                    record(cfg, sres)
            else:
                coverage["strategy"]["skipped"] += 1
        if sanitize_oracle:
            coverage["sanitize"]["checked"] += 1
            zres = run_sanitize_trial(cfg, atol=atol, registry=registry)
            if not zres.ok:
                record(cfg, zres)
    return FuzzReport(trials=trials, failures=failures, coverage=coverage)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def _shrink_candidates(cfg: TrialConfig):
    """Yield simplified variants of ``cfg``, most aggressive first."""
    if cfg.fds is not None:
        yield replace(cfg, fds=None)
    if cfg.options:
        yield replace(cfg, options={})
        if "agg_strategy" in cfg.options and len(cfg.options) > 1:
            # strategy-pinned failures: drop everything but the strategy
            yield replace(
                cfg, options={"agg_strategy": cfg.options["agg_strategy"]})
    if cfg.kind == "spmm" and cfg.aggregation != "sum":
        yield replace(cfg, aggregation="sum")
    if cfg.target != "cpu":
        yield replace(cfg, target="cpu", fds=None)
    if cfg.data_seed != 0:
        yield replace(cfg, data_seed=0)
    g = cfg.graph
    if g["family"] != "random":
        yield replace(cfg, graph={**g, "family": "random"})
    if g["seed"] != 0:
        yield replace(cfg, graph={**g, "seed": 0})
    if g["m"] > 0:
        yield replace(cfg, graph={**g, "m": g["m"] // 2})
    for key in ("n_src", "n_dst"):
        if g[key] > 1:
            yield _clamp_options(
                replace(cfg, graph={**g, key: max(1, g[key] // 2)}))
    for dim, val in cfg.dims.items():
        if val > 1:
            yield replace(cfg, dims={**cfg.dims, dim: max(1, val // 2)})


def shrink(cfg: TrialConfig, fails, max_evals: int = 200) -> TrialConfig:
    """Greedily minimize ``cfg`` while ``fails(candidate)`` stays True.

    ``fails`` is a predicate (e.g. ``lambda c: not run_trial(c).ok``).
    Deterministic: candidates are tried in a fixed order until a full pass
    accepts none, or the evaluation budget runs out.
    """
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _shrink_candidates(cfg):
            if evals >= max_evals:
                break
            evals += 1
            if fails(cand):
                cfg = cand
                improved = True
                break
    return cfg


def replay_command(cfg: TrialConfig) -> str:
    """The CLI invocation that re-runs exactly this config."""
    return ("PYTHONPATH=src python -m repro.testing.fuzz --replay "
            f"'{cfg.to_json()}'")
