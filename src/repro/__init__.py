"""FeatGraph reproduction: a flexible and efficient backend for GNN systems.

Reimplements the system of *FeatGraph: A Flexible and Efficient Backend for
Graph Neural Network Systems* (Hu et al., SC 2020) in pure Python, together
with every substrate it depends on:

- :mod:`repro.tensorir` -- a mini tensor compiler (the TVM stand-in).
- :mod:`repro.graph` -- sparse formats, partitioning, Hilbert traversal,
  synthetic datasets.
- :mod:`repro.hwsim` -- CPU/GPU machine models (the Xeon/V100 stand-ins).
- :mod:`repro.core` -- FeatGraph itself: generalized SpMM/SDDMM templates,
  feature dimension schedules, prebuilt kernels, the grid tuner.
- :mod:`repro.baselines` -- Ligra-, Gunrock-, MKL- and cuSPARSE-like
  comparison systems.
- :mod:`repro.minidgl` -- a DGL-like GNN framework with autodiff, used for
  the end-to-end experiments.
- :mod:`repro.bench` -- the harness behind the ``benchmarks/`` suite.

Quickstart::

    import numpy as np
    import repro.core as featgraph
    from repro.graph import from_edges

    n = 1000
    rng = np.random.default_rng(0)
    src, dst = rng.integers(0, n, 20_000), rng.integers(0, n, 20_000)
    A = from_edges(n, n, src, dst)
    kernel = featgraph.kernels.gcn_aggregation(A, n, feature_len=64)
    H = kernel.run({"XV": rng.random((n, 64), dtype=np.float32)})
    print(kernel.cost())          # machine-model execution time
"""

__version__ = "1.0.0"

__all__ = [
    "tensorir",
    "graph",
    "hwsim",
    "core",
    "baselines",
    "minidgl",
    "bench",
]
