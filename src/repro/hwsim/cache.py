"""Trace-driven set-associative cache simulator.

Used by the tests and the Fig. 11 ablation bench to validate the analytic
hit-rate estimates in :mod:`repro.hwsim.cpu` against an actual LRU cache run
over the true memory access stream of a (small) kernel execution.

Addresses are byte addresses; :meth:`CacheSim.access_array` replays a
vectorized batch of accesses, which keeps simulation of millions of accesses
tolerable in Python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CacheSim", "CacheHierarchy"]


class CacheSim:
    """A set-associative LRU cache over 64-byte lines."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64, ways: int = 8):
        if capacity_bytes < line_bytes * ways:
            raise ValueError("capacity must hold at least one full set")
        self.line_bytes = int(line_bytes)
        self.ways = int(ways)
        self.num_sets = capacity_bytes // (line_bytes * ways)
        if self.num_sets < 1:
            raise ValueError("invalid cache geometry")
        # tags[set, way]; lru[set, way] = age counters (higher = more recent)
        self.tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.ages = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self.clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def reset_counters(self):
        self.hits = 0
        self.misses = 0

    def flush(self):
        self.tags.fill(-1)
        self.ages.fill(0)
        self.reset_counters()

    def access(self, addr: int) -> bool:
        """Access one byte address. Returns True on hit."""
        line = addr // self.line_bytes
        s = line % self.num_sets
        tag = line // self.num_sets
        self.clock += 1
        row = self.tags[s]
        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            self.ages[s, hit_ways[0]] = self.clock
            self.hits += 1
            return True
        victim = int(np.argmin(self.ages[s]))
        self.tags[s, victim] = tag
        self.ages[s, victim] = self.clock
        self.misses += 1
        return False

    def access_array(self, addrs: np.ndarray) -> int:
        """Replay a sequence of byte addresses; returns the number of hits.

        Consecutive accesses to the same line are deduplicated first (they
        would trivially hit), then the remaining stream is simulated in order.
        """
        lines = np.asarray(addrs, dtype=np.int64) // self.line_bytes
        if lines.size == 0:
            return 0
        keep = np.empty(lines.shape, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        dedup_hits = int(lines.size - keep.sum())
        self.hits += dedup_hits
        total = dedup_hits
        for line in lines[keep]:
            s = line % self.num_sets
            tag = line // self.num_sets
            self.clock += 1
            row = self.tags[s]
            w = -1
            for j in range(self.ways):
                if row[j] == tag:
                    w = j
                    break
            if w >= 0:
                self.ages[s, w] = self.clock
                self.hits += 1
                total += 1
            else:
                victim = int(np.argmin(self.ages[s]))
                self.tags[s, victim] = tag
                self.ages[s, victim] = self.clock
                self.misses += 1
        return total

    @property
    def hit_rate(self) -> float:
        n = self.hits + self.misses
        return self.hits / n if n else 0.0


class CacheHierarchy:
    """A two-level hierarchy (private L2-like + shared LLC-like).

    An access missing the first level falls through to the second.  Used to
    study the paper's claim that "the entire cache could be occupied by just
    a few feature tensors" for feature-dimension-blind traversal.
    """

    def __init__(self, l1_bytes: int = 1024 * 1024, llc_bytes: int = 25 * 1024 * 1024,
                 line_bytes: int = 64):
        self.l1 = CacheSim(l1_bytes, line_bytes)
        self.llc = CacheSim(llc_bytes, line_bytes, ways=16)

    def access(self, addr: int) -> str:
        """Returns "l1", "llc", or "dram" for where the access was served."""
        if self.l1.access(addr):
            return "l1"
        if self.llc.access(addr):
            return "llc"
        return "dram"

    def dram_accesses(self) -> int:
        return self.llc.misses

    def flush(self):
        self.l1.flush()
        self.llc.flush()
