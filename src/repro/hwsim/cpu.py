"""Analytic CPU kernel-time model.

Models the execution time of generalized SpMM / SDDMM kernels on a Xeon-class
CPU from first-principles mechanisms, so that the paper's optimizations move
the modeled time for the modeled reason:

- **Working-set cache fit** -- an edge's feature-row access hits cache with a
  probability derived from the per-(graph-partition, feature-tile) working
  set versus the cache hierarchy, plus a degree-coverage term (high-degree
  rows stay resident).  1D graph partitioning and feature-dimension tiling
  shrink the working set; that is the entire point of paper Figs. 6/11/14.
- **Merge cost** -- with ``np`` graph partitions, partial results are written
  and re-read once per partition (paper Fig. 6: halving the partitions saves
  50% of merge).
- **Adjacency re-traversal** -- ``nf`` feature tiles re-read the graph
  topology ``nf`` times (the tiling trade-off in Sec. III-C1).
- **Feature-dimension-blind frameworks** (Ligra) pay scalar arithmetic,
  per-edge scheduling overhead, and fully exposed miss latency.
- **Threading** -- cooperative scheduling (all threads on one partition,
  FeatGraph's strategy, Sec. IV-A) keeps the full LLC per working set, while
  partition-per-thread / feature-blind parallelism divides the cache and
  inflates miss latency with contention (Fig. 10).

Calibration: the framework parameter sets (:data:`FEATGRAPH_CPU`,
:data:`LIGRA_CPU`, :data:`MKL_CPU`) were fit once against the single-threaded
absolute numbers in paper Table III and are never tuned per benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec
from repro.hwsim.stats import GraphStats

__all__ = [
    "CPUFrameParams",
    "FEATGRAPH_CPU",
    "LIGRA_CPU",
    "MKL_CPU",
    "spmm_time",
    "sddmm_time",
    "row_hit_probability",
]

F32 = 4  # bytes per feature element
IDX = 4  # bytes per column index


@dataclass(frozen=True)
class CPUFrameParams:
    """Execution-style parameters of a CPU graph-kernel framework."""

    name: str
    #: fixed scheduling cost per edge, cycles
    per_edge_overhead: float
    #: True if the feature loop is SIMD-vectorized (whitebox UDF)
    simd: bool
    #: fraction of miss latency not hidden by prefetch/ILP
    latency_exposure: float
    #: fraction of DRAM traffic not overlapped with compute
    mem_exposure: float
    #: True if threads cooperate on one partition (LLC-contention avoiding)
    cooperative_threads: bool

    def with_(self, **kw) -> "CPUFrameParams":
        return replace(self, **kw)


FEATGRAPH_CPU = CPUFrameParams(
    name="featgraph", per_edge_overhead=3.0, simd=True,
    latency_exposure=0.3, mem_exposure=0.5, cooperative_threads=True,
)
LIGRA_CPU = CPUFrameParams(
    name="ligra", per_edge_overhead=8.0, simd=False,
    latency_exposure=0.4, mem_exposure=0.5, cooperative_threads=False,
)
MKL_CPU = CPUFrameParams(
    name="mkl", per_edge_overhead=2.0, simd=True,
    latency_exposure=0.25, mem_exposure=1.0, cooperative_threads=False,
)

#: effectiveness discounts: LRU is not an optimal top-k row cache
LLC_EFFICIENCY = 0.85
COVERAGE_EFFICIENCY = 0.5


def row_hit_probability(
    spec: CPUSpec,
    stats: GraphStats,
    rows_in_scope: float,
    row_bytes: float,
    threads: int = 1,
    cooperative: bool = True,
    locality_boost: float = 1.0,
) -> float:
    """Probability that an edge's feature-row access hits cache.

    ``rows_in_scope`` is the number of distinct rows the current
    (partition, tile) pass touches; ``row_bytes`` the bytes per row in this
    pass.  ``locality_boost`` scales effective capacity for traversal orders
    with extra locality (Hilbert curve).
    """
    if rows_in_scope <= 0:
        return 1.0
    working_set = rows_in_scope * row_bytes
    llc = spec.llc_bytes if (cooperative or threads <= 1) else spec.llc_bytes / threads
    llc *= locality_boost
    l2 = spec.l2_bytes * locality_boost
    fit = max(
        min(1.0, l2 / working_set),
        min(1.0, llc * LLC_EFFICIENCY / working_set),
    )
    # Degree-coverage: rows that fit in LLC capture the hottest sources.
    k = int(llc // max(row_bytes, 1))
    cov = stats.coverage_src(k) * COVERAGE_EFFICIENCY
    return min(1.0, max(fit, cov))


def _thread_scaling(spec: CPUSpec, frame: CPUFrameParams, threads: int):
    """(compute divisor, bandwidth, miss-latency multiplier) for T threads."""
    threads = max(1, int(threads))
    bw = min(threads * spec.dram_bw_single, spec.dram_bw_peak)
    if frame.cooperative_threads:
        # Cooperative partition processing: near-linear compute scaling with a
        # small per-partition barrier cost folded in elsewhere.
        compute_div = threads * (1.0 - 0.015 * (threads - 1))
        lat_mult = 1.0
    else:
        compute_div = threads * (1.0 - 0.02 * (threads - 1))
        # Independent threads thrash the shared LLC and memory controllers.
        lat_mult = 1.0 + (threads - 1) / 8.0
    return max(1.0, compute_div), bw, lat_mult


def spmm_time(
    spec: CPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    frame: CPUFrameParams,
    udf_flops_per_edge: float = 0.0,
    reads_dst: bool = False,
    num_graph_partitions: int = 1,
    num_feature_partitions: int = 1,
    threads: int = 1,
) -> CostReport:
    """Modeled time of one generalized-SpMM execution.

    ``feature_len`` is the output feature width per vertex; ``udf_flops_per_edge``
    counts arithmetic beyond the load+accumulate per output element (0 for
    GCN aggregation, ``2*d1*d2`` for MLP aggregation).
    """
    f = int(feature_len)
    np_parts = max(1, int(num_graph_partitions))
    nf = max(1, min(int(num_feature_partitions), f))
    m, n_src, n_dst = stats.n_edges, stats.n_src, stats.n_dst
    ft = math.ceil(f / nf)

    # --- cache behaviour of the src-feature gather -----------------------
    rows_per_part = n_src / np_parts
    p_hit = row_hit_probability(
        spec, stats, rows_per_part, ft * F32,
        threads=threads, cooperative=frame.cooperative_threads,
    )
    p_miss = 1.0 - p_hit

    # --- DRAM traffic -----------------------------------------------------
    sides = 2 if reads_dst else 1
    bytes_src = sides * (n_src * f * F32 + p_miss * max(0, m - n_src) * f * F32)
    bytes_adj = nf * (m * IDX + (n_dst + 1) * 8)
    if np_parts > 1:
        bytes_out = 2.0 * np_parts * n_dst * f * F32  # write partials + merge
    else:
        bytes_out = n_dst * f * F32
    dram_bytes = bytes_src + bytes_adj + bytes_out

    # --- cycles -------------------------------------------------------------
    gather_rate = spec.gather_elems_per_cycle if frame.simd else 1.0 / 1.6
    flop_rate = spec.simd_flops_per_cycle if frame.simd else spec.scalar_flops_per_cycle
    gather_elems = sides * m * f
    compute_cycles = (
        m * frame.per_edge_overhead
        + gather_elems / gather_rate
        + m * udf_flops_per_edge / flop_rate
    )
    compute_div, bw, lat_mult = _thread_scaling(spec, frame, threads)
    stall_cycles = m * p_miss * frame.latency_exposure * spec.miss_latency_cycles * lat_mult
    # Per-partition pass overhead (loop restart, thread barrier).
    sync_cycles = np_parts * nf * 2e4 * threads

    compute_s = compute_cycles / spec.freq_hz / compute_div
    stall_s = stall_cycles / spec.freq_hz / compute_div
    mem_s = dram_bytes / bw
    total = compute_s + stall_s + frame.mem_exposure * mem_s + sync_cycles / spec.freq_hz
    return CostReport(
        seconds=total,
        compute_seconds=compute_s,
        memory_seconds=mem_s,
        stall_seconds=stall_s,
        dram_bytes=dram_bytes,
        flops=m * (udf_flops_per_edge + f),
        detail={
            "p_hit": p_hit,
            "bytes_src": bytes_src,
            "bytes_adj": bytes_adj,
            "bytes_out_merge": bytes_out,
            "graph_partitions": np_parts,
            "feature_partitions": nf,
            "threads": threads,
        },
    )


def sddmm_time(
    spec: CPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    frame: CPUFrameParams,
    udf_flops_per_edge: float | None = None,
    out_width: int = 1,
    num_feature_partitions: int = 1,
    hilbert: bool = False,
    threads: int = 1,
) -> CostReport:
    """Modeled time of one generalized-SDDMM execution.

    Edge-wise computation reading both endpoint feature rows of width
    ``feature_len`` and writing ``out_width`` values per edge.  ``hilbert``
    enables the Hilbert-curve traversal (locality in both src and dst).
    """
    f = int(feature_len)
    nf = max(1, min(int(num_feature_partitions), f))
    m, n_src, n_dst = stats.n_edges, stats.n_src, stats.n_dst
    ft = math.ceil(f / nf)
    if udf_flops_per_edge is None:
        udf_flops_per_edge = 2.0 * f  # dot product default

    # src access is random in CSR order; dst is quasi-sequential.  Hilbert
    # traversal makes both sides block-local (paper Sec. III-C1): the src
    # side gains effective capacity, the dst side stays close to resident.
    boost = 4.0 if hilbert else 1.0
    p_hit_src = row_hit_probability(
        spec, stats, n_src, ft * F32, threads=threads,
        cooperative=frame.cooperative_threads, locality_boost=boost,
    )
    p_hit_dst = 1.0 if not hilbert else max(p_hit_src, 0.95)
    p_miss = 0.5 * ((1 - p_hit_src) + (1 - p_hit_dst))

    bytes_feat = (
        n_src * f * F32 + (1 - p_hit_src) * max(0, m - n_src) * f * F32
        + n_dst * f * F32 + (1 - p_hit_dst) * max(0, m - n_dst) * f * F32
    )
    bytes_adj = nf * (m * 2 * IDX)
    bytes_out = m * out_width * F32
    dram_bytes = bytes_feat + bytes_adj + bytes_out

    gather_rate = spec.gather_elems_per_cycle if frame.simd else 1.0 / 1.6
    flop_rate = spec.simd_flops_per_cycle if frame.simd else spec.scalar_flops_per_cycle
    compute_cycles = (
        m * frame.per_edge_overhead
        + 2 * m * f / gather_rate
        + m * udf_flops_per_edge / flop_rate
    )
    compute_div, bw, lat_mult = _thread_scaling(spec, frame, threads)
    stall_cycles = m * p_miss * frame.latency_exposure * spec.miss_latency_cycles * lat_mult
    sync_cycles = nf * 2e4 * threads

    compute_s = compute_cycles / spec.freq_hz / compute_div
    stall_s = stall_cycles / spec.freq_hz / compute_div
    mem_s = dram_bytes / bw
    total = compute_s + stall_s + frame.mem_exposure * mem_s + sync_cycles / spec.freq_hz
    return CostReport(
        seconds=total,
        compute_seconds=compute_s,
        memory_seconds=mem_s,
        stall_seconds=stall_s,
        dram_bytes=dram_bytes,
        flops=m * udf_flops_per_edge,
        detail={
            "p_hit_src": p_hit_src,
            "p_hit_dst": p_hit_dst,
            "hilbert": hilbert,
            "feature_partitions": nf,
            "threads": threads,
        },
    )
