"""Cost report structure returned by the machine models."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostReport"]


@dataclass
class CostReport:
    """Modeled execution cost of one kernel invocation.

    ``seconds`` is the headline number; the remaining fields break it down so
    ablation benches can attribute changes to a mechanism.
    """

    seconds: float
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0
    stall_seconds: float = 0.0
    dram_bytes: float = 0.0
    flops: float = 0.0
    detail: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.seconds < 0:
            raise ValueError("negative modeled time")

    @property
    def ms(self) -> float:
        return self.seconds * 1e3

    def scaled(self, factor: float) -> "CostReport":
        """Uniformly scale the report (used for multi-run aggregation)."""
        return CostReport(
            seconds=self.seconds * factor,
            compute_seconds=self.compute_seconds * factor,
            memory_seconds=self.memory_seconds * factor,
            stall_seconds=self.stall_seconds * factor,
            dram_bytes=self.dram_bytes * factor,
            flops=self.flops * factor,
            detail=dict(self.detail),
        )

    def __add__(self, other: "CostReport") -> "CostReport":
        if not isinstance(other, CostReport):
            return NotImplemented
        return CostReport(
            seconds=self.seconds + other.seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            memory_seconds=self.memory_seconds + other.memory_seconds,
            stall_seconds=self.stall_seconds + other.stall_seconds,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            flops=self.flops + other.flops,
            detail={**self.detail, **other.detail},
        )

    def explain(self) -> str:
        """Multi-line human-readable breakdown (roofline-style)."""
        total = max(self.seconds, 1e-30)
        lines = [f"modeled time: {self.seconds * 1e3:.3f} ms"]
        for label, value in (("compute", self.compute_seconds),
                             ("memory", self.memory_seconds),
                             ("stalls", self.stall_seconds)):
            lines.append(f"  {label:<8} {value * 1e3:10.3f} ms "
                         f"({100 * value / total:5.1f}% of total)")
        if self.dram_bytes:
            lines.append(f"  traffic  {self.dram_bytes / 1e9:10.3f} GB")
        if self.flops:
            lines.append(f"  work     {self.flops / 1e9:10.3f} Gflop "
                         f"({self.flops / total / 1e9:.1f} Gflop/s effective)")
        for key, value in self.detail.items():
            lines.append(f"  {key} = {value}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"CostReport({self.seconds * 1e3:.3f} ms, "
            f"compute={self.compute_seconds * 1e3:.3f} ms, "
            f"mem={self.memory_seconds * 1e3:.3f} ms, "
            f"stall={self.stall_seconds * 1e3:.3f} ms)"
        )
