"""Graph statistics consumed by the analytic machine models.

The models never touch edge lists at cost-evaluation time; they work from a
compact :class:`GraphStats` summary -- sizes, degree moments, and the
*degree-coverage curve*: ``coverage(k)`` = fraction of all edges whose source
vertex ranks in the top ``k`` by out-degree.  The coverage curve drives the
cache-reuse estimates (a cache that can hold ``k`` feature rows captures at
best ``coverage(k)`` of the edge-side reads) and the hybrid-partitioning
benefit on GPU (pinning high-degree rows in shared memory).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GraphStats"]


class GraphStats:
    """Compact degree/locality summary of a sparse adjacency matrix."""

    def __init__(self, n_src: int, n_dst: int, n_edges: int,
                 src_degrees: np.ndarray, dst_degrees: np.ndarray):
        if n_edges < 0 or n_src <= 0 or n_dst <= 0:
            raise ValueError("invalid graph dimensions")
        self.n_src = int(n_src)
        self.n_dst = int(n_dst)
        self.n_edges = int(n_edges)
        src_degrees = np.asarray(src_degrees, dtype=np.int64)
        dst_degrees = np.asarray(dst_degrees, dtype=np.int64)
        if src_degrees.sum() != n_edges or dst_degrees.sum() != n_edges:
            raise ValueError("degree arrays do not sum to the edge count")
        self.avg_src_degree = n_edges / n_src
        self.avg_dst_degree = n_edges / n_dst
        self.max_src_degree = int(src_degrees.max(initial=0))
        self.max_dst_degree = int(dst_degrees.max(initial=0))
        # Cumulative edge coverage by source vertices sorted by degree, and
        # the same for destinations.  Stored as normalized curves.
        self._src_cum = self._cum_coverage(src_degrees, n_edges)
        self._dst_cum = self._cum_coverage(dst_degrees, n_edges)

    @staticmethod
    def _cum_coverage(degrees: np.ndarray, m: int) -> np.ndarray:
        if m == 0:
            return np.zeros(1)
        sorted_deg = np.sort(degrees)[::-1]
        return np.cumsum(sorted_deg) / m

    @classmethod
    def from_csr(cls, indptr: np.ndarray, indices: np.ndarray, n_cols: int) -> "GraphStats":
        """Build stats from a CSR adjacency (rows = destinations, columns =
        sources, as in the pull-style aggregation layout)."""
        indptr = np.asarray(indptr)
        n_rows = len(indptr) - 1
        dst_degrees = np.diff(indptr)
        src_degrees = np.bincount(np.asarray(indices), minlength=n_cols)
        return cls(n_cols, n_rows, int(len(indices)), src_degrees, dst_degrees)

    # ------------------------------------------------------------------
    def coverage_src(self, k: int) -> float:
        """Fraction of edges covered by the top-k source vertices by degree."""
        return self._coverage(self._src_cum, k)

    def coverage_dst(self, k: int) -> float:
        """Fraction of edges covered by the top-k destination vertices."""
        return self._coverage(self._dst_cum, k)

    @staticmethod
    def _coverage(cum: np.ndarray, k: int) -> float:
        if k <= 0:
            return 0.0
        if k >= len(cum):
            return float(cum[-1])
        return float(cum[k - 1])

    def degree_skew(self) -> float:
        """max/avg source-degree ratio; drives the atomic-contention model."""
        if self.avg_dst_degree == 0:
            return 1.0
        return self.max_dst_degree / max(self.avg_dst_degree, 1e-12)

    def sparsity(self) -> float:
        """Fraction of zero entries in the adjacency matrix."""
        return 1.0 - self.n_edges / (self.n_src * self.n_dst)

    def __repr__(self):
        return (
            f"GraphStats(|V|={self.n_src}/{self.n_dst}, |E|={self.n_edges}, "
            f"avg_deg={self.avg_src_degree:.1f})"
        )
