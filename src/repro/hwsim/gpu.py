"""Analytic GPU kernel-time model (V100-class).

Implements the mechanisms the paper's GPU evaluation turns on:

- **Row-per-block, feature-across-threads SpMM** (FeatGraph's Fig. 7a and
  cuSPARSE): coalesced feature reads; DRAM traffic reduced by L2 reuse
  estimated from the degree-coverage curve; optional *hybrid partitioning*
  (Sec. III-C3) pins high-degree rows in shared memory, adding coverage.
- **Edge-parallel SpMM with atomics** (Gunrock): every output element is an
  atomicAdd; throughput degrades with register pressure as the per-thread
  feature loop grows, and with contention on high-degree destinations.
- **Thread-per-edge SDDMM** (Gunrock / FeatGraph without tree reduction):
  one thread computes a whole f-length dot product; register pressure limits
  occupancy at large f (Fig. 12's motivation).
- **Block-cooperative SDDMM with tree reduction** (FeatGraph, Fig. 7b):
  threads of a block share the dot products; efficiency *improves* with f as
  reduction overhead amortizes.
- **Launch geometry** (Fig. 15): too few CUDA blocks under-hides latency.

Calibration: constants fit once against paper Table IV; mechanisms then
generate Figs. 12/13/15 and Table IV shapes without per-figure tuning.
"""

from __future__ import annotations

from repro.hwsim.report import CostReport
from repro.hwsim.spec import GPUSpec
from repro.hwsim.stats import GraphStats

__all__ = [
    "l2_hit_rate",
    "launch_efficiency",
    "spmm_row_block_time",
    "spmm_edge_parallel_time",
    "sddmm_coop_time",
    "sddmm_thread_per_edge_time",
]

F32 = 4
IDX = 4

#: LRU inefficiency: fraction of ideal top-k row coverage the L2 realizes
L2_COVERAGE_EFF = 0.75
#: explicitly managed shared memory realizes most of its ideal coverage
SHARED_COVERAGE_EFF = 0.9
#: empirical Table IV fit: skew divisor for atomic contention
CONTENTION_DIVISOR = 13.5


def l2_hit_rate(
    spec: GPUSpec,
    stats: GraphStats,
    row_bytes: float,
    *,
    hybrid_partitioning: bool = False,
) -> float:
    """Hit probability of an edge's source-row read in L2 (+ shared memory).

    The L2 can keep ``l2_bytes / row_bytes`` feature rows; an LRU cache
    preferentially retains the high-degree rows, so the hit rate is the
    degree-coverage of that many rows, discounted by an LRU-efficiency
    factor.  Hybrid partitioning explicitly stages partitioned high-degree
    rows through shared memory, adding (more efficient) coverage.
    """
    if row_bytes <= 0:
        return 1.0
    k_l2 = int(spec.l2_bytes / row_bytes)
    hit = stats.coverage_src(k_l2) * L2_COVERAGE_EFF
    if hybrid_partitioning:
        k_shared = int(spec.num_sms * spec.shared_bytes_per_sm / row_bytes)
        ideal = stats.coverage_src(k_l2 + k_shared) * SHARED_COVERAGE_EFF
        hit = max(hit, ideal)
    return min(0.95, hit)


def launch_efficiency(spec: GPUSpec, num_blocks: int, threads_per_block: int) -> float:
    """Fraction of peak throughput realized by a launch geometry.

    Latency hiding needs enough resident threads; with few blocks the device
    is under-occupied (paper Fig. 15).
    """
    total_threads = max(1, num_blocks) * max(1, threads_per_block)
    device_threads = spec.num_sms * spec.max_threads_per_sm
    x = total_threads / device_threads
    return x / (x + 0.13)


def _register_pressure(f: int, knee: int, scale: float) -> float:
    """Throughput divisor from per-thread register/state growth with f."""
    return 1.0 + max(0.0, f - knee) / scale


def spmm_row_block_time(
    spec: GPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    udf_flops_per_edge: float = 0.0,
    hybrid_partitioning: bool = False,
    num_blocks: int | None = None,
    kernel_efficiency: float = 1.0,
) -> CostReport:
    """FeatGraph/cuSPARSE-style generalized SpMM (Fig. 7a parallelization).

    ``udf_flops_per_edge`` counts message-function arithmetic beyond the
    copy+accumulate (e.g. ``2*d1*d2`` for MLP aggregation).
    ``kernel_efficiency`` scales throughput (vendor library vs generated
    code); < 1 means slower.
    """
    f = int(feature_len)
    m, n_src, n_dst = stats.n_edges, stats.n_src, stats.n_dst
    row_bytes = f * F32
    hit = l2_hit_rate(spec, stats, row_bytes, hybrid_partitioning=hybrid_partitioning)
    traffic = (
        (1.0 - hit) * m * row_bytes       # src gathers missing L2
        + n_src * row_bytes * 0.2          # compulsory share not already counted
        + n_dst * row_bytes                # output write
        + m * IDX + (n_dst + 1) * 8        # adjacency
    )
    mem_s = traffic / spec.dram_bw

    if num_blocks is None:
        num_blocks = n_dst
    threads_per_block = min(max(32, f), 1024)
    eff = launch_efficiency(spec, num_blocks, threads_per_block) * kernel_efficiency

    # Aggregation work: one FMA-class op per (edge, feature element), plus
    # the UDF arithmetic at a f-scaled effective rate (compute-heavy UDFs
    # amortize memory latency better at large f).
    agg_flops = m * f
    udf_flops = m * udf_flops_per_edge
    udf_rate = 1.9e12 * f / (f + 24)
    compute_s = agg_flops / (spec.coop_elem_throughput * 2.2) + udf_flops / udf_rate
    compute_s /= eff
    mem_s /= eff

    total = max(compute_s, mem_s) + spec.launch_overhead_s
    return CostReport(
        seconds=total,
        compute_seconds=compute_s,
        memory_seconds=mem_s,
        dram_bytes=traffic,
        flops=agg_flops + udf_flops,
        detail={
            "l2_hit": hit,
            "hybrid_partitioning": hybrid_partitioning,
            "num_blocks": num_blocks,
            "threads_per_block": threads_per_block,
            "launch_efficiency": eff,
        },
    )


def spmm_edge_parallel_time(
    spec: GPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    udf_flops_per_edge: float = 0.0,
) -> CostReport:
    """Gunrock-style SpMM: edge parallelization, blackbox UDF, atomic
    reductions into destination rows (Sec. V-B's explanation of Gunrock's
    slowness)."""
    f = int(feature_len)
    m = stats.n_edges
    contention = max(1.0, stats.degree_skew() / CONTENTION_DIVISOR)
    # Register pressure and hot-destination conflicts both serialize atomic
    # issue; they compose sub-multiplicatively (a stalled thread cannot also
    # be spinning on a conflict).
    slowdown = _register_pressure(f, knee=64, scale=72) + contention - 1.0
    atomic_rate = spec.atomic_throughput / slowdown
    atomic_s = m * f / atomic_rate
    # Blackbox per-edge feature loop: per-thread sequential row reads are not
    # coalesced across the warp -- ~one 64B transaction per 4B element chunk.
    traffic = m * f * F32 * 8 + m * 2 * IDX
    mem_s = traffic / spec.dram_bw
    udf_rate = 90e9 / _register_pressure(f, knee=64, scale=500)
    udf_s = m * udf_flops_per_edge / udf_rate
    total = max(atomic_s + udf_s, mem_s) + spec.launch_overhead_s
    return CostReport(
        seconds=total,
        compute_seconds=atomic_s + udf_s,
        memory_seconds=mem_s,
        dram_bytes=traffic,
        flops=m * (f + udf_flops_per_edge),
        detail={"contention": contention, "atomic_rate": atomic_rate},
    )


def sddmm_coop_time(
    spec: GPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    out_width: int = 1,
    tree_reduce: bool = True,
    num_blocks: int | None = None,
) -> CostReport:
    """FeatGraph-style SDDMM (Fig. 7b): blocks own edges, threads cooperate
    on the feature-dimension reduction via tree reduction."""
    f = int(feature_len)
    m = stats.n_edges
    if tree_reduce:
        # Efficiency grows with f: the log-depth reduction amortizes.
        rate = 125e9 * f / (f + 8)
    else:
        # Degenerates to one thread per edge (plus template overhead).
        base = spmm_threadrate(spec, f)
        rate = base * 1.15
    if num_blocks is None:
        num_blocks = max(1, m // 32)
    eff = launch_efficiency(spec, num_blocks, min(max(32, f), 1024))
    compute_s = m * f / (rate * eff)
    hit = l2_hit_rate(spec, stats, f * F32)
    traffic = (1 - 0.5 * hit) * 2 * m * f * F32 * 0.35 + m * out_width * F32 + m * 2 * IDX
    mem_s = traffic / spec.dram_bw
    total = max(compute_s, mem_s) + spec.launch_overhead_s
    return CostReport(
        seconds=total,
        compute_seconds=compute_s,
        memory_seconds=mem_s,
        dram_bytes=traffic,
        flops=2 * m * f,
        detail={"tree_reduce": tree_reduce, "rate": rate, "l2_hit": hit},
    )


def spmm_threadrate(spec: GPUSpec, f: int) -> float:
    """Per-thread (non-cooperative) element throughput as a function of f."""
    return spec.thread_elem_throughput / (1.0 + max(0.0, f - 32) / 700.0)


def sddmm_thread_per_edge_time(
    spec: GPUSpec,
    stats: GraphStats,
    feature_len: int,
    *,
    out_width: int = 1,
) -> CostReport:
    """Gunrock-style SDDMM: the entire per-edge dot product runs on a single
    CUDA thread ("consuming too many registers per thread", Sec. V-C)."""
    f = int(feature_len)
    m = stats.n_edges
    rate = spmm_threadrate(spec, f)
    compute_s = m * f / rate
    traffic = 2 * m * f * F32 * 0.5 + m * out_width * F32 + m * 2 * IDX
    mem_s = traffic / spec.dram_bw
    total = max(compute_s, mem_s) + spec.launch_overhead_s
    return CostReport(
        seconds=total,
        compute_seconds=compute_s,
        memory_seconds=mem_s,
        dram_bytes=traffic,
        flops=2 * m * f,
        detail={"rate": rate},
    )
