"""Machine models standing in for the paper's evaluation hardware.

The paper measures on an 18-core Intel Xeon Platinum 8124M (25 MB LLC) and an
NVIDIA Tesla V100 (80 SMs, up to 96 KB shared memory per SM).  Neither is
available here, so this package provides:

- :mod:`repro.hwsim.spec` -- parameter records for the two machines.
- :mod:`repro.hwsim.stats` -- degree/locality statistics of a graph that the
  analytic models consume.
- :mod:`repro.hwsim.cpu` -- an analytic CPU kernel-time model (roofline +
  reuse-distance cache estimation + partitioning/tiling/merge mechanics).
- :mod:`repro.hwsim.gpu` -- an analytic GPU kernel-time model (coalescing,
  atomics with contention, register-pressure occupancy, L2/shared-memory
  reuse from degree coverage, tree reduction).
- :mod:`repro.hwsim.cache` -- a trace-driven set-associative cache simulator
  used by the tests to validate the analytic hit-rate estimates on small
  graphs.
- :mod:`repro.hwsim.report` -- the :class:`CostReport` structure every model
  returns.

The constants are calibrated against the paper's absolute numbers (see
``calibration`` notes inside each module); what the reproduction relies on is
that every *mechanism* the paper describes (partition working sets, merge
cost, atomic serialization, feature-dimension parallelism, ...) is modeled
explicitly, so ablations move the numbers for the modeled reason.
"""

from repro.hwsim.spec import CPUSpec, GPUSpec, XEON_8124M, TESLA_V100
from repro.hwsim.stats import GraphStats
from repro.hwsim.report import CostReport
from repro.hwsim.cache import CacheSim, CacheHierarchy
from repro.hwsim import cpu, gpu

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "XEON_8124M",
    "TESLA_V100",
    "GraphStats",
    "CostReport",
    "CacheSim",
    "CacheHierarchy",
    "cpu",
    "gpu",
]
