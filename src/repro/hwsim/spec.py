"""Machine parameter records for the paper's evaluation platforms."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CPUSpec", "GPUSpec", "XEON_8124M", "TESLA_V100"]


@dataclass(frozen=True)
class CPUSpec:
    """An x86 server CPU, defaulting to the paper's c5.9xlarge host."""

    name: str = "Xeon-8124M"
    freq_hz: float = 3.0e9
    cores: int = 18
    llc_bytes: int = 25 * 1024 * 1024
    l2_bytes: int = 1024 * 1024
    line_bytes: int = 64
    #: single-thread effective DRAM streaming bandwidth
    dram_bw_single: float = 12e9
    #: socket-wide DRAM bandwidth ceiling
    dram_bw_peak: float = 90e9
    #: effective SIMD flops per cycle for compiler-vectorized feature loops
    simd_flops_per_cycle: float = 6.0
    #: effective scalar flops per cycle (feature-dim-blind frameworks)
    scalar_flops_per_cycle: float = 1.3
    #: gathered-load throughput, elements per cycle, data resident in cache
    gather_elems_per_cycle: float = 1.25
    #: effective stall for an unhidden last-level miss, cycles
    miss_latency_cycles: float = 350.0

    def with_(self, **kw) -> "CPUSpec":
        return replace(self, **kw)

    def staging_budget_bytes(self, scope: str) -> int | None:
        """Capacity budget for a staged buffer in memory ``scope``.

        ``cache``/``shared`` staging must live in the last-level cache to
        pay off; ``local`` staging targets the per-core L2.  Returns None
        for scopes the model places no bound on.
        """
        if scope in ("cache", "shared"):
            return self.llc_bytes
        if scope == "local":
            return self.l2_bytes
        return None


@dataclass(frozen=True)
class GPUSpec:
    """An NVIDIA data-center GPU, defaulting to the paper's Tesla V100."""

    name: str = "Tesla-V100"
    num_sms: int = 80
    freq_hz: float = 1.38e9
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    shared_bytes_per_sm: int = 48 * 1024       # default config; up to 96 KB
    l2_bytes: int = 6 * 1024 * 1024
    dram_bw: float = 900e9
    peak_flops: float = 14e12
    launch_overhead_s: float = 5e-6
    #: device-wide atomic-update throughput at zero contention, ops/s
    atomic_throughput: float = 22e9
    #: per-thread element throughput for independent (non-atomic) work, elems/s
    thread_elem_throughput: float = 80e9
    #: element throughput of a block-cooperative (feature-parallel) kernel
    coop_elem_throughput: float = 140e9

    def with_(self, **kw) -> "GPUSpec":
        return replace(self, **kw)

    def staging_budget_bytes(self, scope: str) -> int | None:
        """Capacity budget for a staged buffer in memory ``scope``.

        A ``shared``-scope buffer is allocated per block and bounded by the
        SM's shared-memory capacity (one resident block is the worst case);
        ``cache`` staging is bounded by the device L2.  Returns None for
        scopes the model places no bound on (``local`` maps to registers /
        spill, which the launch does not reject).
        """
        if scope == "shared":
            return self.shared_bytes_per_sm
        if scope == "cache":
            return self.l2_bytes
        return None


XEON_8124M = CPUSpec()
TESLA_V100 = GPUSpec()
