"""Reverse-mode automatic differentiation on numpy arrays.

A deliberately small tape-based engine in the style of the deep learning
systems DGL wraps: :class:`Tensor` records its parents and a backward
closure; :meth:`Tensor.backward` runs a topological sweep.  Broadcasting is
handled by summing gradients back to the parent shape.

Everything the paper's three GNN models need is here: matmul, element-wise
arithmetic, ReLU/LeakyReLU/ELU, exp/log, reshape, row gather/scatter,
reductions, log-softmax and masked cross-entropy.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Disable graph recording (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum leading extra dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for ax, s in enumerate(shape):
        if s == 1 and grad.shape[ax] != 1:
            grad = grad.sum(axis=ax, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data, requires_grad: bool = False, _parents=(), _backward=None,
                 name: str | None = None):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = tuple(_parents) if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self):
        self.grad = None

    def _accumulate(self, g: np.ndarray):
        g = np.asarray(g, dtype=np.float32)
        if self.grad is None:
            self.grad = g.copy() if g.base is not None else g
        else:
            self.grad = self.grad + g

    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        req = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not req:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def backward(self, grad: np.ndarray | None = None):
        """Backpropagate from this tensor (scalar unless ``grad`` given)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: "Tensor"):
            if id(t) in seen or not t.requires_grad:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            topo.append(t)

        visit(self)
        self._accumulate(grad)
        for t in reversed(topo):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(x) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def bwd(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), bwd)

    __radd__ = __add__

    def __neg__(self):
        def bwd(g):
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), bwd)

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def bwd(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), bwd)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def bwd(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), bwd)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        return Tensor._make(out_data, (self, other), bwd)

    # ------------------------------------------------------------------
    # non-linearities and shape ops
    # ------------------------------------------------------------------
    def relu(self):
        mask = self.data > 0

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(self.data * mask, (self,), bwd)

    def leaky_relu(self, slope: float = 0.2):
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g * np.where(mask, 1.0, slope).astype(np.float32))

        return Tensor._make(out_data, (self,), bwd)

    def elu(self, alpha: float = 1.0):
        mask = self.data > 0
        ex = np.exp(np.minimum(self.data, 0.0))
        out_data = np.where(mask, self.data, alpha * (ex - 1.0)).astype(np.float32)

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g * np.where(mask, 1.0, alpha * ex).astype(np.float32))

        return Tensor._make(out_data, (self,), bwd)

    def exp(self):
        out_data = np.exp(self.data)

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), bwd)

    def log(self):
        def bwd(g):
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(np.log(self.data), (self,), bwd)

    def reshape(self, *shape):
        old = self.shape

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g.reshape(old))

        return Tensor._make(self.data.reshape(*shape), (self,), bwd)

    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def bwd(g):
            if not self.requires_grad:
                return
            gg = np.asarray(g)
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis)
            self._accumulate(np.broadcast_to(gg, self.shape))

        return Tensor._make(out_data, (self,), bwd)

    def mean(self, axis=None, keepdims: bool = False):
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def gather_rows(self, idx: np.ndarray) -> "Tensor":
        """Select rows (autograd scatter-add on backward)."""
        idx = np.asarray(idx)
        out_data = self.data[idx]

        def bwd(g):
            if self.requires_grad:
                acc = np.zeros_like(self.data)
                np.add.at(acc, idx, g)
                self._accumulate(acc)

        return Tensor._make(out_data, (self,), bwd)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        x = self.data
        mx = x.max(axis=axis, keepdims=True)
        shifted = x - mx
        lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - lse
        soft = np.exp(out_data)

        def bwd(g):
            if self.requires_grad:
                self._accumulate(g - soft * g.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), bwd)

    def __repr__(self):
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"
