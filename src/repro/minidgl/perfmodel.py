"""End-to-end epoch cost model (paper Table VI).

Enumerates the kernel calls of one training / inference epoch of the three
models and prices each call under a backend:

- ``minigun`` (DGL w/o FeatGraph): **builtin** message/edge functions run
  through Minigun's feature-blind kernels (row-parallel without feature
  parallelism on GPU; gather + unvectorized scatter-add through framework
  tensor ops on CPU).  **Non-builtin** patterns -- GAT's attention-weighted
  aggregation -- additionally *materialize* per-edge tensors, which is how
  the paper's GAT baseline runs out of GPU memory during training (the
  starred N/A in Table VI); an explicit device-memory check reproduces that.
- ``featgraph`` (DGL w/ FeatGraph): fused kernels priced by the
  :mod:`repro.hwsim` machine models.

Dense (weight matmul) work and a fixed per-epoch framework overhead
(dataflow graph construction, optimizer, Python dispatch) are priced
identically for both backends, so speedups isolate the kernel backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwsim import cpu as cpu_model
from repro.hwsim import gpu as gpu_model
from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M
from repro.hwsim.stats import GraphStats

__all__ = ["KernelCall", "epoch_calls", "epoch_cost", "sparse_fraction",
           "OOM", "MODEL_CONFIGS"]

#: single-thread CPU dense-matmul rate and GPU dense rate (flop/s)
DENSE_RATE_CPU = 9e9
DENSE_RATE_GPU = 10e12
#: CPU framework-op element rates for the feature-blind path (elements/s)
CPU_GATHER_RATE = 300e6
CPU_SCATTER_ADD_RATE = 60e6
#: Minigun GPU: one thread per row, feature loop sequential (elements/s)
GPU_ROW_PARALLEL_RATE = 75e9
#: V100 device memory
GPU_MEM_BYTES = 16 * 1024**3
#: per-epoch framework overhead (dataflow + optimizer + dispatch), seconds
FRAMEWORK_OVERHEAD = {("cpu", True): 30.0, ("cpu", False): 15.0,
                      ("gpu", True): 1.5, ("gpu", False): 0.75}

MODEL_CONFIGS = {
    # (hidden, heads) -- hidden sizes from Sec. V-E
    "GCN": (512, 1),
    "GraphSage": (256, 1),
    "GAT": (256, 4),
}


class OOM(Exception):
    """Modeled out-of-memory (the paper's GAT-training-on-GPU case)."""


@dataclass
class KernelCall:
    """One kernel invocation in an epoch."""

    kind: str          # "spmm" | "sddmm" | "softmax" | "dense"
    feature_len: int = 0
    heads: int = 1
    dense_flops: float = 0.0
    #: covered by DGL's builtin Minigun kernels? (False => materialization)
    builtin: bool = True
    #: multiplies source features by a per-edge weight (extra gather pass)
    weighted: bool = False
    #: per-edge bytes a materializing backend keeps live for backward
    materialized_bytes: float = 0.0


def _dense(n: int, d_in: int, d_out: int) -> KernelCall:
    return KernelCall("dense", dense_flops=2.0 * n * d_in * d_out)


def epoch_calls(model: str, stats: GraphStats, in_dim: int, num_classes: int,
                *, training: bool = True) -> list[KernelCall]:
    """Kernel-call sequence of one epoch (forward, plus backward if training)."""
    if model not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {model!r}; have {sorted(MODEL_CONFIGS)}")
    hidden, heads = MODEL_CONFIGS[model]
    n, m = stats.n_dst, stats.n_edges
    calls: list[KernelCall] = []
    layer_dims = [(in_dim, hidden), (hidden, num_classes)]

    for d_in, d_out in layer_dims:
        if model == "GCN":
            calls.append(_dense(n, d_in, d_out))
            calls.append(KernelCall("spmm", feature_len=d_out))
        elif model == "GraphSage":
            calls.append(_dense(n, d_in, d_out))  # W_neigh (pre-aggregation)
            calls.append(_dense(n, d_in, d_out))  # W_self
            calls.append(KernelCall("spmm", feature_len=d_out))
        else:  # GAT
            calls.append(_dense(n, d_in, d_out))
            calls.append(KernelCall("sddmm", feature_len=heads, heads=heads,
                                    builtin=True))
            calls.append(KernelCall("softmax", heads=heads))
            calls.append(KernelCall("spmm", feature_len=d_out, weighted=True,
                                    builtin=False,
                                    materialized_bytes=4.0 * m * d_out))
    if training:
        backward: list[KernelCall] = []
        for d_in, d_out in reversed(layer_dims):
            if model in ("GCN", "GraphSage"):
                backward.append(KernelCall("spmm", feature_len=d_out))
                backward.append(_dense(n, d_in, d_out))   # dW
                backward.append(_dense(n, d_in, d_out))   # dX
                if model == "GraphSage":
                    backward.append(_dense(n, d_in, d_out))
            else:
                # grad of weighted aggregation: reverse SpMM + d-alpha SDDMM
                backward.append(KernelCall("spmm", feature_len=d_out,
                                           weighted=True, builtin=False,
                                           materialized_bytes=4.0 * m * d_out))
                backward.append(KernelCall("sddmm", feature_len=d_out,
                                           heads=heads, builtin=False,
                                           materialized_bytes=4.0 * m * d_out))
                backward.append(KernelCall("softmax", heads=heads))
                backward.append(_dense(n, d_in, d_out))
                backward.append(_dense(n, d_in, d_out))
        calls.extend(backward)
    return calls


def _price_cpu(call: KernelCall, stats: GraphStats, backend: str,
               spec: CPUSpec) -> float:
    m = stats.n_edges
    if call.kind == "dense":
        return call.dense_flops / DENSE_RATE_CPU
    if backend == "featgraph":
        if call.kind == "spmm":
            f = call.feature_len
            nf = max(1, f // 32)
            ws = stats.n_src * max(1, f // nf) * 4
            np_parts = max(1, min(stats.n_src, round(ws / (2 * 1024 * 1024))))
            return cpu_model.spmm_time(
                spec, stats, f, frame=cpu_model.FEATGRAPH_CPU,
                udf_flops_per_edge=f if call.weighted else 0.0,
                num_graph_partitions=np_parts, num_feature_partitions=nf,
            ).seconds
        if call.kind == "sddmm":
            return cpu_model.sddmm_time(
                spec, stats, call.feature_len, frame=cpu_model.FEATGRAPH_CPU,
                hilbert=True).seconds
        # softmax: three vectorized segment passes over (m, heads)
        return 3.0 * m * call.heads * 2e-9
    # minigun CPU: gather + unvectorized scatter-add per element; weighted
    # aggregation pays an extra gather-and-multiply pass, and non-builtin
    # patterns run as a chain of generic framework tensor ops (materialize,
    # multiply, index, reduce) instead of one fused builtin kernel
    elems = m * max(call.feature_len, call.heads)
    generic = 1.0 if call.builtin else 2.5
    if call.kind == "spmm":
        gathers = 2.0 if call.weighted else 1.0
        return generic * elems * (gathers / CPU_GATHER_RATE + 1.0 / CPU_SCATTER_ADD_RATE)
    if call.kind == "sddmm":
        return generic * elems * (3.0 / CPU_GATHER_RATE)
    return 3.0 * m * call.heads * (1.0 / CPU_GATHER_RATE)


def _minigun_gpu_spmm(call: KernelCall, stats: GraphStats, spec: GPUSpec) -> float:
    """Minigun GPU: row-parallel, feature loop inside one thread."""
    f = max(call.feature_len, 1)
    rate = GPU_ROW_PARALLEL_RATE / (1.0 + max(0.0, f - 64) / 500.0)
    t = stats.n_edges * f / rate + spec.launch_overhead_s
    if not call.builtin:
        # the non-builtin path is a chain of framework ops, each writing and
        # re-reading the materialized per-edge tensor
        t += 12.0 * call.materialized_bytes / spec.dram_bw
    return t


def _price_gpu(call: KernelCall, stats: GraphStats, backend: str,
               spec: GPUSpec) -> float:
    m = stats.n_edges
    if call.kind == "dense":
        return call.dense_flops / DENSE_RATE_GPU
    if backend == "featgraph":
        if call.kind == "spmm":
            return gpu_model.spmm_row_block_time(
                spec, stats, call.feature_len, hybrid_partitioning=True,
                udf_flops_per_edge=call.feature_len if call.weighted else 0.0,
                kernel_efficiency=0.92).seconds
        if call.kind == "sddmm":
            return gpu_model.sddmm_coop_time(
                spec, stats, call.feature_len, tree_reduce=True).seconds
        return 3.0 * m * call.heads * 8 / spec.dram_bw + 3 * spec.launch_overhead_s
    if call.kind == "spmm":
        return _minigun_gpu_spmm(call, stats, spec)
    if call.kind == "sddmm":
        t = gpu_model.sddmm_thread_per_edge_time(
            spec, stats, call.feature_len).seconds
        if not call.builtin:
            t += 12.0 * call.materialized_bytes / spec.dram_bw
        return t
    return 3.0 * m * call.heads * 8 * 2 / spec.dram_bw + 3 * spec.launch_overhead_s


def sparse_fraction(model: str, stats: GraphStats, in_dim: int,
                    num_classes: int, *, backend: str, platform: str,
                    training: bool = True) -> float:
    """Fraction of the modeled epoch spent in sparse (graph) kernels.

    Quantifies the paper's Sec. II-A measurement: "generalized SpMM and
    SDDMM occupy ~95% of the total run time in training a 2-layer GNN model
    using the existing solutions with sub-optimized sparse kernels", and the
    abstract's "more than 60% ... when both the sparse and dense operations
    are fully optimized."
    """
    calls = epoch_calls(model, stats, in_dim, num_classes, training=training)
    sparse = dense = 0.0
    for call in calls:
        if platform == "cpu":
            t = _price_cpu(call, stats, backend, XEON_8124M)
        else:
            t = _price_gpu(call, stats, backend, TESLA_V100)
        if call.kind == "dense":
            dense += t
        else:
            sparse += t
    total = sparse + dense
    return sparse / total if total else 0.0


def epoch_cost(model: str, stats: GraphStats, in_dim: int, num_classes: int,
               *, backend: str, platform: str, training: bool = True,
               spec: CPUSpec | GPUSpec | None = None) -> float:
    """Modeled seconds per epoch.  Raises :class:`OOM` when the materializing
    backend's live per-edge tensors exceed GPU memory during training."""
    if backend not in ("minigun", "featgraph"):
        raise KeyError(f"unknown backend {backend!r}")
    if platform not in ("cpu", "gpu"):
        raise KeyError(f"unknown platform {platform!r}")
    calls = epoch_calls(model, stats, in_dim, num_classes, training=training)
    if backend == "minigun" and platform == "gpu" and training:
        # Training keeps non-builtin materialized edge tensors live for the
        # backward pass (GAT attention messages).
        live = sum(c.materialized_bytes for c in calls if not c.builtin)
        if live > GPU_MEM_BYTES:
            raise OOM(
                f"{model} training materializes {live / 1e9:.1f} GB of edge "
                f"tensors ( > {GPU_MEM_BYTES / 1e9:.0f} GB device memory)")
    total = FRAMEWORK_OVERHEAD[(platform, training)]
    for call in calls:
        if platform == "cpu":
            total += _price_cpu(call, stats, backend,
                                spec if isinstance(spec, CPUSpec) else XEON_8124M)
        else:
            total += _price_gpu(call, stats, backend,
                                spec if isinstance(spec, GPUSpec) else TESLA_V100)
    return total
