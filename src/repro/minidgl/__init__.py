"""minidgl: a DGL-like message-passing GNN framework.

The paper integrates FeatGraph into DGL and compares end-to-end training and
inference against DGL's default backend (Minigun + message materialization).
This package rebuilds that stack from scratch:

- :mod:`repro.minidgl.autograd` -- reverse-mode automatic differentiation on
  numpy arrays.
- :mod:`repro.minidgl.graph` -- the graph object and message-passing ops
  (generalized SpMM / SDDMM / edge-softmax) wired into autograd.  The
  gradient of SpMM follows the SDDMM pattern and vice versa, exactly as the
  paper's Sec. II-A derives.
- :mod:`repro.minidgl.backends` -- two kernel backends: ``MinigunBackend``
  (materializes per-edge messages, DGL's default) and ``FeatGraphBackend``
  (fused kernels via :mod:`repro.core`).
- :mod:`repro.minidgl.nn` -- layers (Linear, Dropout, GCNConv, SAGEConv,
  GATConv).
- :mod:`repro.minidgl.models` -- the paper's three evaluated models: 2-layer
  GCN (hidden 512), GraphSage (hidden 256), GAT (hidden 256).
- :mod:`repro.minidgl.optim` / :mod:`repro.minidgl.train` -- optimizers and
  the vertex-classification training loop.
- :mod:`repro.minidgl.perfmodel` -- per-epoch kernel-call enumeration for
  the Table VI end-to-end machine-model comparison.
"""

from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.graph import Graph
from repro.minidgl.backends import MinigunBackend, FeatGraphDGLBackend, get_backend
from repro.minidgl import nn, models, optim, train, perfmodel

__all__ = [
    "Tensor",
    "no_grad",
    "Graph",
    "MinigunBackend",
    "FeatGraphDGLBackend",
    "get_backend",
    "nn",
    "models",
    "optim",
    "train",
    "perfmodel",
]
