"""Optimizers for minidgl parameters."""

from __future__ import annotations

import numpy as np

from repro.minidgl.autograd import Tensor

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain SGD with optional momentum and weight decay."""

    def __init__(self, params: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self):
        for p in self.params:
            p.zero_grad()

    def step(self):
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam:
    """Adam with bias correction."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self):
        for p in self.params:
            p.zero_grad()

    def step(self):
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1 - self.b1) * g
            v *= self.b2
            v += (1 - self.b2) * g * g
            mhat = m / (1 - self.b1 ** self._t)
            vhat = v / (1 - self.b2 ** self._t)
            p.data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)
