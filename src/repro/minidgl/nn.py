"""Neural-network modules for minidgl.

Module system in the familiar style: ``parameters()`` walks the tree, layers
are callables over :class:`~repro.minidgl.autograd.Tensor`.  The three graph
convolutions implement the models of paper Sec. V-E: GCN [Kipf & Welling],
GraphSage [Hamilton et al.], and GAT [Velickovic et al.].
"""

from __future__ import annotations

import math

import numpy as np

from repro.minidgl.autograd import Tensor
from repro.minidgl.graph import (
    Graph,
    copy_u_mean,
    edge_add,
    edge_softmax_mul_sum,
)

__all__ = ["Module", "Linear", "Dropout", "GCNConv", "SAGEConv", "GATConv"]


class Module:
    """Base class with parameter discovery and train/eval mode."""

    def __init__(self):
        self.training = True

    def parameters(self) -> list[Tensor]:
        out: list[Tensor] = []
        for v in self.__dict__.values():
            if isinstance(v, Tensor) and v.requires_grad:
                out.append(v)
            elif isinstance(v, Module):
                out.extend(v.parameters())
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        out.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        out.append(item)
        return out

    def train(self, mode: bool = True):
        self.training = mode
        for v in self.__dict__.values():
            if isinstance(v, Module):
                v.train(mode)
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter arrays keyed by attribute path (copies)."""
        out: dict[str, np.ndarray] = {}

        def walk(obj, prefix):
            for key, value in obj.__dict__.items():
                path = f"{prefix}{key}"
                if isinstance(value, Tensor) and value.requires_grad:
                    out[path] = value.data.copy()
                elif isinstance(value, Module):
                    walk(value, path + ".")
                elif isinstance(value, (list, tuple)):
                    for i, item in enumerate(value):
                        if isinstance(item, Module):
                            walk(item, f"{path}.{i}.")
                        elif isinstance(item, Tensor) and item.requires_grad:
                            out[f"{path}.{i}"] = item.data.copy()

        walk(self, "")
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching)."""
        current = {}

        def walk(obj, prefix):
            for key, value in obj.__dict__.items():
                path = f"{prefix}{key}"
                if isinstance(value, Tensor) and value.requires_grad:
                    current[path] = value
                elif isinstance(value, Module):
                    walk(value, path + ".")
                elif isinstance(value, (list, tuple)):
                    for i, item in enumerate(value):
                        if isinstance(item, Module):
                            walk(item, f"{path}.{i}.")
                        elif isinstance(item, Tensor) and item.requires_grad:
                            current[f"{path}.{i}"] = item

        walk(self, "")
        if set(current) != set(state):
            missing = set(current) - set(state)
            extra = set(state) - set(current)
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(extra)}")
        for path, tensor in current.items():
            arr = np.asarray(state[path], dtype=np.float32)
            if arr.shape != tensor.data.shape:
                raise ValueError(f"{path}: shape {arr.shape} != "
                                 f"{tensor.data.shape}")
            tensor.data[...] = arr

    def __call__(self, *args, **kw):
        return self.forward(*args, **kw)

    def forward(self, *args, **kw):
        raise NotImplementedError


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float32)


class Linear(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Tensor(_glorot(rng, in_dim, out_dim), requires_grad=True,
                             name="W")
        self.bias = Tensor(np.zeros(out_dim, dtype=np.float32),
                           requires_grad=True, name="b") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not (0 <= p < 1):
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(1)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0:
            return x
        mask = (self.rng.random(x.shape) >= self.p).astype(np.float32) / (1 - self.p)
        return x * Tensor(mask)


class GCNConv(Module):
    """Graph convolution: ``H' = act(D^-1 A (X W) + b)``.

    Sum aggregation of transformed source features (generalized SpMM in both
    forward and backward, as the paper notes for GCN), normalized by
    in-degree.
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        h = self.linear(x)
        # D^-1 A h is exactly the neighbor mean: one kernel, and behind
        # FEATGRAPH_FUSE one fused edge sweep with the divide in finalize
        return copy_u_mean(graph, h, backend)


class SAGEConv(Module):
    """GraphSage convolution with mean aggregation:
    ``H' = act(X W_self + mean_{u in N(v)} X_u W_neigh)``."""

    def __init__(self, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.w_self = Linear(in_dim, out_dim, rng=rng)
        self.w_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        # Transform before aggregating (legal for mean aggregation since the
        # two commute); keeps the SpMM feature width at out_dim, the same
        # optimization DGL's SAGEConv applies when in_dim > out_dim.
        mean = copy_u_mean(graph, self.w_neigh(x), backend)
        # On a bipartite block the adjacency is (num_dst, num_src) and the
        # self-term only applies to the destination vertices, which by the
        # Block convention are the first num_dst source rows.
        n_dst = graph.adj.shape[0]
        x_dst = x if x.shape[0] == n_dst else x.gather_rows(np.arange(n_dst))
        return self.w_self(x_dst) + mean


class GATConv(Module):
    """Graph attention convolution (multi-head).

    Attention logits use the additive form split into per-endpoint scores;
    the per-edge work (logit add, softmax, weighted aggregation) exercises
    both the SDDMM and SpMM patterns that make GAT the paper's most
    kernel-heavy model.
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 4,
                 negative_slope: float = 0.2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if out_dim % num_heads:
            raise ValueError("out_dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.negative_slope = negative_slope
        self.fc = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.attn_l = Tensor(
            (rng.standard_normal((num_heads, self.head_dim)) * 0.1).astype(np.float32),
            requires_grad=True, name="attn_l")
        self.attn_r = Tensor(
            (rng.standard_normal((num_heads, self.head_dim)) * 0.1).astype(np.float32),
            requires_grad=True, name="attn_r")

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        # Source and destination counts differ on bipartite blocks; the
        # destination scores read the first n_dst rows of er, valid because
        # a Block's dst_ids are a prefix of its src_ids.
        n_src = x.shape[0]
        n_dst = graph.adj.shape[0]
        z = self.fc(x).reshape(n_src, self.num_heads, self.head_dim)
        el = (z * self.attn_l).sum(axis=2)   # (n_src, heads)
        er = (z * self.attn_r).sum(axis=2)
        logits = edge_add(graph, el, er).leaky_relu(self.negative_slope)  # (m, heads)
        # softmax + weighted aggregation; one fused sweep when FEATGRAPH_FUSE
        # is on, the staged edge_softmax + u_mul_e_sum pair otherwise
        out = edge_softmax_mul_sum(graph, logits, z, backend)  # (n_dst, heads, head_dim)
        return out.reshape(n_dst, self.num_heads * self.head_dim)
