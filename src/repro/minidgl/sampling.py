"""Neighbor sampling and mini-batch blocks (GraphSage's training mode).

The paper's GraphSage reference [40] trains on sampled neighborhoods rather
than the full graph.  This module provides the standard machinery:

- :func:`sample_neighbors` -- uniform fixed-fanout sampling of incoming
  edges for a set of seed vertices, fully vectorized (bulk ``indptr``
  slicing, one key draw, per-row top-k by sort rank, and a
  ``np.searchsorted`` remap);
- :class:`Block` -- a bipartite message-passing block whose destination
  vertices are the seeds and whose source vertices are the sampled frontier
  (destinations first, so layer outputs align with seed order);
- :func:`build_blocks` -- the multi-layer sampling pipeline: one block per
  GNN layer, sampled inside-out;
- :func:`minibatches` -- seed-id batching, optionally shuffled;
- :class:`BlockLoader` -- the async producer: samples the next batches'
  blocks on a worker thread through a bounded queue, overlapping sampling
  with the consumer's compute (see docs/minibatch.md).

Blocks wrap an ordinary pull-layout CSR, so every FeatGraph kernel and both
minidgl backends run on them unchanged -- and since compiled kernels are
topology-independent (:mod:`repro.core.compile`), each fresh block re-binds
cached kernel templates instead of recompiling.

:func:`sample_neighbors_reference` keeps the original per-seed Python loop.
It consumes the RNG identically to the vectorized sampler (one bulk key
draw, smallest-``fanout`` keys per row), so the two are block-for-block
equivalent under a fixed seed; it exists as the equivalence oracle and the
benchmark baseline.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.graph.sparse import CSRMatrix

__all__ = [
    "Block",
    "sample_neighbors",
    "sample_neighbors_reference",
    "build_blocks",
    "minibatches",
    "BlockLoader",
]


@dataclass
class Block:
    """A bipartite sampled block for one message-passing layer.

    ``src_ids``/``dst_ids`` map local positions to global vertex ids;
    ``dst_ids == src_ids[: num_dst]`` (the seeds are included as sources so
    self-information can flow).  ``adj`` is pull-layout local CSR with shape
    ``(num_dst, num_src)``.
    """

    adj: CSRMatrix
    src_ids: np.ndarray
    dst_ids: np.ndarray

    @property
    def num_src(self) -> int:
        return len(self.src_ids)

    @property
    def num_dst(self) -> int:
        return len(self.dst_ids)

    def gather_src_features(self, features: np.ndarray) -> np.ndarray:
        """Slice the global feature matrix to this block's source order."""
        return features[self.src_ids]


def _quantize_keys(keys: np.ndarray) -> np.ndarray:
    """Uniform [0,1) keys -> 32-bit integers, the shared per-edge sampling
    keys of both sampler implementations (equal keys tie-break by CSR
    position in both, so quantization never breaks their equivalence)."""
    return (keys * float(1 << 32)).astype(np.uint64)


def _check_seeds(seeds: np.ndarray, fanout: int) -> np.ndarray:
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    seeds = np.asarray(seeds, dtype=np.int64)
    if len(np.unique(seeds)) != len(seeds):
        raise ValueError("seeds must be unique")
    return seeds


def _make_block(adj: CSRMatrix, seeds: np.ndarray, g_src: np.ndarray,
                l_dst: np.ndarray) -> Block:
    """Assemble a block from sampled global-source / local-dst edge lists:
    remap sources to local ids (seeds first, then the discovered frontier,
    ascending -- via an O(|V|) membership mask and inverse lookup table,
    much faster than sort-based setdiff/searchsorted remapping) and build
    the local pull-layout CSR directly (bit-identical to ``from_edges``
    but with one integer sort instead of a generic lexsort)."""
    n_total = adj.shape[1]
    present = np.zeros(n_total, dtype=bool)
    present[g_src] = True
    present[seeds] = False
    frontier = np.nonzero(present)[0]
    src_ids = np.concatenate([seeds, frontier])
    n_src, n_dst = len(src_ids), len(seeds)
    lookup = np.empty(n_total, dtype=np.int64)
    lookup[src_ids] = np.arange(n_src, dtype=np.int64)
    l_src = lookup[g_src]
    indptr = np.zeros(n_dst + 1, dtype=np.int64)
    np.cumsum(np.bincount(l_dst, minlength=n_dst), out=indptr[1:])
    # (row, col) sort with stable position tiebreak == from_edges' lexsort;
    # edge_ids = order preserves its input-edge-order mapping too
    order = np.argsort(l_dst * np.int64(max(n_src, 1)) + l_src, kind="stable")
    block_adj = CSRMatrix((n_dst, n_src), indptr, l_src[order],
                          edge_ids=order)
    return Block(adj=block_adj, src_ids=src_ids, dst_ids=seeds)


def sample_neighbors(adj: CSRMatrix, seeds: np.ndarray, fanout: int,
                     rng: np.random.Generator) -> Block:
    """Uniformly sample up to ``fanout`` incoming edges per seed vertex.

    Vertices with degree <= fanout keep all their edges (sampling without
    replacement).  Fully vectorized: the seeds' CSR ranges are sliced in
    bulk, one uniform key per candidate edge is drawn, and each row keeps
    its ``fanout`` smallest keys -- equivalent to a per-row
    ``choice(deg, fanout, replace=False)`` but with no Python loop.
    """
    seeds = _check_seeds(seeds, fanout)
    lo = adj.indptr[seeds]
    deg = adj.indptr[seeds + 1] - lo
    total = int(deg.sum())
    if total == 0:
        return _make_block(adj, seeds, np.empty(0, dtype=np.int64),
                           np.empty(0, dtype=np.int64))
    # candidate edges of all seeds, flattened: rows[i] is the local seed of
    # candidate i, pos[i] its position in adj.indices
    rows = np.repeat(np.arange(len(seeds), dtype=np.int64), deg)
    row_start = np.concatenate(([0], np.cumsum(deg)))
    pos = np.arange(total, dtype=np.int64) - row_start[rows] + lo[rows]
    if (deg > fanout).any():
        # one key per candidate; each row keeps its `fanout` smallest.  A
        # single stable sort of (row << 32 | quantized key) replaces the
        # 2-pass lexsort; ties break by CSR position in both samplers.
        composite = (rows.astype(np.uint64) << np.uint64(32)) \
            | _quantize_keys(rng.random(total))
        order = np.argsort(composite, kind="stable")
        rank = np.arange(total, dtype=np.int64) - row_start[rows]
        sel = order[rank < fanout]
    else:
        sel = slice(None)
    g_src = adj.indices[pos[sel]]
    l_dst = rows[sel]
    return _make_block(adj, seeds, g_src, l_dst)


def sample_neighbors_reference(adj: CSRMatrix, seeds: np.ndarray, fanout: int,
                               rng: np.random.Generator) -> Block:
    """Per-seed-loop reference implementation of :func:`sample_neighbors`.

    Consumes the RNG identically (a single bulk key draw, smallest-k keys
    per row), so for a given ``rng`` state it produces the same blocks as
    the vectorized sampler.  Kept as the equivalence oracle for tests and
    the baseline for ``benchmarks/bench_minibatch.py``.
    """
    seeds = _check_seeds(seeds, fanout)
    lo = adj.indptr[seeds]
    deg = adj.indptr[seeds + 1] - lo
    total = int(deg.sum())
    keys = (_quantize_keys(rng.random(total))
            if total and (deg > fanout).any() else None)
    picked_src: list[np.ndarray] = []
    picked_dst: list[np.ndarray] = []
    offset = 0
    for local in range(len(seeds)):
        d = int(deg[local])
        if d == 0:
            continue
        start = int(lo[local])
        if d <= fanout:
            cols = adj.indices[start:start + d]
        else:
            k = keys[offset:offset + d]
            # smallest-`fanout` keys, ties broken by CSR position (stable),
            # matching the vectorized sampler's composite sort
            offs = np.sort(np.argsort(k, kind="stable")[:fanout])
            cols = adj.indices[start + offs]
        offset += d
        picked_src.append(cols)
        picked_dst.append(np.full(len(cols), local, dtype=np.int64))
    if picked_src:
        g_src = np.concatenate(picked_src)
        l_dst = np.concatenate(picked_dst)
    else:
        g_src = np.empty(0, dtype=np.int64)
        l_dst = np.empty(0, dtype=np.int64)
    return _make_block(adj, seeds, g_src, l_dst)


def build_blocks(adj: CSRMatrix, seeds: np.ndarray, fanouts: list[int],
                 rng: np.random.Generator) -> list[Block]:
    """Multi-layer sampling: one block per layer, **output layer first in
    the returned list reversed to execution order**.

    ``fanouts[i]`` is the fanout of layer i (input-side layer first).  The
    returned blocks are ordered for forward execution: ``blocks[0]`` is the
    input-most layer (largest frontier), ``blocks[-1]``'s destinations are
    the original seeds.
    """
    blocks: list[Block] = []
    current = np.asarray(seeds, dtype=np.int64)
    for fanout in reversed(fanouts):
        block = sample_neighbors(adj, current, fanout, rng)
        blocks.append(block)
        current = block.src_ids
    blocks.reverse()
    return blocks


def minibatches(ids: np.ndarray, batch_size: int,
                rng: np.random.Generator | None = None,
                drop_last: bool = False):
    """Yield batches of vertex ids.

    With ``rng`` the ids are shuffled first (draw one permutation per
    call); with ``rng=None`` batches are yielded in the given order --
    deterministic epochs for evaluation or debugging.  ``drop_last`` skips
    a trailing partial batch so every yielded batch has exactly
    ``batch_size`` ids (uniform shapes for training loops).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ids = np.asarray(ids)
    order = rng.permutation(len(ids)) if rng is not None else np.arange(len(ids))
    stop = len(ids)
    if drop_last:
        stop = (len(ids) // batch_size) * batch_size
    for lo in range(0, stop, batch_size):
        if drop_last and lo + batch_size > stop:
            break
        yield ids[order[lo:lo + batch_size]]


def _default_prefetch() -> int:
    """Prefetch depth from ``FEATGRAPH_PREFETCH`` (default 2; 0 disables
    the producer thread entirely)."""
    env = os.environ.get("FEATGRAPH_PREFETCH")
    if env:
        return max(0, int(env))
    return 2


class BlockLoader:
    """Asynchronous mini-batch block producer.

    Iterating yields ``(seeds, blocks)`` pairs: ``seeds`` is one batch of
    ids from :func:`minibatches` and ``blocks`` is :func:`build_blocks` over
    them.  With ``prefetch > 0``, sampling runs on a producer thread (or a
    ``WorkPool`` worker when ``pool`` is given) through a bounded queue of
    that depth, so the next batch's blocks are sampled while the consumer
    trains on the current ones -- the standard sampling/compute overlap of
    mini-batch GNN systems.  ``prefetch=0`` samples synchronously in the
    consumer; both modes draw from the single ``rng`` stream in batch
    order, so they produce identical blocks for the same seed.

    Each ``__iter__`` is one epoch and keeps consuming the same ``rng``
    stream, so successive epochs see different shuffles/samples while the
    loader as a whole stays reproducible from the initial seed.

    Accounting: ``sample_seconds`` accumulates producer-side time spent
    sampling, ``wait_seconds`` consumer-side time blocked on the queue (the
    non-overlapped remainder).
    """

    def __init__(self, adj: CSRMatrix, ids: np.ndarray, batch_size: int,
                 fanouts: list[int], *,
                 rng: np.random.Generator | None = None,
                 shuffle: bool = True,
                 prefetch: int | None = None,
                 pool=None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not fanouts:
            raise ValueError("fanouts must be non-empty")
        self.adj = adj
        self.ids = np.asarray(ids, dtype=np.int64)
        self.batch_size = int(batch_size)
        self.fanouts = list(fanouts)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.shuffle = bool(shuffle)
        self.prefetch = _default_prefetch() if prefetch is None else int(prefetch)
        self.pool = pool
        self.drop_last = bool(drop_last)
        self.sample_seconds = 0.0
        self.wait_seconds = 0.0
        self.batches_produced = 0

    def __len__(self) -> int:
        if self.drop_last:
            return len(self.ids) // self.batch_size
        return -(-len(self.ids) // self.batch_size)

    def _batches(self):
        return minibatches(self.ids, self.batch_size,
                           self.rng if self.shuffle else None,
                           drop_last=self.drop_last)

    def _sample(self, seeds: np.ndarray):
        t0 = time.perf_counter()
        blocks = build_blocks(self.adj, seeds, self.fanouts, self.rng)
        self.sample_seconds += time.perf_counter() - t0
        self.batches_produced += 1
        return blocks

    def __iter__(self):
        if self.prefetch <= 0:
            for seeds in self._batches():
                yield seeds, self._sample(seeds)
            return
        out: "queue.Queue" = queue.Queue(maxsize=self.prefetch)
        stop = threading.Event()

        def put_or_stop(msg) -> bool:
            """Offer ``msg`` to the queue, giving up once the consumer has
            stopped.  Every producer-side put -- items, the terminal "end",
            and error propagation -- must go through this: an unconditional
            ``out.put`` blocks forever when the consumer abandoned the loop
            with the queue full, leaking the thread (and, with a ``pool``,
            deadlocking the consumer's ``finally: future.result()``)."""
            while not stop.is_set():
                try:
                    out.put(msg, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def produce():
            try:
                for seeds in self._batches():
                    blocks = self._sample(seeds)
                    if not put_or_stop(("item", (seeds, blocks))):
                        return
                put_or_stop(("end", None))
            except BaseException as exc:  # propagate to the consumer
                put_or_stop(("error", exc))

        if self.pool is not None:
            future = self.pool.submit(produce)
        else:
            future = None
            threading.Thread(target=produce, daemon=True,
                             name="repro-block-loader").start()
        try:
            while True:
                t0 = time.perf_counter()
                kind, payload = out.get()
                self.wait_seconds += time.perf_counter() - t0
                if kind == "end":
                    break
                if kind == "error":
                    raise payload
                yield payload
        finally:
            stop.set()
            if future is not None:
                future.result()
