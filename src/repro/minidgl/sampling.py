"""Neighbor sampling and mini-batch blocks (GraphSage's training mode).

The paper's GraphSage reference [40] trains on sampled neighborhoods rather
than the full graph.  This module provides the standard machinery:

- :func:`sample_neighbors` -- uniform fixed-fanout sampling of incoming
  edges for a set of seed vertices;
- :class:`Block` -- a bipartite message-passing block whose destination
  vertices are the seeds and whose source vertices are the sampled frontier
  (destinations first, so layer outputs align with seed order);
- :func:`build_blocks` -- the multi-layer sampling pipeline: one block per
  GNN layer, sampled inside-out.

Blocks wrap an ordinary pull-layout CSR, so every FeatGraph kernel and both
minidgl backends run on them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.sparse import CSRMatrix, from_edges

__all__ = ["Block", "sample_neighbors", "build_blocks", "minibatches"]


@dataclass
class Block:
    """A bipartite sampled block for one message-passing layer.

    ``src_ids``/``dst_ids`` map local positions to global vertex ids;
    ``dst_ids == src_ids[: num_dst]`` (the seeds are included as sources so
    self-information can flow).  ``adj`` is pull-layout local CSR with shape
    ``(num_dst, num_src)``.
    """

    adj: CSRMatrix
    src_ids: np.ndarray
    dst_ids: np.ndarray

    @property
    def num_src(self) -> int:
        return len(self.src_ids)

    @property
    def num_dst(self) -> int:
        return len(self.dst_ids)

    def gather_src_features(self, features: np.ndarray) -> np.ndarray:
        """Slice the global feature matrix to this block's source order."""
        return features[self.src_ids]


def sample_neighbors(adj: CSRMatrix, seeds: np.ndarray, fanout: int,
                     rng: np.random.Generator) -> Block:
    """Uniformly sample up to ``fanout`` incoming edges per seed vertex.

    Vertices with degree <= fanout keep all their edges (sampling without
    replacement).
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    seeds = np.asarray(seeds, dtype=np.int64)
    if len(np.unique(seeds)) != len(seeds):
        raise ValueError("seeds must be unique")
    picked_src: list[np.ndarray] = []
    picked_dst: list[np.ndarray] = []
    for local, v in enumerate(seeds):
        lo, hi = adj.indptr[v], adj.indptr[v + 1]
        deg = hi - lo
        if deg == 0:
            continue
        if deg <= fanout:
            cols = adj.indices[lo:hi]
        else:
            offs = rng.choice(deg, size=fanout, replace=False)
            cols = adj.indices[lo + offs]
        picked_src.append(cols)
        picked_dst.append(np.full(len(cols), local, dtype=np.int64))
    if picked_src:
        g_src = np.concatenate(picked_src)
        l_dst = np.concatenate(picked_dst)
    else:
        g_src = np.empty(0, dtype=np.int64)
        l_dst = np.empty(0, dtype=np.int64)
    # local source ids: seeds first, then newly discovered frontier vertices
    frontier = np.setdiff1d(np.unique(g_src), seeds)
    src_ids = np.concatenate([seeds, frontier])
    remap = {int(v): i for i, v in enumerate(src_ids)}
    l_src = np.fromiter((remap[int(v)] for v in g_src), dtype=np.int64,
                        count=len(g_src))
    block_adj = from_edges(len(src_ids), len(seeds), l_src, l_dst)
    return Block(adj=block_adj, src_ids=src_ids, dst_ids=seeds)


def build_blocks(adj: CSRMatrix, seeds: np.ndarray, fanouts: list[int],
                 rng: np.random.Generator) -> list[Block]:
    """Multi-layer sampling: one block per layer, **output layer first in
    the returned list reversed to execution order**.

    ``fanouts[i]`` is the fanout of layer i (input-side layer first).  The
    returned blocks are ordered for forward execution: ``blocks[0]`` is the
    input-most layer (largest frontier), ``blocks[-1]``'s destinations are
    the original seeds.
    """
    blocks: list[Block] = []
    current = np.asarray(seeds, dtype=np.int64)
    for fanout in reversed(fanouts):
        block = sample_neighbors(adj, current, fanout, rng)
        blocks.append(block)
        current = block.src_ids
    blocks.reverse()
    return blocks


def minibatches(ids: np.ndarray, batch_size: int,
                rng: np.random.Generator | None = None):
    """Yield shuffled batches of vertex ids."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ids = np.asarray(ids)
    order = rng.permutation(len(ids)) if rng is not None else np.arange(len(ids))
    for lo in range(0, len(ids), batch_size):
        yield ids[order[lo:lo + batch_size]]
