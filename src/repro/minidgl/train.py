"""Vertex-classification training loop (paper Sec. V-E).

Trains a model on a :class:`~repro.graph.datasets.Dataset` with
train/val/test masks and reports per-epoch wall-clock plus accuracies --
the harness behind the accuracy-parity experiment and the measured half of
Table VI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.datasets import Dataset
from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.graph import Graph
from repro.minidgl.optim import Adam

__all__ = ["cross_entropy", "accuracy", "train_model", "TrainResult"]


def cross_entropy(logits: Tensor, labels: np.ndarray, mask: np.ndarray) -> Tensor:
    """Masked mean negative log-likelihood."""
    idx = np.nonzero(mask)[0]
    if len(idx) == 0:
        raise ValueError("empty mask")
    logp = logits.gather_rows(idx).log_softmax(axis=-1)
    picked = logp * Tensor(np.eye(logits.shape[-1], dtype=np.float32)[labels[idx]])
    return -(picked.sum() * (1.0 / len(idx)))


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    idx = np.nonzero(mask)[0]
    if len(idx) == 0:
        return float("nan")
    pred = logits[idx].argmax(axis=-1)
    return float((pred == labels[idx]).mean())


@dataclass
class TrainResult:
    """Outcome of a training run."""

    test_accuracy: float
    val_accuracy: float
    train_losses: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            return 0.0
        return float(np.mean(self.epoch_seconds))


def train_model(model, dataset: Dataset, backend, *, epochs: int = 50,
                lr: float = 1e-2, weight_decay: float = 5e-4,
                patience: int | None = None,
                verbose: bool = False) -> TrainResult:
    """Full-graph training with Adam; returns final accuracies and timings.

    With ``patience``, training stops early once the validation accuracy has
    not improved for that many consecutive epochs (checked each epoch).
    """
    if dataset.features is None or dataset.labels is None:
        raise ValueError("dataset lacks features/labels")
    if patience is not None and patience < 1:
        raise ValueError("patience must be >= 1")
    graph = Graph(dataset.adj)
    x = Tensor(dataset.features)
    labels = dataset.labels
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    losses: list[float] = []
    epoch_times: list[float] = []
    best_val = -1.0
    stale = 0
    for epoch in range(epochs):
        model.train()
        t0 = time.perf_counter()
        opt.zero_grad()
        logits = model(graph, x, backend)
        loss = cross_entropy(logits, labels, dataset.train_mask)
        loss.backward()
        opt.step()
        epoch_times.append(time.perf_counter() - t0)
        losses.append(float(loss.data))
        if verbose and epoch % 10 == 0:
            print(f"epoch {epoch}: loss={losses[-1]:.4f}")
        if patience is not None and dataset.val_mask is not None:
            model.eval()
            with no_grad():
                val_logits = model(graph, x, backend).numpy()
            val_acc = accuracy(val_logits, labels, dataset.val_mask)
            if val_acc > best_val + 1e-9:
                best_val = val_acc
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    break
    model.eval()
    with no_grad():
        logits = model(graph, x, backend).numpy()
    return TrainResult(
        test_accuracy=accuracy(logits, labels, dataset.test_mask),
        val_accuracy=accuracy(logits, labels, dataset.val_mask),
        train_losses=losses,
        epoch_seconds=epoch_times,
    )


def inference(model, dataset: Dataset, backend) -> tuple[np.ndarray, float]:
    """One full-graph inference pass; returns (logits, seconds)."""
    graph = Graph(dataset.adj)
    x = Tensor(dataset.features)
    model.eval()
    t0 = time.perf_counter()
    with no_grad():
        logits = model(graph, x, backend).numpy()
    return logits, time.perf_counter() - t0
