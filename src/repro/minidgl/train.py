"""Vertex-classification training loops (paper Sec. V-E).

Two harnesses over a :class:`~repro.graph.datasets.Dataset` with
train/val/test masks:

- :func:`train_model` -- full-graph training, the harness behind the
  accuracy-parity experiment and the measured half of Table VI;
- :func:`train_minibatch` -- sampled mini-batch training in GraphSage's
  training mode: blocks from :class:`~repro.minidgl.sampling.BlockLoader`
  (optionally prefetched on a worker thread), per-epoch sample/compute/total
  wall-clock accounting, and evaluation through :func:`infer_minibatch`
  with full neighborhoods.

Both report per-epoch wall-clock plus accuracies; masks may be ``None``
(e.g. synthetic datasets without splits), in which case the corresponding
accuracy is ``nan`` rather than an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.graph.datasets import Dataset
from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.graph import Graph
from repro.minidgl.optim import Adam
from repro.minidgl.sampling import BlockLoader

__all__ = ["cross_entropy", "accuracy", "train_model", "TrainResult",
           "train_minibatch", "infer_minibatch", "MinibatchResult"]


def cross_entropy(logits: Tensor, labels: np.ndarray, mask: np.ndarray) -> Tensor:
    """Masked mean negative log-likelihood."""
    idx = np.nonzero(mask)[0]
    if len(idx) == 0:
        raise ValueError("empty mask")
    logp = logits.gather_rows(idx).log_softmax(axis=-1)
    picked = logp * Tensor(np.eye(logits.shape[-1], dtype=np.float32)[labels[idx]])
    return -(picked.sum() * (1.0 / len(idx)))


def accuracy(logits: np.ndarray, labels: np.ndarray,
             mask: np.ndarray | None) -> float:
    """Fraction of correct predictions on the masked vertices.

    ``mask=None`` (dataset has no such split) and empty masks both yield
    ``nan`` instead of raising, so training harnesses work on datasets
    without val/test splits.
    """
    if mask is None:
        return float("nan")
    idx = np.nonzero(mask)[0]
    if len(idx) == 0:
        return float("nan")
    pred = logits[idx].argmax(axis=-1)
    return float((pred == labels[idx]).mean())


@dataclass
class TrainResult:
    """Outcome of a training run."""

    test_accuracy: float
    val_accuracy: float
    train_losses: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            return 0.0
        return float(np.mean(self.epoch_seconds))


def train_model(model, dataset: Dataset, backend, *, epochs: int = 50,
                lr: float = 1e-2, weight_decay: float = 5e-4,
                patience: int | None = None,
                verbose: bool = False) -> TrainResult:
    """Full-graph training with Adam; returns final accuracies and timings.

    With ``patience``, training stops early once the validation accuracy has
    not improved for that many consecutive epochs (checked each epoch), and
    the best-validation parameters -- snapshotted at each improvement -- are
    restored before the final evaluation, so the reported accuracies come
    from the model that early stopping actually selected, not from whatever
    weights the last (stale) epochs drifted to.
    """
    if dataset.features is None or dataset.labels is None:
        raise ValueError("dataset lacks features/labels")
    if patience is not None and patience < 1:
        raise ValueError("patience must be >= 1")
    graph = Graph(dataset.adj)
    x = Tensor(dataset.features)
    labels = dataset.labels
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    losses: list[float] = []
    epoch_times: list[float] = []
    best_val = -1.0
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    for epoch in range(epochs):
        model.train()
        t0 = time.perf_counter()
        opt.zero_grad()
        logits = model(graph, x, backend)
        loss = cross_entropy(logits, labels, dataset.train_mask)
        loss.backward()
        opt.step()
        epoch_times.append(time.perf_counter() - t0)
        losses.append(float(loss.data))
        if verbose and epoch % 10 == 0:
            print(f"epoch {epoch}: loss={losses[-1]:.4f}")
        if patience is not None and dataset.val_mask is not None:
            model.eval()
            with no_grad():
                val_logits = model(graph, x, backend).numpy()
            val_acc = accuracy(val_logits, labels, dataset.val_mask)
            if val_acc > best_val + 1e-9:
                best_val = val_acc
                best_state = model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    break
    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    with no_grad():
        logits = model(graph, x, backend).numpy()
    return TrainResult(
        test_accuracy=accuracy(logits, labels, dataset.test_mask),
        val_accuracy=accuracy(logits, labels, dataset.val_mask),
        train_losses=losses,
        epoch_seconds=epoch_times,
    )


def inference(model, dataset: Dataset, backend) -> tuple[np.ndarray, float]:
    """One full-graph inference pass; returns (logits, seconds)."""
    graph = Graph(dataset.adj)
    x = Tensor(dataset.features)
    model.eval()
    t0 = time.perf_counter()
    with no_grad():
        logits = model(graph, x, backend).numpy()
    return logits, time.perf_counter() - t0


# ----------------------------------------------------------------------
# mini-batch (sampled) training
# ----------------------------------------------------------------------

# fanout large enough that no vertex's degree exceeds it: sampling keeps
# every edge, draws no random keys, and block inference is deterministic
_FULL_NEIGHBORHOOD = 1 << 30


@dataclass
class MinibatchResult:
    """Outcome of a sampled mini-batch training run, with the per-epoch
    time split mini-batch systems care about: ``sample_seconds`` is
    producer-side block sampling (overlapped with compute when prefetching),
    ``compute_seconds`` the forward/backward/step work, ``epoch_seconds``
    the consumer-visible wall-clock."""

    test_accuracy: float
    val_accuracy: float
    train_losses: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    sample_seconds: list[float] = field(default_factory=list)
    compute_seconds: list[float] = field(default_factory=list)

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            return 0.0
        return float(np.mean(self.epoch_seconds))


def infer_minibatch(model, dataset: Dataset, backend,
                    ids: np.ndarray, *,
                    fanouts: list[int] | None = None,
                    batch_size: int = 512,
                    rng: np.random.Generator | None = None,
                    ) -> tuple[np.ndarray, float]:
    """Block-wise inference over ``ids``; returns (logits, seconds).

    ``fanouts=None`` uses full neighborhoods (every edge kept, no
    randomness), the standard way to evaluate a sampled-trained model.
    Logits rows align with ``ids`` order.  Empty ``ids`` return a
    ``(0, num_classes)`` logits array (and ``0.0`` seconds) instead of
    crashing in ``np.concatenate`` -- callers batching arbitrary id sets
    (the serving layer, mask-driven evaluation) rely on this.
    """
    ids = np.asarray(ids, dtype=np.int64)
    if len(ids) == 0:
        width = getattr(model, "out_dim", None)
        if width is None and dataset.labels is not None:
            width = int(dataset.labels.max()) + 1
        return np.zeros((0, int(width or 0)), dtype=np.float32), 0.0
    if fanouts is None:
        fanouts = [_FULL_NEIGHBORHOOD] * getattr(model, "num_block_layers", 2)
    loader = BlockLoader(dataset.adj, ids, batch_size, list(fanouts),
                         rng=rng, shuffle=False, prefetch=0)
    model.eval()
    chunks: list[np.ndarray] = []
    t0 = time.perf_counter()
    with no_grad():
        for seeds, blocks in loader:
            x = Tensor(blocks[0].gather_src_features(dataset.features))
            chunks.append(model.forward_blocks(blocks, x, backend).numpy())
    return np.concatenate(chunks, axis=0), time.perf_counter() - t0


def train_minibatch(model, dataset: Dataset, backend, *,
                    fanouts: list[int] = (8, 8),
                    batch_size: int = 128, epochs: int = 10,
                    lr: float = 1e-2, weight_decay: float = 5e-4,
                    seed: int = 0, prefetch: int | None = None,
                    pool=None, drop_last: bool = False,
                    verbose: bool = False) -> MinibatchResult:
    """Sampled mini-batch training (GraphSage's training mode).

    Each epoch shuffles the train ids, samples one block per layer per
    batch through a :class:`~repro.minidgl.sampling.BlockLoader` (with
    ``prefetch`` batches sampled ahead on a worker thread -- default from
    ``FEATGRAPH_PREFETCH``), and steps Adam on the seed vertices' loss.
    Because compiled kernels are topology-independent, every fresh block
    after the first batch re-binds cached kernel templates instead of
    recompiling.  Final accuracies come from :func:`infer_minibatch` with
    full neighborhoods; ``None`` masks yield ``nan`` accuracies.
    """
    if dataset.features is None or dataset.labels is None:
        raise ValueError("dataset lacks features/labels")
    if dataset.train_mask is None:
        raise ValueError("mini-batch training needs a train mask")
    train_ids = np.nonzero(dataset.train_mask)[0]
    if len(train_ids) == 0:
        raise ValueError("empty train mask")
    labels = dataset.labels
    rng = np.random.default_rng(seed)
    loader = BlockLoader(dataset.adj, train_ids, batch_size, list(fanouts),
                         rng=rng, prefetch=prefetch, pool=pool,
                         drop_last=drop_last)
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    losses: list[float] = []
    epoch_times: list[float] = []
    sample_times: list[float] = []
    compute_times: list[float] = []
    for epoch in range(epochs):
        model.train()
        t_epoch = time.perf_counter()
        sampled_before = loader.sample_seconds
        compute = 0.0
        batch_losses: list[float] = []
        for seeds, blocks in loader:
            t0 = time.perf_counter()
            x = Tensor(blocks[0].gather_src_features(dataset.features))
            logits = model.forward_blocks(blocks, x, backend)
            loss = cross_entropy(logits, labels[seeds],
                                 np.ones(len(seeds), dtype=bool))
            opt.zero_grad()
            loss.backward()
            opt.step()
            compute += time.perf_counter() - t0
            batch_losses.append(float(loss.data))
        epoch_times.append(time.perf_counter() - t_epoch)
        sample_times.append(loader.sample_seconds - sampled_before)
        compute_times.append(compute)
        losses.append(float(np.mean(batch_losses)))
        if verbose:
            print(f"epoch {epoch}: loss={losses[-1]:.4f} "
                  f"total={epoch_times[-1]:.3f}s "
                  f"sample={sample_times[-1]:.3f}s "
                  f"compute={compute_times[-1]:.3f}s")

    def _eval(mask):
        if mask is None:
            return float("nan")
        ids = np.nonzero(mask)[0]
        if len(ids) == 0:
            return float("nan")
        logits, _ = infer_minibatch(model, dataset, backend, ids)
        return float((logits.argmax(axis=-1) == labels[ids]).mean())

    return MinibatchResult(
        test_accuracy=_eval(dataset.test_mask),
        val_accuracy=_eval(dataset.val_mask),
        train_losses=losses,
        epoch_seconds=epoch_times,
        sample_seconds=sample_times,
        compute_seconds=compute_times,
    )
