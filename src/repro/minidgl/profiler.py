"""Per-primitive profiling of minidgl kernel backends.

Wraps any backend (Minigun or FeatGraph) and records, per primitive, the
invocation count, wall-clock, and processed edge-elements -- the measurement
behind statements like the paper's "sparse operations in a GNN model account
for more than 60% of the total computation time".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.sparse import CSRMatrix

__all__ = ["ProfiledBackend", "OpRecord"]


@dataclass
class OpRecord:
    """Aggregate statistics for one primitive."""

    calls: int = 0
    seconds: float = 0.0
    edge_elements: int = 0

    def add(self, seconds: float, edge_elements: int):
        self.calls += 1
        self.seconds += seconds
        self.edge_elements += edge_elements


class ProfiledBackend:
    """A transparent profiling proxy around a minidgl kernel backend."""

    _PRIMITIVES = ("spmm_copy_sum", "spmm_mul_sum", "sddmm_dot")

    def __init__(self, inner):
        self.inner = inner
        self.name = f"profiled({inner.name})"
        self.records: dict[str, OpRecord] = {p: OpRecord()
                                             for p in self._PRIMITIVES}

    @property
    def materialized_bytes(self):
        return getattr(self.inner, "materialized_bytes", 0)

    def _timed(self, prim: str, adj: CSRMatrix, width: int, fn):
        t0 = time.perf_counter()
        out = fn()
        self.records[prim].add(time.perf_counter() - t0, adj.nnz * width)
        return out

    def spmm_copy_sum(self, adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
        width = int(np.prod(x.shape[1:]))
        return self._timed("spmm_copy_sum", adj, width,
                           lambda: self.inner.spmm_copy_sum(adj, x))

    def spmm_mul_sum(self, adj: CSRMatrix, x: np.ndarray,
                     w: np.ndarray) -> np.ndarray:
        width = int(np.prod(x.shape[1:]))
        return self._timed("spmm_mul_sum", adj, width,
                           lambda: self.inner.spmm_mul_sum(adj, x, w))

    def sddmm_dot(self, adj: CSRMatrix, a: np.ndarray,
                  b: np.ndarray) -> np.ndarray:
        width = int(np.prod(a.shape[1:]))
        return self._timed("sddmm_dot", adj, width,
                           lambda: self.inner.sddmm_dot(adj, a, b))

    # ------------------------------------------------------------------
    def total_sparse_seconds(self) -> float:
        return sum(r.seconds for r in self.records.values())

    def total_calls(self) -> int:
        return sum(r.calls for r in self.records.values())

    def reset(self):
        for r in self.records.values():
            r.calls = 0
            r.seconds = 0.0
            r.edge_elements = 0

    def summary(self) -> str:
        lines = [f"{self.name}:"]
        for prim, r in self.records.items():
            if r.calls == 0:
                continue
            lines.append(
                f"  {prim:<16} {r.calls:4d} calls  {r.seconds * 1e3:9.2f} ms"
                f"  {r.edge_elements:>14,} edge-elems")
        lines.append(f"  total sparse time: "
                     f"{self.total_sparse_seconds() * 1e3:.2f} ms")
        return "\n".join(lines)
