"""The minidgl graph object and autograd-aware message-passing ops.

Edge ordering convention: edges are identified by their **CSR position** in
the pull-layout adjacency (rows = destinations).  Per-edge tensors (attention
scores, weights) are indexed in that order, so segment operations over
``indptr`` apply directly.

The message-passing ops implement the paper's Sec. II-A calculus:

- :func:`copy_u_sum` -- generalized SpMM; its input gradient is another SpMM
  on the reverse graph.  Behind ``FEATGRAPH_FUSE`` the forward routes
  through the backend's fused copy-u chain (one edge sweep, per-chunk
  adaptive strategies apply inside it).
- :func:`copy_u_mean` -- mean aggregation as one kernel: fused, the
  in-degree divide happens in the chain's finalize step instead of a
  separate elementwise pass over the output.
- :func:`u_mul_e_sum` -- attention-weighted aggregation; its edge-weight
  gradient is an SDDMM (dot of endpoint features), "the gradient computation
  of SpMM with respect to A follows the SDDMM pattern".
- :func:`u_dot_v` -- generalized SDDMM; its input gradients follow the SpMM
  pattern.
- :func:`edge_softmax` -- per-destination softmax over incoming edges.
- :func:`edge_softmax_mul_sum` -- softmax + weighted aggregation as **one
  fused kernel chain** (behind the ``FEATGRAPH_FUSE`` gate): the GAT hot
  path without materializing the attention tensor in inference.

All ops take a kernel backend (Minigun-like or FeatGraph) so end-to-end
training exercises exactly the integration surface of the paper's Sec. IV-B.
"""

from __future__ import annotations

import numpy as np

from repro.graph.segment import segment_reduce, segment_softmax
from repro.graph.sparse import CSRMatrix, from_edges
from repro.minidgl.autograd import Tensor

__all__ = ["Graph", "copy_u_sum", "copy_u_mean", "u_mul_e_sum", "u_dot_v",
           "edge_add", "edge_softmax", "edge_softmax_mul_sum"]


class Graph:
    """A directed graph with cached reverse adjacency and degree vectors."""

    def __init__(self, adj: CSRMatrix):
        if not isinstance(adj, CSRMatrix):
            raise TypeError("Graph wraps a repro.graph.CSRMatrix")
        # Canonicalize edge ids to CSR positions.
        self.adj = CSRMatrix(adj.shape, adj.indptr, adj.indices)
        self._rev: CSRMatrix | None = None
        self._in_deg: np.ndarray | None = None

    @classmethod
    def from_edges(cls, n: int, src: np.ndarray, dst: np.ndarray) -> "Graph":
        return cls(from_edges(n, n, src, dst))

    @property
    def num_vertices(self) -> int:
        return self.adj.shape[0]

    @property
    def num_edges(self) -> int:
        return self.adj.nnz

    @property
    def reverse(self) -> CSRMatrix:
        """Transposed adjacency; its ``edge_ids`` map back to forward CSR
        positions (needed to permute per-edge tensors for backward)."""
        if self._rev is None:
            self._rev = self.adj.transpose()
        return self._rev

    def in_degrees(self) -> np.ndarray:
        if self._in_deg is None:
            self._in_deg = np.diff(self.adj.indptr)
        return self._in_deg

    def src_of_edge(self) -> np.ndarray:
        return self.adj.indices

    def dst_of_edge(self) -> np.ndarray:
        return self.adj.row_of_edge()

    def __repr__(self):
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"


# ----------------------------------------------------------------------
# autograd message-passing ops
# ----------------------------------------------------------------------

def _fused_copy_u_enabled(backend) -> bool:
    """Same gate shape as :func:`edge_softmax_mul_sum`'s fused path."""
    from repro.core.fusion import fuse_enabled

    return (fuse_enabled()
            and hasattr(backend, "fused_copy_u_aggregate")
            and getattr(backend, "target", None) == "cpu")


def copy_u_sum(graph: Graph, x: Tensor, backend) -> Tensor:
    """``out[v] = sum_{u in N(v)} x[u]`` -- generalized SpMM (GCN pattern).

    With fusion enabled (``FEATGRAPH_FUSE``) and a backend exposing
    ``fused_copy_u_aggregate``, the forward runs through the fused copy-u
    chain; the backward is the reverse-graph SpMM either way.
    """
    if _fused_copy_u_enabled(backend):
        out_data = backend.fused_copy_u_aggregate(graph.adj, x.data, "sum")
    else:
        out_data = backend.spmm_copy_sum(graph.adj, x.data)

    def bwd(g):
        if x.requires_grad:
            x._accumulate(backend.spmm_copy_sum(graph.reverse, g))

    return Tensor._make(out_data, (x,), bwd)


def copy_u_mean(graph: Graph, x: Tensor, backend) -> Tensor:
    """``out[v] = mean_{u in N(v)} x[u]`` -- the GCN/SAGE neighbor mean.

    Fused, the in-degree divide runs in the chain's finalize step; staged,
    it is the copy-sum followed by an elementwise scale.  The input
    gradient scales the output gradient by ``1/deg(v)`` and scatters it
    through the reverse-graph SpMM (mean and scale commute).
    """
    inv_deg = (1.0 / np.maximum(graph.in_degrees(), 1)).astype(np.float32)
    if _fused_copy_u_enabled(backend):
        out_data = backend.fused_copy_u_aggregate(graph.adj, x.data, "mean")
    else:
        agg = backend.spmm_copy_sum(graph.adj, x.data)
        out_data = agg * inv_deg.reshape((-1,) + (1,) * (agg.ndim - 1))

    def bwd(g):
        if x.requires_grad:
            gd = g * inv_deg.reshape((-1,) + (1,) * (g.ndim - 1))
            x._accumulate(backend.spmm_copy_sum(graph.reverse, gd))

    return Tensor._make(out_data, (x,), bwd)


def u_mul_e_sum(graph: Graph, x: Tensor, w: Tensor, backend) -> Tensor:
    """``out[v] = sum_{u in N(v)} x[u] * w[uv]`` -- weighted aggregation.

    ``x``: (n, ...) features; ``w``: per-edge weights (m,) or (m, h) with
    ``x`` shaped (n, h, d).  The weight gradient is an SDDMM.
    """
    out_data = backend.spmm_mul_sum(graph.adj, x.data, w.data)

    def bwd(g):
        if x.requires_grad:
            w_rev = w.data[graph.reverse.edge_ids]
            x._accumulate(backend.spmm_mul_sum(graph.reverse, g, w_rev))
        if w.requires_grad:
            w._accumulate(backend.sddmm_dot(graph.adj, x.data, g))

    return Tensor._make(out_data, (x, w), bwd)


def u_dot_v(graph: Graph, a: Tensor, b: Tensor, backend) -> Tensor:
    """``out[uv] = a[u] . b[v]`` over the last axis -- generalized SDDMM.

    The input gradients follow the SpMM pattern (paper Sec. II-A).
    """
    out_data = backend.sddmm_dot(graph.adj, a.data, b.data)

    def bwd(g):
        if a.requires_grad:
            g_rev = g[graph.reverse.edge_ids]
            a._accumulate(backend.spmm_mul_sum(graph.reverse, b.data, g_rev))
        if b.requires_grad:
            b._accumulate(backend.spmm_mul_sum(graph.adj, a.data, g))

    return Tensor._make(out_data, (a, b), bwd)


def edge_add(graph: Graph, a_src: Tensor, a_dst: Tensor) -> Tensor:
    """``out[uv] = a_src[u] + a_dst[v]`` -- per-edge endpoint sum (the GAT
    attention-logit pattern)."""
    src = graph.src_of_edge()
    dst = graph.dst_of_edge()
    out_data = a_src.data[src] + a_dst.data[dst]

    def bwd(g):
        if a_src.requires_grad:
            acc = np.zeros_like(a_src.data)
            np.add.at(acc, src, g)
            a_src._accumulate(acc)
        if a_dst.requires_grad:
            acc = np.zeros_like(a_dst.data)
            np.add.at(acc, dst, g)
            a_dst._accumulate(acc)

    return Tensor._make(out_data, (a_src, a_dst), bwd)


def edge_softmax(graph: Graph, scores: Tensor, backend=None) -> Tensor:
    """Softmax of per-edge scores over each destination's incoming edges.

    With a backend exposing ``edge_softmax`` (the FeatGraph backend's fused
    three-pass pipeline), the forward pass routes through it; otherwise the
    vectorized segment implementation runs.  The backward formula is shared.
    """
    if backend is not None and hasattr(backend, "edge_softmax"):
        alpha = backend.edge_softmax(graph.adj, scores.data)
    else:
        alpha = segment_softmax(scores.data, graph.adj.indptr)

    def bwd(g):
        if not scores.requires_grad:
            return
        ag = alpha * g
        seg = segment_reduce(ag, graph.adj.indptr, op="sum")
        sizes = np.diff(graph.adj.indptr)
        scores._accumulate(ag - alpha * np.repeat(seg, sizes, axis=0))

    return Tensor._make(alpha, (scores,), bwd)


def edge_softmax_mul_sum(graph: Graph, scores: Tensor, z: Tensor,
                         backend) -> Tensor:
    """``out[v] = sum_u softmax_v(s)[uv] * z[u]`` -- the GAT attention block.

    With fusion enabled (``FEATGRAPH_FUSE``) and a backend exposing
    ``fused_softmax_aggregate``, the forward pass runs the whole chain
    (max / exp-sum / normalize / aggregate) as one fused edge sweep; the
    normalized attention tensor is only materialized when a backward pass
    will need it, so inference elides the full ``(m, heads)`` buffer.
    Otherwise this is exactly ``u_mul_e_sum(graph, z,
    edge_softmax(graph, scores, backend), backend)``.

    The backward composes the same primitive gradients as the staged ops:
    attention-gradient SDDMM, reverse-graph SpMM, and the softmax Jacobian
    applied via segment reductions.
    """
    from repro.core.fusion import fuse_enabled

    if not (fuse_enabled()
            and hasattr(backend, "fused_softmax_aggregate")
            and getattr(backend, "target", None) == "cpu"):
        return u_mul_e_sum(graph, z, edge_softmax(graph, scores, backend),
                           backend)

    need_alpha = scores.requires_grad or z.requires_grad
    out_data, alpha = backend.fused_softmax_aggregate(
        graph.adj, scores.data, z.data, need_alpha=need_alpha)

    def bwd(g):
        if not need_alpha:
            return
        if z.requires_grad:
            alpha_rev = alpha[graph.reverse.edge_ids]
            z._accumulate(backend.spmm_mul_sum(graph.reverse, g, alpha_rev))
        if scores.requires_grad:
            galpha = backend.sddmm_dot(graph.adj, z.data, g)
            ag = alpha * galpha
            seg = segment_reduce(ag, graph.adj.indptr, op="sum")
            sizes = np.diff(graph.adj.indptr)
            scores._accumulate(ag - alpha * np.repeat(seg, sizes, axis=0))

    return Tensor._make(out_data, (scores, z), bwd)
