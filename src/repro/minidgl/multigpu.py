"""Multi-GPU GNN aggregation with a chain-based streaming schedule.

The paper's future work (Sec. VII): "integrate FeatGraph into large-scale
GNN training systems such as NeuGraph to accelerate multi-GPU training."
NeuGraph [Ma et al., ATC'19] scales GNNs past one GPU by 2D-partitioning the
dataflow and **streaming vertex chunks through a chain of GPUs**, so each
chunk crosses the host-to-device link once and then rides the faster
inter-GPU links.

:class:`MultiGPUSpMM` implements that execution model on top of FeatGraph
kernels:

- the adjacency is 2D-partitioned (destination chunks x source chunks);
- each simulated GPU owns a contiguous range of destination chunks;
- source-feature chunks stream either **host-to-all** (the naive schedule:
  every GPU pulls every chunk over PCIe) or **chained** (chunk goes to GPU 0
  over PCIe, then hops GPU-to-GPU over the faster link);
- per-block partial aggregations execute numerically through the
  generalized-SpMM template, and the cost model folds kernel time (from
  :mod:`repro.hwsim.gpu`) with transfer time, overlapping compute and
  transfer as the streaming schedule allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.partition import partition_2d
from repro.graph.sparse import CSRMatrix
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import GPUSpec, TESLA_V100
from repro.hwsim.stats import GraphStats

__all__ = ["MultiGPUSpMM", "LinkSpec"]

F32 = 4


@dataclass(frozen=True)
class LinkSpec:
    """Interconnect bandwidths of the simulated node."""

    pcie_bw: float = 12e9      # host -> GPU
    peer_bw: float = 24e9      # GPU -> GPU (NVLink-class chain hop)


class MultiGPUSpMM:
    """Sum-aggregation SpMM sharded across ``num_gpus`` simulated devices."""

    def __init__(self, adj: CSRMatrix, num_gpus: int, feature_len: int,
                 chunks_per_gpu: int = 2, spec: GPUSpec = TESLA_V100,
                 links: LinkSpec | None = None):
        if num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if feature_len < 1:
            raise ValueError("feature_len must be >= 1")
        self.adj = adj
        self.num_gpus = int(num_gpus)
        self.feature_len = int(feature_len)
        self.spec = spec
        self.links = links or LinkSpec()
        n_dst = adj.shape[0]
        n_src = adj.shape[1]
        self.num_dst_chunks = min(n_dst, self.num_gpus * int(chunks_per_gpu))
        self.num_src_chunks = min(n_src, max(self.num_gpus, 4))
        self.blocks = partition_2d(adj, self.num_dst_chunks, self.num_src_chunks)
        # destination chunk c belongs to GPU c % num_gpus (round-robin owner)
        self.owner = [c % self.num_gpus for c in range(self.num_dst_chunks)]

    # ------------------------------------------------------------------
    def run(self, features: np.ndarray) -> np.ndarray:
        """Numerically execute the sharded aggregation.

        Each (dst-chunk, src-chunk) block is a partial SpMM on its owner
        GPU; partials accumulate into the owner's output shard, and the
        shards concatenate to the full result -- bit-identical to a
        single-device SpMM over the whole graph.
        """
        if features.shape != (self.adj.shape[1], self.feature_len):
            raise ValueError(
                f"features must have shape {(self.adj.shape[1], self.feature_len)}")
        out = np.zeros((self.adj.shape[0], self.feature_len), dtype=np.float32)
        for block in self.blocks:
            csr = block.csr
            if csr.nnz == 0:
                continue
            rows = csr.row_of_edge()
            np.add.at(out, rows, features[csr.indices])
        return out

    # ------------------------------------------------------------------
    def _chunk_stats(self, stats: GraphStats):
        """Edge share and source-chunk bytes at the modeled scale."""
        m = stats.n_edges
        chunk_rows = stats.n_src / self.num_src_chunks
        chunk_bytes = chunk_rows * self.feature_len * F32
        edges_per_gpu = m / self.num_gpus
        return edges_per_gpu, chunk_bytes

    def _compute_seconds_per_gpu(self, stats: GraphStats) -> float:
        """Kernel time for one GPU's share of edges (row-block schedule)."""
        per_gpu = GraphStats(
            stats.n_src, max(1, stats.n_dst // self.num_gpus),
            max(1, stats.n_edges // self.num_gpus),
            self._scale_degrees(stats, "src"),
            self._scale_degrees(stats, "dst"),
        )
        return gpu_model.spmm_row_block_time(
            self.spec, per_gpu, self.feature_len, hybrid_partitioning=True,
            kernel_efficiency=0.92).seconds

    def _scale_degrees(self, stats: GraphStats, side: str) -> np.ndarray:
        """Degree sequence for one GPU's shard (approximate 1/num_gpus cut)."""
        if side == "src":
            n = stats.n_src
            target_m = max(1, stats.n_edges // self.num_gpus)
            deg = np.full(n, target_m // n, dtype=np.int64)
            deg[: target_m - int(deg.sum())] += 1
            return deg
        n = max(1, stats.n_dst // self.num_gpus)
        target_m = max(1, stats.n_edges // self.num_gpus)
        deg = np.full(n, target_m // n, dtype=np.int64)
        deg[: target_m - int(deg.sum())] += 1
        return deg

    def cost(self, stats: GraphStats | None = None,
             schedule: str = "chain") -> CostReport:
        """Modeled multi-GPU epoch-kernel time.

        ``schedule``:

        - ``"host-to-all"`` -- every GPU pulls every source chunk over PCIe:
          total PCIe traffic = num_gpus x feature matrix.
        - ``"chain"`` -- NeuGraph's streaming schedule: each chunk crosses
          PCIe once (to the chain head) and then hops peer-to-peer; PCIe
          traffic = 1x feature matrix, hops overlap with compute.
        """
        if schedule not in ("chain", "host-to-all"):
            raise ValueError(f"unknown schedule {schedule!r}")
        if stats is None:
            stats = GraphStats.from_csr(self.adj.indptr, self.adj.indices,
                                        self.adj.shape[1])
        feat_bytes = stats.n_src * self.feature_len * F32
        compute_s = self._compute_seconds_per_gpu(stats)
        if schedule == "host-to-all":
            # all GPUs share the single host link
            transfer_s = self.num_gpus * feat_bytes / self.links.pcie_bw
            overlap = 0.3  # bulk broadcast overlaps poorly with compute
        else:
            pcie_s = feat_bytes / self.links.pcie_bw
            hop_s = feat_bytes / self.links.peer_bw  # pipelined chain hops
            transfer_s = pcie_s + hop_s / self.num_gpus
            overlap = 0.8  # chunk k streams while chunk k-1 computes
        total = max(compute_s, transfer_s) + (1 - overlap) * min(
            compute_s, transfer_s)
        return CostReport(
            seconds=total,
            compute_seconds=compute_s,
            memory_seconds=transfer_s,
            dram_bytes=feat_bytes,
            detail={"schedule": schedule, "num_gpus": self.num_gpus,
                    "transfer_seconds": transfer_s},
        )

    def speedup_over_single(self, stats: GraphStats | None = None,
                            schedule: str = "chain") -> float:
        """Modeled speedup of this configuration over one GPU."""
        if stats is None:
            stats = GraphStats.from_csr(self.adj.indptr, self.adj.indices,
                                        self.adj.shape[1])
        single = gpu_model.spmm_row_block_time(
            self.spec, stats, self.feature_len, hybrid_partitioning=True,
            kernel_efficiency=0.92).seconds
        return single / self.cost(stats, schedule=schedule).seconds

    def __repr__(self):
        return (f"MultiGPUSpMM(gpus={self.num_gpus}, f={self.feature_len}, "
                f"blocks={self.num_dst_chunks}x{self.num_src_chunks})")
