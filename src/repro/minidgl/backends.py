"""Kernel backends for minidgl message passing.

Two implementations of the same three primitives, mirroring the paper's
Table VI comparison:

- :class:`MinigunBackend` ("DGL w/o FeatGraph"): the Minigun-style default.
  For anything beyond plain copy+sum it **materializes the per-edge message
  tensor** and then reduces -- "the current solution in DGL is to calculate
  and materialize the messages on every edge" (Sec. IV-B).  The materialized
  bytes are tracked so the fusion ablation can report the traffic cost.

- :class:`FeatGraphDGLBackend` ("DGL w/ FeatGraph"): routes the primitives
  through the fused generalized SpMM/SDDMM templates of :mod:`repro.core`,
  compiled once per (graph, shape) and cached -- "FeatGraph generates kernel
  codes for a specific graph topology; the compilation cost is amortized"
  (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro import tensorir as T
from repro.core.api import sddmm as fg_sddmm
from repro.core.api import spmm as fg_spmm
from repro.graph.segment import segment_reduce
from repro.graph.sparse import CSRMatrix

__all__ = ["MinigunBackend", "FeatGraphDGLBackend", "get_backend"]


class MinigunBackend:
    """Materialize-then-reduce execution (DGL default)."""

    name = "minigun"

    def __init__(self):
        #: bytes of per-edge message tensors materialized so far
        self.materialized_bytes = 0

    def spmm_copy_sum(self, adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
        msgs = x[adj.indices]  # materialized (m, ...) message tensor
        self.materialized_bytes += msgs.nbytes
        return segment_reduce(msgs, adj.indptr, op="sum")

    def spmm_mul_sum(self, adj: CSRMatrix, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        gathered = x[adj.indices]
        if w.ndim == gathered.ndim:
            msgs = gathered * w
        else:
            msgs = gathered * w.reshape(w.shape + (1,) * (gathered.ndim - w.ndim))
        self.materialized_bytes += msgs.nbytes
        return segment_reduce(msgs, adj.indptr, op="sum")

    def sddmm_dot(self, adj: CSRMatrix, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lhs = a[adj.indices]
        rhs = b[adj.row_of_edge()]
        self.materialized_bytes += lhs.nbytes + rhs.nbytes
        return (lhs * rhs).sum(axis=-1)


class FeatGraphDGLBackend:
    """Fused execution through the FeatGraph templates."""

    name = "featgraph"

    def __init__(self, target: str = "cpu"):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.target = target
        self._cache: dict = {}
        self.materialized_bytes = 0  # fused kernels materialize nothing

    @staticmethod
    def _canonical(adj: CSRMatrix, cache: dict) -> CSRMatrix:
        """Per-edge tensors in minidgl are CSR-position ordered; rebuild the
        adjacency with ``edge_ids = arange`` so the templates agree."""
        key = ("canon", id(adj))
        if key not in cache:
            cache[key] = CSRMatrix(adj.shape, adj.indptr, adj.indices)
        return cache[key]

    # -- kernel builders (cached per graph identity and shape) -------------
    def _copy_sum(self, adj: CSRMatrix, feat_shape: tuple[int, ...]):
        key = ("copy", id(adj), feat_shape)
        if key not in self._cache:
            adj = self._canonical(adj, self._cache)
            n = adj.shape[1]
            XV = T.placeholder((n,) + feat_shape, name="XV")

            def msgfunc(src, dst, eid):
                return T.compute(feat_shape,
                                 lambda *ix: XV[(src,) + ix], name="cp_msg")

            self._cache[key] = fg_spmm(adj, msgfunc, "sum", target=self.target)
        return self._cache[key]

    def _mul_sum(self, adj: CSRMatrix, feat_shape: tuple[int, ...], w_ndim: int):
        key = ("mul", id(adj), feat_shape, w_ndim)
        if key not in self._cache:
            adj = self._canonical(adj, self._cache)
            n = adj.shape[1]
            m = adj.nnz
            XV = T.placeholder((n,) + feat_shape, name="XV")
            EW = T.placeholder((m,) + feat_shape[: w_ndim - 1], name="EW")

            def msgfunc(src, dst, eid):
                def body(*ix):
                    w_ix = ix[: w_ndim - 1]
                    return XV[(src,) + ix] * EW[(eid,) + w_ix]
                return T.compute(feat_shape, body, name="mul_msg")

            self._cache[key] = fg_spmm(adj, msgfunc, "sum", target=self.target)
        return self._cache[key]

    def _dot(self, adj: CSRMatrix, feat_shape: tuple[int, ...]):
        key = ("dot", id(adj), feat_shape)
        if key not in self._cache:
            adj = self._canonical(adj, self._cache)
            n = adj.shape[1]
            XA = T.placeholder((n,) + feat_shape, name="XA")
            XB = T.placeholder((n,) + feat_shape, name="XB")
            d = feat_shape[-1]
            head_shape = feat_shape[:-1] or (1,)

            def edgefunc(src, dst, eid):
                k = T.reduce_axis((0, d), name="k")
                if len(feat_shape) == 1:
                    return T.compute(
                        (1,), lambda i: T.sum_reduce(XA[src, k] * XB[dst, k], axis=k),
                        name="dot_e")
                return T.compute(
                    head_shape,
                    lambda *hx: T.sum_reduce(
                        XA[(src,) + hx + (k,)] * XB[(dst,) + hx + (k,)], axis=k),
                    name="dot_e")

            self._cache[key] = fg_sddmm(adj, edgefunc, target=self.target)
        return self._cache[key]

    def _softmax(self, adj: CSRMatrix, num_heads: int):
        key = ("softmax", id(adj), num_heads)
        if key not in self._cache:
            from repro.core.softmax import EdgeSoftmax

            adj = self._canonical(adj, self._cache)
            self._cache[key] = EdgeSoftmax(adj, num_heads=num_heads,
                                           target=self.target)
        return self._cache[key]

    # -- primitives ---------------------------------------------------------
    def spmm_copy_sum(self, adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
        k = self._copy_sum(adj, x.shape[1:])
        return k.run({"XV": x})

    def edge_softmax(self, adj: CSRMatrix, scores: np.ndarray) -> np.ndarray:
        """Fused three-pass edge softmax (no per-edge materialization)."""
        heads = scores.shape[1] if scores.ndim > 1 else 1
        return self._softmax(adj, heads).run(scores)

    def spmm_mul_sum(self, adj: CSRMatrix, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        k = self._mul_sum(adj, x.shape[1:], w.ndim)
        return k.run({"XV": x, "EW": w})

    def sddmm_dot(self, adj: CSRMatrix, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        k = self._dot(adj, a.shape[1:])
        out = k.run({"XA": a, "XB": b})
        if a.ndim == 2:
            return out[:, 0]
        return out


def get_backend(name: str, target: str = "cpu"):
    """Backend factory: ``"minigun"`` or ``"featgraph"``."""
    if name == "minigun":
        return MinigunBackend()
    if name == "featgraph":
        return FeatGraphDGLBackend(target)
    raise KeyError(f"unknown backend {name!r}")
