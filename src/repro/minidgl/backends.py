"""Kernel backends for minidgl message passing.

Two implementations of the same three primitives, mirroring the paper's
Table VI comparison:

- :class:`MinigunBackend` ("DGL w/o FeatGraph"): the Minigun-style default.
  For anything beyond plain copy+sum it **materializes the per-edge message
  tensor** and then reduces -- "the current solution in DGL is to calculate
  and materialize the messages on every edge" (Sec. IV-B).  The materialized
  bytes are tracked so the fusion ablation can report the traffic cost.

- :class:`FeatGraphDGLBackend` ("DGL w/ FeatGraph"): routes the primitives
  through the fused generalized SpMM/SDDMM templates of :mod:`repro.core`,
  compiled once per (graph, shape) and cached -- "FeatGraph generates kernel
  codes for a specific graph topology; the compilation cost is amortized"
  (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import sddmm as fg_sddmm
from repro.core.api import spmm as fg_spmm
from repro.core.fds import default_fds_for
from repro.graph.segment import segment_reduce
from repro.graph.sparse import CSRMatrix

__all__ = ["MinigunBackend", "FeatGraphDGLBackend", "get_backend"]


class MinigunBackend:
    """Materialize-then-reduce execution (DGL default)."""

    name = "minigun"

    def __init__(self):
        #: bytes of per-edge message tensors materialized so far
        self.materialized_bytes = 0

    def spmm_copy_sum(self, adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
        msgs = x[adj.indices]  # materialized (m, ...) message tensor
        self.materialized_bytes += msgs.nbytes
        return segment_reduce(msgs, adj.indptr, op="sum")

    def spmm_mul_sum(self, adj: CSRMatrix, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        gathered = x[adj.indices]
        if w.ndim == gathered.ndim:
            msgs = gathered * w
        else:
            msgs = gathered * w.reshape(w.shape + (1,) * (gathered.ndim - w.ndim))
        self.materialized_bytes += msgs.nbytes
        return segment_reduce(msgs, adj.indptr, op="sum")

    def sddmm_dot(self, adj: CSRMatrix, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        lhs = a[adj.indices]
        rhs = b[adj.row_of_edge()]
        self.materialized_bytes += lhs.nbytes + rhs.nbytes
        return (lhs * rhs).sum(axis=-1)


class FeatGraphDGLBackend:
    """Fused execution through the FeatGraph templates.

    Holds no kernel dict of its own: every builder compiles through
    :mod:`repro.core.compile`, so kernels are keyed by the graph's content
    fingerprint in the shared :class:`~repro.core.compile.KernelCache` (pass
    ``cache=`` for a private one) and are reused across backend instances --
    and across :class:`~repro.core.backend.FeatGraphBackend`, since both
    layers trace the same :mod:`repro.core.builtins` UDFs under the same
    :func:`~repro.core.fds.default_fds_for` schedules.  Canonicalized CSR
    copies live in the cache's dedicated graph-artifact namespace, not mixed
    into the kernel key space (that mixing was a long-standing bug here).
    """

    name = "featgraph"

    def __init__(self, target: str = "cpu", cache=None):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.target = target
        self.cache = cache
        self.materialized_bytes = 0  # fused kernels materialize nothing

    def _kernel_cache(self):
        if self.cache is not None:
            return self.cache
        from repro.core.compile import get_kernel_cache

        return get_kernel_cache()

    def _canonical(self, adj: CSRMatrix) -> CSRMatrix:
        """Per-edge tensors in minidgl are CSR-position ordered; fetch the
        cache's canonical copy with ``edge_ids = arange`` so the templates
        agree."""
        return self._kernel_cache().canonical_graph(adj)

    # -- kernel builders (deduplicated by the shared kernel cache) ---------
    def _copy_sum(self, adj: CSRMatrix, feat_shape: tuple[int, ...]):
        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        n = adj.shape[1]
        XV = T.placeholder((n,) + feat_shape, name="XV")
        msgfunc = dgl_builtins.copy_u_msg(XV)
        fds = default_fds_for(self.target, feat_shape[0], "spmm")
        return fg_spmm(adj, msgfunc, "sum", target=self.target, fds=fds,
                       cache=cache)

    def _mul_sum(self, adj: CSRMatrix, feat_shape: tuple[int, ...], w_ndim: int):
        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        n = adj.shape[1]
        m = adj.nnz
        XV = T.placeholder((n,) + feat_shape, name="XV")
        EW = T.placeholder((m,) + feat_shape[: w_ndim - 1], name="EW")
        msgfunc = dgl_builtins.u_mul_e_msg(XV, EW)
        fds = default_fds_for(self.target, feat_shape[0], "spmm")
        return fg_spmm(adj, msgfunc, "sum", target=self.target, fds=fds,
                       cache=cache)

    def _dot(self, adj: CSRMatrix, feat_shape: tuple[int, ...]):
        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        # XA is gathered by source id, XB by destination id; on a bipartite
        # sampled block those counts differ, so size each side accordingly.
        XA = T.placeholder((adj.shape[1],) + feat_shape, name="XA")
        XB = T.placeholder((adj.shape[0],) + feat_shape, name="XB")
        edgefunc = dgl_builtins.u_dot_v_edge(XA, XB)
        fds = default_fds_for(self.target, feat_shape[-1], "sddmm")
        return fg_sddmm(adj, edgefunc, target=self.target, fds=fds,
                        cache=cache)

    def _softmax(self, adj: CSRMatrix, num_heads: int):
        from repro.core.softmax import EdgeSoftmax

        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        # EdgeSoftmax is a thin composite; its three phase kernels come out
        # of the shared cache, so rebuilding the wrapper per call is cheap.
        return EdgeSoftmax(adj, num_heads=num_heads, target=self.target,
                           cache=cache)

    def _fused_softmax_aggregate(self, adj: CSRMatrix, num_heads: int,
                                 feat_shape: tuple[int, ...]):
        from repro.core.fusion import FusedEdgeSoftmax

        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        # Like _softmax, a thin per-call wrapper: the fused chain is cached
        # as one topology-independent fused template, so this is a rebind.
        return FusedEdgeSoftmax(adj, num_heads=num_heads, target=self.target,
                                cache=cache, feat_shape=feat_shape)

    def _fused_copy_u(self, adj: CSRMatrix, feat_shape: tuple[int, ...],
                      aggregation: str):
        from repro.core.fusion import FusedCopyUAggregate

        cache = self._kernel_cache()
        adj = cache.canonical_graph(adj)
        return FusedCopyUAggregate(adj, feat_shape, aggregation=aggregation,
                                   target=self.target, cache=cache)

    # -- primitives ---------------------------------------------------------
    def spmm_copy_sum(self, adj: CSRMatrix, x: np.ndarray) -> np.ndarray:
        k = self._copy_sum(adj, x.shape[1:])
        return k.run({"XV": x})

    def fused_copy_u_aggregate(self, adj: CSRMatrix, x: np.ndarray,
                               aggregation: str = "sum") -> np.ndarray:
        """Copy-u message + aggregation as one fused edge sweep -- the
        GCN/SAGE hot path; ``mean`` divides by in-degree in the fused
        kernel's finalize step, never materializing the sum separately."""
        k = self._fused_copy_u(adj, x.shape[1:], aggregation)
        return k.run(x)

    def edge_softmax(self, adj: CSRMatrix, scores: np.ndarray) -> np.ndarray:
        """Fused three-pass edge softmax (no per-edge materialization)."""
        heads = scores.shape[1] if scores.ndim > 1 else 1
        return self._softmax(adj, heads).run(scores)

    def fused_softmax_aggregate(self, adj: CSRMatrix, scores: np.ndarray,
                                z: np.ndarray, need_alpha: bool = False):
        """Edge softmax + weighted aggregation as one fused edge sweep.

        Returns ``(out, alpha)``; ``alpha`` is None unless requested (a
        backward pass needs it), in which case it is materialized from the
        otherwise-elided chain buffer.
        """
        heads = scores.shape[1] if scores.ndim > 1 else 1
        fes = self._fused_softmax_aggregate(adj, heads, z.shape[1:])
        return fes.run_aggregate(scores, z, need_alpha=need_alpha)

    def spmm_mul_sum(self, adj: CSRMatrix, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        k = self._mul_sum(adj, x.shape[1:], w.ndim)
        return k.run({"XV": x, "EW": w})

    def sddmm_dot(self, adj: CSRMatrix, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        k = self._dot(adj, a.shape[1:])
        out = k.run({"XA": a, "XB": b})
        if a.ndim == 2:
            return out[:, 0]
        return out


def get_backend(name: str, target: str = "cpu"):
    """Backend factory: ``"minigun"`` or ``"featgraph"``."""
    if name == "minigun":
        return MinigunBackend()
    if name == "featgraph":
        return FeatGraphDGLBackend(target)
    raise KeyError(f"unknown backend {name!r}")
