"""Heterogeneous graphs and relational message passing.

GNN frameworks (and FeatGraph's DGL host) support graphs with typed edges;
the reproduction's UDF flexibility makes the per-relation transform a
one-liner (see :func:`repro.core.kernels.rgcn_aggregation`).  This module
provides the framework side:

- :class:`HeteroGraph` -- one vertex set, multiple named edge relations,
  each its own pull-layout CSR;
- :func:`rgcn_layer` -- the autograd R-GCN convolution
  [Schlichtkrull et al.]: per-relation linear transform of source features,
  summed across relations, normalized by total in-degree, plus a self-loop
  transform;
- :class:`RGCN` -- a 2-layer entity-classification model.

Both minidgl backends execute the per-relation aggregations, so the Table VI
backend comparison extends to heterogeneous workloads unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.graph.sparse import from_edges
from repro.minidgl.autograd import Tensor
from repro.minidgl.graph import Graph, copy_u_sum
from repro.minidgl.nn import Dropout, Linear, Module

__all__ = ["HeteroGraph", "RGCNConv", "RGCN"]


class HeteroGraph:
    """One vertex set with multiple named edge relations."""

    def __init__(self, num_vertices: int,
                 relations: dict[str, tuple[np.ndarray, np.ndarray]]):
        if num_vertices < 1:
            raise ValueError("num_vertices must be >= 1")
        if not relations:
            raise ValueError("a HeteroGraph needs at least one relation")
        self.num_vertices = int(num_vertices)
        self.graphs: dict[str, Graph] = {}
        for name, (src, dst) in relations.items():
            self.graphs[name] = Graph(
                from_edges(num_vertices, num_vertices, src, dst))

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(self.graphs)

    @property
    def num_edges(self) -> int:
        return sum(g.num_edges for g in self.graphs.values())

    def total_in_degrees(self) -> np.ndarray:
        """In-degree summed across every relation."""
        total = np.zeros(self.num_vertices, dtype=np.int64)
        for g in self.graphs.values():
            total += g.in_degrees()
        return total

    def __getitem__(self, relation: str) -> Graph:
        try:
            return self.graphs[relation]
        except KeyError:
            raise KeyError(f"unknown relation {relation!r}; "
                           f"have {sorted(self.graphs)}") from None

    def __repr__(self):
        rels = ", ".join(f"{k}:{g.num_edges}" for k, g in self.graphs.items())
        return f"HeteroGraph(|V|={self.num_vertices}, {rels})"


class RGCNConv(Module):
    """Relational graph convolution: per-relation transform + sum."""

    def __init__(self, in_dim: int, out_dim: int, relations: tuple[str, ...],
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.relations = tuple(relations)
        self.rel_linears = [Linear(in_dim, out_dim, bias=False, rng=rng)
                            for _ in self.relations]
        self.self_linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, hg: HeteroGraph, x: Tensor, backend) -> Tensor:
        if tuple(hg.relations) != self.relations:
            raise ValueError(
                f"layer built for relations {self.relations}, "
                f"graph has {hg.relations}")
        out = self.self_linear(x)
        inv_deg = (1.0 / np.maximum(hg.total_in_degrees(), 1)).astype(
            np.float32).reshape(-1, 1)
        for rel, lin in zip(self.relations, self.rel_linears):
            # transform-then-aggregate keeps the SpMM width at out_dim
            agg = copy_u_sum(hg[rel], lin(x), backend)
            out = out + agg * Tensor(inv_deg)
        return out


class RGCN(Module):
    """2-layer R-GCN for entity classification."""

    def __init__(self, in_dim: int, num_classes: int,
                 relations: tuple[str, ...], hidden: int = 16,
                 dropout: float = 0.0, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = RGCNConv(in_dim, hidden, relations, rng=rng)
        self.conv2 = RGCNConv(hidden, num_classes, relations, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, hg: HeteroGraph, x: Tensor, backend) -> Tensor:
        h = self.conv1(hg, x, backend).relu()
        h = self.dropout(h)
        return self.conv2(hg, h, backend)
