"""The paper's three end-to-end models (Sec. V-E).

- 2-layer GCN, hidden size 512
- 2-layer GraphSage, hidden size 256 (mean aggregation)
- 2-layer GAT, hidden size 256 (dot/additive attention, 4 heads)

Hidden sizes are constructor defaults and shrink freely for scaled-down
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.minidgl.autograd import Tensor
from repro.minidgl.graph import Graph
from repro.minidgl.nn import Dropout, GATConv, GCNConv, Linear, Module, SAGEConv

__all__ = ["GCN", "GraphSage", "GAT", "APPNP", "MODELS"]


def _check_blocks(blocks, num_layers: int):
    if len(blocks) != num_layers:
        raise ValueError(f"expected {num_layers} blocks, got {len(blocks)}")


class GCN(Module):
    """2-layer graph convolutional network."""

    paper_hidden = 512
    num_block_layers = 2

    def __init__(self, in_dim: int, num_classes: int, hidden: int = 512,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = GCNConv(in_dim, hidden, rng=rng)
        self.conv2 = GCNConv(hidden, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        #: logits width -- lets harnesses shape empty/zero-seed outputs
        self.out_dim = num_classes

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        h = self.conv1(graph, x, backend).relu()
        h = self.dropout(h)
        return self.conv2(graph, h, backend)

    def forward_blocks(self, blocks, x: Tensor, backend) -> Tensor:
        """Mini-batch forward over sampled blocks (one per layer, execution
        order); ``x`` holds the features of ``blocks[0].src_ids``."""
        _check_blocks(blocks, self.num_block_layers)
        h = self.conv1(Graph(blocks[0].adj), x, backend).relu()
        h = self.dropout(h)
        return self.conv2(Graph(blocks[1].adj), h, backend)


class GraphSage(Module):
    """2-layer GraphSage with mean aggregation."""

    paper_hidden = 256
    num_block_layers = 2

    def __init__(self, in_dim: int, num_classes: int, hidden: int = 256,
                 dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = SAGEConv(in_dim, hidden, rng=rng)
        self.conv2 = SAGEConv(hidden, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.out_dim = num_classes

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        h = self.conv1(graph, x, backend).relu()
        h = self.dropout(h)
        return self.conv2(graph, h, backend)

    def forward_blocks(self, blocks, x: Tensor, backend) -> Tensor:
        """Mini-batch forward over sampled blocks (one per layer, execution
        order); ``x`` holds the features of ``blocks[0].src_ids``."""
        _check_blocks(blocks, self.num_block_layers)
        h = self.conv1(Graph(blocks[0].adj), x, backend).relu()
        h = self.dropout(h)
        return self.conv2(Graph(blocks[1].adj), h, backend)


class GAT(Module):
    """2-layer graph attention network."""

    paper_hidden = 256
    num_block_layers = 2

    def __init__(self, in_dim: int, num_classes: int, hidden: int = 256,
                 num_heads: int = 4, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = GATConv(in_dim, hidden, num_heads=num_heads, rng=rng)
        # final layer: single head onto the class logits
        self.conv2 = GATConv(hidden, num_classes, num_heads=1, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.out_dim = num_classes

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        h = self.conv1(graph, x, backend).elu()
        h = self.dropout(h)
        return self.conv2(graph, h, backend)

    def forward_blocks(self, blocks, x: Tensor, backend) -> Tensor:
        """Mini-batch forward over sampled blocks (one per layer, execution
        order); ``x`` holds the features of ``blocks[0].src_ids``."""
        _check_blocks(blocks, self.num_block_layers)
        h = self.conv1(Graph(blocks[0].adj), x, backend).elu()
        h = self.dropout(h)
        return self.conv2(Graph(blocks[1].adj), h, backend)


class APPNP(Module):
    """Approximate personalized propagation of neural predictions
    [Klicpera et al.]: an MLP prediction followed by K steps of personalized
    PageRank propagation -- ``H_{t+1} = (1-a) * Ahat H_t + a * H_0``.

    Each propagation step is one generalized SpMM, making APPNP the most
    SpMM-dense of the models here (K sparse kernels per forward pass).
    """

    paper_hidden = 64

    def __init__(self, in_dim: int, num_classes: int, hidden: int = 64,
                 k_hops: int = 8, alpha: float = 0.1, dropout: float = 0.1,
                 seed: int = 0):
        super().__init__()
        if not (0 <= alpha <= 1):
            raise ValueError("alpha must be in [0, 1]")
        if k_hops < 1:
            raise ValueError("k_hops must be >= 1")
        rng = np.random.default_rng(seed)
        self.lin1 = Linear(in_dim, hidden, rng=rng)
        self.lin2 = Linear(hidden, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.out_dim = num_classes
        self.k_hops = k_hops
        self.alpha = alpha

    def forward(self, graph: Graph, x: Tensor, backend) -> Tensor:
        from repro.minidgl.graph import copy_u_sum

        h0 = self.lin2(self.dropout(self.lin1(x).relu()))
        inv_deg = Tensor((1.0 / np.maximum(graph.in_degrees(), 1))
                         .astype(np.float32).reshape(-1, 1))
        h = h0
        for _ in range(self.k_hops):
            h = (copy_u_sum(graph, h, backend) * inv_deg) * (1 - self.alpha) \
                + h0 * self.alpha
        return h


MODELS = {"GCN": GCN, "GraphSage": GraphSage, "GAT": GAT, "APPNP": APPNP}
