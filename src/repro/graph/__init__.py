"""Graph substrate: sparse formats, partitioning, traversal orders, datasets.

- :mod:`repro.graph.sparse` -- CSR/CSC/COO adjacency structures built from
  scratch on numpy arrays (no scipy dependency in the data path).
- :mod:`repro.graph.segment` -- vectorized segment reductions (the numerical
  core of aggregation).
- :mod:`repro.graph.partition` -- 1D source partitioning, feature-dimension
  tiling, and degree-threshold hybrid partitioning (paper Sec. III-C1/C3).
- :mod:`repro.graph.hilbert` -- Hilbert-curve edge ordering (Sec. III-C1).
- :mod:`repro.graph.datasets` -- synthetic stand-ins for ogbn-proteins,
  reddit, and the paper's rand-100K / uniform-sparsity graphs.
"""

from repro.graph.sparse import CSRMatrix, COOMatrix, from_edges
from repro.graph.segment import segment_reduce, segment_softmax
from repro.graph.partition import (
    partition_1d,
    feature_tiles,
    hybrid_degree_split,
    Partition1D,
)
from repro.graph.hilbert import hilbert_order, hilbert_d2xy, hilbert_xy2d
from repro.graph.datasets import (
    proteins_like,
    reddit_like,
    rand_100k_like,
    uniform_random,
    planted_partition,
    DATASETS,
    load,
)

__all__ = [
    "CSRMatrix",
    "COOMatrix",
    "from_edges",
    "segment_reduce",
    "segment_softmax",
    "partition_1d",
    "feature_tiles",
    "hybrid_degree_split",
    "Partition1D",
    "hilbert_order",
    "hilbert_d2xy",
    "hilbert_xy2d",
    "proteins_like",
    "reddit_like",
    "rand_100k_like",
    "uniform_random",
    "planted_partition",
    "DATASETS",
    "load",
]
