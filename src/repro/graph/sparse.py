"""Sparse adjacency structures, built from scratch on numpy arrays.

The convention throughout the project follows the paper's pull-style
aggregation: the adjacency matrix ``A`` has one **row per destination
vertex**; the column indices of row ``v`` are the source neighbors
``N(v)``.  Vanilla SpMM ``A @ X`` then computes GCN aggregation
(paper Eq. 3), and SDDMM masks a dense-dense product by ``A`` (Eq. 4).

:class:`CSRMatrix` carries an explicit ``edge_ids`` array mapping each
stored nonzero to its original edge id, so edge-feature tensors survive
format conversions and reorderings (partitioning, Hilbert order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["CSRMatrix", "COOMatrix", "from_edges"]


class COOMatrix:
    """Coordinate-format sparse matrix (row, col, edge id triples)."""

    def __init__(self, shape: tuple[int, int], row: np.ndarray, col: np.ndarray,
                 edge_ids: np.ndarray | None = None):
        self.shape = (int(shape[0]), int(shape[1]))
        self.row = np.ascontiguousarray(row, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        if len(self.row) != len(self.col):
            raise ValueError("row/col length mismatch")
        if len(self.row) and (self.row.min() < 0 or self.row.max() >= self.shape[0]):
            raise ValueError("row index out of range")
        if len(self.col) and (self.col.min() < 0 or self.col.max() >= self.shape[1]):
            raise ValueError("col index out of range")
        if edge_ids is None:
            edge_ids = np.arange(len(self.row), dtype=np.int64)
        self.edge_ids = np.ascontiguousarray(edge_ids, dtype=np.int64)
        if len(self.edge_ids) != len(self.row):
            raise ValueError("edge_ids length mismatch")

    @property
    def nnz(self) -> int:
        return len(self.row)

    def to_csr(self) -> "CSRMatrix":
        order = np.lexsort((self.col, self.row))
        row = self.row[order]
        col = self.col[order]
        eid = self.edge_ids[order]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        counts = np.bincount(row, minlength=self.shape[0])
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(self.shape, indptr, col, eid)

    def transpose(self) -> "COOMatrix":
        return COOMatrix((self.shape[1], self.shape[0]), self.col, self.row, self.edge_ids)


class CSRMatrix:
    """Compressed-sparse-row adjacency with edge-id tracking."""

    def __init__(self, shape: tuple[int, int], indptr: np.ndarray, indices: np.ndarray,
                 edge_ids: np.ndarray | None = None):
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= self.shape[1]):
            raise ValueError("column index out of range")
        if edge_ids is None:
            edge_ids = np.arange(len(self.indices), dtype=np.int64)
        self.edge_ids = np.ascontiguousarray(edge_ids, dtype=np.int64)
        if len(self.edge_ids) != len(self.indices):
            raise ValueError("edge_ids length mismatch")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def fingerprint(self) -> str:
        """Stable content hash of this matrix (shape, nnz, structure arrays).

        Two CSRMatrix objects with identical structure hash identically, and
        the hash survives garbage collection / re-construction -- unlike
        ``id()``, which the kernel cache used to key on and which can be
        recycled for a new matrix at the same address.
        """
        if getattr(self, "_fingerprint", None) is None:
            h = hashlib.sha1()
            h.update(f"{self.shape[0]}x{self.shape[1]}:{self.nnz}".encode())
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            h.update(self.edge_ids.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row (in-degrees in pull layout)."""
        return np.diff(self.indptr)

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column (out-degrees in pull layout)."""
        return np.bincount(self.indices, minlength=self.shape[1])

    def row_of_edge(self) -> np.ndarray:
        """Expand indptr to a per-nonzero row-index array."""
        return np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_degrees())

    def to_coo(self) -> COOMatrix:
        return COOMatrix(self.shape, self.row_of_edge(), self.indices, self.edge_ids)

    def transpose(self) -> "CSRMatrix":
        """CSR of the transposed matrix (i.e. the CSC view of this one)."""
        return self.to_coo().transpose().to_csr()

    def select_columns(self, lo: int, hi: int) -> "CSRMatrix":
        """Sub-matrix with only columns in ``[lo, hi)`` (1D source partition).

        The result keeps the full shape and original column ids so feature
        indexing is unchanged; only the stored nonzeros are filtered.
        """
        mask = (self.indices >= lo) & (self.indices < hi)
        counts = np.zeros(self.shape[0], dtype=np.int64)
        rows = self.row_of_edge()[mask]
        np.add.at(counts, rows, 1)
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(self.shape, indptr, self.indices[mask], self.edge_ids[mask])

    def permute_rows(self, perm: np.ndarray) -> "CSRMatrix":
        """Reorder rows so new row ``i`` is old row ``perm[i]``."""
        perm = np.asarray(perm, dtype=np.int64)
        if len(perm) != self.shape[0] or len(np.unique(perm)) != len(perm):
            raise ValueError("perm must be a permutation of the rows")
        deg = self.row_degrees()[perm]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        # Gather each old row's slice into the new layout.
        starts = self.indptr[perm]
        offsets = np.arange(self.nnz, dtype=np.int64) - np.repeat(indptr[:-1], deg)
        src_pos = np.repeat(starts, deg) + offsets
        return CSRMatrix(self.shape, indptr, self.indices[src_pos], self.edge_ids[src_pos])

    def coalesce(self) -> tuple["CSRMatrix", np.ndarray]:
        """Merge parallel edges.

        Returns ``(simple_csr, multiplicity)`` where ``simple_csr`` has one
        entry per distinct (row, col) pair and ``multiplicity[k]`` counts how
        many original edges collapsed into entry ``k`` (usable as an edge
        weight to preserve sum-aggregation semantics).
        """
        rows = self.row_of_edge()
        cols = self.indices
        if self.nnz == 0:
            return CSRMatrix(self.shape, self.indptr, self.indices), \
                np.empty(0, dtype=np.int64)
        keys = rows * self.shape[1] + cols
        uniq, counts = np.unique(keys, return_counts=True)
        new_rows = uniq // self.shape[1]
        new_cols = uniq % self.shape[1]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_rows, minlength=self.shape[0]),
                  out=indptr[1:])
        return CSRMatrix(self.shape, indptr, new_cols), counts

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 adjacency (reference implementation aid; small graphs)."""
        out = np.zeros(self.shape, dtype=np.float32)
        out[self.row_of_edge(), self.indices] = 1.0
        return out

    def validate(self) -> None:
        """Internal consistency check (used by property-based tests)."""
        assert self.indptr[0] == 0 and self.indptr[-1] == self.nnz
        assert np.all(np.diff(self.indptr) >= 0)
        if self.nnz:
            assert self.indices.min() >= 0 and self.indices.max() < self.shape[1]
        assert len(self.edge_ids) == self.nnz

    def __repr__(self):
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def from_edges(n_src: int, n_dst: int, src: np.ndarray, dst: np.ndarray) -> CSRMatrix:
    """Build the pull-layout CSR (rows = destinations) from an edge list.

    Edge ``i`` points ``src[i] -> dst[i]``; its feature index is ``i``.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    coo = COOMatrix((n_dst, n_src), dst, src)
    return coo.to_csr()
