"""Vectorized segment reductions.

Aggregating per-edge messages into destination vertices is a segmented
reduction over CSR row boundaries.  ``np.ufunc.reduceat`` gives a fast path
when messages are laid out in CSR order; the ``unsorted`` variants
(``np.add.at`` family) cover partitioned execution where a pass touches only
a subset of rows.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.reducers import resolve_reducer

__all__ = ["segment_reduce", "segment_reduce_unsorted", "segment_softmax"]


def segment_reduce(values: np.ndarray, indptr: np.ndarray, op: str = "sum",
                   out: np.ndarray | None = None) -> np.ndarray:
    """Reduce ``values`` (shape ``(nnz, ...)``) over CSR segments.

    Returns shape ``(n_segments, ...)``.  Empty segments yield the reducer
    identity, except ``max``/``min`` yield 0 (matching the GNN convention
    that isolated vertices aggregate to zero).  ``mean`` divides sums by the
    segment size.
    """
    reducer, mean = resolve_reducer(op)
    indptr = np.asarray(indptr, dtype=np.int64)
    n_seg = len(indptr) - 1
    nnz = int(indptr[-1])
    values = np.asarray(values)
    if len(values) != nnz:
        raise ValueError(f"values has {len(values)} rows; indptr expects {nnz}")
    out_shape = (n_seg,) + values.shape[1:]
    if out is None:
        out = np.empty(out_shape, dtype=values.dtype)
    elif out.shape != out_shape:
        raise ValueError("out has wrong shape")

    if nnz == 0:
        out[:] = 0
        return out
    # reduceat over the starts of *non-empty* segments only: each such start
    # runs exactly to the next non-empty start (any segments in between are
    # empty), so the boundaries are correct and in range.  Clamping empty
    # starts instead would corrupt the preceding segment's range.
    nonempty = indptr[:-1] < indptr[1:]
    ufunc = reducer.ufunc
    out[~nonempty] = 0.0
    if nonempty.any():
        starts = indptr[:-1][nonempty]
        out[nonempty] = ufunc.reduceat(values, starts, axis=0)
    if mean:
        sizes = np.diff(indptr).astype(values.dtype)
        sizes[sizes == 0] = 1
        out /= sizes.reshape((-1,) + (1,) * (values.ndim - 1))
    return out


def segment_reduce_unsorted(values: np.ndarray, segment_ids: np.ndarray, n_segments: int,
                            op: str = "sum", out: np.ndarray | None = None,
                            accumulate: bool = False) -> np.ndarray:
    """Reduce ``values`` grouped by ``segment_ids`` (not necessarily sorted).

    With ``accumulate=True``, combines into an existing ``out`` instead of
    reinitializing -- the merge step of partitioned SpMM execution.
    """
    reducer, mean = resolve_reducer(op)
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (n_segments,) + values.shape[1:]
    if out is None:
        if accumulate:
            raise ValueError("accumulate=True requires an existing out buffer")
        out = np.full(out_shape, reducer.identity, dtype=values.dtype)
    elif out.shape != out_shape:
        raise ValueError("out has wrong shape")
    reducer.ufunc.at(out, segment_ids, values)
    if not accumulate:
        # Untouched segments hold the identity; normalize to the 0 convention.
        touched = np.zeros(n_segments, dtype=bool)
        touched[segment_ids] = True
        out[~touched] = 0.0
    if mean:
        counts = np.bincount(segment_ids, minlength=n_segments).astype(values.dtype)
        counts[counts == 0] = 1
        out /= counts.reshape((-1,) + (1,) * (values.ndim - 1))
    return out


def segment_softmax(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Numerically stable softmax within each CSR segment.

    Used by GAT-style attention: normalizes per-edge scores over each
    destination's incoming edges.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    values = np.asarray(values)
    seg_max = segment_reduce(values, indptr, op="max")
    sizes = np.diff(indptr)
    shifted = values - np.repeat(seg_max, sizes, axis=0)
    ex = np.exp(shifted)
    seg_sum = segment_reduce(ex, indptr, op="sum")
    seg_sum = np.where(seg_sum == 0, 1, seg_sum)
    return ex / np.repeat(seg_sum, sizes, axis=0)
