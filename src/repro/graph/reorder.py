"""Graph reordering for locality.

Vertex relabeling is the classic complement to the paper's partitioning
optimizations: placing frequently co-accessed rows near each other improves
every downstream cache mechanism.  Two standard orders:

- :func:`degree_order` -- sort vertices by (out-)degree descending, packing
  the hot rows together (what makes the GPU model's degree-coverage term and
  the hybrid split effective);
- :func:`rcm_order` -- reverse Cuthill-McKee: BFS from a low-degree
  peripheral vertex with degree-sorted neighbor visits, reversed; reduces
  adjacency bandwidth so edge traversals touch nearby rows.

:func:`apply_vertex_order` relabels an adjacency (and feature matrix) under
a permutation, preserving multigraph semantics.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.sparse import CSRMatrix, from_edges

__all__ = ["degree_order", "rcm_order", "apply_vertex_order"]


def degree_order(adj: CSRMatrix, by: str = "src") -> np.ndarray:
    """Permutation: position -> old vertex id, hot vertices first.

    ``by="src"`` sorts by out-degree (column counts in pull layout),
    ``by="dst"`` by in-degree.
    """
    if by == "src":
        deg = adj.col_degrees()
    elif by == "dst":
        deg = adj.row_degrees()
    else:
        raise ValueError("by must be 'src' or 'dst'")
    return np.argsort(deg, kind="stable")[::-1].astype(np.int64)


def rcm_order(adj: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee permutation (position -> old vertex id).

    Operates on the undirected structure; disconnected components are
    processed in order of their minimum-degree start vertices.
    """
    n = adj.shape[0]
    if adj.shape[0] != adj.shape[1]:
        raise ValueError("RCM needs a square adjacency")
    # undirected neighbor lists
    rows = adj.row_of_edge()
    cols = adj.indices
    und_src = np.concatenate([rows, cols])
    und_dst = np.concatenate([cols, rows])
    und = from_edges(n, n, und_src, und_dst)
    deg = und.row_degrees()

    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for start in np.argsort(deg, kind="stable"):
        if visited[start]:
            continue
        visited[start] = True
        queue = deque([int(start)])
        while queue:
            v = queue.popleft()
            order.append(v)
            lo, hi = und.indptr[v], und.indptr[v + 1]
            nbrs = np.unique(und.indices[lo:hi])
            nbrs = nbrs[~visited[nbrs]]
            nbrs = nbrs[np.argsort(deg[nbrs], kind="stable")]
            visited[nbrs] = True
            queue.extend(int(x) for x in nbrs)
    return np.asarray(order[::-1], dtype=np.int64)


def apply_vertex_order(adj: CSRMatrix, order: np.ndarray,
                       features: np.ndarray | None = None):
    """Relabel vertices so new id ``i`` is old id ``order[i]``.

    Returns ``(new_adj, new_features)``; edge ``k`` of the new adjacency
    keeps edge id ``k``'s original meaning through ``edge_ids``.
    """
    order = np.asarray(order, dtype=np.int64)
    n = adj.shape[0]
    if adj.shape[0] != adj.shape[1]:
        raise ValueError("vertex reordering needs a square adjacency")
    if len(order) != n or len(np.unique(order)) != n:
        raise ValueError("order must be a permutation of the vertices")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)
    rows = inverse[adj.row_of_edge()]
    cols = inverse[adj.indices]
    new_adj = from_edges(n, n, cols, rows)
    new_feats = features[order] if features is not None else None
    return new_adj, new_feats
