"""Synthetic dataset generators standing in for the paper's graphs.

The paper evaluates on ogbn-proteins (132.5K vertices / 79.1M edges, avg
degree 597), reddit (233.0K / 114.8M, avg 493), rand-100K (100K / 48M: 20K
vertices of avg degree 2000 plus 80K of avg degree 100), and uniform random
graphs of varying sparsity (Table V).  Those datasets are not available
offline, and the full edge counts are beyond what pure-Python numerics
should chew per benchmark run, so this module provides:

- **degree-faithful generators** that reproduce |V|, |E|, and the degree
  *distribution shape* (lognormal skew calibrated per dataset) at any scale;
- :func:`paper_stats` -- full-scale :class:`~repro.hwsim.stats.GraphStats`
  built from synthesized degree sequences *without materializing edges*, for
  the analytic machine models;
- :func:`planted_partition` -- a labeled community graph for the accuracy
  parity experiment (Sec. V-E), where classification is actually learnable.

Every generator takes a ``scale`` in (0, 1]: vertex and edge counts shrink
proportionally while average degree is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.sparse import CSRMatrix, from_edges
from repro.hwsim.stats import GraphStats

__all__ = [
    "Dataset",
    "proteins_like",
    "reddit_like",
    "rand_100k_like",
    "uniform_random",
    "planted_partition",
    "paper_stats",
    "DATASETS",
    "load",
]


@dataclass
class Dataset:
    """A graph plus optional vertex features/labels and split masks."""

    name: str
    adj: CSRMatrix  # pull layout: rows = destinations, cols = sources
    features: np.ndarray | None = None
    labels: np.ndarray | None = None
    train_mask: np.ndarray | None = None
    val_mask: np.ndarray | None = None
    test_mask: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.adj.shape[0]

    @property
    def num_edges(self) -> int:
        return self.adj.nnz

    def stats(self) -> GraphStats:
        return GraphStats.from_csr(self.adj.indptr, self.adj.indices, self.adj.shape[1])


# ----------------------------------------------------------------------
# degree-sequence machinery
# ----------------------------------------------------------------------

def _lognormal_degrees(n: int, avg_degree: float, sigma: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Integer degree sequence with lognormal shape and exact mean*n sum."""
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    target = int(round(avg_degree * n))
    deg = np.maximum(1, np.round(raw * (target / raw.sum()))).astype(np.int64)
    # fix rounding drift so the sum is exact
    drift = target - int(deg.sum())
    if drift != 0:
        idx = rng.choice(n, size=abs(drift), replace=abs(drift) > n)
        np.add.at(deg, idx, 1 if drift > 0 else -1)
        deg = np.maximum(deg, 1)
        # one more correction pass for any clamped decrements
        drift = target - int(deg.sum())
        if drift > 0:
            deg[rng.choice(n, size=drift, replace=drift > n)] += 1
        elif drift < 0:
            big = np.nonzero(deg > 1)[0]
            take = rng.choice(big, size=-drift, replace=-drift > len(big))
            np.subtract.at(deg, take, 1)
    return deg


def _bimodal_degrees(n_high: int, deg_high: float, n_low: int, deg_low: float,
                     rng: np.random.Generator) -> np.ndarray:
    high = _lognormal_degrees(n_high, deg_high, 0.3, rng)
    low = _lognormal_degrees(n_low, deg_low, 0.3, rng)
    deg = np.concatenate([high, low])
    rng.shuffle(deg)
    return deg


def _edges_from_degrees(out_deg: np.ndarray, in_weights: np.ndarray,
                        rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Configuration-style edge sampling: each source emits out_deg edges to
    destinations drawn proportionally to in_weights.  Parallel edges are
    possible (and harmless to every kernel here)."""
    m = int(out_deg.sum())
    src = np.repeat(np.arange(len(out_deg), dtype=np.int64), out_deg)
    p = in_weights / in_weights.sum()
    dst = rng.choice(len(in_weights), size=m, p=p)
    return src, dst.astype(np.int64)


def _build(name: str, n: int, avg_degree: float, sigma: float, scale: float,
           seed: int) -> Dataset:
    if not (0 < scale <= 1):
        raise ValueError("scale must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n_s = max(16, int(round(n * scale)))
    out_deg = _lognormal_degrees(n_s, avg_degree, sigma, rng)
    in_w = rng.lognormal(0.0, sigma, size=n_s)
    src, dst = _edges_from_degrees(out_deg, in_w, rng)
    adj = from_edges(n_s, n_s, src, dst)
    return Dataset(name=name, adj=adj,
                   meta={"scale": scale, "paper_vertices": n,
                         "paper_avg_degree": avg_degree, "sigma": sigma})


def proteins_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """ogbn-proteins stand-in: 132.5K vertices, avg degree 597, mild skew."""
    return _build("ogbn-proteins", 132_500, 597.0, sigma=0.55, scale=scale, seed=seed)


def reddit_like(scale: float = 1.0, seed: int = 1) -> Dataset:
    """reddit stand-in: 233.0K vertices, avg degree 493, heavy-tailed hubs."""
    return _build("reddit", 233_000, 493.0, sigma=0.85, scale=scale, seed=seed)


def rand_100k_like(scale: float = 1.0, seed: int = 2) -> Dataset:
    """rand-100K stand-in: 20K vertices of avg degree 2000 plus 80K of avg
    degree 100 (the paper's hybrid-partitioning study graph)."""
    if not (0 < scale <= 1):
        raise ValueError("scale must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n_high = max(4, int(round(20_000 * scale)))
    n_low = max(12, int(round(80_000 * scale)))
    out_deg = _bimodal_degrees(n_high, 2000.0, n_low, 100.0, rng)
    in_deg_w = np.concatenate([
        np.full(n_high, 2000.0), np.full(n_low, 100.0)
    ])
    rng.shuffle(in_deg_w)
    src, dst = _edges_from_degrees(out_deg, in_deg_w, rng)
    n = n_high + n_low
    adj = from_edges(n, n, src, dst)
    return Dataset(name="rand-100K", adj=adj,
                   meta={"scale": scale, "paper_vertices": 100_000,
                         "paper_avg_degree": 480.0})


def uniform_random(n: int, density: float, seed: int = 3) -> Dataset:
    """Uniform Erdos-Renyi-style graph with given nonzero density
    (Table V's sparsity sweep; sparsity = 1 - density)."""
    if not (0 < density <= 1):
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    m = int(round(n * n * density))
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    adj = from_edges(n, n, src, dst)
    return Dataset(name=f"uniform-{density:g}", adj=adj,
                   meta={"density": density})


def planted_partition(n: int = 3000, num_classes: int = 8, feature_dim: int = 64,
                      avg_degree: float = 30.0, homophily: float = 0.85,
                      seed: int = 4) -> Dataset:
    """Labeled community graph for the accuracy-parity experiment.

    Vertices belong to one of ``num_classes`` communities; edges connect
    within-community with probability ``homophily``.  Features are a noisy
    class signature, so a GNN that aggregates neighborhoods can classify well
    -- mirroring the role of the reddit vertex-classification task in
    Sec. V-E.  Splits follow the paper's 153K/24K/56K proportions.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    deg = _lognormal_degrees(n, avg_degree, 0.5, rng)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    m = len(src)
    same = rng.random(m) < homophily
    # within-community targets for "same", uniform otherwise
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    by_class = [np.nonzero(labels == c)[0] for c in range(num_classes)]
    for c in range(num_classes):
        sel = same & (labels[src] == c)
        cnt = int(sel.sum())
        if cnt and len(by_class[c]):
            dst[sel] = rng.choice(by_class[c], size=cnt)
    adj = from_edges(n, n, src, dst)
    centers = rng.normal(0, 1, size=(num_classes, feature_dim))
    feats = centers[labels] + rng.normal(0, 1.5, size=(n, feature_dim))
    order = rng.permutation(n)
    n_train = int(n * 153 / 233)
    n_val = int(n * 24 / 233)
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:]] = True
    return Dataset(name="planted-partition", adj=adj,
                   features=feats.astype(np.float32), labels=labels.astype(np.int64),
                   train_mask=train_mask, val_mask=val_mask, test_mask=test_mask,
                   meta={"num_classes": num_classes, "homophily": homophily})


# ----------------------------------------------------------------------
# paper-scale statistics (no edge materialization)
# ----------------------------------------------------------------------

_PAPER_SHAPES = {
    "ogbn-proteins": dict(n=132_500, avg=597.0, sigma=0.55, seed=10),
    "reddit": dict(n=233_000, avg=493.0, sigma=0.85, seed=11),
}


def paper_stats(name: str, seed: int | None = None) -> GraphStats:
    """Full-scale GraphStats for the machine models, from degree sequences.

    Edge endpoints never materialize: the models only need degree moments
    and the coverage curve.
    """
    if name in _PAPER_SHAPES:
        shape = _PAPER_SHAPES[name]
        rng = np.random.default_rng(seed if seed is not None else shape["seed"])
        n = shape["n"]
        out_deg = _lognormal_degrees(n, shape["avg"], shape["sigma"], rng)
        in_deg = _lognormal_degrees(n, shape["avg"], shape["sigma"], rng)
        m = int(out_deg.sum())
        # reconcile sums (lognormal draws are independently normalized)
        diff = m - int(in_deg.sum())
        if diff > 0:
            in_deg[rng.choice(n, size=diff, replace=diff > n)] += 1
        elif diff < 0:
            big = np.nonzero(in_deg > 1)[0]
            take = rng.choice(big, size=-diff, replace=-diff > len(big))
            np.subtract.at(in_deg, take, 1)
        return GraphStats(n, n, m, out_deg, in_deg)
    if name == "rand-100K":
        rng = np.random.default_rng(seed if seed is not None else 12)
        out_deg = _bimodal_degrees(20_000, 2000.0, 80_000, 100.0, rng)
        in_deg = out_deg.copy()
        rng.shuffle(in_deg)
        return GraphStats(100_000, 100_000, int(out_deg.sum()), out_deg, in_deg)
    if name.startswith("uniform-"):
        density = float(name.split("-", 1)[1])
        n = 100_000
        m = int(round(n * n * density))
        avg = m / n
        rng = np.random.default_rng(seed if seed is not None else 13)
        # Poisson-like degrees for a uniform graph, reconciled to exact sum.
        out_deg = _exact_sum_degrees(rng.poisson(avg, size=n), m, rng)
        in_deg = _exact_sum_degrees(rng.poisson(avg, size=n), m, rng)
        return GraphStats(n, n, m, out_deg, in_deg)
    raise KeyError(f"unknown paper dataset {name!r}")


def _exact_sum_degrees(raw: np.ndarray, target: int, rng: np.random.Generator
                       ) -> np.ndarray:
    """Scale-round a nonnegative sequence so it sums exactly to ``target``."""
    raw = np.maximum(np.asarray(raw, dtype=np.float64), 0.0)
    total = raw.sum()
    if total <= 0:
        raw = np.ones_like(raw)
        total = raw.sum()
    deg = np.maximum(1, np.round(raw * (target / total))).astype(np.int64)
    drift = target - int(deg.sum())
    n = len(deg)
    while drift != 0:
        step = min(abs(drift), n)
        idx = rng.choice(n, size=step, replace=False)
        if drift > 0:
            deg[idx] += 1
            drift -= step
        else:
            can = deg[idx] > 1
            deg[idx[can]] -= 1
            drift += int(can.sum())
    return deg


DATASETS = {
    "ogbn-proteins": proteins_like,
    "reddit": reddit_like,
    "rand-100K": rand_100k_like,
}


def load(name: str, scale: float = 1.0, seed: int | None = None) -> Dataset:
    """Instantiate a named dataset at the given scale."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(DATASETS)}") from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
