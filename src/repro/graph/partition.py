"""Graph partitioning and feature tiling (paper Sec. III-C1 and III-C3).

- :func:`partition_1d` -- 1D partitioning of **source vertices** (Fig. 6a):
  the edge set is split by source-column range so that each pass's source
  working set fits in cache; partial aggregations are merged at the end.
- :func:`feature_tiles` -- tiling of the feature dimension (Fig. 6b): each
  tile re-traverses the graph but shrinks the per-vertex working set.
- :func:`hybrid_degree_split` -- GPU hybrid partitioning (Sec. III-C3):
  reorders sources into a low-degree part and a high-degree part by a degree
  threshold; only high-degree sources are partitioned into shared memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.sparse import CSRMatrix

__all__ = ["Partition1D", "partition_1d", "Partition2D", "partition_2d",
           "feature_tiles", "hybrid_degree_split", "HybridSplit"]


@dataclass
class Partition1D:
    """One source-range partition of a CSR adjacency."""

    index: int
    col_lo: int
    col_hi: int
    csr: CSRMatrix  # same shape as the full graph; nonzeros restricted to the range

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def num_sources(self) -> int:
        return self.col_hi - self.col_lo


def partition_1d(adj: CSRMatrix, num_partitions: int) -> list[Partition1D]:
    """Split the adjacency into ``num_partitions`` source-column ranges.

    Ranges are equal-width in vertex id (matching the paper's Fig. 6, which
    partitions the source axis uniformly).  Raises on a partition count
    exceeding the source count.
    """
    num_partitions = int(num_partitions)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n_src = adj.shape[1]
    if num_partitions > n_src:
        raise ValueError(f"cannot make {num_partitions} partitions of {n_src} sources")
    if num_partitions == 1:
        return [Partition1D(0, 0, n_src, adj)]
    bounds = [(p * n_src) // num_partitions for p in range(num_partitions + 1)]
    out = []
    for p in range(num_partitions):
        lo, hi = bounds[p], bounds[p + 1]
        out.append(Partition1D(p, lo, hi, adj.select_columns(lo, hi)))
    return out


def feature_tiles(feature_len: int, num_tiles: int) -> list[tuple[int, int]]:
    """Half-open column ranges tiling ``[0, feature_len)`` into ``num_tiles``."""
    num_tiles = int(num_tiles)
    if num_tiles < 1:
        raise ValueError("num_tiles must be >= 1")
    num_tiles = min(num_tiles, feature_len) if feature_len else 1
    width = math.ceil(feature_len / num_tiles)
    return [(lo, min(lo + width, feature_len))
            for lo in range(0, feature_len, width)]


@dataclass
class Partition2D:
    """One (destination-range x source-range) grid block of the adjacency,
    in the style of GridGraph's 2-level hierarchical partitioning (the
    paper's reference [19])."""

    row_index: int
    col_index: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    csr: CSRMatrix  # full-shape CSR; nonzeros restricted to the block

    @property
    def nnz(self) -> int:
        return self.csr.nnz


def partition_2d(adj: CSRMatrix, num_row_parts: int,
                 num_col_parts: int) -> list[Partition2D]:
    """Split the adjacency into a grid of (dst-range x src-range) blocks.

    Both endpoint working sets of a block are bounded, which serves the same
    goal as Hilbert traversal for edge-wise kernels; blocks are returned in
    row-major order.  Every nonzero lands in exactly one block.
    """
    num_row_parts = int(num_row_parts)
    num_col_parts = int(num_col_parts)
    if num_row_parts < 1 or num_col_parts < 1:
        raise ValueError("partition counts must be >= 1")
    n_rows, n_cols = adj.shape
    if num_row_parts > n_rows or num_col_parts > n_cols:
        raise ValueError("more partitions than vertices")
    row_bounds = [(p * n_rows) // num_row_parts for p in range(num_row_parts + 1)]
    blocks: list[Partition2D] = []
    for r in range(num_row_parts):
        r_lo, r_hi = row_bounds[r], row_bounds[r + 1]
        # restrict to the row slab first (cheap: indptr slicing)
        e_lo, e_hi = adj.indptr[r_lo], adj.indptr[r_hi]
        slab_indptr = np.zeros(n_rows + 1, dtype=np.int64)
        slab_indptr[r_lo:r_hi + 1] = adj.indptr[r_lo:r_hi + 1] - e_lo
        slab_indptr[r_hi + 1:] = slab_indptr[r_hi]
        slab = CSRMatrix(adj.shape, slab_indptr,
                         adj.indices[e_lo:e_hi], adj.edge_ids[e_lo:e_hi])
        for p in partition_1d(slab, num_col_parts):
            blocks.append(Partition2D(
                row_index=r, col_index=p.index,
                row_lo=r_lo, row_hi=r_hi,
                col_lo=p.col_lo, col_hi=p.col_hi, csr=p.csr))
    return blocks


@dataclass
class HybridSplit:
    """Result of degree-threshold hybrid partitioning.

    ``order`` maps new source position -> original source id, with all
    low-degree sources first, then high-degree sources.  ``num_low`` is the
    boundary.  ``high_partitions`` groups the high-degree sources into
    shared-memory-sized chunks.
    """

    order: np.ndarray
    num_low: int
    threshold: int
    high_partitions: list[np.ndarray]

    @property
    def high_ids(self) -> np.ndarray:
        return self.order[self.num_low:]


def hybrid_degree_split(adj: CSRMatrix, degree_threshold: int,
                        shared_capacity_rows: int) -> HybridSplit:
    """Reorder sources into low/high-degree parts (paper Sec. III-C3).

    High-degree sources (out-degree >= ``degree_threshold``) are grouped,
    descending by degree, into partitions of at most
    ``shared_capacity_rows`` rows each -- the rows one CUDA block stages in
    shared memory.  Lower thresholds mean more partitions: better read
    efficiency, higher merge cost (the paper's stated trade-off).
    """
    if degree_threshold < 0:
        raise ValueError("degree_threshold must be >= 0")
    if shared_capacity_rows < 1:
        raise ValueError("shared_capacity_rows must be >= 1")
    deg = adj.col_degrees()
    high_mask = deg >= degree_threshold
    high = np.nonzero(high_mask)[0]
    low = np.nonzero(~high_mask)[0]
    high = high[np.argsort(deg[high])[::-1]]
    order = np.concatenate([low, high])
    parts = [high[i : i + shared_capacity_rows]
             for i in range(0, len(high), shared_capacity_rows)]
    return HybridSplit(order=order, num_low=len(low),
                       threshold=int(degree_threshold), high_partitions=parts)
