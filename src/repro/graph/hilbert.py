"""Hilbert-curve edge traversal order (paper Sec. III-C1, citing [32]).

Edge-wise computations read both the source and destination feature rows.
Visiting edges in the order their (dst, src) coordinates appear along a
Hilbert space-filling curve keeps *both* coordinates within a small window
for long runs, exploiting locality across the whole cache hierarchy.

:func:`hilbert_xy2d` / :func:`hilbert_d2xy` implement the classic
coordinate <-> curve-distance maps, vectorized over numpy arrays;
:func:`hilbert_order` sorts an edge list by curve distance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_xy2d", "hilbert_d2xy", "hilbert_order"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def hilbert_xy2d(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Map (x, y) coordinates to distances along a Hilbert curve of side
    ``2**order``.  Vectorized translation of the standard bitwise algorithm."""
    x = np.array(x, dtype=np.int64, copy=True)
    y = np.array(y, dtype=np.int64, copy=True)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    n = np.int64(1) << order
    if x.size and (x.min() < 0 or y.min() < 0 or x.max() >= n or y.max() >= n):
        raise ValueError("coordinates out of range for curve order")
    d = np.zeros_like(x)
    s = n >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_xy2d`."""
    d = np.array(d, dtype=np.int64, copy=True)
    n = np.int64(1) << order
    if d.size and (d.min() < 0 or d.max() >= n * n):
        raise ValueError("distance out of range for curve order")
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    t = d.copy()
    s = np.int64(1)
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # rotate
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_order(dst: np.ndarray, src: np.ndarray, n_dst: int, n_src: int) -> np.ndarray:
    """Permutation sorting edges by Hilbert-curve distance of (dst, src).

    Returns indices such that ``dst[perm], src[perm]`` visits edges in curve
    order.  The curve side is the next power of two covering both vertex
    ranges.
    """
    dst = np.asarray(dst, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64)
    side = _next_pow2(max(int(n_dst), int(n_src), 1))
    order = int(side).bit_length() - 1
    if (1 << order) < side:
        order += 1
    d = hilbert_xy2d(order, dst, src)
    return np.argsort(d, kind="stable")
