"""Graph and dataset serialization (.npz).

A small, versioned on-disk format so generated datasets can be cached
between benchmark runs and shared: one compressed ``.npz`` holding the CSR
arrays plus optional features/labels/masks and a JSON metadata blob.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.datasets import Dataset
from repro.graph.sparse import CSRMatrix

__all__ = ["save_dataset", "load_dataset", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    adj = dataset.adj
    payload: dict[str, np.ndarray] = {
        "version": np.array([FORMAT_VERSION]),
        "shape": np.array(adj.shape, dtype=np.int64),
        "indptr": adj.indptr,
        "indices": adj.indices,
        "edge_ids": adj.edge_ids,
        "meta_json": np.frombuffer(
            json.dumps({"name": dataset.name, **dataset.meta}).encode(),
            dtype=np.uint8),
    }
    for key in ("features", "labels", "train_mask", "val_mask", "test_mask"):
        value = getattr(dataset, key)
        if value is not None:
            payload[key] = value
    np.savez_compressed(path, **payload)
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version} "
                f"(this build reads {FORMAT_VERSION})")
        meta = json.loads(bytes(data["meta_json"]).decode())
        name = meta.pop("name", "unnamed")
        adj = CSRMatrix(tuple(data["shape"]), data["indptr"],
                        data["indices"], data["edge_ids"])

        def opt(key):
            return data[key] if key in data.files else None

        return Dataset(
            name=name, adj=adj,
            features=opt("features"), labels=opt("labels"),
            train_mask=opt("train_mask"), val_mask=opt("val_mask"),
            test_mask=opt("test_mask"), meta=meta,
        )
