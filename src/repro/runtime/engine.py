"""The executor: one interpreter for every kernel family's chunk loop.

``spmm.py``, ``sddmm.py`` and ``fusion.py`` each used to carry a private
copy of the same runtime loop (slice edges into chunks, gather the batch,
evaluate, push into an accumulator or output buffer, book the stats).
They now *lower* to an :class:`~repro.runtime.plan.ExecutionPlan` and hand
it to the :class:`Executor` here, which owns the loop once:

- per chunk, a :class:`ChunkCtx` lazily materializes the gathered batch,
  the destination-segment boundaries, and the chunk-local edge ids, and
  carries the per-stage values dict fused chains read through;
- stage **evaluates** produce ``(values, bytes_moved)``; stage **sinks**
  push values out -- :class:`AggregateSink` combines per-destination
  segments into a vertex accumulator through a pluggable
  :class:`~repro.runtime.strategies.AggregationStrategy`,
  :class:`ScatterSink` writes edge-indexed output rows;
- one :class:`~repro.tensorir.runtime.ExecStats` books every chunk
  identically across kernel families: evaluate wall-clock vs. sink
  wall-clock, bytes, and the compiled/interpreted split.

Chunks of a task are row-aligned (disjoint destination rows), so running
them on a :class:`~repro.tensorir.runtime.WorkPool` is race-free; the
executor skips chunk-level pooling when any chunk of a task combines
through the ``parallel`` strategy -- the parallelism then lives *inside*
the combine, and nesting both on one pool could starve it.

Heterogeneous plans assign a strategy **per chunk**
(:attr:`~repro.runtime.plan.EdgeTask.chunk_strategies`): the engine
threads each chunk's assignment through its :class:`ChunkCtx`, and
:class:`AggregateSink` combines through the context strategy when one is
set, falling back to its own default otherwise.  Combine order within a
chunk stays strategy-deterministic and chunks of a task touch disjoint
rows, so FG007 determinism verdicts hold per chunk.
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime.plan import EdgeTask, ExecutionPlan, SegmentInfo, \
    segment_info
from repro.runtime.reducers import Reducer
from repro.runtime.strategies import AggregationStrategy
from repro.tensorir.runtime import ExecStats, WorkPool

__all__ = ["ChunkCtx", "AggregateSink", "ScatterSink", "Executor"]


class ChunkCtx:
    """Per-chunk context handed to stage evaluates and sinks.

    Everything derived from the chunk bounds is computed on first access
    and cached: ``batch`` (the gathered ``src``/``dst``/``eid`` slices),
    ``segments`` (equal-destination runs, shared by every aggregate sink of
    a fused chain), and ``local_eid`` (chunk-local positions, the index
    space chain-edge consumers evaluate in).  ``values`` holds each stage's
    per-edge output for later stages of the same chunk.
    """

    __slots__ = ("c0", "c1", "_gather", "_batch", "_segments", "_local_eid",
                 "values", "strategy")

    def __init__(self, c0: int, c1: int, gather, strategy=None):
        self.c0 = int(c0)
        self.c1 = int(c1)
        self._gather = gather
        self._batch: dict | None = None
        self._segments: SegmentInfo | None = None
        self._local_eid: np.ndarray | None = None
        self.values: dict[str, np.ndarray] = {}
        #: per-chunk aggregation-strategy override (heterogeneous plans);
        #: None means the sink's default strategy combines this chunk
        self.strategy = strategy

    @property
    def size(self) -> int:
        return self.c1 - self.c0

    @property
    def batch(self) -> dict:
        if self._batch is None:
            self._batch = self._gather.batch(self.c0, self.c1)
        return self._batch

    @property
    def segments(self) -> SegmentInfo:
        if self._segments is None:
            self._segments = segment_info(self.batch["dst"])
        return self._segments

    @property
    def local_eid(self) -> np.ndarray:
        if self._local_eid is None:
            self._local_eid = np.arange(self.size, dtype=np.int64)
        return self._local_eid


class AggregateSink:
    """Combine a chunk's per-edge values into a vertex accumulator.

    The actual segment reduction is delegated to ``strategy``; this sink
    owns only the post-combine ``guard_zero`` substitution (isolated-sum
    guards of the softmax denominator).  Returns the extra bytes the sink
    moved (none -- accumulator traffic is not booked, matching the
    pre-engine templates).
    """

    __slots__ = ("acc", "reducer", "strategy", "guard_zero")

    def __init__(self, acc: np.ndarray, reducer: Reducer,
                 strategy: AggregationStrategy, guard_zero: bool = False):
        self.acc = acc
        self.reducer = reducer
        self.strategy = strategy
        self.guard_zero = guard_zero

    def apply(self, vals: np.ndarray, ctx: ChunkCtx) -> int:
        seg = ctx.segments
        strategy = ctx.strategy if ctx.strategy is not None else self.strategy
        strategy.combine(self.acc, seg, vals, self.reducer)
        if self.guard_zero:
            # row-aligned chunks touch each row exactly once per sweep, so
            # guarding the combined rows here matches a per-row guard
            rows = seg.seg_rows
            block = self.acc[rows]
            self.acc[rows] = np.where(block == 0, 1.0, block)
        return 0

    def __repr__(self):
        return (f"AggregateSink({self.reducer.name} via "
                f"{self.strategy.name})")


class ScatterSink:
    """Write a chunk's per-edge values to edge-id-indexed output rows.

    ``tile`` scatters into a feature-column window (the SDDMM template's
    feature tiling); ``count_bytes`` books the written bytes for stages
    whose evaluate has no program-side accounting (fused alias/binop CSE
    values landing in a surviving edge buffer).
    """

    __slots__ = ("out", "tile", "count_bytes")

    def __init__(self, out: np.ndarray, tile: tuple[int, int] | None = None,
                 count_bytes: bool = False):
        self.out = out
        self.tile = tile
        self.count_bytes = count_bytes

    def apply(self, vals: np.ndarray, ctx: ChunkCtx) -> int:
        eid = ctx.batch["eid"]
        if self.tile is not None:
            self.out[eid, self.tile[0]:self.tile[1]] = vals
        else:
            self.out[eid] = vals
        return vals.nbytes if self.count_bytes else 0


class Executor:
    """Runs an :class:`~repro.runtime.plan.ExecutionPlan`.

    Tasks run in order (the cooperative one-partition-at-a-time schedule);
    a task's chunks are dispatched to ``pool`` when one is given and the
    plan's combine is not itself pool-parallel.  All stats land in one
    :class:`~repro.tensorir.runtime.ExecStats` -- the same object the
    owning kernel and its compile record share.
    """

    def __init__(self, stats: ExecStats | None = None,
                 pool: WorkPool | None = None):
        self.stats = stats if stats is not None else ExecStats()
        self.pool = pool

    def run(self, plan: ExecutionPlan, bindings=None) -> None:
        """Execute ``plan``; under ``FEATGRAPH_SANITIZE`` the run is
        re-routed through the instrumented sanitizer executor
        (:func:`repro.runtime.verify.sanitized_run`), which statically
        verifies the plan first and cross-checks runtime behavior against
        the static verdicts."""
        # lazy import: verify imports engine's sink types at module level
        from repro.runtime import verify as _verify

        if _verify.sanitize_enabled():
            _verify.sanitized_run(self, plan, bindings)
            return
        self._execute(plan, bindings)

    def _execute(self, plan: ExecutionPlan, bindings=None) -> None:
        if plan.strategy is not None:
            self.stats.note_strategy(plan.strategy)
        for task in plan.tasks:
            self._run_task(task, bindings)
        if plan.finalize is not None:
            plan.finalize()

    def _run_task(self, task: EdgeTask, bindings) -> None:
        bounds = list(task.bounds)
        if not bounds:
            return
        use_pool = (self.pool is not None and len(bounds) > 1
                    and not self._combines_on_pool(task))
        if use_pool:
            self.pool.map(lambda ib: self._run_chunk(task, bindings, ib[1],
                                                     ci=ib[0]),
                          list(enumerate(bounds)))
        else:
            for ci, b in enumerate(bounds):
                self._run_chunk(task, bindings, b, ci=ci)

    @staticmethod
    def _combines_on_pool(task: EdgeTask) -> bool:
        """Whether any chunk of ``task`` combines through the ``parallel``
        strategy -- the parallelism then lives *inside* the combine, so
        chunk-level pooling must stand down.  Per-chunk assignments take
        precedence over the sink default for the chunks they cover."""
        if not any(isinstance(st.sink, AggregateSink) for st in task.stages):
            return False
        default_parallel = any(isinstance(st.sink, AggregateSink)
                               and st.sink.strategy.name == "parallel"
                               for st in task.stages)
        if task.chunk_strategies is None:
            return default_parallel
        return any(default_parallel if s is None else s.name == "parallel"
                   for s in task.chunk_strategies)

    def _run_chunk(self, task: EdgeTask, bindings,
                   bounds: tuple[int, int], ci: int = 0) -> None:
        ctx = ChunkCtx(bounds[0], bounds[1], task.gather,
                       strategy=task.strategy_for_chunk(ci))
        eval_s = agg_s = 0.0
        chunk_bytes = 0
        compiled = True
        for st in task.stages:
            t0 = time.perf_counter()
            vals, nbytes = st.evaluate(bindings, ctx)
            eval_s += time.perf_counter() - t0
            chunk_bytes += int(nbytes)
            compiled = compiled and st.compiled
            t0 = time.perf_counter()
            ctx.values[st.name] = vals
            if st.sink is not None:
                chunk_bytes += int(st.sink.apply(vals, ctx))
            agg_s += time.perf_counter() - t0
        self.stats.add_chunk(eval_s, agg_s, chunk_bytes, compiled=compiled)
