"""Static verification of execution plans (FG006-FG010) + the sanitizer.

The PR-3 analyzer proves properties of *lowered loop nests*; since PR 7
the runtime executes something it never sees -- :class:`ExecutionPlan`
chunk loops, segment-aligned :class:`ParallelStrategy` shards,
process-backed pools staging :class:`SharedArray` segments, and fused
chains threading chunk-local buffers between stages.  This module gives
the plan layer the same static safety net:

``FG006`` **shard disjointness.**  A task's chunk bounds must partition
    the gathered edge domain, and -- whenever any stage aggregates --
    every destination row's edges must land in exactly one chunk (chunk
    boundaries on segment boundaries), so pool-parallel chunks and the
    per-sweep ``guard_zero`` substitution are race-free.  For the
    ``parallel`` strategy the shard cuts are additionally checked per
    chunk, symbolically from :func:`~repro.runtime.plan.segment_info`:
    cuts must cover the segment index space without overlap and must
    never split a destination segment across workers.  Heterogeneous
    plans (``EdgeTask.chunk_strategies``) are verified per chunk: the
    assignment list must align with the bounds, and the cut checks run
    for exactly the chunks whose *effective* strategy shards.

``FG007`` **determinism classification.**  Every (strategy, reducer)
    pair a plan aggregates through is labeled ``bit-identical`` /
    ``reassociated-fp`` / ``nondeterministic`` from the reducer
    registry's ``order_insensitive`` flag and the strategy's documented
    combine order -- the cross-strategy parity contract as a checked
    property, which the sanitizer then enforces numerically.

``FG008`` **buffer lifetime & aliasing.**  Chunk-local chain values must
    be defined by an earlier stage of the same task before any stage
    reads them; sink buffers of one task must not alias each other; and
    a compiled vector program's ``out=`` buffer reuse must only ever
    retire program-local registers that were previously assigned --
    never an input binding, which pool-parallel chunks share.

``FG009`` **shared-memory lifecycle.**  A plan whose combine stages
    ships work to a process-backed pool may only do so through a
    strategy that guarantees release of its staged ``SharedArray``
    segments on all paths (worker exceptions included); the live-segment
    registry (:meth:`SharedArray.live_segments`) makes the claim
    falsifiable and the sanitizer checks it after every run.

``FG010`` **gather bounds.**  ``GatherPlan`` index arrays are checked
    against the extents their graph-axis roles imply (``n_src`` /
    ``n_dst`` / ``m`` from the lowering kernel, or derived from the sink
    buffers), and chunk bounds against the gathered edge domain.
    Negative indices are rejected too -- numpy would wrap them silently.

:func:`verify_plan` runs the checks over one plan; :func:`verify_kernel`
lowers a bound kernel to its plan first (this is what the compile
pipeline's ``verify_plan`` pass and the ``kernel.verify_report()``
accessors call).  Reports reuse the PR-3 diagnostics machinery, so
``FEATGRAPH_ANALYSIS_STRICT`` turns plan errors into
:class:`~repro.tensorir.analysis.AnalysisError` exactly like loop-nest
errors.

The **sanitizer** (``FEATGRAPH_SANITIZE=1`` or :func:`sanitizing`) is
the dynamic half: :meth:`Executor.run` re-routes through
:func:`sanitized_run`, which records actual per-chunk destination write
sets, scatter targets, and combine orders while the plan executes, and
cross-checks them against the static verdicts -- a clean static report
plus a dynamic violation is a *disagreement* and raises
:class:`SanitizerError`.  The fuzzer's ``--sanitize`` stage hunts for
such disagreements the same way ``--analyze`` hunts for PR-3 analyzer
false positives.

Lint CLI::

    python -m repro.runtime.verify [--suite builtins|all] [--json]
                                   [--verbose] [--workers N]

verifies every registered kernel family (spmm builtins x reducers,
sddmm builtins, staged + fused edge softmax) under every segment-
reduction strategy; any FG006+ error exits non-zero (the CI
``plan-lint`` gate).
"""

from __future__ import annotations

import os
import re
import threading
from contextlib import contextmanager

import numpy as np

from repro.runtime.engine import AggregateSink, ScatterSink
from repro.runtime.plan import ExecutionPlan, segment_info
from repro.runtime.strategies import ParallelStrategy
from repro.tensorir.analysis.diagnostics import (AnalysisError,
                                                 AnalysisReport, Diagnostic,
                                                 Severity)

__all__ = [
    "SANITIZE_ENV",
    "sanitize_enabled",
    "set_sanitize",
    "sanitizing",
    "classify_reduction",
    "verify_plan",
    "verify_kernel",
    "SanitizerError",
    "sanitized_run",
    "main",
]

#: environment gate for the dynamic sanitizer executor
SANITIZE_ENV = "FEATGRAPH_SANITIZE"

#: determinism labels FG007 assigns to a (strategy, reducer) pair
BIT_IDENTICAL = "bit-identical"
REASSOCIATED = "reassociated-fp"
NONDETERMINISTIC = "nondeterministic"

#: strategies whose combine order is pinned by the parity contract
#: (see :mod:`repro.runtime.strategies`): ``reduceat`` is the oracle,
#: ``parallel`` reduces every segment with the same ``reduceat``
#: primitive behind segment-aligned cuts and one deterministic fold
_ORDER_PRESERVING = ("reduceat", "parallel")
_KNOWN_STRATEGIES = ("reduceat", "parallel", "bucketed")

#: shard counts the FG006 cut check simulates per chunk; disjointness
#: must hold for *any* worker count, so a small and a large count are
#: probed in addition to the actual pool width
_PROBE_SHARDS = (2, 3, 7)


# ----------------------------------------------------------------------
# sanitize mode (mirrors diagnostics.strict)
# ----------------------------------------------------------------------

_SANITIZE = os.environ.get(SANITIZE_ENV, "") not in ("", "0", "false")


def sanitize_enabled() -> bool:
    """Whether executions run under the dynamic sanitizer."""
    return _SANITIZE


def set_sanitize(enabled: bool) -> bool:
    """Set sanitize mode process-wide; returns the previous value."""
    global _SANITIZE
    old = _SANITIZE
    _SANITIZE = bool(enabled)
    return old


@contextmanager
def sanitizing(enabled: bool = True):
    """Temporarily enable (or disable) the sanitizer executor."""
    old = set_sanitize(enabled)
    try:
        yield
    finally:
        set_sanitize(old)


# ----------------------------------------------------------------------
# FG007: determinism classification
# ----------------------------------------------------------------------

def classify_reduction(strategy_name: str, reducer) -> str:
    """Label one (strategy, reducer) combine from static properties alone.

    ``reducer`` is a :class:`~repro.runtime.reducers.Reducer` or its
    registry name.  Order-insensitive reducers (max/min) are
    bit-identical under any combine order.  Order-sensitive ones stay
    bit-identical under the order-preserving strategies and degrade to
    ``reassociated-fp`` under ``bucketed`` (dense pairwise SIMD reduce +
    float64 accumulation).  Anything outside the strategy/reducer
    registries is ``nondeterministic`` -- no contract pins its combine
    order.
    """
    if isinstance(reducer, str):
        from repro.runtime.reducers import REDUCERS

        reducer = REDUCERS.get(reducer)
        if reducer is None:
            return NONDETERMINISTIC
    if strategy_name not in _KNOWN_STRATEGIES:
        return NONDETERMINISTIC
    if reducer.order_insensitive:
        return BIT_IDENTICAL
    if strategy_name in _ORDER_PRESERVING:
        return BIT_IDENTICAL
    return REASSOCIATED


def _aggregate_sinks(plan: ExecutionPlan):
    """Yield ``(task_index, task, stage, sink)`` per aggregating stage."""
    for ti, task in enumerate(plan.tasks):
        for st in task.stages:
            if isinstance(st.sink, AggregateSink):
                yield ti, task, st, st.sink


def _effective_strategies(task, sink):
    """Yield ``(chunk_index, strategy)`` -- the strategy each chunk of
    ``task`` actually combines through for ``sink``: the per-chunk
    assignment on heterogeneous plans, else the sink default."""
    assigned = task.chunk_strategies
    for ci in range(len(list(task.bounds))):
        s = None
        if assigned is not None and ci < len(assigned):
            s = assigned[ci]
        yield ci, (s if s is not None else sink.strategy)


# ----------------------------------------------------------------------
# the static checks
# ----------------------------------------------------------------------

class _Ctx:
    """One verification run: accumulates diagnostics."""

    def __init__(self, plan: ExecutionPlan):
        self.plan = plan
        meta = plan.extras.get("verify", {}) if plan.extras else {}
        self.dims: dict = dict(meta.get("dims", {}))
        self.chain_reads: dict = dict(meta.get("chain_reads", {}))
        self.programs: dict = dict(meta.get("programs", {}))
        self.diags: list[Diagnostic] = []

    def add(self, rule: str, loc: str, message: str,
            severity: str | None = None) -> None:
        from repro.tensorir.analysis.diagnostics import RULES

        self.diags.append(Diagnostic(
            rule, severity or RULES[rule][0], loc, message))


def _check_bounds_structure(ctx: _Ctx, ti: int, task) -> bool:
    """FG006/FG010: chunk bounds must partition the gathered edge domain.

    Returns False when the bounds are too broken for the downstream
    alignment checks to be meaningful.
    """
    loc = f"task[{ti}]"
    n_edges = len(task.gather.src)
    if len(task.gather.dst) != n_edges or len(task.gather.eid) != n_edges:
        ctx.add("FG010", loc,
                "gather arrays disagree on edge count: "
                f"src={len(task.gather.src)}, dst={len(task.gather.dst)}, "
                f"eid={len(task.gather.eid)}")
        return False
    bounds = list(task.bounds)
    ok = True
    prev_end = 0
    for ci, (c0, c1) in enumerate(bounds):
        if not (0 <= c0 < c1 <= n_edges):
            ctx.add("FG010", f"{loc}.chunk[{ci}]",
                    f"chunk bounds [{c0}, {c1}) escape the gathered edge "
                    f"domain [0, {n_edges})")
            ok = False
            continue
        if c0 < prev_end:
            ctx.add("FG006", f"{loc}.chunk[{ci}]",
                    f"chunk [{c0}, {c1}) overlaps the previous chunk "
                    f"(ends at {prev_end}): two workers can write the same "
                    "destination rows")
            ok = False
        elif c0 > prev_end:
            ctx.add("FG006", f"{loc}.chunk[{ci}]",
                    f"coverage gap: edges [{prev_end}, {c0}) belong to no "
                    "chunk", severity=Severity.WARNING)
        prev_end = max(prev_end, c1)
    if bounds and ok and prev_end < n_edges:
        ctx.add("FG006", loc,
                f"coverage gap: edges [{prev_end}, {n_edges}) belong to no "
                "chunk", severity=Severity.WARNING)
    return ok


def _check_row_alignment(ctx: _Ctx, ti: int, task) -> None:
    """FG006: with an aggregating sink, chunk boundaries must fall on
    destination-segment boundaries and rows must be chunk-contiguous."""
    if not any(isinstance(st.sink, AggregateSink) for st in task.stages):
        return
    loc = f"task[{ti}]"
    dst = np.asarray(task.gather.dst)
    if len(dst) == 0:
        return
    if np.any(np.diff(dst) < 0):
        ctx.add("FG006", loc,
                "destination rows are not sorted: segmented reduction "
                "assumes contiguous equal-dst runs and disjoint chunk "
                "write-sets, neither of which an unsorted gather provides")
        return
    for ci, (c0, c1) in enumerate(task.bounds):
        if c0 > 0 and dst[c0 - 1] == dst[c0]:
            ctx.add("FG006", f"{loc}.chunk[{ci}]",
                    f"chunk boundary at edge {c0} splits destination row "
                    f"{int(dst[c0])} across chunks: pool-parallel chunks "
                    "would combine the same accumulator row concurrently")


def _check_parallel_cuts(ctx: _Ctx, ti: int, task, strategy,
                         chunks=None) -> None:
    """FG006: the parallel strategy's shard cuts, probed symbolically.

    For every chunk the real ``segment_info`` is derived from the gather
    (no UDF is evaluated) and ``ParallelStrategy._shard_cuts`` is run for
    several worker counts; the cuts must cover the segment index space
    exactly once and each cut's edge offset must land on a segment
    boundary.  ``chunks`` restricts the probe to the chunk indices whose
    effective strategy is ``strategy`` (heterogeneous plans); ``None``
    probes every chunk.
    """
    loc = f"task[{ti}]"
    dst = np.asarray(task.gather.dst)
    pool_workers = getattr(getattr(strategy, "pool", None), "num_workers",
                           None)
    probes = set(_PROBE_SHARDS)
    if pool_workers and pool_workers > 1:
        probes.add(int(pool_workers))
    for ci, (c0, c1) in enumerate(task.bounds):
        if chunks is not None and ci not in chunks:
            continue
        seg = segment_info(dst[c0:c1])
        n_seg = len(seg.starts)
        n_edges = c1 - c0
        if n_seg < 2:
            continue
        for shards in sorted(probes):
            cuts = strategy._shard_cuts(seg, min(shards, n_seg), n_edges)
            cloc = f"{loc}.chunk[{ci}].shards[{shards}]"
            if cuts[0] != 0 or cuts[-1] != n_seg or \
                    np.any(np.diff(cuts) <= 0):
                ctx.add("FG006", cloc,
                        f"shard cuts {cuts.tolist()} do not partition the "
                        f"segment index space [0, {n_seg})")
                break
            # every interior cut's edge offset must start a new segment,
            # i.e. no destination row is reduced by two workers
            offs = seg.starts[cuts[1:-1]]
            bad = offs[(offs <= 0) | (offs >= n_edges)]
            split = [int(o) for o in offs
                     if 0 < o < n_edges and seg.rows[o - 1] == seg.rows[o]]
            if len(bad) or split:
                ctx.add("FG006", cloc,
                        f"shard cut splits destination segment at edge "
                        f"offset(s) {split or bad.tolist()}")
                break


def _check_chunk_strategies(ctx: _Ctx, ti: int, task) -> None:
    """FG006: a heterogeneous task's assignment list must align with its
    chunk bounds -- a length mismatch means some chunk combines through
    a strategy no static check ever classified."""
    assigned = task.chunk_strategies
    if assigned is None:
        return
    n_chunks = len(list(task.bounds))
    if len(assigned) != n_chunks:
        ctx.add("FG006", f"task[{ti}]",
                f"per-chunk strategy list has {len(assigned)} entries for "
                f"{n_chunks} chunks: assignments and bounds disagree, so "
                "chunks beyond the shorter list would fall back silently")


def _check_determinism(ctx: _Ctx) -> None:
    """FG007: one classification per distinct (strategy, reducer) pair,
    counting every effective per-chunk strategy of heterogeneous plans."""
    seen = set()
    for ti, task, st, sink in _aggregate_sinks(ctx.plan):
        names = {strat.name
                 for _, strat in _effective_strategies(task, sink)}
        if not names:
            names = {sink.strategy.name}
        for name in sorted(names):
            key = (name, sink.reducer.name)
            if key in seen:
                continue
            seen.add(key)
            label = classify_reduction(*key)
            severity = (Severity.WARNING if label == NONDETERMINISTIC
                        else Severity.INFO)
            ctx.add("FG007", f"task[{ti}].{st.name}",
                    f"reduction {sink.reducer.name} via strategy "
                    f"{name}: {label}", severity=severity)


_OUT_RE = re.compile(r"\bout=(\w+)")
_LHS_RE = re.compile(r"^\s*(\w+)\s*=[^=]")


def _check_program_source(ctx: _Ctx, name: str, prog) -> None:
    """FG008: ``out=`` retirement in a compiled program must only target
    program-local registers already assigned -- never an input binding
    (shared by concurrent chunks) and never an undefined name."""
    source = getattr(prog, "source", None)
    if not source:
        return
    external = set(getattr(prog, "tensor_names", ()) or ())
    external |= set(getattr(prog, "batch_names", ()) or ())
    assigned: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), 1):
        for target in _OUT_RE.findall(line):
            lhs = _LHS_RE.match(line)
            if target in external:
                ctx.add("FG008", f"program[{name}]:{lineno}",
                        f"out={target} writes into input binding "
                        f"{target!r}: concurrent chunks share bindings, "
                        "so in-place retirement would corrupt them")
            elif target not in assigned and \
                    not (lhs and lhs.group(1) == target):
                ctx.add("FG008", f"program[{name}]:{lineno}",
                        f"out={target} retires a register with no prior "
                        "definition (use before def)")
        lhs = _LHS_RE.match(line)
        if lhs:
            assigned.add(lhs.group(1))


def _check_lifetimes(ctx: _Ctx) -> None:
    """FG008: chain-value def-before-use and within-task sink aliasing."""
    for ti, task in enumerate(ctx.plan.tasks):
        defined: set = set()
        sinks: list[tuple[str, np.ndarray]] = []
        for st in task.stages:
            for read in ctx.chain_reads.get(st.name, ()):
                if read not in defined:
                    ctx.add("FG008", f"task[{ti}].{st.name}",
                            f"reads chunk-local value {read!r} before any "
                            "earlier stage of this task defines it "
                            "(stale or missing buffer)")
            defined.add(st.name)
            buf = None
            if isinstance(st.sink, AggregateSink):
                buf = st.sink.acc
            elif isinstance(st.sink, ScatterSink):
                buf = st.sink.out
            if buf is not None:
                for other_name, other in sinks:
                    if np.shares_memory(buf, other):
                        ctx.add("FG008", f"task[{ti}].{st.name}",
                                f"sink buffer aliases stage "
                                f"{other_name!r}'s sink buffer within one "
                                "task: stages of a chunk would overwrite "
                                "each other")
                sinks.append((st.name, buf))
        for name, prog in ctx.programs.items():
            if prog is not None and name in defined:
                _check_program_source(ctx, name, prog)


def _check_shared_memory(ctx: _Ctx) -> None:
    """FG009: process-backed combines must route shared memory through a
    strategy whose staging provably releases on all paths."""
    seen = set()
    for ti, task, st, sink in _aggregate_sinks(ctx.plan):
        candidates = [strategy
                      for _, strategy in _effective_strategies(task, sink)]
        if not candidates:
            candidates = [sink.strategy]
        for strategy in candidates:
            if strategy.name != "parallel" or id(strategy) in seen:
                continue
            seen.add(id(strategy))
            pool = getattr(strategy, "pool", None)
            if getattr(pool, "backend", "thread") != "process":
                continue
            loc = f"task[{ti}].{st.name}"
            if not getattr(strategy, "shm_release_guaranteed", False):
                ctx.add("FG009", loc,
                        f"strategy {type(strategy).__name__} stages "
                        "SharedArray segments for a process pool without "
                        "declaring a release reached on all paths (worker "
                        "exceptions included); orphaned POSIX shm outlives "
                        "the process")
            else:
                ctx.add("FG009", loc,
                        "process-backed combine: staged SharedArray "
                        "segments release in a finally path on all exits; "
                        "the live-segment registry is checked by the "
                        "sanitizer", severity=Severity.INFO)


def _check_gather_bounds(ctx: _Ctx, ti: int, task) -> None:
    """FG010: index arrays against their role-implied extents."""
    loc = f"task[{ti}]"
    dims = ctx.dims
    # sink-derived extents back up (and cross-check) the declared roles
    dst_ext = dims.get("n_dst")
    eid_ext = dims.get("m")
    for st in task.stages:
        if isinstance(st.sink, AggregateSink):
            rows = st.sink.acc.shape[0]
            dst_ext = rows if dst_ext is None else min(dst_ext, rows)
        elif isinstance(st.sink, ScatterSink):
            rows = st.sink.out.shape[0]
            eid_ext = rows if eid_ext is None else min(eid_ext, rows)
    checks = (("src", task.gather.src, dims.get("n_src")),
              ("dst", task.gather.dst, dst_ext),
              ("eid", task.gather.eid, eid_ext))
    for name, arr, extent in checks:
        arr = np.asarray(arr)
        if arr.size == 0:
            continue
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0:
            ctx.add("FG010", f"{loc}.gather.{name}",
                    f"index {lo} is negative: numpy would wrap it to the "
                    "end of the buffer silently")
        if extent is not None and hi >= extent:
            ctx.add("FG010", f"{loc}.gather.{name}",
                    f"index {hi} escapes the {name} extent {extent}")


def verify_plan(plan: ExecutionPlan) -> AnalysisReport:
    """Statically verify one execution plan; returns an
    :class:`~repro.tensorir.analysis.AnalysisReport` over FG006-FG010.

    Purely structural: segment boundaries and shard cuts are derived
    from the plan's own index arrays -- no stage evaluate runs and no
    sink is applied.  Lowering sites attach role extents and chain-read
    metadata under ``plan.extras["verify"]``; plans without metadata
    still get every check the sink buffers and gathers support.
    """
    ctx = _Ctx(plan)
    for ti, task in enumerate(plan.tasks):
        structured = _check_bounds_structure(ctx, ti, task)
        if structured:
            _check_row_alignment(ctx, ti, task)
            _check_chunk_strategies(ctx, ti, task)
            # cut checks run per chunk, against each chunk's *effective*
            # strategy -- the per-chunk assignment on heterogeneous plans
            for st in task.stages:
                sink = st.sink
                if not isinstance(sink, AggregateSink):
                    continue
                sharded: dict[int, tuple] = {}
                for ci, strat in _effective_strategies(task, sink):
                    if isinstance(strat, ParallelStrategy):
                        sharded.setdefault(id(strat), (strat, set()))
                        sharded[id(strat)][1].add(ci)
                for strat, chunks in sharded.values():
                    _check_parallel_cuts(ctx, ti, task, strat, chunks)
                break
        _check_gather_bounds(ctx, ti, task)
    _check_determinism(ctx)
    _check_lifetimes(ctx)
    _check_shared_memory(ctx)
    report = AnalysisReport(diagnostics=tuple(ctx.diags),
                            target=plan.extras.get("verify", {}).get(
                                "target") if plan.extras else None)
    plan.extras.setdefault("verify", {})["report"] = report
    return report


# ----------------------------------------------------------------------
# kernel-level entry points (what the compile pass and CLI call)
# ----------------------------------------------------------------------

def _merge(reports) -> AnalysisReport:
    diags: list[Diagnostic] = []
    target = None
    for r in reports:
        diags.extend(r.diagnostics)
        target = target or r.target
    return AnalysisReport(diagnostics=tuple(diags), target=target)


def verify_kernel(kernel, pool=None) -> AnalysisReport:
    """Lower ``kernel`` to its execution plan(s) and verify them.

    Accepts every kernel family: :class:`~repro.core.spmm.GeneralizedSpMM`
    (dummy accumulator), :class:`~repro.core.sddmm.GeneralizedSDDMM`
    (dummy output), :class:`~repro.core.fusion.FusedKernel` (dummy chain
    buffers), and :class:`~repro.core.softmax.EdgeSoftmax` (all phase
    kernels, plus the fused chain when enabled).  The buffers are
    allocated but never written -- verification is static.
    """
    from repro.core.fusion import FusedKernel
    from repro.core.sddmm import GeneralizedSDDMM
    from repro.core.softmax import EdgeSoftmax
    from repro.core.spmm import GeneralizedSpMM
    from repro.runtime.reducers import AGG_IDENTITY

    if isinstance(kernel, GeneralizedSpMM):
        acc = np.empty((kernel.A.num_dst,) + kernel.msg_shape,
                       dtype=np.float32)
        return verify_plan(kernel.execution_plan(acc, pool=pool))
    if isinstance(kernel, GeneralizedSDDMM):
        result = np.empty((kernel.A.nnz,) + kernel.out_shape,
                          dtype=np.float32)
        return verify_plan(kernel.execution_plan(result))
    if isinstance(kernel, FusedKernel):
        n_dst, m = kernel.A.num_dst, kernel.A.nnz
        vbufs, ebufs = {}, {}
        for st in kernel.plan.stages:
            if st.kind == "spmm":
                # mean fuses as a running sum (finalize divides), so its
                # chain buffer seeds with sum's identity
                base = "sum" if st.aggregation == "mean" else st.aggregation
                vbufs[st.name] = np.full((n_dst,) + st.feat_shape,
                                         AGG_IDENTITY[base],
                                         dtype=np.float32)
            elif not st.elided:
                ebufs[st.name] = np.empty((m,) + st.feat_shape,
                                          dtype=np.float32)
        return verify_plan(kernel.execution_plan(vbufs, ebufs, pool=pool))
    if isinstance(kernel, EdgeSoftmax):
        parts = [kernel._max_kernel, kernel._sum_kernel, kernel._norm_kernel]
        if kernel.fused is not None:
            parts.append(kernel.fused.kernel)
        return _merge(verify_kernel(k, pool=pool) for k in parts)
    raise TypeError(f"cannot verify {type(kernel).__name__}: not a plan-"
                    "lowering kernel family")


# ----------------------------------------------------------------------
# the sanitizer executor
# ----------------------------------------------------------------------

class SanitizerError(RuntimeError):
    """A static/dynamic disagreement: the verifier called the plan clean
    but the instrumented execution observed a violation (or vice versa:
    the recorded behavior contradicts an FG007 classification)."""

    def __init__(self, violations):
        self.violations = tuple(violations)
        lines = "\n".join(f"  {rule} {loc}: {msg}"
                          for rule, loc, msg in self.violations)
        super().__init__(
            f"sanitizer found {len(self.violations)} static/dynamic "
            f"disagreement{'s' if len(self.violations) != 1 else ''}:\n"
            + lines)


class _Violations:
    """Thread-safe violation sink shared by all sink proxies of a run."""

    def __init__(self):
        self._lock = threading.Lock()
        self.items: list[tuple[str, str, str]] = []

    def add(self, rule: str, loc: str, message: str) -> None:
        with self._lock:
            self.items.append((rule, loc, message))


class _AggregateProxy:
    """Records and checks one task's aggregating stage at runtime.

    The FG007 label is computed per combine call from the strategy the
    chunk context carries -- on heterogeneous plans different chunks of
    one stage legitimately earn different classifications."""

    def __init__(self, sink: AggregateSink, loc: str,
                 violations: _Violations):
        self.sink = sink
        self.loc = loc
        self.violations = violations
        self._lock = threading.Lock()
        self._seen = np.zeros(sink.acc.shape[0], dtype=bool)

    def apply(self, vals, ctx) -> int:
        seg = ctx.segments
        rows = seg.seg_rows
        for name in ("src", "dst", "eid"):
            arr = ctx.batch[name]
            if arr.size and int(arr.min()) < 0:
                self.violations.add("FG010", self.loc,
                                    f"negative {name} index reached "
                                    "execution despite a clean static "
                                    "bounds verdict")
        with self._lock:
            if rows.size and self._seen[rows].any():
                dup = int(rows[self._seen[rows]][0])
                self.violations.add(
                    "FG006", self.loc,
                    f"destination row {dup} written by two chunks of one "
                    "task at runtime; the static shard-disjointness check "
                    "passed, so the plan mutated after verification")
            self._seen[rows] = True
        # disjoint rows across concurrent chunks make the before/after
        # slices race-free even under a thread pool
        strategy = ctx.strategy if getattr(ctx, "strategy", None) is not None \
            else self.sink.strategy
        before = self.sink.acc[rows].copy() if rows.size else None
        ret = self.sink.apply(vals, ctx)
        if before is not None:
            self._check_combine(vals, seg, rows, before, strategy)
        return ret

    def _check_combine(self, vals, seg, rows, before, strategy) -> None:
        label = classify_reduction(strategy.name, self.sink.reducer)
        reducer = self.sink.reducer
        oracle = reducer.ufunc(
            before, reducer.ufunc.reduceat(vals, seg.starts, axis=0))
        if self.sink.guard_zero:
            oracle = np.where(oracle == 0, 1.0, oracle)
        oracle = oracle.astype(self.sink.acc.dtype, copy=False)
        actual = self.sink.acc[rows]
        if label == BIT_IDENTICAL:
            if not np.array_equal(actual, oracle):
                worst = float(np.max(np.abs(actual - oracle)))
                self.violations.add(
                    "FG007", self.loc,
                    f"strategy {strategy.name} classified "
                    f"bit-identical but diverged from the reduceat oracle "
                    f"by {worst:.3g}")
        elif label == REASSOCIATED:
            if not np.allclose(actual, oracle, rtol=1e-4, atol=1e-5,
                               equal_nan=True):
                worst = float(np.nanmax(np.abs(actual - oracle)))
                self.violations.add(
                    "FG007", self.loc,
                    f"strategy {strategy.name} classified "
                    f"reassociated-fp but diverged from the reduceat "
                    f"oracle by {worst:.3g} (beyond reassociation error)")


class _ScatterProxy:
    """Checks one task's scatter stage writes each output row once."""

    def __init__(self, sink: ScatterSink, loc: str, violations: _Violations):
        self.sink = sink
        self.loc = loc
        self.violations = violations
        self._lock = threading.Lock()
        self._seen = np.zeros(sink.out.shape[0], dtype=bool)

    def apply(self, vals, ctx) -> int:
        eid = ctx.batch["eid"]
        if eid.size and int(eid.min()) < 0:
            self.violations.add("FG010", self.loc,
                                "negative eid index reached execution "
                                "despite a clean static bounds verdict")
        with self._lock:
            if eid.size and self._seen[eid].any():
                dup = int(eid[self._seen[eid]][0])
                self.violations.add(
                    "FG006", self.loc,
                    f"output row {dup} scattered to by two chunks of one "
                    "task at runtime despite a clean static verdict")
            self._seen[eid] = True
        return self.sink.apply(vals, ctx)


def _instrumented(plan: ExecutionPlan, violations: _Violations
                  ) -> ExecutionPlan:
    """A shadow plan whose sinks record and cross-check while delegating."""
    from repro.runtime.plan import EdgeTask, Stage

    tasks = []
    for ti, task in enumerate(plan.tasks):
        stages = []
        for st in task.stages:
            sink = st.sink
            loc = f"task[{ti}].{st.name}"
            if isinstance(sink, AggregateSink):
                sink = _AggregateProxy(sink, loc, violations)
            elif isinstance(sink, ScatterSink):
                sink = _ScatterProxy(sink, loc, violations)
            stages.append(Stage(st.name, st.evaluate, sink, st.compiled))
        tasks.append(EdgeTask(task.gather, task.bounds, stages,
                              task.needs_segments,
                              chunk_strategies=task.chunk_strategies))
    return ExecutionPlan(tasks, label=plan.label, strategy=plan.strategy,
                         finalize=plan.finalize, extras=plan.extras)


def sanitized_run(executor, plan: ExecutionPlan, bindings=None) -> None:
    """Run ``plan`` under the sanitizer: static verify, instrumented
    execute, dynamic cross-check.

    Static errors raise :class:`AnalysisError` before anything runs; a
    clean static report followed by any recorded runtime violation (or a
    leaked ``SharedArray`` segment) raises :class:`SanitizerError`.
    """
    from repro.tensorir.runtime import SharedArray

    report = verify_plan(plan)
    if report.has_errors:
        raise AnalysisError(report)
    violations = _Violations()
    shm_before = set(SharedArray.live_segments())
    executor._execute(_instrumented(plan, violations), bindings)
    leaked = set(SharedArray.live_segments()) - shm_before
    if leaked:
        violations.add(
            "FG009", plan.label or "plan",
            f"{len(leaked)} SharedArray segment(s) still live after the "
            f"run ({sorted(leaked)}): the staged-release contract the "
            "static FG009 verdict relied on did not hold")
    if violations.items:
        raise SanitizerError(violations.items)


# ----------------------------------------------------------------------
# lint CLI: every registered kernel family x every strategy
# ----------------------------------------------------------------------

_N, _M, _F = 32, 96, 8


def _adj(seed: int = 0):
    from repro.graph.sparse import from_edges

    rng = np.random.default_rng(seed)
    return from_edges(_N, _N, rng.integers(0, _N, _M),
                      rng.integers(0, _N, _M))


def iter_suite(suite: str, pool=None):
    """Yield ``(label, strategy, kernel_thunk)`` over registered kernel
    families x segment-reduction strategies.

    ``builtins`` covers every builtin message function (one reducer
    each), ``copy_u`` under every reducer, every builtin edge function,
    and the staged + fused edge softmax; ``all`` adds nothing yet but
    mirrors the analysis CLI's flag shape.
    """
    from repro import tensorir as T
    from repro.core import builtins as dgl_builtins
    from repro.core.api import sddmm as make_sddmm
    from repro.core.api import spmm as make_spmm
    from repro.core.softmax import EdgeSoftmax
    from repro.runtime.strategies import STRATEGY_NAMES

    adj = _adj()

    def _msg_inputs(name: str):
        XV = T.placeholder((_N, _F), name="XV")
        if name == "copy_e":
            return (T.placeholder((_M, _F), name="XE"),)
        if name == "u_mul_e":
            return (XV, T.placeholder((_M,), name="EW"))
        return (XV,)

    def _spmm_thunk(factory, args, agg, strat):
        def thunk():
            k = make_spmm(adj, factory(*args), agg)
            k.agg_strategy = strat
            return k
        return thunk

    for strat in STRATEGY_NAMES:
        for name in sorted(dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS):
            factory = dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS[name]
            yield (f"spmm/{name}/sum/{strat}", strat,
                   _spmm_thunk(factory, _msg_inputs(name), "sum", strat))
        for agg in ("max", "min", "mean", "prod"):
            yield (f"spmm/copy_u/{agg}/{strat}", strat,
                   _spmm_thunk(dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS[
                       "copy_u"], _msg_inputs("copy_u"), agg, strat))
        for name in sorted(dgl_builtins.BUILTIN_EDGE_FUNCTIONS):
            factory = dgl_builtins.BUILTIN_EDGE_FUNCTIONS[name]
            XA = T.placeholder((_N, _F), name="XA")
            XB = T.placeholder((_N, _F), name="XB")
            yield (f"sddmm/{name}/{strat}", strat,
                   lambda f=factory, a=XA, b=XB:
                   make_sddmm(adj, f(a, b)))
        yield (f"softmax/staged/{strat}", strat,
               lambda s=strat: EdgeSoftmax(adj, num_heads=2, fused=False,
                                           agg_strategy=s))
        yield (f"softmax/fused/{strat}", strat,
               lambda s=strat: EdgeSoftmax(adj, num_heads=2, fused=True,
                                           agg_strategy=s))

    # heterogeneous plans: cost-model-driven per-chunk selection, plus an
    # explicit mixed per-chunk cycle; chunk_edges is small enough that the
    # lint graph really lowers to multi-chunk assignments
    copy_u = dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS["copy_u"]
    for hlabel, request in (("adaptive", "adaptive"),
                            ("mixed", ("reduceat", "bucketed", "parallel"))):
        for agg in ("sum", "max", "mean"):
            def hthunk(req=request, a=agg):
                k = make_spmm(adj, copy_u(*_msg_inputs("copy_u")), a,
                              chunk_edges=16)
                k.agg_strategy = req
                return k
            yield (f"spmm/copy_u/{agg}/{hlabel}", hlabel, hthunk)
        yield (f"softmax/staged/{hlabel}", hlabel,
               lambda req=request: EdgeSoftmax(adj, num_heads=2, fused=False,
                                               agg_strategy=req))
        yield (f"softmax/fused/{hlabel}", hlabel,
               lambda req=request: EdgeSoftmax(adj, num_heads=2, fused=True,
                                               agg_strategy=req))


def lint(suite: str, *, verbose: bool, as_json: bool, workers: int,
         out=None) -> int:
    """Verify the suite; returns the number of kernels with FG006+
    errors.  ``--json`` emits one machine-readable report object."""
    import json
    import sys

    from repro.core.compile import KernelCache, use_kernel_cache
    from repro.tensorir.runtime import WorkPool

    out = out if out is not None else sys.stdout
    failed = 0
    counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    records = []
    pool = WorkPool(workers)
    try:
        with use_kernel_cache(KernelCache()):
            for label, strat, thunk in iter_suite(suite, pool):
                kernel = thunk()
                report = verify_kernel(kernel, pool=pool)
                for d in report.diagnostics:
                    counts[d.severity] += 1
                bad = report.has_errors
                failed += bad
                if as_json:
                    records.append({"kernel": label, "strategy": strat,
                                    **report.as_dict()})
                elif bad:
                    print(f"FAIL {label}", file=out)
                    for d in report.sorted():
                        print(f"  {d.render()}", file=out)
                elif verbose:
                    n = len(report.diagnostics)
                    print(f"ok   {label} ({n} diagnostic"
                          f"{'s' if n != 1 else ''})", file=out)
                    for d in report.sorted():
                        print(f"  {d.render()}", file=out)
    finally:
        pool.shutdown()
    if as_json:
        json.dump({"suite": suite, "kernels": records,
                   "errors": counts[Severity.ERROR],
                   "warnings": counts[Severity.WARNING],
                   "notes": counts[Severity.INFO],
                   "failing": failed}, out, indent=2)
        print(file=out)
    else:
        print(f"plan-lint: {counts[Severity.ERROR]} errors, "
              f"{counts[Severity.WARNING]} warnings, "
              f"{counts[Severity.INFO]} notes; "
              f"{failed} kernel(s) failing", file=out)
    return failed


def main(argv=None) -> int:
    import argparse
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.runtime.verify",
        description="Static execution-plan verification (FG006-FG010) "
                    "over registered kernel families x strategies.")
    ap.add_argument("--suite", choices=("builtins", "all"),
                    default="builtins")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit one machine-readable JSON report")
    ap.add_argument("--verbose", "-v", action="store_true",
                    help="also print clean kernels and their notes")
    ap.add_argument("--workers", type=int, default=4,
                    help="WorkPool width handed to the parallel strategy "
                         "(default 4)")
    ns = ap.parse_args(argv)
    failed = lint(ns.suite, verbose=ns.verbose, as_json=ns.as_json,
                  workers=ns.workers)
    return 1 if failed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
