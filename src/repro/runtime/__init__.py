"""The shared execution engine (PR 7).

Kernel templates lower to :class:`~repro.runtime.plan.ExecutionPlan`
objects and the :class:`~repro.runtime.engine.Executor` runs them: one
chunk loop, one stats ledger, and pluggable segment-reduction strategies
(:mod:`repro.runtime.strategies`) selected from the degree histogram or
forced via ``FEATGRAPH_AGG_STRATEGY``.  The reducer registry
(:mod:`repro.runtime.reducers`) is the single source of ufunc/identity
truth for every segmented reduction in the repository.
"""

from repro.runtime.engine import (AggregateSink, ChunkCtx, Executor,
                                  ScatterSink)
from repro.runtime.plan import (CHUNK_WORKSET_BYTES, MIN_CHUNK_EDGES,
                                ChunkPolicy, EdgeTask, ExecutionPlan,
                                GatherPlan, SegmentInfo, Stage,
                                effective_chunk_edges, row_aligned_chunks,
                                segment_info)
from repro.runtime.reducers import (AGG_IDENTITY, AGG_UFUNC, REDUCERS,
                                    Reducer, get_reducer, resolve_reducer)
from repro.runtime.strategies import (AGG_STRATEGY_ENV, AggregationStrategy,
                                      DegreeBucketedStrategy,
                                      ParallelStrategy, ReduceatStrategy,
                                      STRATEGY_NAMES, make_strategy,
                                      resolve_strategy, select_strategy,
                                      strategy_from_env)

__all__ = [
    "AggregateSink", "ChunkCtx", "Executor", "ScatterSink",
    "CHUNK_WORKSET_BYTES", "MIN_CHUNK_EDGES", "ChunkPolicy", "EdgeTask",
    "ExecutionPlan", "GatherPlan", "SegmentInfo", "Stage",
    "effective_chunk_edges", "row_aligned_chunks", "segment_info",
    "AGG_IDENTITY", "AGG_UFUNC", "REDUCERS", "Reducer", "get_reducer",
    "resolve_reducer",
    "AGG_STRATEGY_ENV", "AggregationStrategy", "DegreeBucketedStrategy",
    "ParallelStrategy", "ReduceatStrategy", "STRATEGY_NAMES",
    "make_strategy", "resolve_strategy", "select_strategy",
    "strategy_from_env",
]
