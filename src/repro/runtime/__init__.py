"""The shared execution engine (PR 7).

Kernel templates lower to :class:`~repro.runtime.plan.ExecutionPlan`
objects and the :class:`~repro.runtime.engine.Executor` runs them: one
chunk loop, one stats ledger, and pluggable segment-reduction strategies
(:mod:`repro.runtime.strategies`) selected from the degree histogram or
forced via ``FEATGRAPH_AGG_STRATEGY``.  The reducer registry
(:mod:`repro.runtime.reducers`) is the single source of ufunc/identity
truth for every segmented reduction in the repository.

The plan verifier (:mod:`repro.runtime.verify`, PR 8) statically proves
shard disjointness, determinism class, buffer lifetimes, shared-memory
release, and gather bounds (rules FG006-FG010) over every lowered plan,
and its sanitizer executor (``FEATGRAPH_SANITIZE=1``) cross-checks those
verdicts against instrumented runs.
"""

from repro.runtime.engine import (AggregateSink, ChunkCtx, Executor,
                                  ScatterSink)
from repro.runtime.plan import (CHUNK_WORKSET_BYTES, MIN_CHUNK_EDGES,
                                ChunkPolicy, EdgeTask, ExecutionPlan,
                                GatherPlan, SegmentInfo, Stage,
                                effective_chunk_edges, row_aligned_chunks,
                                segment_info)
from repro.runtime.reducers import (AGG_IDENTITY, AGG_UFUNC, REDUCERS,
                                    Reducer, get_reducer, resolve_reducer)
from repro.runtime.strategies import (AGG_STRATEGY_ENV, AggregationStrategy,
                                      DegreeBucketedStrategy,
                                      ParallelStrategy, ReduceatStrategy,
                                      STRATEGY_NAMES, make_strategy,
                                      resolve_strategy, select_strategy,
                                      strategy_from_env)
# verify's names are re-exported lazily: eagerly importing the module here
# would make ``python -m repro.runtime.verify`` double-execute it (runpy
# imports the package first, then runs the module as __main__)
_VERIFY_NAMES = ("SANITIZE_ENV", "SanitizerError", "classify_reduction",
                 "sanitize_enabled", "sanitized_run", "sanitizing",
                 "set_sanitize", "verify_kernel", "verify_plan")


def __getattr__(name):
    if name in _VERIFY_NAMES:
        from repro.runtime import verify

        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AggregateSink", "ChunkCtx", "Executor", "ScatterSink",
    "CHUNK_WORKSET_BYTES", "MIN_CHUNK_EDGES", "ChunkPolicy", "EdgeTask",
    "ExecutionPlan", "GatherPlan", "SegmentInfo", "Stage",
    "effective_chunk_edges", "row_aligned_chunks", "segment_info",
    "AGG_IDENTITY", "AGG_UFUNC", "REDUCERS", "Reducer", "get_reducer",
    "resolve_reducer",
    "AGG_STRATEGY_ENV", "AggregationStrategy", "DegreeBucketedStrategy",
    "ParallelStrategy", "ReduceatStrategy", "STRATEGY_NAMES",
    "make_strategy", "resolve_strategy", "select_strategy",
    "strategy_from_env",
    "SANITIZE_ENV", "SanitizerError", "classify_reduction",
    "sanitize_enabled", "sanitized_run", "sanitizing", "set_sanitize",
    "verify_kernel", "verify_plan",
]
