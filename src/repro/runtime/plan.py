"""Execution plans: what a bound kernel lowers to before it runs.

The four kernel families (spmm / sddmm / softmax phases / fused chains)
used to each hand-roll the same runtime loop: slice the edge set into
chunks, gather the chunk's ``src``/``dst``/``eid`` index vectors, evaluate
the UDF batch, and push the values into an accumulator or an output
buffer.  An :class:`ExecutionPlan` reifies that loop as data:

- a **chunking policy** (:class:`ChunkPolicy`): the target edge count,
  shrunk by :func:`effective_chunk_edges` when a compiled program reports
  its per-item workset, and whether chunk boundaries must fall on CSR row
  boundaries (row alignment is what makes segmented reduction and
  cooperative threading race-free);
- a **gather plan** (:class:`GatherPlan`): the traversal-ordered
  ``src``/``dst``/``eid`` arrays a chunk's batch is sliced from;
- per-chunk **stages** (:class:`Stage`): an evaluate callable plus a sink
  (segmented aggregation via a pluggable strategy, or an edge-indexed
  scatter).  Single kernels have one stage; fused chains have one per
  planned stage.

The :class:`~repro.runtime.engine.Executor` interprets the plan; the
aggregation strategies live in :mod:`repro.runtime.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "CHUNK_WORKSET_BYTES",
    "MIN_CHUNK_EDGES",
    "effective_chunk_edges",
    "row_aligned_chunks",
    "ChunkPolicy",
    "GatherPlan",
    "SegmentInfo",
    "segment_info",
    "Stage",
    "EdgeTask",
    "ExecutionPlan",
]

#: per-chunk gathered-bytes target when a compiled program reports its
#: workset; keeps the chunk's intermediates cache-resident (a UDF touching
#: 4 KB per edge runs chunks of 2K edges, not 128K)
CHUNK_WORKSET_BYTES = 8 * 1024 * 1024

#: floor on workset-derived chunk sizes -- tinier chunks would re-expose
#: the per-chunk dispatch overhead compilation exists to amortize
MIN_CHUNK_EDGES = 1024


def effective_chunk_edges(chunk_edges: int, prog) -> int:
    """Shrink ``chunk_edges`` so one chunk's gathered workset stays within
    :data:`CHUNK_WORKSET_BYTES`, using the compiled program's per-item
    accounting.  No-op for interpreted execution (``prog is None``)."""
    ws = prog.stats.workset_bytes_per_item if prog is not None else 0
    if ws <= 0:
        return chunk_edges
    return min(chunk_edges, max(MIN_CHUNK_EDGES, CHUNK_WORKSET_BYTES // ws))


def row_aligned_chunks(indptr: np.ndarray,
                       target: int) -> list[tuple[int, int]]:
    """Split ``[0, nnz)`` into chunks of ~``target`` edges whose boundaries
    fall on CSR row boundaries, so every destination row's edges land in
    exactly one chunk and segmented reduction never splits a row."""
    nnz = int(indptr[-1])
    if nnz == 0:
        return []
    bounds = [0]
    while bounds[-1] < nnz:
        want = bounds[-1] + target
        if want >= nnz:
            bounds.append(nnz)
            break
        # advance to the smallest row boundary covering `want`; if the
        # row containing it is huge, take the next boundary past start.
        j = int(np.searchsorted(indptr, want, side="left"))
        end = int(indptr[j])
        if end <= bounds[-1]:
            j = int(np.searchsorted(indptr, bounds[-1], side="right"))
            end = int(indptr[j])
        bounds.append(end)
    return list(zip(bounds[:-1], bounds[1:]))


@dataclass(frozen=True)
class ChunkPolicy:
    """How an edge range is sliced into chunks."""

    target_edges: int
    row_aligned: bool = True

    def bounds(self, *, indptr: np.ndarray | None = None,
               nnz: int | None = None, prog=None) -> list[tuple[int, int]]:
        """Materialize chunk bounds.

        Row-aligned policies slice along ``indptr`` row boundaries;
        unaligned ones slice ``[0, nnz)`` evenly.  ``prog`` (a compiled
        vector program) shrinks the target via
        :func:`effective_chunk_edges`.
        """
        target = effective_chunk_edges(self.target_edges, prog)
        if self.row_aligned:
            if indptr is None:
                raise ValueError("row-aligned chunking needs indptr")
            return row_aligned_chunks(np.asarray(indptr), target)
        if nnz is None:
            raise ValueError("unaligned chunking needs nnz")
        n = int(nnz)
        return [(c0, min(n, c0 + target)) for c0 in range(0, n, target)]


@dataclass
class GatherPlan:
    """Traversal-ordered edge endpoint arrays a chunk batch slices from."""

    src: np.ndarray
    dst: np.ndarray
    eid: np.ndarray

    def batch(self, c0: int, c1: int) -> dict:
        """The evaluator batch for edges ``[c0, c1)``."""
        return {"src": self.src[c0:c1], "dst": self.dst[c0:c1],
                "eid": self.eid[c0:c1]}


@dataclass
class SegmentInfo:
    """Equal-destination runs of one chunk (rows sorted within the chunk).

    ``starts[i]`` is the chunk-local offset of segment ``i``;
    ``seg_rows[i]`` its destination row; ``lengths[i]`` its edge count
    (the chunk's degree histogram, which the bucketed strategy groups by).
    """

    rows: np.ndarray       # per-edge destination, sorted
    starts: np.ndarray     # (n_segments,) chunk-local segment starts
    seg_rows: np.ndarray   # (n_segments,) destination row per segment
    lengths: np.ndarray    # (n_segments,) segment sizes


def segment_info(dst_sorted: np.ndarray) -> SegmentInfo:
    """Boundaries of equal-destination runs in a sorted chunk.

    A zero-edge chunk has zero segments (the engine never schedules one,
    but degenerate graphs reach this through the chunking helpers)."""
    if len(dst_sorted) == 0:
        empty = np.empty(0, dtype=np.int64)
        return SegmentInfo(rows=np.asarray(dst_sorted), starts=empty,
                           seg_rows=empty, lengths=empty)
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(dst_sorted)) + 1))
    lengths = np.diff(np.concatenate((starts, [len(dst_sorted)])))
    return SegmentInfo(rows=dst_sorted, starts=starts,
                       seg_rows=dst_sorted[starts], lengths=lengths)


@dataclass
class Stage:
    """One evaluate+sink step of a chunk.

    ``evaluate(bindings, ctx)`` returns ``(values, bytes_moved)``; the
    engine stores the values under ``name`` in the chunk context (later
    stages of a fused chain read them) and hands them to ``sink``.
    ``compiled`` feeds the ExecStats compiled-chunk counter.
    """

    name: str
    evaluate: Callable          # (bindings, ChunkCtx) -> (ndarray, int)
    sink: object | None = None  # engine.AggregateSink / engine.ScatterSink
    compiled: bool = False


@dataclass
class EdgeTask:
    """One pass over an edge range: a gather plan, chunk bounds, stages.

    SpMM kernels emit one task per (feature tile x graph partition);
    SDDMM one per feature tile; fused chains a single multi-stage task.
    Tasks run in order -- the cooperative one-partition-at-a-time schedule
    -- while chunks within a task may run on a WorkPool.
    """

    gather: GatherPlan
    bounds: Sequence[tuple[int, int]]
    stages: Sequence[Stage]
    #: segments are computed lazily per chunk only when a sink needs them
    needs_segments: bool = True
    #: per-chunk aggregation-strategy assignments, aligned index-for-index
    #: with ``bounds`` (heterogeneous / adaptive plans).  ``None`` means
    #: every chunk combines through its sink's default strategy.  The
    #: engine delivers the assignment through the chunk context, so one
    #: sink (shared across tasks by the spmm feature tiling) can serve
    #: chunks with different strategies; FG006/FG007 verify the
    #: assignments (:mod:`repro.runtime.verify`).
    chunk_strategies: Sequence | None = None

    def strategy_for_chunk(self, ci: int):
        """The strategy assigned to chunk ``ci``, or None (sink default)."""
        if self.chunk_strategies is None:
            return None
        return self.chunk_strategies[ci]


@dataclass
class ExecutionPlan:
    """Everything the :class:`~repro.runtime.engine.Executor` needs."""

    tasks: Sequence[EdgeTask]
    label: str = ""
    #: name of the aggregation strategy the plan's sinks use (None for
    #: pure scatter plans); surfaced through ExecStats for benchmarks
    strategy: str | None = None
    finalize: Callable | None = None
    extras: dict = field(default_factory=dict)
