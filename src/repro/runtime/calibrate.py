"""One-time microbenchmark calibration of the aggregation cost model.

The selector in :mod:`repro.runtime.strategies` can rank strategies with
the affine cost functions in :mod:`repro.core.cost`, but the coefficients
(seconds per edge-value, per segment, per distinct degree, per combine
call) are machine facts -- they depend on the BLAS/SIMD dispatch of the
installed numpy and on how many workers the pool wakes.  This module
measures them once:

1. :func:`workloads` builds a small grid of synthetic chunks spanning the
   regimes that separate the strategies (few long uniform segments vs.
   many short distinct ones, narrow vs. wide features);
2. :func:`calibrate` times every strategy on every workload (an
   injectable ``measure`` hook keeps tests deterministic) and solves a
   per-strategy least-squares fit of the model's feature columns;
3. :func:`save_profile` persists the fitted
   :class:`~repro.core.cost.CostModel` as canonical JSON keyed by CPU
   count + numpy version, where :func:`repro.core.cost.load_profile`
   finds and validates it.

CLI::

    python -m repro.runtime.calibrate [--output PATH] [--repeats N]
    python -m repro.runtime.calibrate --check   # round-trip verify

Fitted coefficients are clamped non-negative (both here and again at
load), so predictions stay monotone in every chunk statistic.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.cost import ChunkShape, CostModel, StrategyCost, \
    default_profile_path, load_profile
from repro.runtime.plan import segment_info
from repro.runtime.reducers import get_reducer
from repro.runtime.strategies import STRATEGY_NAMES, make_strategy
from repro.tensorir.runtime import WorkPool

__all__ = ["Workload", "workloads", "measure_combine", "fit_costs",
           "calibrate", "save_profile", "main"]


class Workload:
    """One synthetic chunk: degrees + width, with derived shape stats."""

    def __init__(self, name: str, degrees: np.ndarray, width: int):
        self.name = name
        self.degrees = np.asarray(degrees, dtype=np.int64)
        self.width = int(width)
        nonzero = self.degrees[self.degrees > 0]
        self.shape = ChunkShape(
            n_edges=int(nonzero.sum()),
            n_segments=int(len(nonzero)),
            n_distinct=int(len(np.unique(nonzero))),
            width=self.width,
        )

    def materialize(self):
        """(acc, seg, msgs) ready for ``strategy.combine``."""
        nonzero = self.degrees[self.degrees > 0]
        dst = np.repeat(np.arange(len(nonzero), dtype=np.int64), nonzero)
        seg = segment_info(dst)
        rng = np.random.default_rng(0)
        msgs = rng.standard_normal(
            (self.shape.n_edges, self.width)).astype(np.float32)
        acc = np.zeros((len(nonzero), self.width), dtype=np.float32)
        return acc, seg, msgs

    def __repr__(self):
        return (f"Workload({self.name}: edges={self.shape.n_edges} "
                f"segs={self.shape.n_segments} "
                f"distinct={self.shape.n_distinct} width={self.width})")


def workloads() -> list[Workload]:
    """The calibration grid: regimes that separate the strategies.

    Uniform-degree chunks isolate the per-value term (one bucket, SIMD
    heaven for ``bucketed``); cycling-degree chunks isolate the
    per-distinct dispatch; single-edge segments isolate the per-segment
    term; widths 1..64 separate value traffic from segment dispatch.
    """
    grid: list[Workload] = []
    for width in (1, 16, 64):
        # few distinct, long segments: 512 rows of equal degree
        for d in (8, 64):
            grid.append(Workload(f"uniform{d}-w{width}",
                                 np.full(512, d), width))
        # many distinct, short segments: degrees cycling 1..32
        cyc = np.tile(np.arange(1, 33), 64)
        grid.append(Workload(f"cycle32-w{width}", cyc, width))
        # degenerate: every segment one edge (pure per-segment cost)
        grid.append(Workload(f"ones-w{width}", np.ones(4096), width))
    # one large chunk so the parallel spawn cost is amortizable
    grid.append(Workload("uniform32-big-w32", np.full(4096, 32), 32))
    grid.append(Workload("cycle64-big-w32",
                         np.tile(np.arange(1, 65), 128), 32))
    return grid


def measure_combine(strategy_name: str, wl: Workload,
                    pool: WorkPool | None = None, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds of one combine call."""
    strategy = make_strategy(strategy_name, pool=pool)
    reducer = get_reducer("sum")
    acc, seg, msgs = wl.materialize()
    best = float("inf")
    for _ in range(max(1, repeats)):
        acc[...] = 0.0
        t0 = time.perf_counter()
        strategy.combine(acc, seg, msgs, reducer)
        best = min(best, time.perf_counter() - t0)
    return best


def _features(strategy_name: str, shape: ChunkShape,
              workers: int) -> list[float]:
    """Design-matrix row matching :meth:`CostModel.predict` exactly."""
    if strategy_name == "parallel" and workers > 1:
        return [1.0, shape.values / workers, shape.n_segments / workers,
                float(shape.n_segments * max(1, shape.width))]
    return [1.0, float(shape.values), float(shape.n_segments),
            float(shape.n_distinct)]


def fit_costs(samples: list[tuple[ChunkShape, float]], strategy_name: str,
              workers: int) -> StrategyCost:
    """Non-negative least-squares fit of one strategy's coefficients.

    Plain lstsq-then-clamp distorts badly: zeroing a negative coefficient
    leaves the others compensating for a term that no longer exists, so
    predictions drift far from every measured point.  Instead the fit
    iterates -- solve, drop the columns whose coefficients came out
    negative, re-solve on the remainder -- until all surviving
    coefficients are non-negative (a simple active-set NNLS; at most 4
    rounds since each drops a column).
    """
    X = np.array([_features(strategy_name, s, workers) for s, _ in samples])
    y = np.array([t for _, t in samples])
    active = list(range(X.shape[1]))
    coef = np.zeros(X.shape[1])
    while active:
        sol, *_ = np.linalg.lstsq(X[:, active], y, rcond=None)
        if np.all(sol >= 0):
            coef[:] = 0.0
            coef[active] = sol
            break
        active = [c for c, v in zip(active, sol) if v >= 0]
    return StrategyCost(per_call=float(coef[0]), per_value=float(coef[1]),
                        per_segment=float(coef[2]),
                        per_distinct=float(coef[3]))


def calibrate(measure=None, pool: WorkPool | None = None,
              repeats: int = 3, grid: list[Workload] | None = None
              ) -> CostModel:
    """Measure + fit every strategy; returns the fitted model.

    ``measure(strategy_name, workload) -> seconds`` is injectable so tests
    can calibrate from synthetic deterministic timings; the default runs
    the real microbenchmarks.  ``parallel`` is measured only when the pool
    has more than one worker -- on a single-core runner its coefficients
    would just mirror reduceat's fallback path.
    """
    import os

    grid = grid if grid is not None else workloads()
    if measure is None:
        def measure(name, wl):
            return measure_combine(name, wl, pool=pool, repeats=repeats)
    workers = pool.num_workers if pool is not None \
        else min(16, os.cpu_count() or 1)
    costs = {}
    for name in STRATEGY_NAMES:
        if name == "parallel" and workers <= 1:
            continue
        samples = [(wl.shape, float(measure(name, wl))) for wl in grid]
        costs[name] = fit_costs(samples, name, workers)
    return CostModel(costs, cpu_count=os.cpu_count(),
                     numpy_version=np.__version__)


def save_profile(model: CostModel, path: Path | str | None = None) -> Path:
    """Persist ``model`` as canonical JSON (sorted keys: byte-stable for
    identical coefficients) and return the path written."""
    path = Path(path) if path is not None else default_profile_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(model.as_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.calibrate",
        description="Calibrate the aggregation cost model for this machine")
    parser.add_argument("--output", type=Path, default=None,
                        help="profile path (default: FEATGRAPH_COST_PROFILE "
                             "or the user cache dir)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per (strategy, workload)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel strategy")
    parser.add_argument("--check", action="store_true",
                        help="only verify an existing profile round-trips")
    args = parser.parse_args(argv)

    path = args.output if args.output is not None else default_profile_path()
    if args.check:
        model = load_profile(path)
        if model is None:
            print(f"FAIL: no valid profile at {path} (missing, corrupt, "
                  "or stale for this machine)")
            return 1
        print(f"OK: profile at {path} valid for cpu_count="
              f"{model.cpu_count} numpy={model.numpy_version} "
              f"({', '.join(sorted(model.costs))})")
        return 0

    pool = WorkPool(args.workers) if args.workers else None
    model = calibrate(pool=pool, repeats=args.repeats)
    written = save_profile(model, path)
    reloaded = load_profile(written)
    if reloaded is None:
        print(f"FAIL: profile written to {written} did not validate")
        return 1
    print(f"calibrated {len(model.costs)} strategies -> {written}")
    for name, cost in sorted(model.costs.items()):
        print(f"  {name:9s} per_call={cost.per_call:.3e} "
              f"per_value={cost.per_value:.3e} "
              f"per_segment={cost.per_segment:.3e} "
              f"per_distinct={cost.per_distinct:.3e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
