"""Fingerprint-keyed caches of degree histograms and chunk boundaries.

Strategy selection and plan lowering both interrogate the topology --
degree histogram for :func:`~repro.runtime.strategies.select_strategy`,
row-aligned chunk bounds for the
:class:`~repro.runtime.plan.ChunkPolicy`, per-chunk shape statistics for
the adaptive per-chunk selector.  All of it is pure function of the CSR
structure, yet it used to be recomputed on **every kernel invocation** --
repeated mini-batch inference over one graph paid the
``np.unique``/``searchsorted`` tax per call.

This module memoizes those derivations keyed by
:meth:`repro.graph.CSRMatrix.fingerprint` (a stable content hash, safe
across garbage collection unlike ``id()``).  The caches are small LRUs:
workloads cycle through a handful of graphs (train/valid/test splits,
partitions), not thousands.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.cost import ChunkShape
from repro.runtime.plan import row_aligned_chunks

__all__ = ["DegreeStats", "degree_stats", "chunk_bounds", "chunk_shapes",
           "cache_info", "clear_caches"]

#: distinct (fingerprint, params) entries kept per cache
_CACHE_SIZE = 32


class _LRU(OrderedDict):
    def get_or_compute(self, key, compute):
        if key in self:
            self.move_to_end(key)
            return self[key]
        value = compute()
        self[key] = value
        if len(self) > _CACHE_SIZE:
            self.popitem(last=False)
        return value


_degree_cache = _LRU()
_bounds_cache = _LRU()
_shapes_cache = _LRU()


@dataclass(frozen=True)
class DegreeStats:
    """Whole-graph degree-histogram facts the selector consumes."""

    degrees: np.ndarray   # per-destination in-degree (all rows)
    nnz: int              # total edges (nonzero-degree sum)
    n_segments: int       # rows with at least one edge
    n_distinct: int       # distinct nonzero degrees


def degree_stats(csr) -> DegreeStats:
    """Degree histogram of ``csr``, cached on its fingerprint."""
    def compute():
        degrees = np.diff(csr.indptr).astype(np.int64)
        nonzero = degrees[degrees > 0]
        return DegreeStats(degrees=degrees, nnz=int(nonzero.sum()),
                           n_segments=int(len(nonzero)),
                           n_distinct=int(len(np.unique(nonzero))))
    return _degree_cache.get_or_compute(csr.fingerprint(), compute)


def chunk_bounds(csr, target: int) -> list[tuple[int, int]]:
    """Row-aligned chunk bounds for ``csr`` at ``target`` edges per chunk,
    cached on (fingerprint, target)."""
    def compute():
        return row_aligned_chunks(np.asarray(csr.indptr), int(target))
    return _bounds_cache.get_or_compute((csr.fingerprint(), int(target)),
                                        compute)


def chunk_shapes(csr, target: int, width: int) -> list[ChunkShape]:
    """Per-chunk :class:`~repro.core.cost.ChunkShape` statistics for the
    row-aligned chunking of ``csr`` at ``target``.

    Chunk bounds fall on CSR row boundaries, so each chunk covers a
    contiguous row range recoverable by ``searchsorted`` on ``indptr``;
    the chunk's histogram is then a slice of the degree vector.  The
    shape list is cached width-independently (width is stamped on the
    cached zero-width shapes per call -- it varies per kernel while the
    structure facts do not).
    """
    def compute():
        indptr = np.asarray(csr.indptr)
        stats = []
        for c0, c1 in chunk_bounds(csr, target):
            r0 = int(np.searchsorted(indptr, c0, side="left"))
            r1 = int(np.searchsorted(indptr, c1, side="left"))
            deg = np.diff(indptr[r0:r1 + 1])
            nonzero = deg[deg > 0]
            stats.append((int(c1 - c0), int(len(nonzero)),
                          int(len(np.unique(nonzero)))))
        return stats
    key = (csr.fingerprint(), int(target))
    raw = _shapes_cache.get_or_compute(key, compute)
    w = max(1, int(width))
    return [ChunkShape(n_edges=e, n_segments=s, n_distinct=d, width=w)
            for e, s, d in raw]


def cache_info() -> dict:
    """Entry counts per cache (diagnostics / tests)."""
    return {"degree": len(_degree_cache), "bounds": len(_bounds_cache),
            "shapes": len(_shapes_cache)}


def clear_caches() -> None:
    _degree_cache.clear()
    _bounds_cache.clear()
    _shapes_cache.clear()
