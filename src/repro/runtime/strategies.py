"""Pluggable segment-reduction strategies.

Aggregating a chunk's per-edge messages into destination rows is a
segmented reduction, and *how* the segments are reduced dominates GNN
aggregation cost -- the chunk's degree histogram decides which shape of
vectorization wins.  Three strategies implement one interface:

``reduceat``
    The sorted-CSR baseline: one ``ufunc.reduceat`` over the chunk's
    segment starts.  One C call, no index construction; the generic inner
    loop pays per segment, which hurts when rows are long and the feature
    width is large.

``bucketed``
    Degree-bucketed vectorization (the paper's hybrid-partitioning idea
    applied to numpy): rows of equal degree ``d`` are gathered into one
    dense ``(rows, d, F)`` batch and reduced with a single
    ``ufunc.reduce`` along the degree axis -- numpy's tight SIMD reduction
    instead of reduceat's per-segment dispatch.  Pays a fancy-index gather
    and one Python-level iteration per *distinct* degree, so it wins
    exactly when segments are plentiful relative to distinct degrees.

``parallel``
    Rows sharded across :class:`~repro.tensorir.runtime.WorkPool` workers,
    segment-aligned, each worker reducing its shard with ``reduceat`` into
    a per-worker slice of a partial buffer; the combine into the
    accumulator is one vectorized step after all shards land.  Because
    shard boundaries never split a segment and each segment is reduced by
    the same ``reduceat`` primitive, results are **bit-identical across
    worker counts** (and to the ``reduceat`` strategy).  With a
    process-backed pool the partials land in shared memory, sidestepping
    the GIL for the Python-level combine work.

Parity contract (pinned by ``tests/runtime/test_strategies.py`` and the
fuzzer's ``--exec-strategy`` stage): for order-insensitive reducers
(max/min) every strategy is bit-identical to the ``reduceat`` oracle; for
sum/prod/mean the bucketed strategy reassociates (numpy's pairwise SIMD
reduce vs reduceat's internal order), so agreement is bounded at 1e-6
relative -- ``reduceat`` itself matches neither a sequential nor a
pairwise Python recomputation bit-for-bit, so exact equality across
differently-vectorized sums is not a meaningful target.

:func:`select_strategy` picks a strategy from the degree histogram and
feature width; ``FEATGRAPH_AGG_STRATEGY`` overrides it globally.

Selection is **cost-model-driven when calibrated**: if
:func:`repro.core.cost.load_profile` finds a valid machine profile
(written once by ``python -m repro.runtime.calibrate``), both
:func:`select_strategy` and the per-chunk
:func:`select_chunk_strategies` rank strategies by predicted combine
seconds; without a profile they cold-start on the hand-tuned thresholds
below.  The ``"adaptive"`` request (kernel ``agg_strategy`` or the env
override) asks the lowering to assign a strategy **per chunk** from each
chunk's own shape statistics -- power-law graphs mix hub regions where
``bucketed`` wins with long-tail regions where ``reduceat`` is already
optimal, and one whole-kernel choice forfeits one of the two.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.runtime.plan import SegmentInfo
from repro.runtime.reducers import Reducer
from repro.tensorir.runtime import WorkPool, default_pool

__all__ = [
    "AGG_STRATEGY_ENV",
    "ADAPTIVE",
    "AggregationStrategy",
    "ReduceatStrategy",
    "DegreeBucketedStrategy",
    "ParallelStrategy",
    "STRATEGY_NAMES",
    "make_strategy",
    "strategy_from_env",
    "cost_model",
    "reset_cost_model_cache",
    "select_strategy",
    "select_chunk_strategies",
    "resolve_request",
    "resolve_strategy",
]

#: environment override: "reduceat" | "bucketed" | "parallel" |
#: "adaptive" | "auto"
AGG_STRATEGY_ENV = "FEATGRAPH_AGG_STRATEGY"

STRATEGY_NAMES = ("reduceat", "bucketed", "parallel")

#: the per-chunk request name -- not a concrete strategy: lowering expands
#: it into per-chunk assignments (EdgeTask.chunk_strategies)
ADAPTIVE = "adaptive"

#: estimated ufunc work (edge-values) that must back each distinct degree
#: for bucketing's per-bucket Python dispatch to pay for itself
_BUCKET_WORK_PER_DEGREE = 512

#: minimum edge-values in a chunk before sharding it across workers beats
#: the dispatch cost of waking the pool
_PARALLEL_MIN_WORK = 1 << 18

#: below this many edges a parallel combine runs inline (serial reduceat)
_PARALLEL_MIN_EDGES = 4096


class AggregationStrategy:
    """Interface: combine one chunk's per-edge values into the accumulator.

    ``acc`` is the (rows, \\*feat) accumulator (identity-initialized);
    ``seg`` the chunk's :class:`~repro.runtime.plan.SegmentInfo`; ``msgs``
    the (edges, \\*feat) values, CSR-sorted so each segment is contiguous.
    Implementations must write ``acc[seg.seg_rows] =
    reducer.ufunc(acc[seg.seg_rows], <per-segment reduction>)`` semantics
    and nothing else -- rows absent from the chunk stay untouched.
    """

    name = "?"

    def combine(self, acc: np.ndarray, seg: SegmentInfo, msgs: np.ndarray,
                reducer: Reducer) -> None:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class ReduceatStrategy(AggregationStrategy):
    """Sorted-CSR ``ufunc.reduceat`` -- the baseline and the oracle."""

    name = "reduceat"

    def combine(self, acc, seg, msgs, reducer):
        vals = reducer.ufunc.reduceat(msgs, seg.starts, axis=0)
        rows = seg.seg_rows
        acc[rows] = reducer.ufunc(acc[rows], vals)


class DegreeBucketedStrategy(AggregationStrategy):
    """Equal-degree rows batched into dense ``(rows, d, F)`` reductions."""

    name = "bucketed"

    def combine(self, acc, seg, msgs, reducer):
        lengths = seg.lengths
        order = np.argsort(lengths, kind="stable")
        sorted_len = lengths[order]
        # bucket boundaries: equal-degree runs of the sorted histogram
        bnd = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_len)) + 1, [len(order)]))
        ufunc = reducer.ufunc
        for b0, b1 in zip(bnd[:-1], bnd[1:]):
            d = int(sorted_len[b0])
            segs = order[b0:b1]
            starts = seg.starts[segs]
            if d == 1:
                vals = msgs[starts]
            else:
                pos = starts[:, None] + np.arange(d)
                batch = msgs[pos]
                if batch.dtype == np.float32 and not reducer.order_insensitive:
                    # The dense reduction visits elements in CSR order, which
                    # differs from whatever order produced a caller's oracle;
                    # for long float32 segments the sequential rounding drift
                    # between two orders is the dominant error.  Accumulating
                    # in float64 lands near the true value regardless of
                    # order, keeping every comparison inside the contract.
                    vals = ufunc.reduce(
                        batch, axis=1, dtype=np.float64).astype(np.float32)
                else:
                    vals = ufunc.reduce(batch, axis=1)
            rows = seg.seg_rows[segs]
            acc[rows] = ufunc(acc[rows], vals)


class ParallelStrategy(AggregationStrategy):
    """Segment-aligned row shards reduced concurrently on a WorkPool.

    Every worker fills its own slice of one per-chunk partial buffer
    (per-worker partial accumulators), then the main thread folds the
    whole buffer into ``acc`` in a single deterministic step.  A
    process-backed pool (``FEATGRAPH_WORKERS_BACKEND=process``) stages the
    messages and partials in shared memory and ships only shard bounds to
    the workers.
    """

    name = "parallel"

    #: FG009 contract (checked by :mod:`repro.runtime.verify`): every
    #: SharedArray this strategy stages for a process-backed pool is
    #: released in a ``finally`` path, so worker exceptions cannot leave
    #: orphaned POSIX shm segments behind.  Subclasses that change the
    #: staging must re-establish the guarantee or clear the flag.
    shm_release_guaranteed = True

    def __init__(self, pool: WorkPool | None = None,
                 min_edges: int = _PARALLEL_MIN_EDGES):
        self._pool = pool
        self.min_edges = min_edges

    @property
    def pool(self) -> WorkPool:
        return self._pool if self._pool is not None else default_pool()

    def combine(self, acc, seg, msgs, reducer):
        pool = self.pool
        n_seg = len(seg.starts)
        n_edges = len(seg.rows)
        workers = pool.num_workers
        if workers <= 1 or n_edges < self.min_edges or n_seg < 2:
            ReduceatStrategy().combine(acc, seg, msgs, reducer)
            return
        cuts = self._shard_cuts(seg, min(workers, n_seg), n_edges)
        partial = np.empty((n_seg,) + msgs.shape[1:], dtype=msgs.dtype)
        if getattr(pool, "backend", "thread") == "process":
            self._combine_process(pool, cuts, seg, msgs, reducer, partial)
        else:
            def shard(bounds):
                s0, s1 = bounds
                end = seg.starts[s1] if s1 < n_seg else n_edges
                partial[s0:s1] = reducer.ufunc.reduceat(
                    msgs[:end], seg.starts[s0:s1], axis=0)
            pool.map(shard, list(zip(cuts[:-1], cuts[1:])))
        rows = seg.seg_rows
        acc[rows] = reducer.ufunc(acc[rows], partial)

    @staticmethod
    def _shard_cuts(seg: SegmentInfo, shards: int,
                    n_edges: int) -> np.ndarray:
        """Edge-balanced segment-index cuts (never split a segment)."""
        targets = (np.arange(1, shards) * n_edges) // shards
        cuts = np.searchsorted(seg.starts, targets, side="left")
        cuts = np.unique(np.concatenate(([0], cuts, [len(seg.starts)])))
        return cuts

    @staticmethod
    def _combine_process(pool, cuts, seg, msgs, reducer, partial):
        """Shard combine through a process pool via shared memory.

        Staged segments are released in the ``finally`` path -- a worker
        exception surfacing through ``pool.map`` must not orphan the shm
        blocks (they are POSIX objects the OS never reclaims); this is
        the :attr:`shm_release_guaranteed` contract, regression-tested by
        ``tests/runtime/test_shm_lifecycle.py``.
        """
        from repro.tensorir.runtime import SharedArray

        msgs = np.ascontiguousarray(msgs)
        shm_msgs = SharedArray.copy_of(msgs)
        shm_part = None
        try:
            shm_part = SharedArray.empty(partial.shape, partial.dtype)
            n_seg, n_edges = len(seg.starts), len(seg.rows)
            payloads = []
            for s0, s1 in zip(cuts[:-1], cuts[1:]):
                end = int(seg.starts[s1]) if s1 < n_seg else n_edges
                payloads.append((shm_msgs.spec, shm_part.spec, reducer.name,
                                 seg.starts[s0:s1].tolist(), int(s0),
                                 int(end)))
            pool.map(_process_shard_reduce, payloads)
            partial[...] = shm_part.array
        finally:
            if shm_part is not None:
                shm_part.close()
            shm_msgs.close()


def _process_shard_reduce(payload):
    """Worker-side shard reduction (module-level: must pickle)."""
    from repro.runtime.reducers import get_reducer
    from repro.tensorir.runtime import SharedArray

    msgs_spec, part_spec, reducer_name, starts, s0, end = payload
    shm_msgs = SharedArray.attach(msgs_spec)
    shm_part = None
    try:
        shm_part = SharedArray.attach(part_spec)
        starts = np.asarray(starts, dtype=np.int64)
        ufunc = get_reducer(reducer_name).ufunc
        shm_part.array[s0:s0 + len(starts)] = ufunc.reduceat(
            shm_msgs.array[:end], starts, axis=0)
    finally:
        if shm_part is not None:
            shm_part.close()
        shm_msgs.close()


def make_strategy(name: str, pool: WorkPool | None = None
                  ) -> AggregationStrategy:
    """Instantiate a strategy by name."""
    if name == "reduceat":
        return ReduceatStrategy()
    if name == "bucketed":
        return DegreeBucketedStrategy()
    if name == "parallel":
        return ParallelStrategy(pool=pool)
    raise ValueError(
        f"unknown aggregation strategy {name!r} "
        f"(known: {'/'.join(STRATEGY_NAMES)})")


def strategy_from_env() -> str | None:
    """The ``FEATGRAPH_AGG_STRATEGY`` override, validated; None if unset
    or ``auto``.  May return :data:`ADAPTIVE`."""
    value = os.environ.get(AGG_STRATEGY_ENV, "").strip().lower()
    if value in ("", "auto"):
        return None
    if value not in STRATEGY_NAMES and value != ADAPTIVE:
        raise ValueError(
            f"{AGG_STRATEGY_ENV}={value!r}: expected one of "
            f"{'/'.join(STRATEGY_NAMES)}, '{ADAPTIVE}' or 'auto'")
    return value


#: process-wide cost-model cache: [loaded_flag, CostModel | None].  The
#: profile is read from disk at most once per process; tests repoint
#: ``FEATGRAPH_COST_PROFILE`` and call :func:`reset_cost_model_cache`.
_COST_MODEL_CACHE: list = [False, None]


def cost_model():
    """The calibrated :class:`~repro.core.cost.CostModel`, or ``None`` on
    cold start (no valid profile for this machine)."""
    if not _COST_MODEL_CACHE[0]:
        # lazy: repro.core.cost lives under the package that imports this
        # module during its own init (core/__init__ -> spmm -> strategies)
        from repro.core.cost import load_profile

        _COST_MODEL_CACHE[1] = load_profile()
        _COST_MODEL_CACHE[0] = True
    return _COST_MODEL_CACHE[1]


def reset_cost_model_cache() -> None:
    """Forget the cached profile (tests; after re-calibration)."""
    _COST_MODEL_CACHE[0] = False
    _COST_MODEL_CACHE[1] = None


def _pool_workers(pool: WorkPool | None) -> int:
    return (pool.num_workers if pool is not None
            else min(16, os.cpu_count() or 1))


def _shape_from_degrees(degrees, width: int):
    from repro.core.cost import ChunkShape

    degrees = np.asarray(degrees)
    nonzero = degrees[degrees > 0]
    return ChunkShape(n_edges=int(nonzero.sum()),
                      n_segments=int(len(nonzero)),
                      n_distinct=int(len(np.unique(nonzero))),
                      width=max(1, int(width)))


def _heuristic_select(shape: ChunkShape, workers: int) -> str:
    """The hand-tuned cold-start thresholds (pre-calibration behavior)."""
    if shape.n_edges == 0:
        return "reduceat"
    if shape.values >= _BUCKET_WORK_PER_DEGREE * shape.n_distinct:
        return "bucketed"
    if workers > 1 and shape.values >= _PARALLEL_MIN_WORK:
        return "parallel"
    return "reduceat"


def select_strategy(degrees: Sequence[int], width: int,
                    pool: WorkPool | None = None) -> str:
    """Pick a strategy name from the degree histogram and feature width.

    ``degrees`` is the per-destination in-degree of the topology (or the
    portion of it one pass covers).  With a calibrated profile on disk
    the choice is the cost model's argmin over predicted combine seconds;
    the cold-start heuristic estimates whether degree-bucketing's
    per-distinct-degree Python dispatch is amortized by the vectorized
    work it unlocks (``nnz * width`` edge-values across ``distinct``
    buckets); failing that, large chunks shard across an available
    multi-worker pool; everything else stays on ``reduceat``.
    """
    shape = _shape_from_degrees(degrees, width)
    if shape.n_edges == 0:
        return "reduceat"
    workers = _pool_workers(pool)
    model = cost_model()
    if model is not None:
        return model.select(shape, workers)
    return _heuristic_select(shape, workers)


def select_chunk_strategies(shapes: Sequence[ChunkShape],
                            pool: WorkPool | None = None) -> list[str]:
    """Per-chunk strategy names for a row-aligned chunking.

    One name per :class:`~repro.core.cost.ChunkShape`, chosen by the
    calibrated cost model when a profile is loaded, else by the same
    cold-start thresholds as :func:`select_strategy` applied chunk-wise.
    """
    workers = _pool_workers(pool)
    model = cost_model()
    if model is not None:
        return [model.select(s, workers) for s in shapes]
    return [_heuristic_select(s, workers) for s in shapes]


def resolve_request(requested) -> tuple[str, tuple | None]:
    """Classify a kernel's aggregation request (explicit > env > auto).

    Returns ``(mode, names)``:

    - ``("auto", None)`` -- whole-kernel selection (the default);
    - ``("single", (name,))`` -- one pinned concrete strategy;
    - ``("adaptive", None)`` -- per-chunk cost-model selection;
    - ``("map", names)`` -- an explicit per-chunk assignment cycle
      (chunk ``i`` combines through ``names[i % len(names)]``; the
      fuzzer's mixed-strategy trials pin plans this way).
    """
    if requested is None:
        requested = strategy_from_env()
    if requested is None:
        return ("auto", None)
    if isinstance(requested, str):
        if requested == ADAPTIVE:
            return ("adaptive", None)
        if requested not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown aggregation strategy {requested!r} "
                f"(known: {'/'.join(STRATEGY_NAMES)}/{ADAPTIVE})")
        return ("single", (requested,))
    names = tuple(requested)
    if not names:
        raise ValueError("strategy map must name at least one strategy")
    for name in names:
        if name not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown aggregation strategy {name!r} in map "
                f"(known: {'/'.join(STRATEGY_NAMES)})")
    return ("map", names)


#: env-override strategy names already warned about (one warning per
#: process, not one per kernel lowering)
_ENV_OVERRIDE_WARNED: set = set()


def resolve_strategy(requested: str | None, degrees, width: int,
                     pool: WorkPool | None = None) -> AggregationStrategy:
    """Resolution order: explicit request > env override > auto-select.

    When the env override forces a strategy the selector would not have
    picked for this workload, a :class:`UserWarning` is emitted once per
    process per strategy name -- a global override hitting hundreds of
    kernel lowerings must not repeat itself per kernel.

    An :data:`ADAPTIVE` request degrades to auto-selection here: this
    resolver serves lowerings that pin one concrete strategy for a whole
    pass; per-chunk expansion happens in the plan lowering
    (``spmm``/``fusion``) via :func:`resolve_request` +
    :func:`select_chunk_strategies`.
    """
    if requested == ADAPTIVE:
        requested = None
    env = None if requested else strategy_from_env()
    if env == ADAPTIVE:
        env = None
    name = requested or env or select_strategy(degrees, width, pool)
    if env is not None and env not in _ENV_OVERRIDE_WARNED:
        picked = select_strategy(degrees, width, pool)
        if picked != env:
            _ENV_OVERRIDE_WARNED.add(env)
            import warnings

            warnings.warn(
                f"{AGG_STRATEGY_ENV}={env!r} overrides the selector's "
                f"choice ({picked!r} for this workload); further kernels "
                "will use the override silently", UserWarning,
                stacklevel=2)
    return make_strategy(name, pool=pool)
