"""The one reducer registry.

Every segmented reduction in the repository -- the SpMM templates'
aggregation, the fused executor's combine-store, and the standalone
:mod:`repro.graph.segment` helpers -- used to carry its own
``{"sum": np.add, ...}`` table.  Three copies of the same mapping is three
places for a new reducer (or a changed identity) to drift apart; this
module is now the single source of truth they all consume.

A :class:`Reducer` bundles the numpy ufunc, the algebraic identity the
accumulators are seeded with, and whether the operation is
*order-insensitive* (max/min: any evaluation order yields bit-identical
results) -- the property the aggregation strategies' parity contract keys
off (see :mod:`repro.runtime.strategies`).

``"mean"`` is not a registry entry: it is ``sum`` plus a finalize divide,
and :func:`resolve_reducer` normalizes it for callers that accept it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Reducer", "REDUCERS", "get_reducer", "resolve_reducer",
           "AGG_UFUNC", "AGG_IDENTITY"]


@dataclass(frozen=True)
class Reducer:
    """One aggregation operator: ufunc + identity + ordering semantics."""

    name: str
    ufunc: np.ufunc
    identity: float
    #: True when any combine order gives bit-identical results (idempotent
    #: lattice ops); False for sum/prod, where reassociation moves last bits
    order_insensitive: bool


REDUCERS: dict[str, Reducer] = {
    "sum": Reducer("sum", np.add, 0.0, False),
    "max": Reducer("max", np.maximum, -np.inf, True),
    "min": Reducer("min", np.minimum, np.inf, True),
    "prod": Reducer("prod", np.multiply, 1.0, False),
}


def get_reducer(name: str) -> Reducer:
    """Registry lookup; raises ``ValueError`` on an unknown reducer."""
    try:
        return REDUCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown reduction {name!r} (known: "
            f"{'/'.join(sorted(REDUCERS))})") from None


def resolve_reducer(op: str) -> tuple[Reducer, bool]:
    """``(reducer, is_mean)`` -- ``"mean"`` resolves to ``sum`` + a flag."""
    mean = op == "mean"
    return get_reducer("sum" if mean else op), mean


#: legacy-shaped views (name -> ufunc / identity) kept for the import sites
#: that predate the registry (``repro.core.spmm`` re-exports these)
AGG_UFUNC: dict[str, np.ufunc] = {n: r.ufunc for n, r in REDUCERS.items()}
AGG_IDENTITY: dict[str, float] = {n: r.identity for n, r in REDUCERS.items()}
