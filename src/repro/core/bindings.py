"""Kernel-argument validation.

The templates bind user arrays to UDF placeholders at ``run`` time; this
module checks shapes and dtypes up front so mistakes fail with a kernel-level
message instead of a broadcasting error deep inside the evaluator.

It also derives each placeholder's *graph-axis role* from the traced UDF
expression (:func:`graph_axis_roles`): a tensor whose leading index is the
template's ``src``/``dst``/``eid`` variable has a leading dimension sized by
the bound topology (``n_src``/``n_dst``/``m``), not by the kernel interface.
Kernels rebound to a new topology (sampled blocks) validate those leading
dimensions against the *current* graph instead of the placeholder shape the
UDF was traced with.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.tensorir.expr import ComputeOp, Tensor, TensorElem, Var

__all__ = ["validate_bindings", "graph_axis_roles", "BindingError"]

#: graph-axis roles, by the template variable that indexes the leading dim
_VAR_ROLE = {"src": "n_src", "dst": "n_dst", "eid": "m"}


class BindingError(ValueError):
    """A kernel was invoked with missing or mis-shaped arrays."""


def graph_axis_roles(out: Tensor) -> dict[str, str]:
    """Map placeholder names to the graph axis sizing their leading dim.

    Walks the traced UDF expression: a placeholder read as ``XV[src, ...]``
    gets role ``"n_src"``, ``XV[dst, ...]`` gets ``"n_dst"``, and
    ``ES[eid, ...]`` gets ``"m"``.  A tensor read through both endpoint
    variables (``u_add_v``) gets ``"n_max"`` -- its leading dimension must
    cover both.  Tensors whose leading index is not a template variable
    (weight matrices, or anything mixed with ``eid``) carry no role: their
    shape is part of the kernel interface and stays fixed.
    """
    roles: dict[str, str] = {}
    fixed: set[str] = set()

    def note(name: str, role: str | None) -> None:
        if role is None:
            fixed.add(name)
            return
        prev = roles.get(name)
        if prev is None or prev == role:
            roles[name] = role
        elif {prev, role} == {"n_src", "n_dst"} or "n_max" in (prev, role) \
                and "m" not in (prev, role):
            roles[name] = "n_max"
        else:
            fixed.add(name)

    def visit(e) -> None:
        if isinstance(e, TensorElem):
            t = e.tensor
            if isinstance(t.op, ComputeOp):
                visit(t.op.body)
            else:
                lead = e.indices[0] if e.indices else None
                role = (_VAR_ROLE.get(lead.name)
                        if isinstance(lead, Var) else None)
                note(t.name, role)
            for i in e.indices:
                visit(i)
            return
        for child in getattr(e, "__dict__", {}).values():
            if hasattr(child, "__dict__") or isinstance(child, TensorElem):
                visit(child)
        for attr in ("a", "b", "args", "cond", "then", "otherwise", "value",
                     "source"):
            child = getattr(e, attr, None)
            if child is None:
                continue
            if isinstance(child, (list, tuple)):
                for c in child:
                    visit(c)
            else:
                visit(child)

    visit(out.op.body)
    for name in fixed:
        roles.pop(name, None)
    return roles


def validate_bindings(udf_output: Tensor, bindings: Mapping[str, np.ndarray],
                      kernel_name: str,
                      graph_dims: Mapping[str, int] | None = None,
                      graph_roles: Mapping[str, str] | None = None) -> None:
    """Check that ``bindings`` covers every placeholder the UDF reads, with
    matching shapes.

    Extra keys are allowed (a shared bindings dict may serve several
    kernels); missing or wrong-shaped entries raise :class:`BindingError`.

    With ``graph_dims``/``graph_roles`` (kernels rebound to a new topology),
    a placeholder with a graph-axis role validates its leading dimension
    against the current graph -- at least ``graph_dims[role]`` rows, exact
    trailing feature dims -- instead of the traced placeholder shape.
    """
    op = udf_output.op
    if not isinstance(op, ComputeOp):
        return
    for tensor in op.input_tensors():
        if tensor.name not in bindings:
            raise BindingError(
                f"{kernel_name}: missing binding for placeholder "
                f"{tensor.name!r} (expected shape {tensor.shape})"
            )
        arr = np.asarray(bindings[tensor.name])
        role = graph_roles.get(tensor.name) if graph_roles else None
        if role is not None and graph_dims is not None:
            need = (max(graph_dims["n_src"], graph_dims["n_dst"])
                    if role == "n_max" else graph_dims[role])
            if (arr.ndim != tensor.ndim or arr.shape[1:] != tensor.shape[1:]
                    or arr.shape[0] < need):
                raise BindingError(
                    f"{kernel_name}: binding {tensor.name!r} has shape "
                    f"{arr.shape}, expected (>={need},"
                    f"{str(tensor.shape[1:])[1:-1].rstrip(',')})"
                )
        elif arr.shape != tensor.shape:
            raise BindingError(
                f"{kernel_name}: binding {tensor.name!r} has shape "
                f"{arr.shape}, expected {tensor.shape}"
            )
        if not np.issubdtype(arr.dtype, np.floating) and \
                tensor.dtype.startswith("float"):
            raise BindingError(
                f"{kernel_name}: binding {tensor.name!r} has dtype "
                f"{arr.dtype}, expected a float array"
            )
