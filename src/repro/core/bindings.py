"""Kernel-argument validation.

The templates bind user arrays to UDF placeholders at ``run`` time; this
module checks shapes and dtypes up front so mistakes fail with a kernel-level
message instead of a broadcasting error deep inside the evaluator.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.tensorir.expr import ComputeOp, Tensor

__all__ = ["validate_bindings", "BindingError"]


class BindingError(ValueError):
    """A kernel was invoked with missing or mis-shaped arrays."""


def validate_bindings(udf_output: Tensor, bindings: Mapping[str, np.ndarray],
                      kernel_name: str) -> None:
    """Check that ``bindings`` covers every placeholder the UDF reads, with
    matching shapes.

    Extra keys are allowed (a shared bindings dict may serve several
    kernels); missing or wrong-shaped entries raise :class:`BindingError`.
    """
    op = udf_output.op
    if not isinstance(op, ComputeOp):
        return
    for tensor in op.input_tensors():
        if tensor.name not in bindings:
            raise BindingError(
                f"{kernel_name}: missing binding for placeholder "
                f"{tensor.name!r} (expected shape {tensor.shape})"
            )
        arr = np.asarray(bindings[tensor.name])
        if arr.shape != tensor.shape:
            raise BindingError(
                f"{kernel_name}: binding {tensor.name!r} has shape "
                f"{arr.shape}, expected {tensor.shape}"
            )
        if not np.issubdtype(arr.dtype, np.floating) and \
                tensor.dtype.startswith("float"):
            raise BindingError(
                f"{kernel_name}: binding {tensor.name!r} has dtype "
                f"{arr.dtype}, expected a float array"
            )
