"""Shared registry of DGL builtin message/edge functions (Sec. IV-B).

The DGL integration surface (``copy_u``, ``copy_e``, ``u_add_v``,
``u_mul_e``, ``u_dot_v``, ...) used to be defined twice -- once by the
prebuilt kernel builders in :mod:`repro.core.kernels` and once inline by
:mod:`repro.minidgl.backends`.  The duplicated traces produced structurally
identical UDFs under different compute names, which defeated cross-backend
sharing of compiled kernels.  This module is the single source of truth:
each factory takes the placeholder tensors and returns the ``msgfunc`` /
``edgefunc`` closure the sparse templates trace.

Both :mod:`repro.core.kernels` and :mod:`repro.minidgl.backends` import
from here, so the same builtin compiled from either layer yields the same
:class:`~repro.core.compile.KernelSpec`.

Every factory also stamps the returned closure with a ``udf_key`` -- a
hashable identity covering the builtin name plus each placeholder's name,
dtype, and *feature* shape (the graph-sized leading dimension is
deliberately excluded).  The kernel cache uses ``udf_key`` to recognize a
UDF it has already traced without re-tracing it, which is what makes
kernels over freshly sampled blocks a cache hit (see
:mod:`repro.core.compile`).
"""

from __future__ import annotations

from repro import tensorir as T


def _feat_sig(t: T.Tensor) -> tuple:
    """Topology-independent identity of a placeholder: name, dtype, and
    trailing feature dims (leading dim is graph-sized and excluded)."""
    return (t.name, t.dtype, tuple(t.shape[1:]))

__all__ = [
    "copy_u_msg",
    "copy_e_msg",
    "u_add_v_msg",
    "u_sub_v_msg",
    "u_mul_v_msg",
    "u_mul_e_msg",
    "u_dot_v_edge",
    "BUILTIN_MESSAGE_FUNCTIONS",
    "BUILTIN_EDGE_FUNCTIONS",
]


def copy_u_msg(XV: T.Tensor):
    """``copy_u``: message = source vertex feature.  ``XV`` is ``(n, *f)``."""
    feat_shape = XV.shape[1:]

    def msgfunc(src, dst, eid):
        return T.compute(feat_shape, lambda *ix: XV[(src,) + ix],
                         name="copy_u_msg")

    msgfunc.udf_key = ("copy_u", _feat_sig(XV))
    return msgfunc


def copy_e_msg(XE: T.Tensor):
    """``copy_e``: message = edge feature.  ``XE`` is ``(m, *f)`` or ``(m,)``
    (scalar edge data yields a width-1 message)."""
    if XE.ndim == 1:
        def msgfunc(src, dst, eid):
            return T.compute((1,), lambda i: XE[eid], name="copy_e_msg")
    else:
        feat_shape = XE.shape[1:]

        def msgfunc(src, dst, eid):
            return T.compute(feat_shape, lambda *ix: XE[(eid,) + ix],
                             name="copy_e_msg")

    msgfunc.udf_key = ("copy_e", XE.ndim, _feat_sig(XE))
    return msgfunc


def _binary_uv_msg(opname: str, XV: T.Tensor):
    feat_shape = XV.shape[1:]

    def msgfunc(src, dst, eid):
        def body(*ix):
            a, b = XV[(src,) + ix], XV[(dst,) + ix]
            if opname == "add":
                return a + b
            if opname == "sub":
                return a - b
            return a * b

        return T.compute(feat_shape, body, name=f"u_{opname}_v_msg")

    msgfunc.udf_key = (f"u_{opname}_v", _feat_sig(XV))
    return msgfunc


def u_add_v_msg(XV: T.Tensor):
    """``u_add_v``: element-wise sum of endpoint features."""
    return _binary_uv_msg("add", XV)


def u_sub_v_msg(XV: T.Tensor):
    """``u_sub_v``: element-wise difference of endpoint features."""
    return _binary_uv_msg("sub", XV)


def u_mul_v_msg(XV: T.Tensor):
    """``u_mul_v``: element-wise product of endpoint features."""
    return _binary_uv_msg("mul", XV)


def u_mul_e_msg(XV: T.Tensor, EW: T.Tensor):
    """``u_mul_e``: source feature scaled by the edge feature.

    ``EW`` broadcasts over the trailing feature dimensions: with ``XV`` of
    shape ``(n, *f)``, ``EW`` may be ``(m,)`` (scalar weight per edge, the
    GAT pattern) up to ``(m, *f)`` (full element-wise product).
    """
    w_dims = EW.ndim - 1

    def msgfunc(src, dst, eid):
        def body(*ix):
            return XV[(src,) + ix] * EW[(eid,) + ix[:w_dims]]

        return T.compute(XV.shape[1:], body, name="u_mul_e_msg")

    msgfunc.udf_key = ("u_mul_e", _feat_sig(XV), _feat_sig(EW))
    return msgfunc


def u_dot_v_edge(XA: T.Tensor, XB: T.Tensor):
    """``u_dot_v``: per-edge dot product of endpoint features along the last
    dimension (the attention-score SDDMM).  With multi-head inputs
    ``(n, h, d)`` the output keeps the head dimension; 1-D features yield a
    width-1 output."""
    feat_shape = XA.shape[1:]
    d = feat_shape[-1]
    head_shape = feat_shape[:-1] or (1,)

    def edgefunc(src, dst, eid):
        k = T.reduce_axis((0, d), name="k")
        if len(feat_shape) == 1:
            return T.compute(
                (1,), lambda i: T.sum_reduce(XA[src, k] * XB[dst, k], axis=k),
                name="u_dot_v")
        return T.compute(
            head_shape,
            lambda *hx: T.sum_reduce(
                XA[(src,) + hx + (k,)] * XB[(dst,) + hx + (k,)], axis=k),
            name="u_dot_v")

    edgefunc.udf_key = ("u_dot_v", _feat_sig(XA), _feat_sig(XB))
    return edgefunc


#: message-function factories by DGL builtin name (SpMM pattern)
BUILTIN_MESSAGE_FUNCTIONS = {
    "copy_u": copy_u_msg,
    "copy_e": copy_e_msg,
    "u_add_v": u_add_v_msg,
    "u_sub_v": u_sub_v_msg,
    "u_mul_v": u_mul_v_msg,
    "u_mul_e": u_mul_e_msg,
}

#: edge-function factories by DGL builtin name (SDDMM pattern)
BUILTIN_EDGE_FUNCTIONS = {
    "u_dot_v": u_dot_v_edge,
}
