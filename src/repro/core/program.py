"""Multi-kernel programs.

Real GNN layers chain several generalized kernels (GAT: SDDMM scores ->
edge softmax -> weighted SpMM).  :class:`KernelProgram` composes compiled
FeatGraph kernels through named intermediate buffers so a whole layer is one
runnable, costable object -- the natural unit the paper's "backend for GNN
frameworks" exposes upward.

Each step binds its inputs from the program's environment (external inputs
plus earlier steps' outputs, optionally through a pure-numpy transform for
glue like reshapes or degree normalization that is not a graph kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.hwsim.report import CostReport

__all__ = ["KernelProgram", "Step"]


@dataclass
class Step:
    """One program step: a kernel (anything with run/cost) or a transform."""

    name: str
    kernel: object | None = None
    #: maps the kernel's placeholder names to environment keys
    inputs: Mapping[str, str] = field(default_factory=dict)
    #: pure-numpy glue, receives the environment, returns an array
    transform: Callable[[dict], np.ndarray] | None = None

    def __post_init__(self):
        if (self.kernel is None) == (self.transform is None):
            raise ValueError(
                f"step {self.name!r}: give exactly one of kernel/transform")


class KernelProgram:
    """An ordered pipeline of kernels over named buffers."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.steps: list[Step] = []

    def add_kernel(self, name: str, kernel, inputs: Mapping[str, str]
                   ) -> "KernelProgram":
        """Append a kernel step; its output is stored under ``name``."""
        self._check_name(name)
        self.steps.append(Step(name=name, kernel=kernel, inputs=dict(inputs)))
        return self

    def add_transform(self, name: str, fn: Callable[[dict], np.ndarray]
                      ) -> "KernelProgram":
        """Append a numpy glue step (reshape, normalize, ...)."""
        self._check_name(name)
        self.steps.append(Step(name=name, transform=fn))
        return self

    def _check_name(self, name: str):
        if any(s.name == name for s in self.steps):
            raise ValueError(f"duplicate step name {name!r}")

    def run(self, inputs: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Execute all steps; returns the full environment (inputs + every
        step's output, keyed by step name)."""
        env: dict[str, np.ndarray] = dict(inputs)
        for step in self.steps:
            if step.name in env:
                raise ValueError(
                    f"step {step.name!r} collides with an input name")
            if step.transform is not None:
                env[step.name] = step.transform(env)
                continue
            bindings = {}
            for placeholder, source in step.inputs.items():
                if source not in env:
                    raise KeyError(
                        f"step {step.name!r} needs {source!r}, which no "
                        "input or earlier step provides")
                bindings[placeholder] = env[source]
            env[step.name] = step.kernel.run(bindings)
        return env

    def cost(self, **kw) -> CostReport:
        """Sum of the kernel steps' machine-model costs (transforms free)."""
        total: CostReport | None = None
        for step in self.steps:
            if step.kernel is None:
                continue
            c = step.kernel.cost(**kw)
            total = c if total is None else total + c
        return total if total is not None else CostReport(seconds=0.0)

    def compile_report(self) -> dict[str, dict[str, float]]:
        """Per-step compile pass timings (step name -> pass name -> seconds).

        Covers kernel steps whose kernel exposes ``compile_timings()`` --
        the generalized SpMM/SDDMM templates and composites like
        :class:`~repro.core.softmax.EdgeSoftmax`; transforms and foreign
        kernels are skipped.
        """
        report: dict[str, dict[str, float]] = {}
        for step in self.steps:
            timings = getattr(step.kernel, "compile_timings", None)
            if timings is not None:
                report[step.name] = timings()
        return report

    def __repr__(self):
        kinds = ["K" if s.kernel is not None else "T" for s in self.steps]
        return f"KernelProgram({self.name}, steps={''.join(kinds)})"
