"""Feature dimension schedule (FDS) handling.

An FDS, in the paper's interface, is a user function that receives the UDF's
output tensor and returns a schedule built with the primitives of
:mod:`repro.tensorir.schedule` -- see paper Fig. 3a lines 11-22, Fig. 4a
lines 13-16, and Figs. 8-9.  The templates introspect the returned schedule
for:

- feature-dimension **tiling factors** (CPU cache optimization),
- **thread bindings** of feature axes (GPU parallelization),
- **tree-reduce** annotations on reduction axes (GPU Fig. 7b).

:class:`FDS` wraps the user function and performs that introspection.  The
``*_fds`` factories below reproduce the schedules from the paper's listings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.tensorir.expr import ComputeOp, Tensor
from repro.tensorir.schedule import Schedule, create_schedule
from repro.tensorir.validate import validate_schedule

__all__ = [
    "FDS",
    "FDSInfo",
    "introspect_stage",
    "default_fds",
    "default_fds_for",
    "cpu_tile_fds",
    "cpu_multilevel_fds",
    "gpu_feature_thread_fds",
    "gpu_tree_reduce_fds",
    "gpu_multilevel_fds",
]


@dataclass
class FDSInfo:
    """Introspected scheduling facts about a UDF output."""

    #: inner split factor of the (first) output feature axis; None = untiled
    feature_tile: int | None = None
    #: split factors of every output axis, by axis position
    tile_factors: dict[int, list[int]] = field(default_factory=dict)
    #: thread tags bound to output axes, e.g. {"thread.x": 0}
    bindings: dict[str, int] = field(default_factory=dict)
    #: True if a reduce axis is tree-reduced across threads
    tree_reduce: bool = False
    #: vectorized output axis positions
    vectorized: tuple[int, ...] = ()


class FDS:
    """A user feature-dimension schedule, plus its introspection.

    ``cache_key`` is an optional hashable identity for the *decisions* the
    schedule function makes (e.g. ``("cpu_tile", 8)``).  The ``*_fds``
    factories below all set one; the kernel cache uses it to recognize
    structurally identical schedules without applying them, which is what
    lets compiled kernels be re-bound to new graph topologies without
    re-running the front compile passes.  A hand-written FDS without a key
    still compiles fine -- it just never takes the fast re-bind path.
    """

    def __init__(self, schedule_fn: Callable[[Tensor], Schedule] | None,
                 cache_key: tuple | None = None):
        self.schedule_fn = schedule_fn
        self.cache_key = cache_key

    def apply(self, out: Tensor) -> Schedule:
        """Run the user schedule function (identity schedule if absent)."""
        if self.schedule_fn is None:
            return create_schedule(out)
        s = self.schedule_fn(out)
        if not isinstance(s, Schedule):
            raise TypeError("an FDS function must return a tensorir Schedule")
        return s

    def inspect(self, out: Tensor, target: str | None = None) -> FDSInfo:
        """Apply the schedule to ``out`` and summarize its decisions.

        With a ``target`` ("cpu" / "gpu") the schedule is legality-checked
        against it, so e.g. a GPU thread-binding FDS paired with a CPU
        kernel raises :class:`~repro.tensorir.validate.ScheduleError` at
        kernel-construction time.
        """
        if not isinstance(out.op, ComputeOp):
            raise TypeError("FDS applies to compute tensors")
        sched = self.apply(out)
        stage = sched[out]
        validate_schedule(stage, target=target)
        return introspect_stage(out, stage)


def introspect_stage(out: Tensor, stage) -> FDSInfo:
    """Summarize one scheduled stage's decisions into an :class:`FDSInfo`.

    Shared by :meth:`FDS.inspect` and the compile pipeline's ``fuse_fds``
    pass, which keeps the applied :class:`~repro.tensorir.schedule.Stage`
    around for lowering instead of re-deriving it.
    """
    info = FDSInfo()
    for pos, ax in enumerate(out.op.axis):
        factors = stage.tiling_of(ax)
        if factors:
            info.tile_factors[pos] = factors
    if 0 in info.tile_factors:
        info.feature_tile = info.tile_factors[0][-1]
    axis_pos = {ax.name: i for i, ax in enumerate(out.op.axis)}
    for leaf in stage.leaf_iter_vars:
        attrs = stage.annotation_of(leaf)
        tag = attrs.get("bind")
        if tag is not None:
            root = stage.root_of(leaf)
            info.bindings[tag] = axis_pos.get(root.name, -1)
        if attrs.get("kind") == "vectorize":
            root = stage.root_of(leaf)
            if root.name in axis_pos:
                info.vectorized = info.vectorized + (axis_pos[root.name],)
    if stage.tree_reduce_axes():
        info.tree_reduce = True
    return info


def default_fds() -> FDS:
    """No feature-dimension optimization -- FeatGraph "degrades to
    traditional graph processing systems" (Sec. III-B)."""
    return FDS(None, cache_key=("none",))


def default_fds_for(target: str, feature_len: int, kind: str) -> FDS:
    """Default FDS per target and kernel pattern, as in the paper's figures.

    ``kind`` is one of ``"spmm"`` (vanilla aggregation), ``"spmm-mlp"``
    (multi-level aggregation with an inner reduction), or ``"sddmm"``.
    Used by the prebuilt kernels *and* the DGL integration layer so that
    both backends compile identical :class:`~repro.core.compile.KernelSpec`
    keys by default.
    """
    if kind == "spmm":
        return (cpu_tile_fds(min(32, feature_len)) if target == "cpu"
                else gpu_feature_thread_fds())
    if kind == "spmm-mlp":
        return cpu_multilevel_fds(8, 8) if target == "cpu" else gpu_multilevel_fds()
    if kind == "sddmm":
        return (cpu_tile_fds(min(32, feature_len)) if target == "cpu"
                else gpu_tree_reduce_fds())
    raise ValueError(f"unknown kernel pattern {kind!r}")


def cpu_tile_fds(factor: int = 8) -> FDS:
    """Paper Fig. 3a lines 11-15: tile the feature dimension for cache."""

    def fn(out: Tensor) -> Schedule:
        s = create_schedule(out)
        s[out].split(out.op.axis[0], factor=factor)
        return s

    return FDS(fn, cache_key=("cpu_tile", factor))


def cpu_multilevel_fds(out_factor: int = 8, reduce_factor: int = 8) -> FDS:
    """Paper Fig. 8: tile both the output and the reduction dimension
    (MLP aggregation on CPU)."""

    def fn(out: Tensor) -> Schedule:
        s = create_schedule(out)
        s[out].split(out.op.axis[0], factor=out_factor)
        reduce_axes = out.op.reduce_axis
        if reduce_axes:
            s[out].split(reduce_axes[0], factor=reduce_factor)
        return s

    return FDS(fn, cache_key=("cpu_multilevel", out_factor, reduce_factor))


def gpu_feature_thread_fds() -> FDS:
    """Paper Fig. 3a lines 19-22: parallelize the feature dimension across
    the threads of a CUDA block."""

    def fn(out: Tensor) -> Schedule:
        s = create_schedule(out)
        s[out].bind(out.op.axis[0], "thread.x")
        return s

    return FDS(fn, cache_key=("gpu_feature_thread",))


def gpu_tree_reduce_fds() -> FDS:
    """Paper Fig. 4a lines 13-16: tree-based parallel reduction of the
    edge function's reduce axis across threads."""

    def fn(out: Tensor) -> Schedule:
        s = create_schedule(out)
        reduce_axes = out.op.reduce_axis
        if not reduce_axes:
            raise ValueError("tree-reduce FDS requires a reduction in the UDF")
        s[out].tree_reduce(reduce_axes[0], "thread.x")
        return s

    return FDS(fn, cache_key=("gpu_tree_reduce",))


def gpu_multilevel_fds() -> FDS:
    """Paper Fig. 9: bind the first output dimension to blocks and
    tree-reduce the reduction dimension across threads (MLP aggregation on
    GPU)."""

    def fn(out: Tensor) -> Schedule:
        s = create_schedule(out)
        s[out].bind(out.op.axis[0], "block.x")
        reduce_axes = out.op.reduce_axis
        if reduce_axes:
            s[out].tree_reduce(reduce_axes[0], "thread.x")
        return s

    return FDS(fn, cache_key=("gpu_multilevel",))
