"""Transferable tuning across graphs (paper Sec. V-D).

"Transferable tuning across graphs, i.e., using the optimal partitioning
factors tuned on one graph to predict the optimal partitioning factors for a
new graph, is more challenging and worth further study."

This module implements the natural transfer rule the paper's own
observations suggest:

- the optimal number of **feature partitions** tracks the feature length
  (Sec. V-D: "increases proportionately"), i.e. the optimal *tile width* is
  a property of the cache, not the graph;
- the optimal number of **graph partitions** keeps the per-partition source
  working set at a fixed byte budget, so it transfers by rescaling with the
  new graph's source count.

:func:`transfer_config` maps a tuned configuration from one (graph, f) to
another; :func:`transfer_regret` quantifies how far the transferred
configuration lands from the new graph's own optimum (the metric the
``bench_ext_transfer_tuning`` experiment reports).  A :class:`TuningCache`
persists tuned configurations, amortizing tuning the way Sec. IV-B amortizes
compilation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.core.tuner import GridTuner, TuneResult
from repro.hwsim.stats import GraphStats

__all__ = ["TunedConfig", "transfer_config", "transfer_regret", "TuningCache"]


@dataclass(frozen=True)
class TunedConfig:
    """A tuned (graph partitions, feature partitions) point with its
    context: the graph's source count and the feature length."""

    graph_partitions: int
    feature_partitions: int
    n_src: int
    feature_len: int

    @property
    def tile_width(self) -> int:
        return max(1, self.feature_len // self.feature_partitions)

    @property
    def partition_rows(self) -> float:
        return self.n_src / self.graph_partitions

    @property
    def working_set_bytes(self) -> float:
        """Per-(partition, tile) source working set the tuner settled on."""
        return self.partition_rows * self.tile_width * 4


def _snap(value: float, candidates) -> int:
    """Closest candidate (log-scale) to a continuous prediction."""
    best = min(candidates, key=lambda c: abs(math.log(max(c, 1))
                                             - math.log(max(value, 1))))
    return int(best)


def transfer_config(tuned: TunedConfig, new_stats: GraphStats,
                    new_feature_len: int,
                    graph_candidates=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                    feature_candidates=(1, 2, 4, 8, 16, 32)) -> dict:
    """Predict a configuration for a new (graph, feature length).

    Keeps the tuned *tile width* and the tuned *working-set budget*:
    ``nf' = f' / tile_width`` and ``np' = n_src' * tile' * 4 / budget``.
    """
    tile = tuned.tile_width
    nf = max(1, round(new_feature_len / tile))
    nf = _snap(nf, feature_candidates)
    tile_new = max(1, new_feature_len // nf)
    np_parts = new_stats.n_src * tile_new * 4 / max(tuned.working_set_bytes, 1)
    np_parts = _snap(np_parts, graph_candidates)
    return {"graph": np_parts, "feature": nf}


def transfer_regret(evaluate, tuned: TunedConfig, new_stats: GraphStats,
                    new_feature_len: int, space: dict) -> tuple[float, dict, TuneResult]:
    """(regret, transferred config, the new graph's own grid optimum).

    ``regret`` = transferred-config cost / grid-optimal cost - 1.
    ``evaluate(cfg)`` prices a config on the *new* graph.
    """
    predicted = transfer_config(tuned, new_stats, new_feature_len,
                                graph_candidates=space["graph"],
                                feature_candidates=space["feature"])
    optimum = GridTuner(space, evaluate).tune()
    predicted_cost = evaluate(predicted).seconds
    regret = predicted_cost / optimum.best_cost.seconds - 1.0
    return regret, predicted, optimum


class TuningCache:
    """JSON-backed store of tuned configurations, keyed by
    ``(workload, n_src bucket, feature_len)``."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._data: dict[str, dict] = {}
        if self.path.exists():
            self._data = json.loads(self.path.read_text())

    @staticmethod
    def _key(workload: str, n_src: int, feature_len: int) -> str:
        bucket = 1 << max(0, (n_src - 1).bit_length())  # next pow2
        return f"{workload}|{bucket}|{feature_len}"

    def get(self, workload: str, n_src: int, feature_len: int) -> TunedConfig | None:
        raw = self._data.get(self._key(workload, n_src, feature_len))
        if raw is None:
            return None
        return TunedConfig(**raw)

    def put(self, workload: str, cfg: TunedConfig) -> None:
        self._data[self._key(workload, cfg.n_src, cfg.feature_len)] = {
            "graph_partitions": cfg.graph_partitions,
            "feature_partitions": cfg.feature_partitions,
            "n_src": cfg.n_src,
            "feature_len": cfg.feature_len,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._data, indent=2))

    def __len__(self):
        return len(self._data)
