"""Edge softmax as a composition of FeatGraph templates.

GAT-style models normalize per-edge attention scores over each
destination's incoming edges.  DGL exposes this as a primitive; on top of
FeatGraph it decomposes into three fused passes, each an instance of the
paper's two patterns:

1. **max phase** (generalized SpMM, ``max`` reducer): per-destination score
   maximum, for numerical stability;
2. **exp-sum phase** (generalized SpMM, ``sum`` reducer, UDF reads the edge
   score and the destination max): ``Z[v] = sum exp(s_uv - M[v])``;
3. **normalize phase** (generalized SDDMM-pattern edge map): ``alpha_uv =
   exp(s_uv - M[v]) / Z[v]``.

No per-edge tensor other than the output is materialized.  ``cost()`` sums
the three phases' machine-model times.

When the ``FEATGRAPH_FUSE`` gate is on (see :mod:`repro.core.fusion`), the
three phases additionally compile as **one** fused kernel chain that walks
the CSR once, computing ``exp(s - M)`` a single time (cross-kernel CSE)
instead of once per consuming phase; ``run()`` dispatches to it and
``run_staged()`` keeps the three-kernel path available as the oracle.
"""

from __future__ import annotations

import numpy as np

from repro import tensorir as T
from repro.core.api import sddmm, spmat, spmm
from repro.hwsim.report import CostReport

__all__ = ["EdgeSoftmax"]


class EdgeSoftmax:
    """Fused edge softmax over incoming edges, with ``num_heads`` channels."""

    def __init__(self, A, num_heads: int = 1, target: str = "cpu",
                 cache=None, fused: bool | None = None,
                 agg_strategy: str | None = None):
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.A = spmat(A)
        self.num_heads = int(num_heads)
        self.target = target
        m = self.A.nnz
        n = self.A.num_dst
        h = self.num_heads

        ES = T.placeholder((m, h), name="ES")
        MAXV = T.placeholder((n, h), name="MAXV")
        SUMV = T.placeholder((n, h), name="SUMV")

        def max_msg(src, dst, eid):
            return T.compute((h,), lambda i: ES[eid, i], name="sm_max")

        def expsum_msg(src, dst, eid):
            return T.compute((h,), lambda i: T.exp(ES[eid, i] - MAXV[dst, i]),
                             name="sm_expsum")

        def normalize_edge(src, dst, eid):
            return T.compute(
                (h,),
                lambda i: T.exp(ES[eid, i] - MAXV[dst, i]) / SUMV[dst, i],
                name="sm_norm")

        # Topology-independent identities (repro.core.compile): an
        # EdgeSoftmax over a fresh sampled block re-binds the cached phase
        # templates instead of re-tracing and re-lowering three kernels.
        max_msg.udf_key = ("edge_softmax_max", h)
        expsum_msg.udf_key = ("edge_softmax_expsum", h)
        normalize_edge.udf_key = ("edge_softmax_normalize", h)

        # ``cache=None`` targets the shared process-wide KernelCache, so two
        # EdgeSoftmax instances over the same graph reuse compiled kernels.
        self._max_kernel = spmm(self.A, max_msg, "max", target=target,
                                cache=cache)
        self._sum_kernel = spmm(self.A, expsum_msg, "sum", target=target,
                                cache=cache)
        self._norm_kernel = sddmm(self.A, normalize_edge, target=target,
                                  hilbert=False, cache=cache)
        # Pin (or clear) the runtime engine's segment-reduction strategy on
        # the aggregating phases.  Assigned unconditionally: the shared
        # kernel cache returns the same instances to every EdgeSoftmax over
        # this graph, so a stale pin must not survive reconstruction.
        self._max_kernel.agg_strategy = agg_strategy
        self._sum_kernel.agg_strategy = agg_strategy

        # The single-sweep fused chain (opt-in): the staged kernels above
        # always exist as the differential oracle and the fallback.
        if fused is None:
            from repro.core.fusion import fuse_enabled
            fused = fuse_enabled() and target == "cpu"
        self._fused = None
        if fused:
            from repro.core.fusion import FusedEdgeSoftmax
            self._fused = FusedEdgeSoftmax(self.A, self.num_heads,
                                           target=target, cache=cache)
            self._fused.kernel.agg_strategy = agg_strategy

    @property
    def fused(self):
        """The :class:`~repro.core.fusion.FusedEdgeSoftmax` chain, or None
        when running staged."""
        return self._fused

    def run(self, scores: np.ndarray, pool=None) -> np.ndarray:
        """Normalize ``scores`` (shape ``(m,)`` or ``(m, num_heads)``).

        Dispatches to the fused single-sweep chain when enabled, else to
        the three staged kernels.  ``pool`` (a
        :class:`~repro.tensorir.runtime.WorkPool`) is passed through.
        """
        if self._fused is not None:
            return self._fused.run(scores, pool=pool)
        return self.run_staged(scores, pool=pool)

    def run_staged(self, scores: np.ndarray, pool=None) -> np.ndarray:
        """The three-kernel reference path (always available: it is the
        oracle fused execution is checked against)."""
        squeeze = scores.ndim == 1
        es = scores.reshape(self.A.nnz, self.num_heads).astype(np.float32)
        maxv = self._max_kernel.run({"ES": es}, pool=pool)
        sumv = self._sum_kernel.run({"ES": es, "MAXV": maxv}, pool=pool)
        # guard isolated-destination rows against divide-by-zero
        sumv = np.where(sumv == 0, 1.0, sumv).astype(np.float32)
        alpha = self._norm_kernel.run({"ES": es, "MAXV": maxv, "SUMV": sumv},
                                      pool=pool)
        return alpha[:, 0] if squeeze else alpha

    def exec_stats(self) -> dict:
        """Runtime counters (eval/aggregate seconds, bytes moved, chunk
        counts) of the three phase kernels, by phase name."""
        stats = {
            "max": self._max_kernel.exec_stats.as_dict(),
            "expsum": self._sum_kernel.exec_stats.as_dict(),
            "normalize": self._norm_kernel.exec_stats.as_dict(),
        }
        if self._fused is not None:
            stats["fused"] = self._fused.kernel.exec_stats.as_dict()
        return stats

    def cost(self, spec=None, *, stats=None, threads: int = 1) -> CostReport:
        """Sum of the three phases' machine-model times."""
        return (self._max_kernel.cost(spec, stats=stats, threads=threads)
                + self._sum_kernel.cost(spec, stats=stats, threads=threads)
                + self._norm_kernel.cost(spec, stats=stats, threads=threads))

    def verify_report(self):
        """Merged plan-verifier report (FG006-FG010) over the three phase
        kernels plus the fused chain when enabled -- the whole softmax's
        execution plans in one report."""
        from repro.runtime.verify import verify_kernel

        return verify_kernel(self)

    def compile_timings(self) -> dict:
        """Per-pass compile seconds summed over the three phase kernels."""
        total: dict[str, float] = {}
        for k in (self._max_kernel, self._sum_kernel, self._norm_kernel):
            for name, secs in k.compile_timings().items():
                total[name] = total.get(name, 0.0) + secs
        return total

    def __repr__(self):
        return (f"EdgeSoftmax(m={self.A.nnz}, heads={self.num_heads}, "
                f"target={self.target})")
