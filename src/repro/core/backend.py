"""FeatGraph exposed through the common Backend protocol.

Lets the benchmark harness sweep FeatGraph and the baselines uniformly.
Kernels are compiled once per (graph, feature length) and cached.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import Backend
from repro.core import kernels
from repro.graph.sparse import CSRMatrix
from repro.hwsim import cpu as cpu_model
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M
from repro.hwsim.stats import GraphStats

__all__ = ["FeatGraphBackend"]


class FeatGraphBackend(Backend):
    """FeatGraph on either target, via the prebuilt kernel builders."""

    supported = frozenset(("gcn_aggregation", "mlp_aggregation", "dot_attention"))

    def __init__(self, target: str = "cpu", *, hybrid_partitioning: bool | None = None):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.platform = target
        self.name = f"FeatGraph-{target.upper()}"
        self.hybrid = (target == "gpu") if hybrid_partitioning is None else hybrid_partitioning

    def _kernel(self, kind: str, adj: CSRMatrix, *shape):
        # No per-backend kernel dict: the builders compile through
        # repro.core.compile, whose process-wide KernelCache keys on the
        # graph's *content* fingerprint (not id(adj) -- ids are recycled
        # after garbage collection, so a new graph allocated at a freed
        # graph's address would silently reuse a stale kernel).  A repeated
        # (kind, graph, shape) request returns the same kernel object.
        n = adj.shape[1]
        opts = {}
        if self.platform == "gpu":
            opts["hybrid_partitioning"] = self.hybrid
        if kind == "gcn":
            return kernels.gcn_aggregation(
                adj, n, shape[0], target=self.platform, **opts)
        if kind == "mlp":
            return kernels.mlp_aggregation(
                adj, n, shape[0], shape[1], target=self.platform, **opts)
        if kind == "attn":
            return kernels.dot_attention(
                adj, n, shape[0], target=self.platform)
        raise ValueError(kind)

    def gcn_aggregation(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        k = self._kernel("gcn", adj, features.shape[1])
        return k.run({"XV": features})

    def mlp_aggregation(self, adj: CSRMatrix, features: np.ndarray,
                        weight: np.ndarray) -> np.ndarray:
        k = self._kernel("mlp", adj, weight.shape[0], weight.shape[1])
        return k.run({"XV": features, "W": weight})

    def dot_attention(self, adj: CSRMatrix, features: np.ndarray) -> np.ndarray:
        k = self._kernel("attn", adj, features.shape[1])
        return k.run({"XV": features})[:, 0]

    def cost(self, kernel: str, stats: GraphStats, feature_len: int,
             *, threads: int = 1, d1: int = 8,
             spec: CPUSpec | GPUSpec | None = None,
             num_graph_partitions: int | None = None,
             num_feature_partitions: int | None = None) -> CostReport:
        self._require(kernel)
        if self.platform == "cpu":
            cpu_spec = spec if isinstance(spec, CPUSpec) else XEON_8124M
            frame = cpu_model.FEATGRAPH_CPU
            if num_feature_partitions is None:
                num_feature_partitions = max(1, feature_len // 32)
            if num_graph_partitions is None:
                ft = max(1, feature_len // num_feature_partitions)
                ws = stats.n_src * ft * 4
                num_graph_partitions = max(1, min(
                    stats.n_src, round(ws / (2 * 1024 * 1024))))
            if kernel == "gcn_aggregation":
                return cpu_model.spmm_time(
                    cpu_spec, stats, feature_len, frame=frame,
                    num_graph_partitions=num_graph_partitions,
                    num_feature_partitions=num_feature_partitions,
                    threads=threads)
            if kernel == "mlp_aggregation":
                return cpu_model.spmm_time(
                    cpu_spec, stats, feature_len, frame=frame,
                    udf_flops_per_edge=2 * d1 * feature_len, reads_dst=True,
                    num_graph_partitions=num_graph_partitions,
                    num_feature_partitions=num_feature_partitions,
                    threads=threads)
            return cpu_model.sddmm_time(
                cpu_spec, stats, feature_len, frame=frame, hilbert=True,
                num_feature_partitions=max(1, feature_len // 64),
                threads=threads)
        gpu_spec = spec if isinstance(spec, GPUSpec) else TESLA_V100
        if kernel == "gcn_aggregation":
            return gpu_model.spmm_row_block_time(
                gpu_spec, stats, feature_len,
                hybrid_partitioning=self.hybrid, kernel_efficiency=0.92)
        if kernel == "mlp_aggregation":
            return gpu_model.spmm_row_block_time(
                gpu_spec, stats, feature_len,
                udf_flops_per_edge=2 * d1 * feature_len,
                hybrid_partitioning=self.hybrid, kernel_efficiency=0.92)
        return gpu_model.sddmm_coop_time(gpu_spec, stats, feature_len,
                                         tree_reduce=True)
