"""Public FeatGraph API entry points (paper Sec. III-B).

``spmat`` wraps an adjacency; ``spmm`` / ``sddmm`` build compiled kernels
from (template, UDF, aggregation, target, FDS) exactly as in the paper's
Figs. 3 and 4.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graph.sparse import CSRMatrix, from_edges
from repro.hwsim.stats import GraphStats

__all__ = ["SparseMat", "spmat", "spmm", "sddmm"]


class SparseMat:
    """The ``featgraph.spmat`` object: an adjacency plus cached statistics.

    Rows are destination vertices, columns are sources (pull layout); this is
    the matrix ``A`` of the paper's Eq. (3)/(4).
    """

    def __init__(self, csr: CSRMatrix):
        if not isinstance(csr, CSRMatrix):
            raise TypeError("SparseMat wraps a repro.graph.CSRMatrix")
        self.csr = csr
        self._stats: GraphStats | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def num_dst(self) -> int:
        return self.csr.shape[0]

    @property
    def num_src(self) -> int:
        return self.csr.shape[1]

    def fingerprint(self) -> str:
        """Stable content hash of the adjacency (see
        :meth:`repro.graph.CSRMatrix.fingerprint`)."""
        return self.csr.fingerprint()

    def stats(self) -> GraphStats:
        if self._stats is None:
            self._stats = GraphStats.from_csr(
                self.csr.indptr, self.csr.indices, self.csr.shape[1]
            )
        return self._stats

    def __repr__(self):
        return f"SparseMat(shape={self.shape}, nnz={self.nnz})"


def spmat(adj, n_src: int | None = None, n_dst: int | None = None,
          src: np.ndarray | None = None, dst: np.ndarray | None = None) -> SparseMat:
    """Create a sparse adjacency handle.

    Accepts a :class:`~repro.graph.CSRMatrix` directly, an existing
    :class:`SparseMat` (returned as-is), or ``(n_src, n_dst, src, dst)``
    edge-list arguments.
    """
    if isinstance(adj, SparseMat):
        return adj
    if isinstance(adj, CSRMatrix):
        return SparseMat(adj)
    if adj is None and src is not None and dst is not None:
        if n_src is None or n_dst is None:
            raise ValueError("edge-list construction needs n_src and n_dst")
        return SparseMat(from_edges(n_src, n_dst, src, dst))
    raise TypeError("spmat takes a CSRMatrix, a SparseMat, or an edge list")


def spmm(A, msgfunc: Callable, aggregation="sum", target: str = "cpu",
         fds=None, **options):
    """Build a generalized-SpMM kernel (paper Fig. 3a line 32).

    Parameters mirror the paper: an adjacency, a message function
    ``msgfunc(src, dst, eid) -> Tensor``, an aggregation (``"sum"``,
    ``"max"``, ``"min"``, ``"mean"``, ``"prod"`` or the ``tensorir``
    reduction builders), the target, and an FDS.  Extra options (graph
    partitions, hybrid partitioning, CUDA blocks) pass through to
    :class:`~repro.core.spmm.GeneralizedSpMM`.

    Compilation runs through :func:`repro.core.compile.compile_spmm`, so an
    identical (graph, UDF, FDS, target, shapes) kernel is fetched from the
    shared :class:`~repro.core.compile.KernelCache` instead of re-lowered;
    pass ``cache=`` to target a private cache.
    """
    from repro.core.compile import compile_spmm

    return compile_spmm(A, msgfunc, aggregation=aggregation, target=target,
                        fds=fds, **options)


def sddmm(A, edgefunc: Callable, target: str = "cpu", fds=None, **options):
    """Build a generalized-SDDMM kernel (paper Fig. 4a line 21).

    Compiled through :func:`repro.core.compile.compile_sddmm` and the shared
    kernel cache, like :func:`spmm`.
    """
    from repro.core.compile import compile_sddmm

    return compile_sddmm(A, edgefunc, target=target, fds=fds, **options)
